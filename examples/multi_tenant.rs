//! Three tenants sharing one 4-node fabric: a latency-sensitive storefront,
//! a rate-limited bulk analytics scanner, and a bypass tenant that — being
//! invisible to the kernel — escapes every control. One scoreboard shows
//! what the CoRD dataplane buys a multi-tenant operator.
//!
//! Run with: `cargo run --release --example multi_tenant`

use cord_core::prelude::*;
use cord_workload::{run_scenario, Arrival, ScenarioSpec, SizeDist, TenantSpec};

fn main() {
    let mut store = TenantSpec::new("storefront", 0, vec![1, 2, 3]);
    store.arrival = Arrival::Closed {
        think: SimDuration::from_us(2),
    };
    store.req_size = SizeDist::Fixed(128);
    store.resp_size = SizeDist::Bimodal {
        small: 512,
        large: 8192,
        large_frac: 0.1,
    };
    store.requests = 300;
    store.qos = Some(QosClass::High);

    let mut scanner = TenantSpec::new("scanner", 0, vec![2]);
    scanner.arrival = Arrival::Open {
        rate_per_s: 50_000.0,
    };
    scanner.window = 8;
    scanner.req_size = SizeDist::Fixed(64 * 1024);
    scanner.resp_size = SizeDist::Fixed(64);
    scanner.requests = 150;
    scanner.qos = Some(QosClass::Low);
    scanner.rate_limit_gbps = Some(8.0);
    scanner.quota = Some(16);

    // Same shape as the scanner, but over kernel bypass: the rate limit and
    // quota are configured yet cannot bind — the paper's motivation.
    let mut rogue = TenantSpec::new("rogue-bypass", 1, vec![3]);
    rogue.dataplane = Dataplane::Bypass;
    rogue.arrival = Arrival::Open {
        rate_per_s: 50_000.0,
    };
    rogue.window = 8;
    rogue.req_size = SizeDist::Fixed(64 * 1024);
    rogue.resp_size = SizeDist::Fixed(64);
    rogue.requests = 150;
    rogue.rate_limit_gbps = Some(8.0);
    rogue.quota = Some(16);

    let spec = ScenarioSpec::new("three-tenants", system_l(), 4)
        .seed(42)
        .tenant(store)
        .tenant(scanner)
        .tenant(rogue);

    let report = run_scenario(&spec).expect("valid scenario");
    println!(
        "three tenants, {} nodes, {} QPs, {:.3} ms of cluster time:\n",
        report.nodes, report.qps_created, report.elapsed_ms
    );
    for t in &report.tenants {
        println!(
            "  {:13} p50 {:8.2} µs   p99 {:8.2} µs   goodput {:6.3} Gb/s   drops {}",
            t.tenant, t.p50_us, t.p99_us, t.goodput_gbps, t.dropped
        );
    }
    let scanner = &report.tenants[1];
    let rogue = &report.tenants[2];
    println!(
        "\nthe same 8 Gbit/s limit holds the CoRD scanner to {:.2} Gb/s while the \
         bypass twin runs at {:.2} Gb/s — only a kernel on the data path can isolate tenants",
        scanner.goodput_gbps, rogue.goodput_gbps
    );
}
