//! An RDMA key-value store in the FaRM/HERD style (§4 cites both as
//! ibverbs consumers): GETs are one-sided RDMA reads of a server-resident
//! hash table; PUTs are two-sided RPCs. The same store runs over bypass
//! and over CoRD — the paper's claim is that the switch costs almost
//! nothing, and here you can watch it cost ~half a microsecond.
//!
//! Run with: `cargo run --release --example kv_store`

use cord_core::prelude::*;

const SLOTS: usize = 1024;
const VAL_LEN: usize = 64;
const SLOT_LEN: usize = 8 + VAL_LEN; // key + value

/// Direct-mapped table (the demo uses dense keys; a production store would
/// hash and handle collisions — see HERD's lossy index for the real thing).
fn slot_of(key: u64) -> usize {
    key as usize % SLOTS
}

fn run(mode: Dataplane) -> (f64, f64) {
    let fabric = Fabric::builder(system_l()).build();
    let server = fabric.new_context(1, Dataplane::Bypass);
    let client = fabric.new_context(0, mode);
    let sim = fabric.sim().clone();

    fabric.block_on(async move {
        // --- server: registered table + RPC queue pair -------------------
        let table = server.alloc(SLOTS * SLOT_LEN, 0);
        let table_mr = server
            .reg_mr(table, Access::LOCAL_WRITE.union(Access::REMOTE_READ))
            .await;
        let s_scq = server.create_cq(256).await;
        let s_rcq = server.create_cq(256).await;
        let c_scq = client.create_cq(256).await;
        let c_rcq = client.create_cq(256).await;
        let sqp = server.create_qp(Transport::Rc, &s_scq, &s_rcq).await;
        let cqp = client.create_qp(Transport::Rc, &c_scq, &c_rcq).await;
        connect_rc_pair(&cqp, &sqp).await.unwrap();

        // RPC buffers for PUTs.
        let s_rpc = server.alloc(SLOT_LEN, 0);
        let s_rpc_mr = server.reg_mr(s_rpc, Access::all()).await;
        let s_ack = server.alloc(8, 0);
        let s_ack_mr = server.reg_mr(s_ack, Access::all()).await;

        // Server task: take PUT RPCs, install into the table, ack.
        let server_task = {
            let server = server.clone();
            let sqp = sqp.clone();
            let cqp_n = (cqp.node(), cqp.qpn());
            sim.spawn(async move {
                let _ = cqp_n;
                loop {
                    sqp.post_recv(RecvWqe::new(
                        WrId(1),
                        Sge {
                            addr: s_rpc.addr,
                            len: SLOT_LEN,
                            lkey: s_rpc_mr.lkey,
                        },
                    ))
                    .await
                    .unwrap();
                    let cqe = sqp.recv_cq().wait_one().await;
                    if cqe.status != CqeStatus::Success {
                        return;
                    }
                    // Install key+value into the table slot.
                    let rpc = server.mem().read(s_rpc.addr, SLOT_LEN).unwrap();
                    let key = u64::from_le_bytes(rpc[..8].try_into().unwrap());
                    let slot = table.addr + (slot_of(key) * SLOT_LEN) as u64;
                    server.core().compute_ns(80.0).await; // hash + install
                    server.mem().write(slot, &rpc).unwrap();
                    // Ack.
                    sqp.post_send(SendWqe::send(
                        WrId(2),
                        Sge {
                            addr: s_ack.addr,
                            len: 8,
                            lkey: s_ack_mr.lkey,
                        },
                    ))
                    .await
                    .unwrap();
                }
            })
        };

        // --- client -------------------------------------------------------
        let c_buf = client.alloc(SLOT_LEN, 0);
        let c_mr = client.reg_mr(c_buf, Access::all()).await;
        let n = 200u64;

        // PUTs (two-sided RPC).
        let t0 = sim.now();
        for key in 0..n {
            client.mem().write(c_buf.addr, &key.to_le_bytes()).unwrap();
            client
                .mem()
                .write(c_buf.addr + 8, &[key as u8; VAL_LEN])
                .unwrap();
            cqp.post_recv(RecvWqe::new(
                WrId(3),
                Sge {
                    addr: c_buf.addr,
                    len: 8,
                    lkey: c_mr.lkey,
                },
            ))
            .await
            .unwrap();
            // Unsignaled: the server's ack is the completion we care about
            // (and it keeps the send CQ clean for the GET phase).
            cqp.post_send(
                SendWqe::send(
                    WrId(4),
                    Sge {
                        addr: c_buf.addr,
                        len: SLOT_LEN,
                        lkey: c_mr.lkey,
                    },
                )
                .unsignaled(),
            )
            .await
            .unwrap();
            cqp.recv_cq().wait_one().await; // server ack
        }
        let put_us = sim.now().since(t0).as_us_f64() / n as f64;

        // GETs (one-sided RDMA read; server CPU idle).
        let t0 = sim.now();
        for key in 0..n {
            let slot = table.addr + (slot_of(key) * SLOT_LEN) as u64;
            cqp.post_send(SendWqe::read(
                WrId(5),
                Sge {
                    addr: c_buf.addr,
                    len: SLOT_LEN,
                    lkey: c_mr.lkey,
                },
                slot,
                table_mr.rkey,
            ))
            .await
            .unwrap();
            cqp.send_cq().wait_one().await;
            let got = client.mem().read(c_buf.addr, SLOT_LEN).unwrap();
            let gk = u64::from_le_bytes(got[..8].try_into().unwrap());
            assert_eq!(gk, key, "GET returned the PUT value");
            assert_eq!(got[8], key as u8);
        }
        let get_us = sim.now().since(t0).as_us_f64() / n as f64;
        drop(server_task);
        (put_us, get_us)
    })
}

fn main() {
    let (put_bp, get_bp) = run(Dataplane::Bypass);
    let (put_cd, get_cd) = run(Dataplane::Cord);
    println!("KV store over RDMA (200 PUTs + 200 verified GETs):");
    println!("  bypass: PUT {put_bp:.2} µs   GET {get_bp:.2} µs");
    println!("  CoRD:   PUT {put_cd:.2} µs   GET {get_cd:.2} µs");
    println!(
        "  CoRD overhead: PUT {:+.2} µs, GET {:+.2} µs — the OS is on the data path for well under a microsecond",
        put_cd - put_bp,
        get_cd - get_bp
    );
}
