//! OS-level control over the RDMA data plane — the capability CoRD buys.
//!
//! Three demonstrations on one fabric:
//! 1. an RDMA firewall: the kernel vetoes one-sided reads and
//!    out-of-window writes per-operation,
//! 2. bandwidth isolation: a token-bucket rate limiter on a tenant,
//! 3. dataplane freeze: the OS pauses and resumes a QP without the
//!    application's cooperation (the live-migration primitive).
//!
//! Run with: `cargo run --release --example policy_firewall`

use std::rc::Rc;

use cord_core::prelude::*;

fn main() {
    let fabric = Fabric::builder(system_l()).build();

    // Install the policy chain in node 0's kernel.
    let firewall = Rc::new(
        SecurityPolicy::new()
            .deny_op(Opcode::RdmaRead)
            .max_message(1 << 20),
    );
    let limiter = Rc::new(RateLimitPolicy::new(10.0, 1e6)); // 10 Gbit/s cap
    let freezer = Rc::new(FreezePolicy::new());
    fabric.kernel(0).add_policy(firewall);
    fabric.kernel(0).add_policy(limiter);
    fabric.kernel(0).add_policy(freezer.clone());

    let tenant = fabric.new_context(0, Dataplane::Cord);
    let peer = fabric.new_context(1, Dataplane::Bypass);
    let sim = fabric.sim().clone();

    fabric.block_on(async move {
        let t_scq = tenant.create_cq(256).await;
        let t_rcq = tenant.create_cq(256).await;
        let p_scq = peer.create_cq(256).await;
        let p_rcq = peer.create_cq(256).await;
        let tqp = tenant.create_qp(Transport::Rc, &t_scq, &t_rcq).await;
        let pqp = peer.create_qp(Transport::Rc, &p_scq, &p_rcq).await;
        connect_rc_pair(&tqp, &pqp).await.unwrap();

        let buf = tenant.alloc(1 << 20, 7);
        let mr = tenant.reg_mr(buf, Access::all()).await;
        let remote = peer.alloc(1 << 20, 0);
        let rmr = peer.reg_mr(remote, Access::all()).await;

        // 1. Firewall: the kernel denies the read before the NIC sees it.
        let denied = tqp
            .post_send(SendWqe::read(
                WrId(1),
                Sge {
                    addr: buf.addr,
                    len: 4096,
                    lkey: mr.lkey,
                },
                remote.addr,
                rmr.rkey,
            ))
            .await;
        println!("RDMA read attempt: {denied:?}");
        assert_eq!(denied, Err(VerbsError::PolicyDenied("opcode forbidden")));

        // 2. Rate limiting: stream writes, measure achieved bandwidth.
        let t0 = sim.now();
        let n = 100;
        for i in 0..n {
            tqp.post_send(SendWqe::write(
                WrId(10 + i),
                Sge {
                    addr: buf.addr,
                    len: 256 << 10,
                    lkey: mr.lkey,
                },
                remote.addr,
                rmr.rkey,
            ))
            .await
            .unwrap();
        }
        let mut done = 0;
        while done < n {
            done += tqp
                .send_cq()
                .wait_cqes(1, CompletionWait::BusyPoll)
                .await
                .len() as u64;
        }
        let secs = sim.now().since(t0).as_secs_f64();
        let gbps = (n as f64 * (256 << 10) as f64 * 8.0) / secs / 1e9;
        println!("tenant throughput under 10 Gbit/s limit: {gbps:.2} Gbit/s");
        assert!(gbps < 11.0);

        // 3. Freeze: the OS stalls the dataplane; the app's post just waits.
        freezer.freeze(tqp.qpn().0);
        let frozen_at = sim.now();
        let freezer2 = freezer.clone();
        let qpn = tqp.qpn().0;
        let s2 = sim.clone();
        sim.spawn(async move {
            s2.sleep(SimDuration::from_us(500)).await;
            freezer2.unfreeze(qpn);
        });
        tqp.post_send(SendWqe::write(
            WrId(999),
            Sge {
                addr: buf.addr,
                len: 64,
                lkey: mr.lkey,
            },
            remote.addr,
            rmr.rkey,
        ))
        .await
        .unwrap();
        let stalled = sim.now().since(frozen_at);
        println!("frozen post stalled for {stalled} before the OS released it");
        assert!(stalled >= SimDuration::from_us(500));
    });
    println!("all policy demonstrations passed");
}
