//! Quickstart: bring up a two-node fabric, connect a CoRD client to a
//! bypass server, and move real bytes — the smallest end-to-end CoRD
//! program.
//!
//! Run with: `cargo run --release --example quickstart`

use cord_core::prelude::*;

fn main() {
    // A simulated instance of the paper's system L: two nodes, back-to-back
    // 100 Gbit/s, ConnectX-6-class NICs.
    let fabric = Fabric::builder(system_l()).build();

    // The client routes every data-plane verb through the kernel (CoRD);
    // the server uses classical kernel bypass. Endpoints choose freely.
    let client = fabric.new_context(0, Dataplane::Cord);
    let server = fabric.new_context(1, Dataplane::Bypass);

    let elapsed = fabric.block_on(async move {
        // Control plane (identical under both dataplanes): CQs, QPs, MRs.
        let c_scq = client.create_cq(64).await;
        let c_rcq = client.create_cq(64).await;
        let s_scq = server.create_cq(64).await;
        let s_rcq = server.create_cq(64).await;
        let cqp = client.create_qp(Transport::Rc, &c_scq, &c_rcq).await;
        let sqp = server.create_qp(Transport::Rc, &s_scq, &s_rcq).await;
        connect_rc_pair(&cqp, &sqp).await.unwrap();

        let msg = b"hello through the kernel!";
        let src = client.alloc_from(msg);
        let dst = server.alloc(64, 0);
        let src_mr = client.reg_mr(src, Access::all()).await;
        let dst_mr = server.reg_mr(dst, Access::all()).await;

        // Server posts a receive; client sends. Under CoRD, the post_send
        // below is a system call into the kernel driver — which is exactly
        // the point: the OS sees (and could police) this operation.
        sqp.post_recv(RecvWqe::new(
            WrId(1),
            Sge {
                addr: dst.addr,
                len: dst.len,
                lkey: dst_mr.lkey,
            },
        ))
        .await
        .unwrap();

        let t0 = client.core().sim().now();
        cqp.post_send(SendWqe::send(
            WrId(2),
            Sge {
                addr: src.addr,
                len: msg.len(),
                lkey: src_mr.lkey,
            },
        ))
        .await
        .unwrap();

        let cqe = sqp.recv_cq().wait_one().await;
        let elapsed = client.core().sim().now().since(t0);
        assert_eq!(cqe.status, CqeStatus::Success);
        let got = server.mem().read(dst.addr, msg.len()).unwrap();
        assert_eq!(&got[..], msg);
        println!("server received: {:?}", String::from_utf8_lossy(&got));
        elapsed
    });

    println!("one-way delivery took {elapsed} of virtual time");
    println!("(the client's post_send went through the CoRD kernel driver)");
}
