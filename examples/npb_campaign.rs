//! A miniature Fig. 6 campaign: run a subset of the NPB suite at small
//! scale over all three transports and print relative runtimes.
//! (For the full 32-rank class-A campaign, use
//! `cargo run --release -p cord-bench --bin fig6`.)
//!
//! Run with: `cargo run --release --example npb_campaign`

use cord_core::prelude::*;
use cord_mpi::MpiTransport;
use cord_npb::{run_benchmark, Bench, Class};

fn main() {
    let ranks = 8;
    println!("NPB mini-campaign: class S, {ranks} ranks, system A");
    println!(
        "{:>4} {:>12} {:>10} {:>10}",
        "", "RDMA µs", "CoRD rel", "IPoIB rel"
    );
    for bench in [Bench::Is, Bench::Ep, Bench::Cg, Bench::Sp] {
        let run = |t| run_benchmark(system_a(), bench, Class::S, ranks, t, 11);
        let rdma = run(MpiTransport::Verbs(Dataplane::Bypass));
        let cord = run(MpiTransport::Verbs(Dataplane::Cord));
        let ipoib = run(MpiTransport::Ipoib);
        println!(
            "{:>4} {:>12.0} {:>10.3} {:>10.3}",
            bench.label(),
            rdma.runtime_us,
            cord.runtime_us / rdma.runtime_us,
            ipoib.runtime_us / rdma.runtime_us,
        );
    }
    println!("\nCoRD tracks kernel-bypass RDMA; IPoIB pays for the full network stack.");
}
