//! Root facade crate: re-exports the whole CoRD workspace for the examples
//! and integration tests. See `cord-core` for the primary API.
pub use cord_chaos as chaos;
pub use cord_core as core;
pub use cord_hw as hw;
pub use cord_kern as kern;
pub use cord_mpi as mpi;
pub use cord_net as net;
pub use cord_nic as nic;
pub use cord_npb as npb;
pub use cord_perftest as perftest;
pub use cord_sim as sim;
pub use cord_verbs as verbs;
pub use cord_workload as workload;
