//! # cord-mpi — a minimal MPI over the simulated fabric
//!
//! The substrate for the paper's NPB evaluation (Fig. 6): tagged blocking
//! and nonblocking point-to-point (eager copy-in/copy-out below 2 KiB,
//! zero-copy RDMA-write rendezvous above), the collectives the NPB kernels
//! need, and three interchangeable transports:
//!
//! * `MpiTransport::Verbs(Dataplane::Bypass)` — classical RDMA,
//! * `MpiTransport::Verbs(Dataplane::Cord)` — the converged dataplane,
//! * `MpiTransport::Ipoib` — sockets over the kernel network stack.
//!
//! Shared-memory communication is deliberately absent: the paper bars the
//! MPI library from using it "to amplify the network effects" (§5), so
//! same-node ranks talk through the NIC loopback exactly as the paper's
//! runs did.

#![deny(missing_docs)]

pub mod collectives;
pub mod rank;
pub mod wire;

pub use collectives::{AllreduceAlgo, ReduceOp};
pub use rank::{create_world, Comm, MpiTransport, EAGER_MAX};
