//! Per-rank MPI machinery: endpoints, tag matching, progress engine,
//! eager and rendezvous point-to-point paths.
//!
//! ## Protocol (verbs transports)
//! * **Eager** (≤ [`EAGER_MAX`] B): the sender copies the payload into a
//!   per-peer slot (the real eager-copy cost), sends it with a 28-byte
//!   header, and reuses the slot once the RC ACK comes back — slots double
//!   as flow-control credits, so receive rings can never overrun.
//! * **Rendezvous** (larger): RTS → CTS (carrying the landing rkey) →
//!   RDMA-write-with-immediate. Zero copies on either side; the immediate
//!   value routes the completion back to the matched receive.
//!
//! ## Progress
//! Each rank runs a progress task that owns the rank's single CQ (send and
//! receive completions alike), performs tag matching, returns credits, and
//! hands rendezvous control to the app-side tasks. Control replies emitted
//! from progress context (CTS) go through an outbox task so the progress
//! loop itself never blocks on flow control.

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use bytes::Bytes;
use cord_core::prelude::*;
use cord_kern::Socket;
use cord_sim::sync::{channel, Notify, Receiver, Sender};
use cord_verbs::Mr;

use crate::wire::{split_frame, Header, Kind, HDR_LEN};

/// Largest eager payload; bigger messages rendezvous.
pub const EAGER_MAX: usize = 2048;
/// Eager slot size (header + payload).
const SLOT: usize = HDR_LEN + EAGER_MAX;
/// TX slots (= flow-control credits) per peer.
const TX_SLOTS: usize = 8;
/// Preposted RX buffers per peer (> TX_SLOTS for ack/repost slack).
const RX_SLOTS: usize = 16;

/// Which fabric the MPI world runs over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MpiTransport {
    /// RDMA verbs with the given dataplane (bypass = the paper's "RDMA",
    /// CoRD = the paper's contribution).
    Verbs(Dataplane),
    /// IP-over-InfiniBand sockets (the paper's kernel-stack competitor).
    Ipoib,
}

impl std::fmt::Display for MpiTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpiTransport::Verbs(Dataplane::Bypass) => write!(f, "RDMA"),
            MpiTransport::Verbs(Dataplane::Cord) => write!(f, "CoRD"),
            MpiTransport::Ipoib => write!(f, "IPoIB"),
        }
    }
}

/// A rendezvous landing zone: the matched receive plus its target region.
type RndvTarget = (Rc<RecvOp>, MemRegion);

/// A matched-receive completion slot.
struct RecvOp {
    src: usize,
    tag: u32,
    done: RefCell<Option<Bytes>>,
    notify: Notify,
}

impl RecvOp {
    fn new(src: usize, tag: u32) -> Rc<Self> {
        Rc::new(RecvOp {
            src,
            tag,
            done: RefCell::new(None),
            notify: Notify::new(),
        })
    }

    fn complete(&self, data: Bytes) {
        *self.done.borrow_mut() = Some(data);
        self.notify.notify_one();
    }
}

/// Sender-side rendezvous state.
struct SendOp {
    cts: RefCell<Option<Header>>,
    cts_notify: Notify,
    done_notify: Notify,
    done: Cell<bool>,
}

#[derive(Default)]
struct Matching {
    posted: Vec<Rc<RecvOp>>,
    unexpected: VecDeque<(usize, u32, Bytes)>,
    /// RTS that arrived before the matching receive was posted.
    pending_rts: Vec<(usize, Header)>,
}

impl Matching {
    fn take_posted(&mut self, src: usize, tag: u32) -> Option<Rc<RecvOp>> {
        let idx = self
            .posted
            .iter()
            .position(|op| op.src == src && op.tag == tag)?;
        Some(self.posted.swap_remove(idx))
    }

    fn take_unexpected(&mut self, src: usize, tag: u32) -> Option<Bytes> {
        let idx = self
            .unexpected
            .iter()
            .position(|(s, t, _)| *s == src && *t == tag)?;
        self.unexpected.remove(idx).map(|(_, _, b)| b)
    }

    fn take_pending_rts(&mut self, src: usize, tag: u32) -> Option<Header> {
        let idx = self
            .pending_rts
            .iter()
            .position(|(s, h)| *s == src && h.tag == tag)?;
        Some(self.pending_rts.remove(idx).1)
    }
}

/// Per-peer eager TX slots.
struct PeerTx {
    slots: Vec<MemRegion>,
    free: RefCell<Vec<usize>>,
    freed: Notify,
}

/// A lazily grown, registered buffer (rendezvous landing / source zones).
struct BigBuf {
    region: MemRegion,
    mr: Mr,
}

struct VerbsRank {
    ctx: Context,
    cq: UserCq,
    /// One RC QP per peer (index = peer rank; self slot unused).
    qps: Vec<Option<UserQp>>,
    arena_mr: Mr,
    tx: Vec<Option<PeerTx>>,
    /// RX buffer regions, indexed [peer][slot].
    rx_bufs: Vec<Vec<MemRegion>>,
    /// Rendezvous big buffers per peer.
    rndv_tx: RefCell<Vec<Option<BigBuf>>>,
    rndv_rx: RefCell<Vec<Option<BigBuf>>>,
    /// (src, msg_id) → matched receive awaiting write-with-imm.
    rndv_inflight: RefCell<HashMap<(usize, u32), RndvTarget>>,
    /// msg_id → sender-side rendezvous state.
    send_ops: RefCell<HashMap<u32, Rc<SendOp>>>,
    /// CTS outbox drained by a dedicated task (progress must not block).
    outbox: Sender<(usize, Header)>,
}

struct IpoibRank {
    socket: Socket,
    /// Rank → socket address.
    addrs: Vec<cord_kern::SockAddr>,
}

pub(crate) struct RankInner {
    pub rank: usize,
    pub size: usize,
    pub core: Core,
    matching: RefCell<Matching>,
    next_msg: Cell<u32>,
    verbs: Option<VerbsRank>,
    ipoib: Option<IpoibRank>,
    /// Bytes sent / received / messages sent (for workload accounting).
    pub bytes_sent: Cell<u64>,
    pub msgs_sent: Cell<u64>,
}

/// An MPI communicator handle for one rank. Cheap to clone.
#[derive(Clone)]
pub struct Comm {
    pub(crate) inner: Rc<RankInner>,
    sim: Sim,
}

/// wr_id tags for the shared CQ.
const WR_EAGER: u64 = 1 << 62;
const WR_RNDV: u64 = 2 << 62;
const WR_RX: u64 = 3 << 62;
const WR_MASK: u64 = 3 << 62;

fn wr_eager(peer: usize, slot: usize) -> WrId {
    WrId(WR_EAGER | ((peer as u64) << 16) | slot as u64)
}

fn wr_rx(peer: usize, slot: usize) -> WrId {
    WrId(WR_RX | ((peer as u64) << 16) | slot as u64)
}

fn wr_rndv(msg_id: u32) -> WrId {
    WrId(WR_RNDV | msg_id as u64)
}

impl Comm {
    /// This rank's index in `0..size()`.
    pub fn rank(&self) -> usize {
        self.inner.rank
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.inner.size
    }

    /// The CPU core this rank's library code is billed on.
    pub fn core(&self) -> &Core {
        &self.inner.core
    }

    /// The `(node, qpn)` pair of every peer QP this rank owns, in peer-rank
    /// order — the hook the workload runner uses to arm congestion control
    /// and retransmission on collective traffic without reaching into the
    /// world's internals. Empty over IPoIB (sockets have no QPs to arm).
    pub fn endpoints(&self) -> Vec<(usize, cord_verbs::QpNum)> {
        let Some(v) = self.inner.verbs.as_ref() else {
            return Vec::new();
        };
        let node = v.ctx.node();
        v.qps.iter().flatten().map(|qp| (node, qp.qpn())).collect()
    }

    /// Model a compute phase of `ns` nanoseconds on this rank's core.
    pub async fn compute_ns(&self, ns: f64) {
        self.inner.core.compute_ns(ns).await;
    }

    /// (bytes_sent, msgs_sent) workload counters.
    pub fn traffic(&self) -> (u64, u64) {
        (self.inner.bytes_sent.get(), self.inner.msgs_sent.get())
    }

    /// Blocking tagged send.
    pub async fn send(&self, dst: usize, tag: u32, data: &[u8]) {
        assert!(dst < self.inner.size && dst != self.inner.rank);
        self.inner
            .bytes_sent
            .set(self.inner.bytes_sent.get() + data.len() as u64);
        self.inner.msgs_sent.set(self.inner.msgs_sent.get() + 1);
        if self.inner.ipoib.is_some() {
            self.send_ipoib(dst, tag, data).await;
        } else if data.len() <= EAGER_MAX {
            self.send_eager(dst, tag, data).await;
        } else {
            self.send_rndv(dst, tag, data).await;
        }
    }

    /// Blocking tagged receive (exact source and tag).
    pub async fn recv(&self, src: usize, tag: u32) -> Bytes {
        assert!(src < self.inner.size && src != self.inner.rank);
        // 1. Unexpected-queue hit.
        let hit = self.inner.matching.borrow_mut().take_unexpected(src, tag);
        if let Some(b) = hit {
            return b;
        }
        // 2. A rendezvous already announced (verbs only).
        let rts = self.inner.matching.borrow_mut().take_pending_rts(src, tag);
        let op = RecvOp::new(src, tag);
        if let Some(hdr) = rts {
            self.start_rndv_recv(src, hdr, Rc::clone(&op));
        } else {
            self.inner.matching.borrow_mut().posted.push(Rc::clone(&op));
        }
        loop {
            let done = op.done.borrow_mut().take();
            if let Some(b) = done {
                return b;
            }
            op.notify.notified().await;
        }
    }

    /// Nonblocking send: runs in a spawned task.
    pub fn isend(&self, dst: usize, tag: u32, data: Vec<u8>) -> cord_sim::JoinHandle<()> {
        let me = self.clone();
        self.sim.spawn(async move {
            me.send(dst, tag, &data).await;
        })
    }

    /// Nonblocking receive: runs in a spawned task.
    pub fn irecv(&self, src: usize, tag: u32) -> cord_sim::JoinHandle<Bytes> {
        let me = self.clone();
        self.sim.spawn(async move { me.recv(src, tag).await })
    }

    /// Simultaneous send+receive with the (possibly distinct) partners.
    pub async fn sendrecv(
        &self,
        dst: usize,
        stag: u32,
        data: &[u8],
        src: usize,
        rtag: u32,
    ) -> Bytes {
        let send = self.isend(dst, stag, data.to_vec());
        let out = self.recv(src, rtag).await;
        send.await;
        out
    }

    // ------------------------------------------------------------------
    // Eager path (verbs)
    // ------------------------------------------------------------------

    async fn acquire_slot(&self, peer: usize) -> usize {
        let v = self.inner.verbs.as_ref().expect("verbs transport");
        let tx = v.tx[peer].as_ref().expect("peer endpoint");
        loop {
            let got = tx.free.borrow_mut().pop();
            match got {
                Some(i) => return i,
                None => tx.freed.notified().await,
            }
        }
    }

    async fn post_frame(&self, peer: usize, slot: usize, hdr: Header, payload: &[u8]) {
        let v = self.inner.verbs.as_ref().expect("verbs transport");
        let tx = v.tx[peer].as_ref().expect("peer endpoint");
        let region = tx.slots[slot];
        let frame_len = HDR_LEN + payload.len();
        let mem = v.ctx.mem();
        mem.write(region.addr, &hdr.encode())
            .expect("slot in arena");
        if !payload.is_empty() {
            mem.write(region.addr + HDR_LEN as u64, payload)
                .expect("slot in arena");
        }
        let qp = v.qps[peer].as_ref().expect("peer endpoint");
        qp.post_send(SendWqe::send(
            wr_eager(peer, slot),
            Sge {
                addr: region.addr,
                len: frame_len,
                lkey: v.arena_mr.lkey,
            },
        ))
        .await
        .expect("eager post");
    }

    async fn send_eager(&self, dst: usize, tag: u32, data: &[u8]) {
        let msg_id = self.next_msg();
        let slot = self.acquire_slot(dst).await;
        // The defining eager cost: copy into the bounce buffer.
        self.inner.core.memcpy(data.len()).await;
        self.post_frame(dst, slot, Header::eager(tag, msg_id, data.len()), data)
            .await;
    }

    // ------------------------------------------------------------------
    // Rendezvous path (verbs)
    // ------------------------------------------------------------------

    async fn send_rndv(&self, dst: usize, tag: u32, data: &[u8]) {
        let v = self.inner.verbs.as_ref().expect("verbs transport");
        let msg_id = self.next_msg();
        // Stage the payload in the registered source zone. This models the
        // application's own (pre-registered) buffer, so no copy is billed.
        let src_buf = ensure_big(&v.ctx, &v.rndv_tx, dst, data.len()).await;
        v.ctx.mem().write(src_buf.addr, data).expect("rndv tx zone");

        let op = Rc::new(SendOp {
            cts: RefCell::new(None),
            cts_notify: Notify::new(),
            done_notify: Notify::new(),
            done: Cell::new(false),
        });
        v.send_ops.borrow_mut().insert(msg_id, Rc::clone(&op));

        // RTS through the eager path.
        let slot = self.acquire_slot(dst).await;
        self.post_frame(dst, slot, Header::rts(tag, msg_id, data.len()), &[])
            .await;

        // Wait for CTS.
        let cts = loop {
            let got = op.cts.borrow_mut().take();
            if let Some(h) = got {
                break h;
            }
            op.cts_notify.notified().await;
        };

        // RDMA-write the payload with the msg id as immediate.
        let qp = v.qps[dst].as_ref().expect("peer endpoint");
        qp.post_send(
            SendWqe::write(
                wr_rndv(msg_id),
                Sge {
                    addr: src_buf.addr,
                    len: data.len(),
                    lkey: big_lkey(&v.rndv_tx, dst),
                },
                cts.raddr,
                cord_verbs::RKey(cts.rkey),
            )
            .with_imm(msg_id),
        )
        .await
        .expect("rndv write");

        while !op.done.get() {
            op.done_notify.notified().await;
        }
        v.send_ops.borrow_mut().remove(&msg_id);
    }

    /// Receiver side: allocate the landing zone and answer with CTS.
    fn start_rndv_recv(&self, src: usize, hdr: Header, op: Rc<RecvOp>) {
        let v = self.inner.verbs.as_ref().expect("verbs transport");
        let len = hdr.len as usize;
        // Growing the zone cannot await here (called from progress paths),
        // so grow synchronously through the MR table.
        let buf = ensure_big_sync(&v.ctx, &v.rndv_rx, src, len);
        let rkey = v.rndv_rx.borrow()[src].as_ref().unwrap().mr.rkey;
        v.rndv_inflight.borrow_mut().insert(
            (src, hdr.msg_id),
            (
                op,
                MemRegion {
                    addr: buf.addr,
                    len,
                },
            ),
        );
        let cts = Header::cts(hdr.msg_id, len, buf.addr, rkey.0);
        v.outbox.try_send((src, cts)).expect("outbox alive");
    }

    fn next_msg(&self) -> u32 {
        let id = self.inner.next_msg.get();
        self.inner.next_msg.set(id.wrapping_add(1));
        id
    }

    // ------------------------------------------------------------------
    // IPoIB path
    // ------------------------------------------------------------------

    async fn send_ipoib(&self, dst: usize, tag: u32, data: &[u8]) {
        let ip = self.inner.ipoib.as_ref().expect("ipoib transport");
        let msg_id = self.next_msg();
        let hdr = Header::eager(tag, msg_id, data.len());
        let mut frame = Vec::with_capacity(HDR_LEN + data.len());
        frame.extend_from_slice(&hdr.encode());
        frame.extend_from_slice(data);
        ip.socket
            .send_to(&self.inner.core, ip.addrs[dst], &frame)
            .await
            .expect("route installed");
    }
}

/// Get (growing if needed) the per-peer big buffer; async variant used from
/// app context.
async fn ensure_big(
    ctx: &Context,
    store: &RefCell<Vec<Option<BigBuf>>>,
    peer: usize,
    len: usize,
) -> MemRegion {
    let needs = {
        let s = store.borrow();
        match &s[peer] {
            Some(b) if b.region.len >= len => return b.region,
            _ => true,
        }
    };
    debug_assert!(needs);
    let region = ctx.alloc(len.next_power_of_two(), 0);
    let mr = ctx.reg_mr(region, Access::all()).await;
    store.borrow_mut()[peer] = Some(BigBuf { region, mr });
    region
}

/// Synchronous variant for progress context (registers without billing an
/// ioctl — amortized: zones persist across iterations).
fn ensure_big_sync(
    ctx: &Context,
    store: &RefCell<Vec<Option<BigBuf>>>,
    peer: usize,
    len: usize,
) -> MemRegion {
    {
        let s = store.borrow();
        if let Some(b) = &s[peer] {
            if b.region.len >= len {
                return b.region;
            }
        }
    }
    let region = ctx.alloc(len.next_power_of_two(), 0);
    let mr = ctx
        .nic()
        .mr_table()
        .register(ctx.mem().clone(), region, Access::all());
    store.borrow_mut()[peer] = Some(BigBuf { region, mr });
    region
}

fn big_lkey(store: &RefCell<Vec<Option<BigBuf>>>, peer: usize) -> cord_verbs::LKey {
    store.borrow()[peer].as_ref().expect("zone exists").mr.lkey
}

// ----------------------------------------------------------------------
// World construction and progress tasks
// ----------------------------------------------------------------------

/// Create an MPI world of `nranks` over `fabric` (block rank→node layout,
/// like `mpirun --map-by node` over two hosts).
pub async fn create_world(fabric: &Fabric, nranks: usize, transport: MpiTransport) -> Vec<Comm> {
    assert!(nranks >= 2);
    match transport {
        MpiTransport::Verbs(mode) => create_verbs_world(fabric, nranks, mode).await,
        MpiTransport::Ipoib => create_ipoib_world(fabric, nranks).await,
    }
}

fn node_of(rank: usize, nranks: usize, nodes: usize) -> usize {
    rank * nodes / nranks
}

async fn create_verbs_world(fabric: &Fabric, nranks: usize, mode: Dataplane) -> Vec<Comm> {
    let nodes = fabric.nodes();
    let sim = fabric.sim().clone();
    // Build contexts + arenas.
    let mut comms: Vec<Comm> = Vec::with_capacity(nranks);
    let mut raw: Vec<(Context, UserCq, MemRegion, Mr)> = Vec::with_capacity(nranks);
    for r in 0..nranks {
        let ctx = fabric.new_context(node_of(r, nranks, nodes), mode);
        let cq = ctx.create_cq(8192).await;
        // Allocate slot-by-slot so each eager slot is its own guest-memory
        // chunk: copy-on-write then clones at most one SLOT when in-flight
        // fragments pin a buffer, not the rank's whole arena. Allocations
        // are address-contiguous, so the spanning region (and the MR over
        // it) is identical to a single big alloc.
        let nslots = (nranks - 1).max(1) * (TX_SLOTS + RX_SLOTS);
        let first = ctx.alloc(SLOT, 0);
        for _ in 1..nslots {
            ctx.alloc(SLOT, 0);
        }
        let arena = MemRegion {
            addr: first.addr,
            len: nslots * SLOT,
        };
        let mr = ctx.reg_mr(arena, Access::all()).await;
        raw.push((ctx, cq, arena, mr));
    }

    // Create the QP mesh (setup uses the control plane directly; connection
    // establishment is not part of any measured phase).
    let mut qp_ids = vec![vec![None; nranks]; nranks];
    for a in 0..nranks {
        for b in (a + 1)..nranks {
            let qa = raw[a].0.nic().create_qp(
                Transport::Rc,
                raw[a].1.raw().clone(),
                raw[a].1.raw().clone(),
            );
            let qb = raw[b].0.nic().create_qp(
                Transport::Rc,
                raw[b].1.raw().clone(),
                raw[b].1.raw().clone(),
            );
            raw[a]
                .0
                .nic()
                .connect(qa, Some((raw[b].0.node(), qb)))
                .expect("fresh QP");
            raw[b]
                .0
                .nic()
                .connect(qb, Some((raw[a].0.node(), qa)))
                .expect("fresh QP");
            qp_ids[a][b] = Some(qa);
            qp_ids[b][a] = Some(qb);
        }
    }

    for (r, (ctx, cq, arena, mr)) in raw.into_iter().enumerate() {
        let mut qps: Vec<Option<UserQp>> = Vec::with_capacity(nranks);
        let mut tx: Vec<Option<PeerTx>> = Vec::with_capacity(nranks);
        let mut rx_bufs: Vec<Vec<MemRegion>> = Vec::with_capacity(nranks);
        let mut peer_idx = 0usize;
        for (p, qp_id) in qp_ids[r].iter().enumerate() {
            if p == r {
                qps.push(None);
                tx.push(None);
                rx_bufs.push(Vec::new());
                continue;
            }
            let qpn = (*qp_id).expect("mesh built");
            // Wrap the raw QP in the user API (billing per dataplane).
            let uqp = cord_verbs::UserQp::from_raw(
                ctx.clone(),
                qpn,
                Transport::Rc,
                UserCq::from_raw(ctx.clone(), cq.raw().clone()),
                UserCq::from_raw(ctx.clone(), cq.raw().clone()),
            );
            // Carve the arena: TX then RX slots for this peer.
            let base = peer_idx * (TX_SLOTS + RX_SLOTS) * SLOT;
            let slots: Vec<MemRegion> = (0..TX_SLOTS)
                .map(|i| arena.slice(base + i * SLOT, SLOT))
                .collect();
            let bufs: Vec<MemRegion> = (0..RX_SLOTS)
                .map(|i| arena.slice(base + (TX_SLOTS + i) * SLOT, SLOT))
                .collect();
            // Prepost the receive ring (setup path: direct engine call).
            for (i, b) in bufs.iter().enumerate() {
                ctx.nic()
                    .post_recv(
                        qpn,
                        RecvWqe::new(
                            wr_rx(p, i),
                            Sge {
                                addr: b.addr,
                                len: SLOT,
                                lkey: mr.lkey,
                            },
                        ),
                    )
                    .expect("prepost ring");
            }
            qps.push(Some(uqp));
            tx.push(Some(PeerTx {
                slots,
                free: RefCell::new((0..TX_SLOTS).collect()),
                freed: Notify::new(),
            }));
            rx_bufs.push(bufs);
            peer_idx += 1;
        }

        let (outbox_tx, outbox_rx) = channel();
        let verbs = VerbsRank {
            ctx,
            cq,
            qps,
            arena_mr: mr,
            tx,
            rx_bufs,
            rndv_tx: RefCell::new((0..nranks).map(|_| None).collect()),
            rndv_rx: RefCell::new((0..nranks).map(|_| None).collect()),
            rndv_inflight: RefCell::new(HashMap::new()),
            send_ops: RefCell::new(HashMap::new()),
            outbox: outbox_tx,
        };
        let inner = Rc::new(RankInner {
            rank: r,
            size: nranks,
            core: verbs.ctx.core().clone(),
            matching: RefCell::new(Matching::default()),
            next_msg: Cell::new(1),
            verbs: Some(verbs),
            ipoib: None,
            bytes_sent: Cell::new(0),
            msgs_sent: Cell::new(0),
        });
        let comm = Comm {
            inner: Rc::clone(&inner),
            sim: sim.clone(),
        };
        spawn_verbs_progress(&sim, Rc::clone(&inner));
        spawn_outbox(&sim, comm.clone(), outbox_rx);
        comms.push(comm);
    }
    comms
}

async fn create_ipoib_world(fabric: &Fabric, nranks: usize) -> Vec<Comm> {
    assert!(fabric.has_ipoib(), "build the fabric with .with_ipoib()");
    let nodes = fabric.nodes();
    let sim = fabric.sim().clone();
    let sockets: Vec<Socket> = (0..nranks)
        .map(|r| fabric.ipoib(node_of(r, nranks, nodes)).socket())
        .collect();
    let addrs: Vec<cord_kern::SockAddr> = sockets.iter().map(|s| s.addr()).collect();
    let mut comms = Vec::with_capacity(nranks);
    for (r, socket) in sockets.into_iter().enumerate() {
        let core = fabric.new_core(node_of(r, nranks, nodes));
        let inner = Rc::new(RankInner {
            rank: r,
            size: nranks,
            core,
            matching: RefCell::new(Matching::default()),
            next_msg: Cell::new(1),
            verbs: None,
            ipoib: Some(IpoibRank {
                socket,
                addrs: addrs.clone(),
            }),
            bytes_sent: Cell::new(0),
            msgs_sent: Cell::new(0),
        });
        let comm = Comm {
            inner: Rc::clone(&inner),
            sim: sim.clone(),
        };
        spawn_ipoib_progress(&sim, Rc::clone(&inner), &addrs);
        comms.push(comm);
    }
    comms
}

/// Deliver an eager payload into the matching engine.
fn deliver(inner: &Rc<RankInner>, src: usize, tag: u32, payload: Bytes) {
    let op = inner.matching.borrow_mut().take_posted(src, tag);
    match op {
        Some(op) => op.complete(payload),
        None => inner
            .matching
            .borrow_mut()
            .unexpected
            .push_back((src, tag, payload)),
    }
}

fn spawn_verbs_progress(sim: &Sim, inner: Rc<RankInner>) {
    let sim2 = sim.clone();
    sim.spawn(async move {
        let cq = inner.verbs.as_ref().expect("verbs rank").cq.clone();
        loop {
            let mut cqes = cq.wait_cqes(1, CompletionWait::BusyPoll).await;
            cqes.extend(cq.poll(64).await);
            for cqe in cqes {
                handle_cqe(&sim2, &inner, cqe).await;
            }
        }
    });
}

async fn handle_cqe(_sim: &Sim, inner: &Rc<RankInner>, cqe: Cqe) {
    let v = inner.verbs.as_ref().expect("verbs rank");
    if !cqe.status.is_ok() {
        panic!(
            "rank {}: unexpected completion error {:?} (wr {:x})",
            inner.rank, cqe.status, cqe.wr_id.0
        );
    }
    match cqe.wr_id.0 & WR_MASK {
        WR_EAGER => {
            // Eager/control send acked: slot becomes free again.
            let peer = ((cqe.wr_id.0 >> 16) & 0xFFFF_FFFF) as usize;
            let slot = (cqe.wr_id.0 & 0xFFFF) as usize;
            let tx = v.tx[peer].as_ref().expect("peer endpoint");
            tx.free.borrow_mut().push(slot);
            tx.freed.notify_one();
        }
        WR_RNDV => {
            // Our rendezvous write completed (acked): wake the sender.
            let msg_id = (cqe.wr_id.0 & 0xFFFF_FFFF) as u32;
            if let Some(op) = v.send_ops.borrow().get(&msg_id) {
                op.done.set(true);
                op.done_notify.notify_one();
            }
        }
        WR_RX => {
            let peer = ((cqe.wr_id.0 >> 16) & 0xFFFF_FFFF) as usize;
            let slot = (cqe.wr_id.0 & 0xFFFF) as usize;
            match cqe.opcode {
                CqeOpcode::Recv => {
                    let buf = v.rx_bufs[peer][slot];
                    let frame = v
                        .ctx
                        .mem()
                        .read(buf.addr, cqe.byte_len)
                        .expect("rx ring")
                        .to_bytes();
                    // Repost before processing so the ring never starves.
                    repost_rx(v, peer, slot);
                    if let Some((hdr, payload)) = split_frame(&frame) {
                        // Consuming a message costs a copy out of the ring.
                        if hdr.kind == Kind::Eager {
                            inner.core.memcpy(payload.len()).await;
                        }
                        handle_frame(inner, peer, hdr, payload);
                    }
                }
                CqeOpcode::RecvWithImm => {
                    // Rendezvous payload landed.
                    repost_rx(v, peer, slot);
                    let key = (peer, cqe.imm.expect("write-with-imm"));
                    let entry = v.rndv_inflight.borrow_mut().remove(&key);
                    if let Some((op, region)) = entry {
                        let data = v
                            .ctx
                            .mem()
                            .read(region.addr, region.len)
                            .expect("landing zone")
                            .to_bytes();
                        op.complete(data);
                    }
                }
                _ => unreachable!("rx-tagged wr with send opcode"),
            }
        }
        _ => unreachable!("unknown wr tag"),
    }
}

fn handle_frame(inner: &Rc<RankInner>, src: usize, hdr: Header, payload: Bytes) {
    let v = inner.verbs.as_ref().expect("verbs rank");
    match hdr.kind {
        Kind::Eager => deliver(inner, src, hdr.tag, payload),
        Kind::Rts => {
            let op = inner.matching.borrow_mut().take_posted(src, hdr.tag);
            match op {
                Some(op) => {
                    let comm = Comm {
                        inner: Rc::clone(inner),
                        sim: inner.core.sim().clone(),
                    };
                    comm.start_rndv_recv(src, hdr, op);
                }
                None => inner.matching.borrow_mut().pending_rts.push((src, hdr)),
            }
        }
        Kind::Cts => {
            let ops = v.send_ops.borrow();
            if let Some(op) = ops.get(&hdr.msg_id) {
                *op.cts.borrow_mut() = Some(hdr);
                op.cts_notify.notify_one();
            }
        }
    }
}

fn repost_rx(v: &VerbsRank, peer: usize, slot: usize) {
    let buf = v.rx_bufs[peer][slot];
    let qp = v.qps[peer].as_ref().expect("peer endpoint");
    v.ctx
        .nic()
        .post_recv(
            qp.qpn(),
            RecvWqe::new(
                wr_rx(peer, slot),
                Sge {
                    addr: buf.addr,
                    len: SLOT,
                    lkey: v.arena_mr.lkey,
                },
            ),
        )
        .expect("repost ring");
}

fn spawn_outbox(sim: &Sim, comm: Comm, rx: Receiver<(usize, Header)>) {
    sim.spawn(async move {
        while let Ok((peer, hdr)) = rx.recv().await {
            let slot = comm.acquire_slot(peer).await;
            comm.post_frame(peer, slot, hdr, &[]).await;
        }
    });
}

fn spawn_ipoib_progress(sim: &Sim, inner: Rc<RankInner>, addrs: &[cord_kern::SockAddr]) {
    let addr_to_rank: HashMap<cord_kern::SockAddr, usize> =
        addrs.iter().enumerate().map(|(r, a)| (*a, r)).collect();
    sim.spawn(async move {
        let ip = inner.ipoib.as_ref().expect("ipoib rank");
        loop {
            let (from, frame) = ip.socket.recv(&inner.core).await;
            let Some(src) = addr_to_rank.get(&from).copied() else {
                continue;
            };
            if let Some((hdr, payload)) = split_frame(&frame) {
                deliver(&inner, src, hdr.tag, payload);
            }
        }
    });
}
