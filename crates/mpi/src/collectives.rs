//! Collective operations, built on tagged point-to-point.
//!
//! Algorithms are the textbook ones MPICH/Open MPI default to at these
//! scales: dissemination barrier, binomial broadcast, recursive-doubling
//! allreduce (with a reduce+bcast fallback for non-powers of two), ring
//! allgather, and pairwise-exchange all-to-all.

use bytes::Bytes;

use crate::rank::Comm;

/// Reduction operators over f64 vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    Sum,
    Max,
    Min,
}

impl ReduceOp {
    fn apply(self, acc: &mut [f64], other: &[f64]) {
        assert_eq!(acc.len(), other.len());
        for (a, b) in acc.iter_mut().zip(other) {
            match self {
                ReduceOp::Sum => *a += b,
                ReduceOp::Max => *a = a.max(*b),
                ReduceOp::Min => *a = a.min(*b),
            }
        }
    }
}

fn to_bytes(v: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() * 8);
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

fn from_bytes(b: &[u8]) -> Vec<f64> {
    b.chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// Per-element reduction CPU cost, ns (one FLOP + load/store each).
const REDUCE_NS_PER_ELEM: f64 = 0.6;

/// Collective tags live in a reserved namespace above user tags.
const TAG_BASE: u32 = 0xC011_0000;

impl Comm {
    /// Dissemination barrier: ⌈log2 P⌉ rounds.
    pub async fn barrier(&self, epoch: u32) -> () {
        let p = self.size();
        let r = self.rank();
        let mut k = 1usize;
        let mut round = 0u32;
        while k < p {
            let dst = (r + k) % p;
            let src = (r + p - k % p) % p;
            let tag = TAG_BASE.wrapping_add(0x100 + epoch.wrapping_mul(64) + round);
            self.sendrecv(dst, tag, &[], src, tag).await;
            k <<= 1;
            round += 1;
        }
    }

    /// Binomial-tree broadcast from `root`. Every rank returns the data.
    pub async fn bcast(&self, root: usize, epoch: u32, data: Option<&[u8]>) -> Bytes {
        let p = self.size();
        let vr = (self.rank() + p - root) % p; // virtual rank, root = 0
        let tag = TAG_BASE.wrapping_add(0x200).wrapping_add(epoch);
        let mut buf: Option<Bytes> = data.map(Bytes::copy_from_slice);
        if vr == 0 {
            assert!(buf.is_some(), "root must supply data");
        }
        // Receive from the parent.
        if vr != 0 {
            let mut mask = 1usize;
            while mask < p {
                if vr & mask != 0 {
                    let parent = (vr - mask + root) % p;
                    buf = Some(self.recv(parent, tag).await);
                    break;
                }
                mask <<= 1;
            }
        }
        // Forward to children.
        let data = buf.expect("received or root");
        let mut mask = 1usize;
        while mask < p {
            if vr & mask != 0 {
                break;
            }
            mask <<= 1;
        }
        let mut child_mask = mask >> 1;
        let mut sends = Vec::new();
        while child_mask > 0 {
            let child_vr = vr + child_mask;
            if child_vr < p {
                let child = (child_vr + root) % p;
                sends.push(self.isend(child, tag, data.to_vec()));
            }
            child_mask >>= 1;
        }
        for s in sends {
            s.await;
        }
        data
    }

    /// Allreduce over f64 vectors (recursive doubling when P is a power of
    /// two, reduce-to-0 + bcast otherwise).
    pub async fn allreduce(&self, epoch: u32, vals: &[f64], op: ReduceOp) -> Vec<f64> {
        let p = self.size();
        if p.is_power_of_two() {
            self.allreduce_rd(epoch, vals, op).await
        } else {
            let reduced = self.reduce(0, epoch, vals, op).await;
            // Internal bcast epoch lives in its own namespace so it cannot
            // collide with a user bcast of the same epoch.
            let wire = self
                .bcast(
                    0,
                    0x4000 + epoch,
                    reduced.as_ref().map(|v| to_bytes(v)).as_deref(),
                )
                .await;
            from_bytes(&wire)
        }
    }

    async fn allreduce_rd(&self, epoch: u32, vals: &[f64], op: ReduceOp) -> Vec<f64> {
        let p = self.size();
        let r = self.rank();
        let mut acc = vals.to_vec();
        let mut mask = 1usize;
        let mut round = 0u32;
        while mask < p {
            let partner = r ^ mask;
            let tag = TAG_BASE.wrapping_add(0x300 + epoch.wrapping_mul(64) + round);
            let theirs = self
                .sendrecv(partner, tag, &to_bytes(&acc), partner, tag)
                .await;
            let theirs = from_bytes(&theirs);
            // Reduction compute cost.
            self.compute_ns(REDUCE_NS_PER_ELEM * acc.len() as f64).await;
            op.apply(&mut acc, &theirs);
            mask <<= 1;
            round += 1;
        }
        acc
    }

    /// Binomial-tree reduce to `root`; only the root gets `Some`.
    pub async fn reduce(
        &self,
        root: usize,
        epoch: u32,
        vals: &[f64],
        op: ReduceOp,
    ) -> Option<Vec<f64>> {
        let p = self.size();
        let vr = (self.rank() + p - root) % p;
        let tag = TAG_BASE.wrapping_add(0x400).wrapping_add(epoch);
        let mut acc = vals.to_vec();
        let mut mask = 1usize;
        while mask < p {
            if vr & mask != 0 {
                let parent = (vr - mask + root) % p;
                self.send(parent, tag, &to_bytes(&acc)).await;
                return None;
            }
            let child_vr = vr + mask;
            if child_vr < p {
                let child = (child_vr + root) % p;
                let theirs = from_bytes(&self.recv(child, tag).await);
                self.compute_ns(REDUCE_NS_PER_ELEM * acc.len() as f64).await;
                op.apply(&mut acc, &theirs);
            }
            mask <<= 1;
        }
        Some(acc)
    }

    /// Ring allgather: every rank contributes `mine`, all get all chunks.
    pub async fn allgather(&self, epoch: u32, mine: &[u8]) -> Vec<Bytes> {
        let p = self.size();
        let r = self.rank();
        let tag = TAG_BASE.wrapping_add(0x500).wrapping_add(epoch);
        let mut chunks: Vec<Option<Bytes>> = vec![None; p];
        chunks[r] = Some(Bytes::copy_from_slice(mine));
        let right = (r + 1) % p;
        let left = (r + p - 1) % p;
        let mut cursor = r;
        for _ in 0..p - 1 {
            let outgoing = chunks[cursor].clone().expect("have current chunk");
            let incoming = self.sendrecv(right, tag, &outgoing, left, tag).await;
            cursor = (cursor + p - 1) % p;
            chunks[cursor] = Some(incoming);
        }
        chunks
            .into_iter()
            .map(|c| c.expect("ring complete"))
            .collect()
    }

    /// Pairwise-exchange all-to-all with per-destination payloads.
    /// `sends[d]` goes to rank `d`; returns what every rank sent to us.
    pub async fn alltoallv(&self, epoch: u32, sends: Vec<Vec<u8>>) -> Vec<Bytes> {
        let p = self.size();
        let r = self.rank();
        assert_eq!(sends.len(), p);
        let tag = TAG_BASE.wrapping_add(0x600).wrapping_add(epoch);
        let mut recvs: Vec<Option<Bytes>> = vec![None; p];
        recvs[r] = Some(Bytes::from(sends[r].clone()));
        for step in 1..p {
            // Pairwise: talk to (r + step) while receiving from (r - step).
            let dst = (r + step) % p;
            let src = (r + p - step) % p;
            let got = self
                .sendrecv(
                    dst,
                    tag.wrapping_add(step as u32),
                    &sends[dst],
                    src,
                    tag.wrapping_add(step as u32),
                )
                .await;
            recvs[src] = Some(got);
        }
        recvs
            .into_iter()
            .map(|c| c.expect("exchange complete"))
            .collect()
    }
}
