//! Collective operations, built on tagged point-to-point.
//!
//! Algorithms are the textbook ones MPICH/Open MPI default to at these
//! scales: dissemination barrier, binomial broadcast, a family of
//! allreduce schedules selectable via [`AllreduceAlgo`] (recursive
//! doubling, binomial reduce+broadcast, bandwidth-optimal ring, and
//! Rabenseifner recursive halving-doubling), ring allgather, and
//! pairwise-exchange all-to-all.
//!
//! ## The allreduce size crossover
//!
//! Latency-bound schedules (recursive doubling, tree) move the whole
//! vector every round but finish in ⌈log₂ P⌉ steps; bandwidth-optimal
//! schedules (ring, halving-doubling) move only `2·(P−1)/P` of the vector
//! per rank but take more rounds (ring) or same rounds with scattered
//! reduction (halving-doubling). [`AllreduceAlgo::auto`] switches families
//! at [`AllreduceAlgo::CROSSOVER_ELEMS`] elements, mirroring the
//! MPICH-style short/long message cutover; [`Comm::allreduce`] uses it, so
//! small NPB-style reductions keep the exact schedule (and virtual-time
//! behavior) they had before the knob existed.

use bytes::Bytes;

use crate::rank::Comm;

/// Reduction operators over f64 vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Elementwise sum.
    Sum,
    /// Elementwise maximum.
    Max,
    /// Elementwise minimum.
    Min,
}

impl ReduceOp {
    fn apply(self, acc: &mut [f64], other: &[f64]) {
        assert_eq!(acc.len(), other.len());
        for (a, b) in acc.iter_mut().zip(other) {
            match self {
                ReduceOp::Sum => *a += b,
                ReduceOp::Max => *a = a.max(*b),
                ReduceOp::Min => *a = a.min(*b),
            }
        }
    }
}

/// Which schedule [`Comm::allreduce_algo`] runs.
///
/// Exposed rather than hidden behind a heuristic so collective-shaped
/// workloads can pin a schedule and compare fabrics on identical traffic;
/// [`AllreduceAlgo::auto`] is the documented default selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllreduceAlgo {
    /// Mask-doubling pairwise exchange of the whole vector: ⌈log₂ P⌉
    /// rounds, `S` bytes per rank per round. Latency-optimal for short
    /// vectors; requires a power-of-two rank count (falls back to
    /// [`AllreduceAlgo::Tree`] otherwise).
    RecursiveDoubling,
    /// Binomial reduce to rank 0 followed by binomial broadcast. Works for
    /// any rank count; root links carry the whole vector every round.
    Tree,
    /// Ring reduce-scatter + ring allgather: `2·(P−1)` steps of `S/P`
    /// bytes. Bandwidth-optimal (each rank moves `2·S·(P−1)/P` bytes
    /// total) for any rank count; the schedule NCCL-class libraries run
    /// for large tensors.
    Ring,
    /// Rabenseifner recursive halving (reduce-scatter) + recursive
    /// doubling (allgather): `2·log₂ P` steps moving geometrically
    /// shrinking halves, same `2·S·(P−1)/P` bytes per rank as the ring in
    /// half the steps. Power-of-two rank counts only (falls back to
    /// [`AllreduceAlgo::Tree`] otherwise).
    HalvingDoubling,
}

impl AllreduceAlgo {
    /// The short/long vector crossover used by [`AllreduceAlgo::auto`],
    /// in f64 elements (4096 elements = 32 KiB).
    ///
    /// Below it the latency-bound schedules win (fewer rounds beat less
    /// traffic); at or above it the bandwidth-optimal schedules win. The
    /// value is deliberately above every reduction the NPB kernels issue
    /// (≤ 1024 elements), so the auto path is byte-identical to the
    /// pre-[`AllreduceAlgo`] behavior for all existing callers.
    pub const CROSSOVER_ELEMS: usize = 4096;

    /// MPICH-style default selection: latency-bound schedules below
    /// [`Self::CROSSOVER_ELEMS`] (recursive doubling on power-of-two rank
    /// counts, tree otherwise), bandwidth-optimal schedules at or above it
    /// (halving-doubling on power-of-two counts, ring otherwise).
    pub fn auto(nranks: usize, elems: usize) -> AllreduceAlgo {
        let pow2 = nranks.is_power_of_two();
        if elems < Self::CROSSOVER_ELEMS {
            if pow2 {
                AllreduceAlgo::RecursiveDoubling
            } else {
                AllreduceAlgo::Tree
            }
        } else if pow2 {
            AllreduceAlgo::HalvingDoubling
        } else {
            AllreduceAlgo::Ring
        }
    }
}

impl std::fmt::Display for AllreduceAlgo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AllreduceAlgo::RecursiveDoubling => "recursive-doubling",
            AllreduceAlgo::Tree => "tree",
            AllreduceAlgo::Ring => "ring",
            AllreduceAlgo::HalvingDoubling => "halving-doubling",
        })
    }
}

fn to_bytes(v: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() * 8);
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

fn from_bytes(b: &[u8]) -> Vec<f64> {
    b.chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// Per-element reduction CPU cost, ns (one FLOP + load/store each).
const REDUCE_NS_PER_ELEM: f64 = 0.6;

/// Collective tags live in a reserved namespace above user tags.
const TAG_BASE: u32 = 0xC011_0000;

impl Comm {
    /// Dissemination barrier: ⌈log2 P⌉ rounds.
    pub async fn barrier(&self, epoch: u32) -> () {
        let p = self.size();
        let r = self.rank();
        let mut k = 1usize;
        let mut round = 0u32;
        while k < p {
            let dst = (r + k) % p;
            let src = (r + p - k % p) % p;
            let tag = TAG_BASE.wrapping_add(0x100 + epoch.wrapping_mul(64) + round);
            self.sendrecv(dst, tag, &[], src, tag).await;
            k <<= 1;
            round += 1;
        }
    }

    /// Binomial-tree broadcast from `root`. Every rank returns the data.
    pub async fn bcast(&self, root: usize, epoch: u32, data: Option<&[u8]>) -> Bytes {
        let p = self.size();
        let vr = (self.rank() + p - root) % p; // virtual rank, root = 0
        let tag = TAG_BASE.wrapping_add(0x200).wrapping_add(epoch);
        let mut buf: Option<Bytes> = data.map(Bytes::copy_from_slice);
        if vr == 0 {
            assert!(buf.is_some(), "root must supply data");
        }
        // Receive from the parent.
        if vr != 0 {
            let mut mask = 1usize;
            while mask < p {
                if vr & mask != 0 {
                    let parent = (vr - mask + root) % p;
                    buf = Some(self.recv(parent, tag).await);
                    break;
                }
                mask <<= 1;
            }
        }
        // Forward to children.
        let data = buf.expect("received or root");
        let mut mask = 1usize;
        while mask < p {
            if vr & mask != 0 {
                break;
            }
            mask <<= 1;
        }
        let mut child_mask = mask >> 1;
        let mut sends = Vec::new();
        while child_mask > 0 {
            let child_vr = vr + child_mask;
            if child_vr < p {
                let child = (child_vr + root) % p;
                sends.push(self.isend(child, tag, data.to_vec()));
            }
            child_mask >>= 1;
        }
        for s in sends {
            s.await;
        }
        data
    }

    /// Allreduce over f64 vectors with the [`AllreduceAlgo::auto`]
    /// schedule for this rank count and vector length.
    pub async fn allreduce(&self, epoch: u32, vals: &[f64], op: ReduceOp) -> Vec<f64> {
        let algo = AllreduceAlgo::auto(self.size(), vals.len());
        self.allreduce_algo(algo, epoch, vals, op).await
    }

    /// Allreduce over f64 vectors with an explicit schedule.
    ///
    /// Schedules that require a power-of-two rank count
    /// ([`AllreduceAlgo::RecursiveDoubling`],
    /// [`AllreduceAlgo::HalvingDoubling`]) fall back to
    /// [`AllreduceAlgo::Tree`] on other counts rather than panicking, so a
    /// scenario can pin an algorithm without pinning the world size.
    ///
    /// ```
    /// use cord_core::prelude::*;
    /// use cord_mpi::{create_world, AllreduceAlgo, MpiTransport, ReduceOp};
    ///
    /// let fabric = Fabric::builder(system_l()).seed(1).build();
    /// let f2 = fabric.clone();
    /// fabric.block_on(async move {
    ///     let comms = create_world(&f2, 2, MpiTransport::Verbs(Dataplane::Bypass)).await;
    ///     let mut ranks = Vec::new();
    ///     for c in comms {
    ///         ranks.push(f2.spawn(async move {
    ///             let mine = [c.rank() as f64, 1.0];
    ///             let out = c
    ///                 .allreduce_algo(AllreduceAlgo::Ring, 0, &mine, ReduceOp::Sum)
    ///                 .await;
    ///             assert_eq!(out, vec![1.0, 2.0]);
    ///         }));
    ///     }
    ///     for r in ranks {
    ///         r.await;
    ///     }
    /// });
    /// ```
    pub async fn allreduce_algo(
        &self,
        algo: AllreduceAlgo,
        epoch: u32,
        vals: &[f64],
        op: ReduceOp,
    ) -> Vec<f64> {
        let pow2 = self.size().is_power_of_two();
        match algo {
            AllreduceAlgo::RecursiveDoubling if pow2 => self.allreduce_rd(epoch, vals, op).await,
            AllreduceAlgo::HalvingDoubling if pow2 => self.allreduce_hd(epoch, vals, op).await,
            AllreduceAlgo::Ring => self.allreduce_ring(epoch, vals, op).await,
            _ => self.allreduce_tree(epoch, vals, op).await,
        }
    }

    /// Binomial reduce to rank 0 + internal broadcast.
    async fn allreduce_tree(&self, epoch: u32, vals: &[f64], op: ReduceOp) -> Vec<f64> {
        let reduced = self.reduce(0, epoch, vals, op).await;
        // Internal bcast epoch lives in its own namespace so it cannot
        // collide with a user bcast of the same epoch.
        let wire = self
            .bcast(
                0,
                0x4000 + epoch,
                reduced.as_ref().map(|v| to_bytes(v)).as_deref(),
            )
            .await;
        from_bytes(&wire)
    }

    async fn allreduce_rd(&self, epoch: u32, vals: &[f64], op: ReduceOp) -> Vec<f64> {
        let p = self.size();
        let r = self.rank();
        let mut acc = vals.to_vec();
        let mut mask = 1usize;
        let mut round = 0u32;
        while mask < p {
            let partner = r ^ mask;
            let tag = TAG_BASE.wrapping_add(0x300 + epoch.wrapping_mul(64) + round);
            let theirs = self
                .sendrecv(partner, tag, &to_bytes(&acc), partner, tag)
                .await;
            let theirs = from_bytes(&theirs);
            // Reduction compute cost.
            self.compute_ns(REDUCE_NS_PER_ELEM * acc.len() as f64).await;
            op.apply(&mut acc, &theirs);
            mask <<= 1;
            round += 1;
        }
        acc
    }

    /// Ring allreduce: reduce-scatter then allgather around the ring.
    ///
    /// Element range of chunk `c` is `[c·n/P, (c+1)·n/P)` (uneven lengths
    /// allowed). Reduce-scatter step `s`: send chunk `(r − s) mod P`
    /// right, receive and reduce chunk `(r − s − 1) mod P` from the left;
    /// after `P − 1` steps rank `r` owns fully reduced chunk
    /// `(r + 1) mod P`, which the allgather half then walks around the
    /// ring.
    async fn allreduce_ring(&self, epoch: u32, vals: &[f64], op: ReduceOp) -> Vec<f64> {
        let p = self.size();
        let r = self.rank();
        if p == 1 {
            return vals.to_vec();
        }
        let n = vals.len();
        let bounds = |c: usize| (c * n / p, (c + 1) * n / p);
        let mut acc = vals.to_vec();
        let right = (r + 1) % p;
        let left = (r + p - 1) % p;
        let tag_for =
            |step: usize| TAG_BASE.wrapping_add(0x700 + epoch.wrapping_mul(0x100) + step as u32);
        // Reduce-scatter half.
        for s in 0..p - 1 {
            let (slo, shi) = bounds((r + p - s) % p);
            let (rlo, rhi) = bounds((r + p - s - 1) % p);
            let tag = tag_for(s);
            let theirs = self
                .sendrecv(right, tag, &to_bytes(&acc[slo..shi]), left, tag)
                .await;
            let theirs = from_bytes(&theirs);
            self.compute_ns(REDUCE_NS_PER_ELEM * theirs.len() as f64)
                .await;
            op.apply(&mut acc[rlo..rhi], &theirs);
        }
        // Allgather half: rank r starts it owning reduced chunk (r+1) mod P.
        for s in 0..p - 1 {
            let (slo, shi) = bounds((r + 1 + p - s) % p);
            let (rlo, rhi) = bounds((r + p - s) % p);
            let tag = tag_for(p - 1 + s);
            let theirs = self
                .sendrecv(right, tag, &to_bytes(&acc[slo..shi]), left, tag)
                .await;
            acc[rlo..rhi].copy_from_slice(&from_bytes(&theirs));
        }
        acc
    }

    /// Rabenseifner allreduce: recursive vector halving with distance
    /// doubling (reduce-scatter), then the mirrored recursive doubling
    /// (allgather), unwinding the recorded halving steps in reverse.
    /// Power-of-two rank counts only (the caller guarantees it).
    async fn allreduce_hd(&self, epoch: u32, vals: &[f64], op: ReduceOp) -> Vec<f64> {
        let p = self.size();
        debug_assert!(p.is_power_of_two());
        let r = self.rank();
        let mut acc = vals.to_vec();
        let (mut lo, mut hi) = (0usize, acc.len());
        // (parent_lo, parent_hi, partner) per halving step, for the unwind.
        let mut steps: Vec<(usize, usize, usize)> = Vec::new();
        let tag_for = |round: u32| TAG_BASE.wrapping_add(0x800 + epoch.wrapping_mul(0x40) + round);
        let mut mask = 1usize;
        let mut round = 0u32;
        while mask < p {
            let partner = r ^ mask;
            let mid = lo + (hi - lo) / 2;
            steps.push((lo, hi, partner));
            // The lower-ranked partner keeps the lower half; both send the
            // complement (the partner's keep range) and reduce into theirs.
            let (keep, send) = if r & mask == 0 {
                ((lo, mid), (mid, hi))
            } else {
                ((mid, hi), (lo, mid))
            };
            let tag = tag_for(round);
            let theirs = self
                .sendrecv(partner, tag, &to_bytes(&acc[send.0..send.1]), partner, tag)
                .await;
            let theirs = from_bytes(&theirs);
            self.compute_ns(REDUCE_NS_PER_ELEM * theirs.len() as f64)
                .await;
            op.apply(&mut acc[keep.0..keep.1], &theirs);
            lo = keep.0;
            hi = keep.1;
            mask <<= 1;
            round += 1;
        }
        // Allgather by exchanging owned blocks, widest distance last.
        for (plo, phi, partner) in steps.into_iter().rev() {
            let tag = tag_for(round);
            let theirs = self
                .sendrecv(partner, tag, &to_bytes(&acc[lo..hi]), partner, tag)
                .await;
            let theirs = from_bytes(&theirs);
            // The partner owns the complementary half of the parent range.
            if lo == plo {
                acc[hi..phi].copy_from_slice(&theirs);
            } else {
                acc[plo..lo].copy_from_slice(&theirs);
            }
            lo = plo;
            hi = phi;
            round += 1;
        }
        acc
    }

    /// Binomial-tree reduce to `root`; only the root gets `Some`.
    pub async fn reduce(
        &self,
        root: usize,
        epoch: u32,
        vals: &[f64],
        op: ReduceOp,
    ) -> Option<Vec<f64>> {
        let p = self.size();
        let vr = (self.rank() + p - root) % p;
        let tag = TAG_BASE.wrapping_add(0x400).wrapping_add(epoch);
        let mut acc = vals.to_vec();
        let mut mask = 1usize;
        while mask < p {
            if vr & mask != 0 {
                let parent = (vr - mask + root) % p;
                self.send(parent, tag, &to_bytes(&acc)).await;
                return None;
            }
            let child_vr = vr + mask;
            if child_vr < p {
                let child = (child_vr + root) % p;
                let theirs = from_bytes(&self.recv(child, tag).await);
                self.compute_ns(REDUCE_NS_PER_ELEM * acc.len() as f64).await;
                op.apply(&mut acc, &theirs);
            }
            mask <<= 1;
        }
        Some(acc)
    }

    /// Ring allgather: every rank contributes `mine`, all get all chunks.
    pub async fn allgather(&self, epoch: u32, mine: &[u8]) -> Vec<Bytes> {
        let p = self.size();
        let r = self.rank();
        let tag = TAG_BASE.wrapping_add(0x500).wrapping_add(epoch);
        let mut chunks: Vec<Option<Bytes>> = vec![None; p];
        chunks[r] = Some(Bytes::copy_from_slice(mine));
        let right = (r + 1) % p;
        let left = (r + p - 1) % p;
        let mut cursor = r;
        for _ in 0..p - 1 {
            let outgoing = chunks[cursor].clone().expect("have current chunk");
            let incoming = self.sendrecv(right, tag, &outgoing, left, tag).await;
            cursor = (cursor + p - 1) % p;
            chunks[cursor] = Some(incoming);
        }
        chunks
            .into_iter()
            .map(|c| c.expect("ring complete"))
            .collect()
    }

    /// Pairwise-exchange all-to-all with per-destination payloads.
    /// `sends[d]` goes to rank `d`; returns what every rank sent to us.
    pub async fn alltoallv(&self, epoch: u32, sends: Vec<Vec<u8>>) -> Vec<Bytes> {
        let p = self.size();
        let r = self.rank();
        assert_eq!(sends.len(), p);
        let tag = TAG_BASE.wrapping_add(0x600).wrapping_add(epoch);
        let mut recvs: Vec<Option<Bytes>> = vec![None; p];
        recvs[r] = Some(Bytes::from(sends[r].clone()));
        for step in 1..p {
            // Pairwise: talk to (r + step) while receiving from (r - step).
            let dst = (r + step) % p;
            let src = (r + p - step) % p;
            let got = self
                .sendrecv(
                    dst,
                    tag.wrapping_add(step as u32),
                    &sends[dst],
                    src,
                    tag.wrapping_add(step as u32),
                )
                .await;
            recvs[src] = Some(got);
        }
        recvs
            .into_iter()
            .map(|c| c.expect("exchange complete"))
            .collect()
    }
}
