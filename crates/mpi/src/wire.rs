//! MPI wire protocol headers.
//!
//! Every control/eager message starts with a fixed 28-byte header; the
//! rendezvous payload itself travels headerless via RDMA write-with-imm.

use bytes::Bytes;

/// Message kinds on the eager path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Small message: payload follows the header.
    Eager = 0,
    /// Rendezvous request-to-send (header only).
    Rts = 1,
    /// Clear-to-send: carries the receiver's landing address and rkey.
    Cts = 2,
}

impl Kind {
    fn from_u8(v: u8) -> Option<Kind> {
        match v {
            0 => Some(Kind::Eager),
            1 => Some(Kind::Rts),
            2 => Some(Kind::Cts),
            _ => None,
        }
    }
}

/// Encoded header length in bytes (every eager-path frame starts with one).
pub const HDR_LEN: usize = 28;

/// Decoded header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Which protocol message this frame carries.
    pub kind: Kind,
    /// MPI tag (0 for CTS, which matches on `msg_id` instead).
    pub tag: u32,
    /// Per-sender sequential message id.
    pub msg_id: u32,
    /// Eager: payload length. RTS: full message length. CTS: echo.
    pub len: u32,
    /// CTS: landing address. Otherwise 0.
    pub raddr: u64,
    /// CTS: landing rkey. Otherwise 0.
    pub rkey: u32,
}

impl Header {
    /// Serialize to the fixed wire layout.
    pub fn encode(&self) -> [u8; HDR_LEN] {
        let mut b = [0u8; HDR_LEN];
        b[0] = self.kind as u8;
        b[1..5].copy_from_slice(&self.tag.to_le_bytes());
        b[5..9].copy_from_slice(&self.msg_id.to_le_bytes());
        b[9..13].copy_from_slice(&self.len.to_le_bytes());
        b[13..21].copy_from_slice(&self.raddr.to_le_bytes());
        b[21..25].copy_from_slice(&self.rkey.to_le_bytes());
        b
    }

    /// Parse a header from the front of `b`; `None` if short or malformed.
    pub fn decode(b: &[u8]) -> Option<Header> {
        if b.len() < HDR_LEN {
            return None;
        }
        Some(Header {
            kind: Kind::from_u8(b[0])?,
            tag: u32::from_le_bytes(b[1..5].try_into().ok()?),
            msg_id: u32::from_le_bytes(b[5..9].try_into().ok()?),
            len: u32::from_le_bytes(b[9..13].try_into().ok()?),
            raddr: u64::from_le_bytes(b[13..21].try_into().ok()?),
            rkey: u32::from_le_bytes(b[21..25].try_into().ok()?),
        })
    }

    /// Header for an eager message of `len` payload bytes.
    pub fn eager(tag: u32, msg_id: u32, len: usize) -> Header {
        Header {
            kind: Kind::Eager,
            tag,
            msg_id,
            len: len as u32,
            raddr: 0,
            rkey: 0,
        }
    }

    /// Rendezvous request-to-send announcing a `len`-byte message.
    pub fn rts(tag: u32, msg_id: u32, len: usize) -> Header {
        Header {
            kind: Kind::Rts,
            tag,
            msg_id,
            len: len as u32,
            raddr: 0,
            rkey: 0,
        }
    }

    /// Clear-to-send carrying the receiver's landing zone for `msg_id`.
    pub fn cts(msg_id: u32, len: usize, raddr: u64, rkey: u32) -> Header {
        Header {
            kind: Kind::Cts,
            tag: 0,
            msg_id,
            len: len as u32,
            raddr,
            rkey,
        }
    }
}

/// Extract the header and payload slice from an eager-path frame.
pub fn split_frame(frame: &Bytes) -> Option<(Header, Bytes)> {
    let hdr = Header::decode(frame)?;
    let want = HDR_LEN + hdr.len as usize;
    if matches!(hdr.kind, Kind::Eager) && frame.len() < want {
        return None;
    }
    let payload = if hdr.kind == Kind::Eager {
        frame.slice(HDR_LEN..want)
    } else {
        Bytes::new()
    };
    Some((hdr, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = Header {
            kind: Kind::Cts,
            tag: 0xDEAD,
            msg_id: 42,
            len: 1 << 20,
            raddr: 0xAB_CDEF,
            rkey: 77,
        };
        let enc = h.encode();
        assert_eq!(Header::decode(&enc), Some(h));
    }

    #[test]
    fn decode_rejects_short_and_bad_kind() {
        assert!(Header::decode(&[0u8; 10]).is_none());
        let mut b = [0u8; HDR_LEN];
        b[0] = 9;
        assert!(Header::decode(&b).is_none());
    }

    #[test]
    fn split_frame_extracts_payload() {
        let h = Header::eager(5, 1, 3);
        let mut v = h.encode().to_vec();
        v.extend_from_slice(b"abc");
        let (hdr, payload) = split_frame(&Bytes::from(v)).unwrap();
        assert_eq!(hdr.tag, 5);
        assert_eq!(&payload[..], b"abc");
    }

    #[test]
    fn split_frame_rejects_truncated_eager() {
        let h = Header::eager(5, 1, 10);
        let v = h.encode().to_vec(); // no payload
        assert!(split_frame(&Bytes::from(v)).is_none());
    }

    #[test]
    fn control_frames_have_empty_payload() {
        let h = Header::rts(1, 2, 4096);
        let v = h.encode().to_vec();
        let (hdr, payload) = split_frame(&Bytes::from(v)).unwrap();
        assert_eq!(hdr.kind, Kind::Rts);
        assert!(payload.is_empty());
    }
}
