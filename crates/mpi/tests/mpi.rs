//! MPI-layer integration tests across all three transports.

use cord_core::prelude::*;
use cord_mpi::{create_world, AllreduceAlgo, Comm, MpiTransport, ReduceOp, EAGER_MAX};

fn transports() -> Vec<MpiTransport> {
    vec![
        MpiTransport::Verbs(Dataplane::Bypass),
        MpiTransport::Verbs(Dataplane::Cord),
        MpiTransport::Ipoib,
    ]
}

fn fabric_for(t: MpiTransport) -> Fabric {
    let b = Fabric::builder(system_l()).seed(5);
    match t {
        MpiTransport::Ipoib => b.with_ipoib().build(),
        _ => b.build(),
    }
}

fn run_world<F, Fut>(t: MpiTransport, nranks: usize, f: F)
where
    F: Fn(Comm) -> Fut + 'static,
    Fut: std::future::Future<Output = ()> + 'static,
{
    let fabric = fabric_for(t);
    let fabric2 = fabric.clone();
    fabric.block_on(async move {
        let comms = create_world(&fabric2, nranks, t).await;
        let mut handles = Vec::new();
        for c in comms {
            handles.push(fabric2.spawn(f(c)));
        }
        for h in handles {
            h.await;
        }
    });
}

fn pattern(len: usize, seed: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
        .collect()
}

#[test]
fn eager_send_recv_all_transports() {
    for t in transports() {
        run_world(t, 2, move |c| async move {
            if c.rank() == 0 {
                c.send(1, 7, &pattern(512, 1)).await;
            } else {
                let m = c.recv(0, 7).await;
                assert_eq!(&m[..], &pattern(512, 1)[..], "{t}");
            }
        });
    }
}

#[test]
fn rendezvous_large_message_all_transports() {
    for t in transports() {
        let len = 200_000; // well above EAGER_MAX
        run_world(t, 2, move |c| async move {
            if c.rank() == 0 {
                c.send(1, 9, &pattern(len, 3)).await;
            } else {
                let m = c.recv(0, 9).await;
                assert_eq!(m.len(), len);
                assert_eq!(&m[..], &pattern(len, 3)[..], "{t}");
            }
        });
    }
}

#[test]
fn boundary_sizes_roundtrip() {
    let t = MpiTransport::Verbs(Dataplane::Cord);
    for len in [0usize, 1, EAGER_MAX - 1, EAGER_MAX, EAGER_MAX + 1, 65536] {
        run_world(t, 2, move |c| async move {
            if c.rank() == 0 {
                c.send(1, 1, &pattern(len, 9)).await;
            } else {
                let m = c.recv(0, 1).await;
                assert_eq!(m.len(), len);
                assert_eq!(&m[..], &pattern(len, 9)[..]);
            }
        });
    }
}

#[test]
fn tag_matching_out_of_order() {
    // Two messages with different tags; receiver asks for the second first.
    run_world(MpiTransport::Verbs(Dataplane::Bypass), 2, |c| async move {
        if c.rank() == 0 {
            c.send(1, 100, b"first").await;
            c.send(1, 200, b"second").await;
        } else {
            let b = c.recv(0, 200).await;
            let a = c.recv(0, 100).await;
            assert_eq!(&b[..], b"second");
            assert_eq!(&a[..], b"first");
        }
    });
}

#[test]
fn unexpected_rendezvous_is_matched_later() {
    // Sender fires a big message before the receiver posts: the RTS must
    // wait in the pending queue until recv() arrives.
    run_world(MpiTransport::Verbs(Dataplane::Cord), 2, |c| async move {
        if c.rank() == 0 {
            c.send(1, 5, &pattern(100_000, 2)).await;
        } else {
            // Let the RTS arrive first.
            c.core().sim().sleep(SimDuration::from_ms(1)).await;
            let m = c.recv(0, 5).await;
            assert_eq!(&m[..], &pattern(100_000, 2)[..]);
        }
    });
}

#[test]
fn bidirectional_exchange_does_not_deadlock() {
    // Both ranks send a rendezvous-sized message simultaneously.
    run_world(MpiTransport::Verbs(Dataplane::Bypass), 2, |c| async move {
        let peer = 1 - c.rank();
        let got = c
            .sendrecv(peer, 3, &pattern(50_000, c.rank() as u8), peer, 3)
            .await;
        assert_eq!(&got[..], &pattern(50_000, peer as u8)[..]);
    });
}

#[test]
fn many_small_messages_respect_flow_control() {
    // More messages in flight than TX slots: must throttle, not error.
    run_world(MpiTransport::Verbs(Dataplane::Bypass), 2, |c| async move {
        let n = 200;
        if c.rank() == 0 {
            for i in 0..n {
                c.send(1, i, &pattern(64, i as u8)).await;
            }
        } else {
            for i in 0..n {
                let m = c.recv(0, i).await;
                assert_eq!(&m[..], &pattern(64, i as u8)[..]);
            }
        }
    });
}

#[test]
fn barrier_synchronizes() {
    for &p in &[2usize, 4, 6] {
        run_world(
            MpiTransport::Verbs(Dataplane::Bypass),
            p,
            move |c| async move {
                // Stagger arrival; all must leave after the latest arriver.
                let delay = (c.rank() as u64) * 50;
                c.core().sim().sleep(SimDuration::from_us(delay)).await;
                c.barrier(0).await;
                let t = c.core().sim().now().as_us_f64();
                let latest = ((p - 1) as u64 * 50) as f64;
                assert!(t >= latest, "rank {} left at {t} < {latest}", c.rank());
            },
        );
    }
}

#[test]
fn bcast_delivers_to_all() {
    for &p in &[2usize, 4, 7] {
        run_world(
            MpiTransport::Verbs(Dataplane::Cord),
            p,
            move |c| async move {
                let data = pattern(10_000, 42);
                let got = if c.rank() == 2 % p {
                    c.bcast(2 % p, 0, Some(&data)).await
                } else {
                    c.bcast(2 % p, 0, None).await
                };
                assert_eq!(&got[..], &data[..]);
            },
        );
    }
}

#[test]
fn allreduce_sums_across_ranks() {
    for &p in &[2usize, 4, 5, 8] {
        run_world(
            MpiTransport::Verbs(Dataplane::Bypass),
            p,
            move |c| async move {
                let mine: Vec<f64> = (0..64).map(|i| (c.rank() * 100 + i) as f64).collect();
                let out = c.allreduce(0, &mine, ReduceOp::Sum).await;
                for (i, v) in out.iter().enumerate() {
                    let expect: f64 = (0..p).map(|r| (r * 100 + i) as f64).sum();
                    assert!((v - expect).abs() < 1e-9, "p={p} i={i}: {v} != {expect}");
                }
            },
        );
    }
}

#[test]
fn allreduce_algos_agree_with_reference() {
    // Every schedule, power-of-two and odd world sizes, uneven chunk
    // lengths (777 % 6 != 0), checked against the closed-form sum.
    let algos = [
        AllreduceAlgo::RecursiveDoubling,
        AllreduceAlgo::Tree,
        AllreduceAlgo::Ring,
        AllreduceAlgo::HalvingDoubling,
    ];
    for &p in &[4usize, 6] {
        for algo in algos {
            run_world(
                MpiTransport::Verbs(Dataplane::Bypass),
                p,
                move |c| async move {
                    let n = 777;
                    let mine: Vec<f64> =
                        (0..n).map(|i| ((c.rank() + 1) * (i + 3)) as f64).collect();
                    let out = c.allreduce_algo(algo, 0, &mine, ReduceOp::Sum).await;
                    assert_eq!(out.len(), n);
                    for (i, v) in out.iter().enumerate() {
                        let expect: f64 = (0..p).map(|r| ((r + 1) * (i + 3)) as f64).sum();
                        assert!(
                            (v - expect).abs() < 1e-9,
                            "{algo} p={p} i={i}: {v} != {expect}"
                        );
                    }
                },
            );
        }
    }
}

/// Run one allreduce under `algo` with DetRng-drawn integer-valued inputs
/// and return every rank's reduced buffer as raw little-endian bytes.
fn allreduce_buffers(algo: AllreduceAlgo, p: usize, n: usize, seed: u64) -> Vec<Vec<u8>> {
    let t = MpiTransport::Verbs(Dataplane::Bypass);
    let fabric = Fabric::builder(system_l()).seed(seed).build();
    let f2 = fabric.clone();
    fabric.block_on(async move {
        let comms = create_world(&f2, p, t).await;
        let mut handles = Vec::new();
        for c in comms {
            let rng = f2.rng().stream_indexed("allreduce-input", c.rank() as u64);
            handles.push(f2.spawn(async move {
                // Integer-valued draws keep f64 addition exact, so the two
                // schedules' different summation orders cannot diverge.
                let mine: Vec<f64> = (0..n)
                    .map(|_| rng.uniform_range(0, 1 << 20) as f64)
                    .collect();
                let out = c.allreduce_algo(algo, 0, &mine, ReduceOp::Sum).await;
                out.iter()
                    .flat_map(|v| v.to_le_bytes())
                    .collect::<Vec<u8>>()
            }));
        }
        let mut bufs = Vec::new();
        for h in handles {
            bufs.push(h.await);
        }
        bufs
    })
}

#[test]
fn ring_and_halving_doubling_reduce_identically() {
    // Differential: same seed, same inputs → bit-identical reduced buffers
    // from the bandwidth-optimal schedules (and from the tree reference),
    // on every rank. 1003 elements exercises uneven chunk boundaries.
    let (p, n, seed) = (8usize, 1003usize, 0xA11Au64);
    let ring = allreduce_buffers(AllreduceAlgo::Ring, p, n, seed);
    let hd = allreduce_buffers(AllreduceAlgo::HalvingDoubling, p, n, seed);
    let tree = allreduce_buffers(AllreduceAlgo::Tree, p, n, seed);
    for r in 0..p {
        assert_eq!(ring[r], hd[r], "rank {r}: ring vs halving-doubling");
        assert_eq!(ring[r], tree[r], "rank {r}: ring vs tree");
        assert_eq!(ring[r], ring[0], "rank {r}: ranks must agree");
    }
}

#[test]
fn allreduce_auto_crossover_picks_bandwidth_schedules() {
    let small = AllreduceAlgo::CROSSOVER_ELEMS - 1;
    let large = AllreduceAlgo::CROSSOVER_ELEMS;
    assert_eq!(
        AllreduceAlgo::auto(8, small),
        AllreduceAlgo::RecursiveDoubling
    );
    assert_eq!(
        AllreduceAlgo::auto(8, large),
        AllreduceAlgo::HalvingDoubling
    );
    assert_eq!(AllreduceAlgo::auto(6, small), AllreduceAlgo::Tree);
    assert_eq!(AllreduceAlgo::auto(6, large), AllreduceAlgo::Ring);
}

#[test]
fn allreduce_max_works() {
    run_world(MpiTransport::Verbs(Dataplane::Bypass), 4, |c| async move {
        let mine = vec![c.rank() as f64; 8];
        let out = c.allreduce(1, &mine, ReduceOp::Max).await;
        assert!(out.iter().all(|&v| v == 3.0));
    });
}

#[test]
fn allgather_collects_all_chunks() {
    run_world(MpiTransport::Verbs(Dataplane::Cord), 5, |c| async move {
        let mine = pattern(300, c.rank() as u8);
        let all = c.allgather(0, &mine).await;
        assert_eq!(all.len(), 5);
        for (r, chunk) in all.iter().enumerate() {
            assert_eq!(&chunk[..], &pattern(300, r as u8)[..]);
        }
    });
}

#[test]
fn alltoallv_exchanges_distinct_payloads() {
    run_world(MpiTransport::Verbs(Dataplane::Bypass), 4, |c| async move {
        let r = c.rank();
        // sends[d] tagged with (src, dst) identity.
        let sends: Vec<Vec<u8>> = (0..4)
            .map(|d| pattern(1000 + d * 10, (r * 4 + d) as u8))
            .collect();
        let got = c.alltoallv(0, sends).await;
        for (s, chunk) in got.iter().enumerate() {
            assert_eq!(
                &chunk[..],
                &pattern(1000 + r * 10, (s * 4 + r) as u8)[..],
                "from {s} to {r}"
            );
        }
    });
}

#[test]
fn collectives_work_over_ipoib() {
    run_world(MpiTransport::Ipoib, 4, |c| async move {
        let mine = vec![(c.rank() + 1) as f64; 4];
        let out = c.allreduce(0, &mine, ReduceOp::Sum).await;
        assert!(out.iter().all(|&v| v == 10.0));
        c.barrier(1).await;
    });
}

#[test]
fn cord_and_bypass_mpi_latency_gap_is_small() {
    // The Fig. 6 claim in miniature: CoRD MPI ping-pong is within ~1 µs of
    // bypass, while IPoIB is an order of magnitude away.
    fn pingpong(t: MpiTransport) -> f64 {
        let fabric = fabric_for(t);
        let f2 = fabric.clone();
        fabric.block_on(async move {
            let comms = create_world(&f2, 2, t).await;
            let sim = f2.sim().clone();
            let c1 = comms[1].clone();
            let server = f2.spawn(async move {
                for i in 0..20u32 {
                    let m = c1.recv(0, i).await;
                    c1.send(0, 1000 + i, &m).await;
                }
            });
            let c0 = comms[0].clone();
            let data = vec![7u8; 1024];
            // Warmup.
            for i in 0..5u32 {
                c0.send(1, i, &data).await;
                c0.recv(1, 1000 + i).await;
            }
            let t0 = sim.now();
            for i in 5..20u32 {
                c0.send(1, i, &data).await;
                c0.recv(1, 1000 + i).await;
            }
            let rtt = sim.now().since(t0).as_us_f64() / 15.0;
            server.await;
            rtt
        })
    }
    let bp = pingpong(MpiTransport::Verbs(Dataplane::Bypass));
    let cd = pingpong(MpiTransport::Verbs(Dataplane::Cord));
    let ip = pingpong(MpiTransport::Ipoib);
    assert!(cd - bp < 3.0, "CoRD ping-pong {cd} µs ~ bypass {bp} µs");
    assert!(
        ip > 2.0 * bp,
        "IPoIB {ip} µs must clearly exceed RDMA {bp} µs"
    );
}

#[test]
fn deterministic_collective_timing() {
    fn run() -> u64 {
        let t = MpiTransport::Verbs(Dataplane::Cord);
        let fabric = fabric_for(t);
        let f2 = fabric.clone();
        fabric.block_on(async move {
            let comms = create_world(&f2, 4, t).await;
            let sim = f2.sim().clone();
            let mut handles = Vec::new();
            for c in comms {
                handles.push(f2.spawn(async move {
                    let v = vec![c.rank() as f64; 256];
                    c.allreduce(0, &v, ReduceOp::Sum).await;
                }));
            }
            for h in handles {
                h.await;
            }
            sim.now().as_ps()
        })
    }
    assert_eq!(run(), run());
}
