use cord_core::prelude::system_a;
use cord_core::prelude::Dataplane;
use cord_mpi::MpiTransport;
use cord_npb::{run_benchmark, Bench, Class};

fn main() {
    let ranks = 32;
    println!(
        "{:>4} {:>10} {:>10} {:>10} | {:>6} {:>6} | per-rank Gb/s, msg/s (RDMA)",
        "", "RDMA us", "CoRD rel", "IPoIB rel", "", ""
    );
    for bench in Bench::ALL {
        let r = |t| run_benchmark(system_a(), bench, Class::A, ranks, t, 42);
        let rdma = r(MpiTransport::Verbs(Dataplane::Bypass));
        let cord = r(MpiTransport::Verbs(Dataplane::Cord));
        let ipoib = r(MpiTransport::Ipoib);
        println!(
            "{:>4} {:>10.0} {:>10.3} {:>10.3} | {:>8.3} {:>8.0}",
            bench.label(),
            rdma.runtime_us,
            cord.runtime_us / rdma.runtime_us,
            ipoib.runtime_us / rdma.runtime_us,
            rdma.gbit_per_rank,
            rdma.msgs_per_rank_s,
        );
    }
}
