//! NPB campaign runner: builds a fabric, runs one benchmark on one
//! transport, and reports runtime + traffic statistics.

use cord_core::prelude::*;
use cord_mpi::{create_world, Comm, MpiTransport};

use crate::kernels;
use crate::model::{Bench, Class};

/// Result of one benchmark run.
#[derive(Debug, Clone)]
pub struct BenchResult {
    pub bench: Bench,
    pub class: Class,
    pub transport: MpiTransport,
    pub nranks: usize,
    pub iters: usize,
    /// Timed-region runtime, µs of virtual time.
    pub runtime_us: f64,
    /// Mean per-rank data rate over the timed region, Gbit/s.
    pub gbit_per_rank: f64,
    /// Mean per-rank message rate over the timed region, msgs/s.
    pub msgs_per_rank_s: f64,
}

/// Run one iteration of `bench` for `comm`.
pub async fn run_iter(comm: &Comm, bench: Bench, class: Class, iter: usize) {
    match bench {
        Bench::Is => kernels::is_iter(comm, class, iter).await,
        Bench::Ep => kernels::ep_iter(comm, class, iter).await,
        Bench::Mg => kernels::mg_iter(comm, class, iter).await,
        Bench::Ft => kernels::ft_iter(comm, class, iter).await,
        Bench::Lu => kernels::lu_iter(comm, class, iter).await,
        Bench::Cg => kernels::cg_iter(comm, class, iter).await,
        Bench::Bt => kernels::bt_iter(comm, class, iter).await,
        Bench::Sp => kernels::sp_iter(comm, class, iter).await,
    }
}

/// Execute `bench` over `transport` on a fresh fabric.
pub fn run_benchmark(
    machine: MachineSpec,
    bench: Bench,
    class: Class,
    want_ranks: usize,
    transport: MpiTransport,
    seed: u64,
) -> BenchResult {
    let nranks = bench.ranks_near(want_ranks);
    let iters = bench.default_iters(class);
    let builder = Fabric::builder(machine).seed(seed);
    let fabric = match transport {
        MpiTransport::Ipoib => builder.with_ipoib().build(),
        _ => builder.build(),
    };
    fabric.sim().set_max_polls(0);
    let f2 = fabric.clone();
    let (runtime_us, bytes, msgs) = fabric.block_on(async move {
        let comms = create_world(&f2, nranks, transport).await;
        let sim = f2.sim().clone();
        let mut handles = Vec::new();
        for comm in comms.clone() {
            handles.push(f2.spawn(async move {
                // Warmup iteration, then a barrier to align the clock.
                run_iter(&comm, bench, class, 100_000).await;
                comm.barrier(9000).await;
                let (b0, m0) = comm.traffic();
                let t0 = comm.core().sim().now();
                for it in 0..iters {
                    run_iter(&comm, bench, class, it).await;
                }
                comm.barrier(9001).await;
                let elapsed = comm.core().sim().now().since(t0).as_us_f64();
                let (b1, m1) = comm.traffic();
                (elapsed, b1 - b0, m1 - m0)
            }));
        }
        let mut runtime: f64 = 0.0;
        let mut bytes = 0u64;
        let mut msgs = 0u64;
        for h in handles {
            let (t, b, m) = h.await;
            runtime = runtime.max(t);
            bytes += b;
            msgs += m;
        }
        let _ = sim;
        (runtime, bytes, msgs)
    });
    let secs = runtime_us / 1e6;
    BenchResult {
        bench,
        class,
        transport,
        nranks,
        iters,
        runtime_us,
        gbit_per_rank: (bytes as f64 * 8.0 / nranks as f64) / secs / 1e9,
        msgs_per_rank_s: (msgs as f64 / nranks as f64) / secs,
    }
}
