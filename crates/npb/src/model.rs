//! Benchmark identities, problem classes, and scaling rules.
//!
//! The kernels are *communication skeletons*: each reproduces its NPB
//! namesake's communication structure (who talks to whom, how often, how
//! many bytes) with compute phases modelled as calibrated virtual-time
//! delays. Problem sizes follow the NPB class tables, uniformly scaled
//! down (documented per kernel) so a full Fig. 6 campaign simulates in
//! seconds; relative runtimes — the figure's y-axis — are preserved.

/// NPB problem classes (subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Tiny smoke-test size.
    S,
    A,
    B,
}

impl Class {
    pub fn label(self) -> &'static str {
        match self {
            Class::S => "S",
            Class::A => "A",
            Class::B => "B",
        }
    }
}

/// The eight MPI NPB benchmarks the paper runs (Fig. 6, left to right).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bench {
    /// Integer sort: bucket histogram + all-to-all key exchange.
    /// Data- and message-intensive (the paper's worst case for IPoIB).
    Is,
    /// Embarrassingly parallel: almost no communication.
    Ep,
    /// Multigrid: halo exchanges across V-cycle levels.
    Mg,
    /// 3D FFT: global transposes (all-to-all of the whole grid).
    Ft,
    /// SSOR wavefront: many small pipelined neighbor messages.
    Lu,
    /// Conjugate gradient: few large exchanges + tiny dot-product
    /// allreduces (sees a slight boost under CoRD with turbo, §5).
    Cg,
    /// Block-tridiagonal ADI: face exchanges in three dimensions.
    Bt,
    /// Scalar-pentadiagonal ADI: like BT but more, smaller messages
    /// (simultaneously data- and message-intensive, §5).
    Sp,
}

impl Bench {
    pub const ALL: [Bench; 8] = [
        Bench::Is,
        Bench::Ep,
        Bench::Mg,
        Bench::Ft,
        Bench::Lu,
        Bench::Cg,
        Bench::Bt,
        Bench::Sp,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Bench::Is => "IS",
            Bench::Ep => "EP",
            Bench::Mg => "MG",
            Bench::Ft => "FT",
            Bench::Lu => "LU",
            Bench::Cg => "CG",
            Bench::Bt => "BT",
            Bench::Sp => "SP",
        }
    }

    /// Timed iterations (scaled down from the NPB defaults; each kernel's
    /// per-iteration pattern is complete, so fewer repetitions change only
    /// statistical smoothing, not the communication/compute ratio).
    pub fn default_iters(self, class: Class) -> usize {
        let base = match self {
            Bench::Is => 10,
            Bench::Ep => 4,
            Bench::Mg => 4,
            Bench::Ft => 6,
            Bench::Lu => 20,
            Bench::Cg => 12,
            Bench::Bt => 12,
            Bench::Sp => 24,
        };
        match class {
            Class::S => base.min(3),
            _ => base,
        }
    }

    /// Pick a legal rank count near `want` ("Each benchmark has limitations
    /// on the number of processes allowed for a run", §5): BT/SP need a
    /// square, LU a 2D grid, the rest a power of two.
    pub fn ranks_near(self, want: usize) -> usize {
        match self {
            Bench::Bt | Bench::Sp => {
                let mut s = 1;
                while (s + 1) * (s + 1) <= want {
                    s += 1;
                }
                s * s
            }
            _ => want.next_power_of_two() >> if want.is_power_of_two() { 0 } else { 1 },
        }
    }
}

/// 2D process grid (rows × cols) with rows ≥ cols, rows*cols = p.
pub fn grid_2d(p: usize) -> (usize, usize) {
    let mut cols = (p as f64).sqrt() as usize;
    while cols > 1 && !p.is_multiple_of(cols) {
        cols -= 1;
    }
    (p / cols, cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_constraints() {
        assert_eq!(Bench::Bt.ranks_near(36), 36);
        assert_eq!(Bench::Bt.ranks_near(40), 36);
        assert_eq!(Bench::Sp.ranks_near(10), 9);
        assert_eq!(Bench::Is.ranks_near(32), 32);
        assert_eq!(Bench::Lu.ranks_near(33), 32);
    }

    #[test]
    fn grid_factorization() {
        assert_eq!(grid_2d(32), (8, 4));
        assert_eq!(grid_2d(36), (6, 6));
        assert_eq!(grid_2d(7), (7, 1));
        assert_eq!(grid_2d(16), (4, 4));
    }

    #[test]
    fn labels_cover_fig6() {
        let labels: Vec<&str> = Bench::ALL.iter().map(|b| b.label()).collect();
        assert_eq!(labels, ["IS", "EP", "MG", "FT", "LU", "CG", "BT", "SP"]);
    }

    #[test]
    fn iters_scale_with_class() {
        assert!(Bench::Lu.default_iters(Class::S) <= 3);
        assert_eq!(Bench::Lu.default_iters(Class::A), 20);
    }
}
