//! The eight NPB communication skeletons.
//!
//! Every kernel is an async function executed by each rank. Compute phases
//! are virtual-time delays derived from the class's problem size divided
//! across ranks; communication uses the real `cord-mpi` protocols, so the
//! transport under test (RDMA / CoRD / IPoIB) shapes the runtime exactly
//! the way Fig. 6 measures.
//!
//! Scale note: problem sizes are the NPB class tables divided by 4 (and
//! compute constants calibrated to keep each kernel's communication
//! fraction in its published range); this keeps a full Fig. 6 campaign
//! tractable in simulation while preserving byte/message *ratios*.

use cord_mpi::{Comm, ReduceOp};

use crate::model::{grid_2d, Class};

fn payload(len: usize) -> Vec<u8> {
    vec![0x5A; len]
}

/// IS — integer bucket sort. Per iteration: local histogram, allreduce of
/// bucket counts, all-to-all key exchange, local ranking.
pub async fn is_iter(comm: &Comm, class: Class, iter: usize) {
    let keys_total: usize = match class {
        Class::S => 1 << 15,
        Class::A => 1 << 24,
        Class::B => 1 << 26,
    };
    let p = comm.size();
    let my_keys = keys_total / p;
    // Histogram pass (~random-access bound).
    comm.compute_ns(my_keys as f64 * 4.0).await;
    // Bucket-count allreduce (1024 buckets).
    let buckets = vec![1.0f64; 256];
    comm.allreduce(iter as u32 * 4, &buckets, ReduceOp::Sum)
        .await;
    // Key exchange: uniformly distributed keys → keys*4/P bytes per dest.
    let per_dest = (my_keys * 4 / p).max(16);
    let sends: Vec<Vec<u8>> = (0..p).map(|_| payload(per_dest)).collect();
    comm.alltoallv(iter as u32, sends).await;
    // Local ranking of received keys.
    comm.compute_ns(my_keys as f64 * 8.0).await;
}

/// EP — embarrassingly parallel Gaussian-pair generation; communication is
/// three tiny allreduces per (chunked) iteration.
pub async fn ep_iter(comm: &Comm, class: Class, iter: usize) {
    let samples: usize = match class {
        Class::S => 1 << 18,
        Class::A => 1 << 26,
        Class::B => 1 << 28,
    };
    let p = comm.size();
    comm.compute_ns((samples / p) as f64 * 3.0).await;
    let sums = vec![0.5f64; 10];
    comm.allreduce(iter as u32 * 4, &sums, ReduceOp::Sum).await;
}

/// MG — V-cycle multigrid: halo exchanges at every level (message sizes
/// shrink geometrically), one residual allreduce per iteration.
pub async fn mg_iter(comm: &Comm, class: Class, iter: usize) {
    let n: usize = match class {
        Class::S => 32,
        Class::A => 128,
        Class::B => 192,
    };
    let p = comm.size();
    let levels = n.trailing_zeros().max(3) as usize;
    // Smoothing + residual compute across the cycle (~2 sweeps of n^3/P).
    comm.compute_ns((n * n * n / p) as f64 * 7.0).await;
    let r = comm.rank();
    for lvl in 0..levels {
        let dim = (n >> lvl).max(4);
        // Face area per rank at this level (2D surface of the subdomain).
        let face = ((dim * dim * 8) as f64 / (p as f64).powf(2.0 / 3.0)) as usize;
        let face = face.clamp(64, 1 << 20);
        // Two neighbor exchanges per level (alternating dimension).
        for (d, shift) in [(0usize, 1usize), (1, p / 2)].into_iter() {
            let partner = match d {
                0 => r ^ shift,
                _ => (r + shift) % p,
            };
            if partner == r || partner >= p {
                continue;
            }
            let tag = (iter * 64 + lvl * 2 + d) as u32;
            comm.sendrecv(partner, tag, &payload(face), partner, tag)
                .await;
        }
        // Level-local smoothing.
        comm.compute_ns((dim * dim * dim / p).max(1) as f64 * 3.0)
            .await;
    }
    comm.allreduce(iter as u32 * 4 + 3, &[0.0f64; 4], ReduceOp::Sum)
        .await;
}

/// FT — 3D FFT: local FFT passes + a global transpose (all-to-all of the
/// full grid) per iteration.
pub async fn ft_iter(comm: &Comm, class: Class, iter: usize) {
    let elems: usize = match class {
        Class::S => 1 << 14,
        Class::A => 1 << 21, // 256×128×64 scaled
        Class::B => 1 << 23,
    };
    let p = comm.size();
    // Local 1-D FFT passes: ~5 N log N flops.
    let n_local = elems / p;
    comm.compute_ns(n_local as f64 * (elems as f64).log2() * 2.0)
        .await;
    // Transpose: each pair exchanges elems×16/P² bytes (complex doubles).
    let per_dest = (elems * 16 / (p * p)).max(64);
    let sends: Vec<Vec<u8>> = (0..p).map(|_| payload(per_dest)).collect();
    comm.alltoallv(iter as u32, sends).await;
    comm.compute_ns(n_local as f64 * (elems as f64).log2() * 1.0)
        .await;
}

/// LU — SSOR wavefront: pipelined small messages to the 2D-grid neighbors
/// at every pipeline stage (the message-intensive kernel).
pub async fn lu_iter(comm: &Comm, class: Class, iter: usize) {
    let n: usize = match class {
        Class::S => 12,
        Class::A => 64,
        Class::B => 102,
    };
    let p = comm.size();
    let (rows, cols) = grid_2d(p);
    let r = comm.rank();
    let (my_row, my_col) = (r / cols, r % cols);
    // Pencil exchange size: 5 doubles per boundary cell of the subdomain.
    let msg = ((n / rows.max(1)).max(2) * 5 * 8 * 4).max(160);
    let stages = 16usize; // pipeline depth per sweep (scaled from nz)
    for sweep in 0..2usize {
        for stage in 0..stages {
            let tag = (iter * 1024 + sweep * 512 + stage * 8) as u32;
            // Receive from north/west (lower sweep) or south/east (upper).
            let (dr, dc): (isize, isize) = if sweep == 0 { (-1, -1) } else { (1, 1) };
            let north = my_row.checked_add_signed(dr).filter(|&x| x < rows);
            let west = my_col.checked_add_signed(dc).filter(|&x| x < cols);
            if let Some(nr) = north {
                let src = nr * cols + my_col;
                comm.recv(src, tag).await;
            }
            if let Some(wc) = west {
                let src = my_row * cols + wc;
                comm.recv(src, tag + 1).await;
            }
            // Local relaxation for this stage.
            comm.compute_ns((n * n * n / p / stages).max(1) as f64 * 65.0)
                .await;
            let south = my_row.checked_add_signed(-dr).filter(|&x| x < rows);
            let east = my_col.checked_add_signed(-dc).filter(|&x| x < cols);
            let mut sends = Vec::new();
            if let Some(sr) = south {
                let dst = sr * cols + my_col;
                sends.push(comm.isend(dst, tag, payload(msg)));
            }
            if let Some(ec) = east {
                let dst = my_row * cols + ec;
                sends.push(comm.isend(dst, tag + 1, payload(msg)));
            }
            for s in sends {
                s.await;
            }
        }
    }
    comm.allreduce(iter as u32, &[0.0f64; 5], ReduceOp::Max)
        .await;
}

/// CG — conjugate gradient: per inner step a sparse matvec, one large
/// row-segment exchange, and tiny dot-product allreduces ("few large
/// messages", §5).
pub async fn cg_iter(comm: &Comm, class: Class, iter: usize) {
    let n: usize = match class {
        Class::S => 1400,
        Class::A => 14_000,
        Class::B => 75_000,
    };
    let nz_per_row = 50usize;
    let p = comm.size();
    let (rows, _cols) = grid_2d(p);
    let r = comm.rank();
    let inner_steps = 4usize; // scaled from NPB's 25
    for step in 0..inner_steps {
        // Sparse matvec over the local block.
        comm.compute_ns((n * nz_per_row / p) as f64 * 25.0).await;
        // Row-group vector exchange: segment of the iterate (large).
        let seg = (n * 8 / rows.max(1)).max(1024);
        // Symmetric exchange partner: XOR pairing for powers of two,
        // half-shift pairing otherwise (partner(partner(r)) == r always).
        let partner = if p.is_power_of_two() {
            r ^ (1 << (step % p.trailing_zeros() as usize))
        } else {
            let half = p / 2;
            if r < half * 2 {
                (r + half) % (half * 2)
            } else {
                r
            }
        };
        if partner != r && partner < p {
            let tag = (iter * 64 + step * 2) as u32;
            comm.sendrecv(partner, tag, &payload(seg), partner, tag)
                .await;
        }
        // Dot product.
        comm.allreduce(iter as u32 * 64 + step as u32 * 4, &[1.0], ReduceOp::Sum)
            .await;
    }
}

/// BT — block-tridiagonal ADI: per iteration, face exchanges with both
/// neighbors in each of three dimensions, with a solve between.
pub async fn bt_iter(comm: &Comm, class: Class, iter: usize) {
    adi_iter(comm, class, iter, 5, 3.2, 45.0).await;
}

/// SP — scalar-pentadiagonal ADI: same structure as BT but lighter compute
/// per cell and (relatively) more communication — the second
/// "simultaneously data- and message-intensive" kernel (§5).
pub async fn sp_iter(comm: &Comm, class: Class, iter: usize) {
    adi_iter(comm, class, iter, 9, 3.4, 21.0).await;
}

async fn adi_iter(
    comm: &Comm,
    class: Class,
    iter: usize,
    comps: usize,
    face_scale: f64,
    flop_ns: f64,
) {
    let n: usize = match class {
        Class::S => 12,
        Class::A => 64,
        Class::B => 102,
    };
    let p = comm.size();
    let (rows, cols) = grid_2d(p);
    let r = comm.rank();
    let (my_row, my_col) = (r / cols, r % cols);
    for dim in 0..3usize {
        // Face exchange with both neighbors along this sweep direction.
        let face = (((n * n * comps * 8) as f64 / (rows * cols) as f64) * face_scale) as usize;
        let face = face.max(256);
        let (fwd, bwd) = match dim % 2 {
            0 => {
                let f = ((my_row + 1) % rows) * cols + my_col;
                let b = ((my_row + rows - 1) % rows) * cols + my_col;
                (f, b)
            }
            _ => {
                let f = my_row * cols + (my_col + 1) % cols;
                let b = my_row * cols + (my_col + cols - 1) % cols;
                (f, b)
            }
        };
        let tag = (iter * 64 + dim * 8) as u32;
        if fwd != r {
            comm.sendrecv(fwd, tag, &payload(face), bwd, tag).await;
            comm.sendrecv(bwd, tag + 1, &payload(face), fwd, tag + 1)
                .await;
        }
        // Sweep solve.
        comm.compute_ns((n * n * n / p) as f64 * flop_ns).await;
    }
}
