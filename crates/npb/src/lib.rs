//! # cord-npb — NAS Parallel Benchmark communication skeletons
//!
//! The workload half of the paper's Fig. 6: the eight MPI NPB kernels
//! (IS, EP, MG, FT, LU, CG, BT, SP) expressed as communication skeletons
//! over `cord-mpi`, runnable over RDMA (bypass), CoRD, or IPoIB.
//!
//! The paper's characterizations these skeletons reproduce (§5):
//! * IS and SP: simultaneously data- and message-intensive — IPoIB's worst
//!   cases (up to 2× slowdown);
//! * EP: communicates very little — all transports tie;
//! * CG: few large messages — small IPoIB penalty, slight CoRD *boost*
//!   with turbo enabled (DVFS interaction);
//! * CoRD: near-zero overhead on every kernel.

pub mod kernels;
pub mod model;
pub mod runner;

pub use model::{grid_2d, Bench, Class};
pub use runner::{run_benchmark, run_iter, BenchResult};
