//! NPB skeleton tests: every kernel completes on every transport, and the
//! Fig. 6 runtime shape holds.

use cord_core::prelude::*;
use cord_mpi::MpiTransport;
use cord_npb::{run_benchmark, Bench, Class};

#[test]
fn all_kernels_complete_class_s_rdma() {
    for bench in Bench::ALL {
        let r = run_benchmark(
            system_l(),
            bench,
            Class::S,
            8,
            MpiTransport::Verbs(Dataplane::Bypass),
            1,
        );
        assert!(r.runtime_us > 0.0, "{}", bench.label());
        assert!(r.iters >= 1);
        // EP barely communicates; everything else must move real traffic.
        if bench != Bench::Ep {
            assert!(r.msgs_per_rank_s > 0.0, "{}", bench.label());
        }
    }
}

#[test]
fn all_kernels_complete_class_s_cord_and_ipoib() {
    for bench in Bench::ALL {
        for t in [MpiTransport::Verbs(Dataplane::Cord), MpiTransport::Ipoib] {
            let r = run_benchmark(system_l(), bench, Class::S, 4, t, 2);
            assert!(r.runtime_us > 0.0, "{} over {t}", bench.label());
        }
    }
}

#[test]
fn rank_constraints_are_applied() {
    let r = run_benchmark(
        system_l(),
        Bench::Bt,
        Class::S,
        10,
        MpiTransport::Verbs(Dataplane::Bypass),
        1,
    );
    assert_eq!(r.nranks, 9, "BT runs on a square rank count");
}

/// Fig. 6 in miniature (8 ranks, class A, IS + EP): CoRD ≈ RDMA while
/// IPoIB pays heavily on the data-intensive kernel and nothing on EP.
#[test]
fn fig6_shape_is_and_ep() {
    let run =
        |b: Bench, t: MpiTransport| run_benchmark(system_a(), b, Class::A, 8, t, 7).runtime_us;
    use MpiTransport::{Ipoib, Verbs};
    let is_rdma = run(Bench::Is, Verbs(Dataplane::Bypass));
    let is_cord = run(Bench::Is, Verbs(Dataplane::Cord));
    let is_ipoib = run(Bench::Is, Ipoib);
    let rel_cord = is_cord / is_rdma;
    let rel_ipoib = is_ipoib / is_rdma;
    assert!(
        (0.95..1.12).contains(&rel_cord),
        "IS CoRD relative runtime {rel_cord} (paper: ~1.0)"
    );
    // At 8 ranks the per-node IPoIB ceiling is shared 4 ways instead of
    // 16, so the penalty is milder than the paper's 128-rank 2×; the fig6
    // harness (32 ranks) reproduces the full factor.
    assert!(
        rel_ipoib > 1.25,
        "IS IPoIB relative runtime {rel_ipoib} (paper: up to 2×)"
    );

    let ep_rdma = run(Bench::Ep, Verbs(Dataplane::Bypass));
    let ep_cord = run(Bench::Ep, Verbs(Dataplane::Cord));
    let ep_ipoib = run(Bench::Ep, Ipoib);
    let ep_rel_cord = ep_cord / ep_rdma;
    let ep_rel_ipoib = ep_ipoib / ep_rdma;
    assert!(
        (0.9..1.03).contains(&ep_rel_cord),
        "EP CoRD {ep_rel_cord} (paper: slight boost)"
    );
    assert!(
        (0.9..1.1).contains(&ep_rel_ipoib),
        "EP IPoIB {ep_rel_ipoib} (paper: ~1.0, EP barely communicates)"
    );
}

#[test]
fn deterministic_runtimes() {
    let run = || {
        run_benchmark(
            system_a(),
            Bench::Mg,
            Class::S,
            4,
            MpiTransport::Verbs(Dataplane::Cord),
            3,
        )
        .runtime_us
    };
    assert_eq!(run(), run());
}
