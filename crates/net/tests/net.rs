//! Integration tests for the switched network: hop-by-hop timing, buffer
//! occupancy accounting, ECN marking, tail drop, incast behavior, and PFC
//! pause-frame semantics (watermark hysteresis, upstream parking,
//! head-of-line blocking, losslessness).

use cord_net::{EcnConfig, NetConfig, Network, PfcConfig, PortKind, Topology};
use cord_sim::sync::Receiver;
use cord_sim::{Sim, SimDuration};

use cord_hw::link::Frame;
use cord_hw::machine::LinkSpec;

fn spec() -> LinkSpec {
    LinkSpec {
        gbps: 100.0, // 80 ps/B
        propagation_ns: 200.0,
    }
}

fn frame(src: usize, dst: usize, wire_bytes: usize, flow: u64, payload: u32) -> Frame<u32> {
    Frame {
        src,
        dst,
        wire_bytes,
        flow,
        ecn: false,
        payload,
    }
}

fn build(sim: &Sim, nodes: usize, cfg: NetConfig) -> (Network<u32>, Vec<Receiver<Frame<u32>>>) {
    Network::new(sim, spec(), nodes, cfg)
}

#[test]
fn full_mesh_matches_ideal_fabric_timing() {
    let sim = Sim::new();
    let (net, mut rx) = build(&sim, 2, NetConfig::default());
    assert!(net.plan().is_none());
    let rx1 = rx.remove(1);
    let t = sim.block_on({
        let sim = sim.clone();
        async move {
            net.transmit(frame(0, 1, 1000, 7, 1));
            rx1.recv().await.unwrap();
            assert_eq!(net.total_marks(), 0);
            assert_eq!(net.total_drops(), 0);
            sim.now()
        }
    });
    // 1000 B * 80 ps + 200 ns — identical to cord-hw's mesh.
    assert_eq!(t.as_ns_f64(), 280.0);
}

#[test]
fn fat_tree_cross_leaf_costs_four_store_and_forward_hops() {
    let sim = Sim::new();
    let cfg = NetConfig::for_topology(Topology::FatTree { radix: 8 });
    let (net, mut rx) = build(&sim, 16, cfg);
    let rx12 = rx.remove(12);
    let rx1 = rx.remove(1);
    let (t_cross, t_local) = sim.block_on({
        let sim = sim.clone();
        async move {
            // 1250 B = 100 ns serialization per hop.
            net.transmit(frame(0, 12, 1250, 5, 1)); // cross-leaf: 4 links
            rx12.recv().await.unwrap();
            let t_cross = sim.now();
            net.transmit(frame(0, 1, 1250, 5, 2)); // same leaf: 2 links
            rx1.recv().await.unwrap();
            (t_cross, sim.now())
        }
    });
    assert_eq!(t_cross.as_ns_f64(), 4.0 * (100.0 + 200.0));
    assert_eq!(
        t_local.as_ns_f64() - t_cross.as_ns_f64(),
        2.0 * (100.0 + 200.0)
    );
}

#[test]
fn dumbbell_serializes_cross_traffic_at_bottleneck_rate() {
    let sim = Sim::new();
    let cfg = NetConfig::for_topology(Topology::Dumbbell {
        bottleneck_gbps: 10.0, // 800 ps/B: 1250 B = 1 µs
    });
    let (net, mut rx) = build(&sim, 8, cfg);
    let rx6 = rx.remove(6);
    let times = sim.block_on({
        let sim = sim.clone();
        async move {
            net.transmit(frame(0, 6, 1250, 1, 10));
            net.transmit(frame(1, 6, 1250, 1, 11));
            let mut out = Vec::new();
            for _ in 0..2 {
                let f = rx6.recv().await.unwrap();
                out.push((f.payload, sim.now().as_ns_f64()));
            }
            out
        }
    });
    // Host egress 100 ns + prop 200 → both reach the left switch at 300.
    // Bottleneck serializes 1 µs each, then 200 prop + 100 downlink + 200.
    assert_eq!(times[0], (10, 300.0 + 1000.0 + 200.0 + 100.0 + 200.0));
    assert_eq!(times[1], (11, times[0].1 + 1000.0));
}

#[test]
fn buffer_occupancy_rises_drops_tail_and_drains_to_zero() {
    let sim = Sim::new();
    let mut cfg = NetConfig::for_topology(Topology::Dumbbell {
        bottleneck_gbps: 10.0,
    });
    cfg.buffer_bytes = 2500; // room for exactly two 1250 B frames
    cfg.ecn.enabled = false;
    let (net, mut rx) = build(&sim, 8, cfg);
    let rx6 = rx.remove(6);
    sim.block_on({
        let sim = sim.clone();
        async move {
            // Three frames hit the bottleneck simultaneously at t=300.
            for srcf in 0..3 {
                net.transmit(frame(srcf, 6, 1250, 1, srcf as u32));
            }
            let bott = net.plan().unwrap().bottleneck_port(true);
            sim.sleep(SimDuration::from_ns(350)).await;
            // Two queued, third tail-dropped.
            assert_eq!(net.port_queued_bytes(bott), 2500);
            assert_eq!(net.port_drops(bott), 1);
            assert_eq!(net.port_forwarded(bott), 2);
            assert_eq!(net.total_drops(), 1);
            // Only the two accepted frames arrive.
            let a = rx6.recv().await.unwrap();
            let b = rx6.recv().await.unwrap();
            assert_eq!((a.payload, b.payload), (0, 1));
            assert!(rx6.try_recv().is_none());
            // All queues drained.
            assert_eq!(net.port_queued_bytes(bott), 0);
        }
    });
}

#[test]
fn ecn_marks_frames_arriving_at_deep_queues() {
    let sim = Sim::new();
    let mut cfg = NetConfig::for_topology(Topology::Dumbbell {
        bottleneck_gbps: 10.0,
    });
    cfg.ecn = EcnConfig {
        enabled: true,
        threshold_bytes: 1000,
    };
    let (net, mut rx) = build(&sim, 8, cfg);
    let rx6 = rx.remove(6);
    sim.block_on(async move {
        net.transmit(frame(0, 6, 1250, 1, 0));
        net.transmit(frame(1, 6, 1250, 1, 1));
        let first = rx6.recv().await.unwrap();
        let second = rx6.recv().await.unwrap();
        // First frame saw an empty queue; second arrived behind 1250 B.
        assert!(!first.ecn);
        assert!(second.ecn);
        let bott = net.plan().unwrap().bottleneck_port(true);
        assert_eq!(net.port_marks(bott), 1);
        assert_eq!(net.total_marks(), 1);
    });
}

#[test]
fn fat_tree_incast_collapses_onto_the_destination_downlink() {
    // Senders on distinct leaves all target host 0: their paths disjointly
    // cross the spines but must share host 0's downlink, so completion
    // time grows with fan-in.
    fn last_arrival(fan_in: usize) -> f64 {
        let sim = Sim::new();
        let cfg = NetConfig::for_topology(Topology::FatTree { radix: 8 });
        let (net, mut rx) = build(&sim, 16, cfg);
        let rx0 = rx.remove(0);
        sim.block_on({
            let sim = sim.clone();
            async move {
                for s in 0..fan_in {
                    // Hosts 4, 5, 6, ... sit on other leaves than host 0
                    // only for s >= 4; use one sender per leaf slot.
                    net.transmit(frame(4 + s, 0, 1250, s as u64, s as u32));
                }
                for _ in 0..fan_in {
                    rx0.recv().await.unwrap();
                }
                let down0 = net.plan().unwrap().host_down_port(0);
                assert_eq!(net.port_forwarded(down0), fan_in as u64);
                sim.now().as_ns_f64()
            }
        })
    }
    let t2 = last_arrival(2);
    let t4 = last_arrival(4);
    let t8 = last_arrival(8);
    assert!(t4 > t2 && t8 > t4, "incast must queue: {t2} {t4} {t8}");
    // Each extra frame costs at least one more 100 ns serialization on the
    // shared downlink (upstream ECMP collisions may add more).
    assert!(t8 - t4 >= 4.0 * 100.0, "t4={t4} t8={t8}");
}

#[test]
fn switched_loopback_stays_internal() {
    let sim = Sim::new();
    let cfg = NetConfig::for_topology(Topology::FatTree { radix: 8 });
    let (net, mut rx) = build(&sim, 16, cfg);
    let rx0 = rx.remove(0);
    let t = sim.block_on({
        let sim = sim.clone();
        async move {
            net.transmit(frame(0, 0, 1250, 1, 9));
            rx0.recv().await.unwrap();
            sim.now()
        }
    });
    assert_eq!(t.as_ns_f64(), 100.0);
}

#[test]
fn pfc_pause_asserts_at_xoff_and_releases_at_xon_with_hysteresis() {
    let sim = Sim::new();
    let mut cfg = NetConfig::for_topology(Topology::Dumbbell {
        bottleneck_gbps: 10.0, // 800 ps/B: 1250 B = 1 µs
    });
    cfg.ecn.enabled = false;
    cfg.pfc = PfcConfig {
        enabled: true,
        xoff_bytes: 3750, // three 1250 B frames
        xon_bytes: 1250,  // one frame
    };
    let (net, mut rx) = build(&sim, 8, cfg);
    let rx6 = rx.remove(6);
    sim.block_on({
        let sim = sim.clone();
        async move {
            let bott = net.plan().unwrap().bottleneck_port(true);
            // Three frames from node 0 arrive at the bottleneck at t=300,
            // 400, 500 ns; occupancy hits XOFF on the third. The pause
            // signal takes one 200 ns propagation to reach the feeders,
            // so it is *observed* upstream at t=700.
            for i in 0..3 {
                net.transmit(frame(0, 6, 1250, 1, i));
            }
            sim.sleep(SimDuration::from_ns(550)).await;
            assert!(net.port_paused(bott), "XOFF at the watermark");
            assert_eq!(net.port_pauses(bott), 1);
            // A fourth frame from another host, launched after the pause
            // frame has crossed the link, parks at its egress link: the
            // bottleneck's queue must not grow while paused.
            sim.sleep(SimDuration::from_ns(200)).await; // t=750
            net.transmit(frame(1, 6, 1250, 1, 3));
            sim.sleep(SimDuration::from_ns(200)).await; // t=950
            assert_eq!(net.port_queued_bytes(bott), 3750, "feeder parked");
            // First frame drains at t=1300: occupancy 2500 sits between
            // XON and XOFF — hysteresis keeps the pause asserted.
            sim.sleep(SimDuration::from_ns(450)).await; // t=1400
            assert_eq!(net.port_queued_bytes(bott), 2500);
            assert!(net.port_paused(bott), "pause holds inside the band");
            // Second frame drains at t=2300: occupancy 1250 <= XON
            // releases the pause; the XON signal lands at t=2500 and
            // wakes the parked feeder.
            sim.sleep(SimDuration::from_ns(1000)).await; // t=2400
            assert!(!net.port_paused(bott), "XON releases the pause");
            assert_eq!(net.port_pauses(bott), 1, "one coalesced episode");
            // Episode ran t=500 to t=2300.
            assert_eq!(net.total_pause_time(), SimDuration::from_ns(1800));
            assert_eq!(net.port_pause_time(bott), SimDuration::from_ns(1800));
            // Everything is delivered, in order, with zero drops.
            let order: Vec<u32> = [rx6.recv().await, rx6.recv().await, rx6.recv().await]
                .into_iter()
                .map(|f| f.unwrap().payload)
                .collect();
            assert_eq!(order, [0, 1, 2]);
            assert_eq!(rx6.recv().await.unwrap().payload, 3);
            assert_eq!(net.total_drops(), 0);
            assert_eq!(net.port_queued_bytes(bott), 0);
            assert_eq!(net.total_pauses(), 1);
        }
    });
}

/// Incast burst toward host 0 with a victim frame from the same leaf bound
/// for host 1, on a fat tree with small buffers. With PFC the fabric is
/// lossless but the victim is head-of-line blocked behind parked incast
/// frames; without PFC the same storm tail-drops. `storm = false` gives
/// the victim's uncontended path latency as the HoL baseline.
fn hol_run(pfc: bool, storm: bool) -> (f64, u64, u64, Vec<u64>) {
    let sim = Sim::new();
    let mut cfg = NetConfig::for_topology(Topology::FatTree { radix: 8 });
    cfg.buffer_bytes = 5000; // four 1250 B frames per port without PFC
    cfg.ecn.enabled = false;
    cfg.pfc = PfcConfig {
        enabled: pfc,
        xoff_bytes: 2500,
        xon_bytes: 1250,
    };
    let (net, mut rx) = build(&sim, 16, cfg);
    let rx1 = rx.remove(1);
    let rx0 = rx.remove(0);
    sim.block_on({
        let sim = sim.clone();
        async move {
            // Senders 5, 6, 7 share leaf 1 with the victim (node 4);
            // sixteen flows each cover every spine, so the victim's uplink
            // and its spine-down port both carry parked incast frames.
            let sent = if storm { 48 } else { 0 };
            if storm {
                for s in 5..8 {
                    for f in 0..16u64 {
                        net.transmit(frame(s, 0, 1250, f, 1));
                    }
                }
            }
            // The victim launches mid-storm, once pauses have asserted.
            // Under PFC it cannot be dropped, so awaiting it is safe; on
            // the lossy fabric it might be, so only the PFC runs await it.
            sim.sleep(SimDuration::from_ns(1500)).await;
            net.transmit(frame(4, 1, 1250, 3, 99));
            let victim_ns = if pfc {
                let victim = rx1.recv().await.unwrap();
                assert_eq!(victim.payload, 99);
                sim.now().as_ns_f64()
            } else {
                0.0
            };
            // Let the storm drain fully, then account for every frame:
            // delivered (either receiver) plus tail-dropped must cover the
            // storm and the victim.
            sim.sleep(SimDuration::from_us(100)).await;
            let plan = net.plan().unwrap();
            let mut delivered = u64::from(pfc); // victim consumed above
            while rx0.try_recv().is_some() {
                delivered += 1;
            }
            while rx1.try_recv().is_some() {
                delivered += 1;
            }
            assert_eq!(delivered + net.total_drops(), sent + 1);
            let spine_pauses: Vec<u64> = (0..plan.num_ports())
                .filter(|&p| matches!(plan.port_kind(p), PortKind::SpineDown { .. }))
                .map(|p| net.port_pauses(p))
                .collect();
            (
                victim_ns,
                net.total_drops(),
                net.port_pauses(plan.host_down_port(0)),
                spine_pauses,
            )
        }
    })
}

#[test]
fn pfc_is_lossless_but_head_of_line_blocks_the_victim() {
    let (victim_base_ns, _, _, _) = hol_run(true, false);
    let (victim_pfc_ns, drops_pfc, down0_pauses, spine_pauses) = hol_run(true, true);
    let (_, drops_lossy, _, _) = hol_run(false, true);
    // Lossless: every frame survives, and the hot downlink paused its
    // feeders; the pause propagated upstream into the spine layer.
    assert_eq!(drops_pfc, 0, "PFC must not drop");
    assert!(down0_pauses >= 1, "hot downlink must assert pause");
    assert!(
        spine_pauses.iter().sum::<u64>() >= 1,
        "pause must propagate upstream: {spine_pauses:?}"
    );
    // The same storm on the lossy fabric tail-drops instead of pausing.
    assert!(drops_lossy > 0, "small lossy buffers must tail-drop");
    // The price of losslessness: the victim, bound for an idle host, is
    // head-of-line blocked behind parked incast frames on its shared
    // uplink/spine ports — far beyond its uncontended path latency.
    assert!(
        victim_pfc_ns > 2.0 * victim_base_ns,
        "HoL blocking: victim {victim_pfc_ns} ns in the storm vs {victim_base_ns} ns uncontended"
    );
}

#[test]
fn pfc_runs_are_deterministic() {
    let a = hol_run(true, true);
    let b = hol_run(true, true);
    assert_eq!(a, b);
}

#[test]
fn switch_death_drops_inflight_frames_and_reroutes_new_ones() {
    let sim = Sim::new();
    let cfg = NetConfig::for_topology(Topology::FatTree { radix: 8 });
    let (net, mut rx) = build(&sim, 16, cfg);
    let rx12 = rx.remove(12);
    sim.block_on({
        let sim = sim.clone();
        async move {
            // Host 0 sits on leaf 0, so its leaf-up port index equals the
            // spine number; pick a flow whose ECMP primary is spine 0.
            let plan = net.plan().unwrap();
            let flow = (0..64u64).find(|&f| plan.route(0, 12, f)[0] == 0).unwrap();
            // Launch a frame down that path, then kill spine 0 while the
            // frame is still crossing the leaf→spine link: it arrives at
            // a dead spine port and is lost.
            net.transmit(frame(0, 12, 1250, flow, 1));
            sim.sleep(SimDuration::from_ns(400)).await;
            net.kill_spine(0);
            sim.sleep(SimDuration::from_us(2)).await;
            assert!(rx12.try_recv().is_none(), "in-flight frame must die");
            assert_eq!(net.fault_dead_drops(), 1);
            assert_eq!(net.fault_reroutes(), 0);
            // The same flow transmitted after the death reroutes around
            // the corpse and arrives.
            net.transmit(frame(0, 12, 1250, flow, 2));
            assert_eq!(rx12.recv().await.unwrap().payload, 2);
            assert_eq!(net.fault_reroutes(), 1);
            assert_eq!(net.total_drops(), 0, "reroute, not tail drop");
        }
    });
}

#[test]
fn host_link_flap_drops_lossy_and_parks_lossless() {
    // Lossy (analytic) path: frames touching a downed link die at
    // transmit and are counted as dead-hardware drops.
    let sim = Sim::new();
    let cfg = NetConfig::for_topology(Topology::FatTree { radix: 8 });
    let (net, mut rx) = build(&sim, 16, cfg);
    let rx12 = rx.remove(12);
    sim.block_on({
        let sim = sim.clone();
        async move {
            net.set_host_link_down(0, true);
            net.transmit(frame(0, 12, 1250, 1, 1));
            net.transmit(frame(12, 0, 1250, 1, 2));
            sim.sleep(SimDuration::from_us(2)).await;
            assert!(rx12.try_recv().is_none());
            assert_eq!(net.fault_dead_drops(), 2);
            net.set_host_link_down(0, false);
            net.transmit(frame(0, 12, 1250, 1, 3));
            assert_eq!(rx12.recv().await.unwrap().payload, 3);
        }
    });

    // Lossless (PFC) path: the downed link parks the host's serializer
    // instead — every frame waits out the flap and then arrives, in
    // order, with nothing lost.
    let sim = Sim::new();
    let mut cfg = NetConfig::for_topology(Topology::FatTree { radix: 8 });
    cfg.pfc.enabled = true;
    let (net, mut rx) = build(&sim, 16, cfg);
    let rx12 = rx.remove(12);
    sim.block_on({
        let sim = sim.clone();
        async move {
            net.set_host_link_down(0, true);
            for i in 0..3 {
                net.transmit(frame(0, 12, 1250, 1, i));
            }
            sim.sleep(SimDuration::from_us(5)).await;
            assert!(rx12.try_recv().is_none(), "link is dark");
            assert_eq!(net.fault_dead_drops(), 0, "lossless: parked, not lost");
            net.set_host_link_down(0, false);
            for i in 0..3 {
                assert_eq!(rx12.recv().await.unwrap().payload, i);
            }
        }
    });
}

#[test]
fn forced_pause_wedges_the_fabric_until_the_watchdog_breaks_it() {
    let sim = Sim::new();
    let mut cfg = NetConfig::for_topology(Topology::Dumbbell {
        bottleneck_gbps: 10.0,
    });
    cfg.pfc.enabled = true;
    let (net, mut rx) = build(&sim, 8, cfg);
    let rx6 = rx.remove(6);
    sim.block_on({
        let sim = sim.clone();
        async move {
            let bott = net.plan().unwrap().bottleneck_port(true);
            // Wedge the bottleneck with no congestion at all, wait for
            // the pause signal to propagate, then transmit: the frame
            // parks at its host egress link indefinitely.
            net.force_pause(bott, true);
            sim.sleep(SimDuration::from_ns(250)).await;
            net.transmit(frame(0, 6, 1250, 1, 7));
            sim.sleep(SimDuration::from_us(20)).await;
            assert!(rx6.try_recv().is_none(), "fabric is wedged");
            assert!(net.port_paused(bott));
            // A scan below the stuck threshold sees no deadlock; one
            // above it breaks the wedge and the frame flows.
            assert_eq!(net.pfc_watchdog_scan(SimDuration::from_us(100)), 0);
            assert_eq!(net.pfc_watchdog_scan(SimDuration::from_us(10)), 1);
            assert!(!net.port_paused(bott));
            assert_eq!(rx6.recv().await.unwrap().payload, 7);
            // Pause time covers the whole wedge, and the episode count
            // pins the pathology.
            assert!(net.port_pause_time(bott) >= SimDuration::from_us(20));
            assert_eq!(net.port_pauses(bott), 1);
            assert_eq!(net.total_drops(), 0);
        }
    });
}

#[test]
fn same_seed_switched_runs_are_identical() {
    fn run() -> Vec<(u32, u64)> {
        let sim = Sim::new();
        let cfg = NetConfig::for_topology(Topology::FatTree { radix: 8 });
        let (net, mut rx) = build(&sim, 16, cfg);
        let rx0 = rx.remove(0);
        sim.block_on({
            let sim = sim.clone();
            async move {
                for s in 1..8 {
                    net.transmit(frame(s, 0, 1250 + s * 10, s as u64, s as u32));
                }
                let mut out = Vec::new();
                for _ in 1..8 {
                    let f = rx0.recv().await.unwrap();
                    out.push((f.payload, sim.now().as_ps()));
                }
                out
            }
        })
    }
    assert_eq!(run(), run());
}
