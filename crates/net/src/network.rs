//! The runtime network: topology-pluggable frame transport.
//!
//! [`Network`] is what `cord-nic` transmits through. For
//! [`Topology::FullMesh`] it delegates to `cord-hw`'s ideal mesh
//! ([`Fabric`]) so default results stay bit-comparable with the seed
//! reproduction. For switched topologies it models every switch output
//! port as a store-and-forward FIFO with a finite shared buffer:
//!
//! * **Queueing** — a frame occupies its output port for `wire_bytes` at
//!   the port's line rate; frames behind it wait. Crossing a switch adds
//!   one propagation delay per physical link.
//! * **Finite buffers** — a frame arriving at a port whose queued bytes
//!   would exceed `buffer_bytes` is tail-dropped (counted per port). RC
//!   has no retransmit timer in this model, so experiments that want loss
//!   should use UD or frame-level harnesses; the default buffer is large
//!   enough that windowed workloads never drop.
//! * **ECN** — when a frame arrives at a port whose queue is at or above
//!   `threshold_bytes`, its ECN bit is set (DCQCN-style marking on egress
//!   queue depth). The receiving NIC echoes a CNP to the sender, which is
//!   where `cord-nic`'s DCQCN rate limiter reacts.
//! * **PFC** ([`PfcConfig`]) — lossless operation: when a port's queue
//!   crosses the XOFF watermark it asserts pause toward the entities that
//!   feed it (upstream switch ports and host egress links). A paused
//!   feeder parks its serializer instead of launching its head frame, so
//!   frames behind that head — including *victim* flows bound for
//!   uncongested ports — are head-of-line blocked, and the backlog
//!   propagates upstream hop by hop all the way into the hosts' egress
//!   queues (the pause-storm pathology DCQCN exists to avoid). The pause
//!   de-asserts once the queue drains to the XON watermark (hysteresis).
//!   With PFC enabled frames are never tail-dropped; the gap between
//!   `xoff_bytes` and `buffer_bytes` is the headroom that absorbs frames
//!   launched while the pause signal is in flight: XOFF/XON transitions
//!   reach upstream feeders one propagation delay after they assert,
//!   like a real pause frame crossing the link.
//! * **Faults** — a runtime fault plane (driven by the `cord-chaos`
//!   crate) can down or degrade host links, kill a fat-tree spine
//!   (subsequent cross-leaf paths reroute deterministically around it;
//!   frames on dead hardware are counted as lost), wedge pause state,
//!   and break PFC deadlocks with a no-progress watchdog. With no fault
//!   injected the hot path pays one predictable branch, schedules zero
//!   extra events, and results stay byte-identical to a fault-free
//!   build.
//!
//! Everything is deterministic: routing is a pure hash, queues are
//! analytic FIFOs (event-driven FIFOs under PFC), and event scheduling
//! order follows transmit order; parked feeders wake in park order.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

use cord_hw::link::{Fabric, Frame};
use cord_hw::machine::LinkSpec;
use cord_sim::sync::{channel, Receiver, Sender};
use cord_sim::{
    transmission_time, FifoResource, Sim, SimDuration, SimTime, Subsystem, Trace, TraceKind,
};

use crate::route::{PortKind, RoutePlan, Topology};

/// ECN marking knobs for switch output ports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EcnConfig {
    pub enabled: bool,
    /// Mark arriving frames when the port's queue holds at least this many
    /// bytes (DCQCN's K threshold).
    pub threshold_bytes: usize,
}

impl Default for EcnConfig {
    fn default() -> Self {
        EcnConfig {
            enabled: true,
            threshold_bytes: 64 << 10,
        }
    }
}

/// Priority-flow-control (pause frame) knobs for switch ports.
///
/// Watermarks follow the usual lossless-Ethernet discipline:
/// `xon_bytes < xoff_bytes < buffer_bytes`, with the ECN threshold below
/// XOFF so DCQCN (when armed) reacts before pauses assert.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PfcConfig {
    pub enabled: bool,
    /// Assert pause toward upstream feeders when a port's queue reaches
    /// this many bytes.
    pub xoff_bytes: usize,
    /// De-assert (resume upstream feeders) once the queue drains to this
    /// level — the hysteresis band that prevents pause flapping.
    pub xon_bytes: usize,
}

impl Default for PfcConfig {
    fn default() -> Self {
        PfcConfig {
            enabled: false,
            xoff_bytes: 128 << 10,
            xon_bytes: 64 << 10,
        }
    }
}

/// Path-selection policy for fat-tree cross-leaf traffic.
///
/// [`Routing::Ecmp`] (the default) hashes `(src, dst, flow)` once, so a
/// QP's whole lifetime rides one spine — the seed behavior every existing
/// result is pinned against. [`Routing::Spray`] re-selects the spine *per
/// packet* via [`RoutePlan::spray_spine`], preferring the least-congested
/// uplink of the source leaf; it reorders fragments by design, so pair it
/// with a reorder-tolerant receiver (`cord-nic`'s selective repeat).
/// Topologies with a single path per node pair (same-leaf, dumbbell,
/// full mesh) behave identically under both policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Routing {
    #[default]
    Ecmp,
    Spray,
}

impl fmt::Display for Routing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Routing::Ecmp => write!(f, "ecmp"),
            Routing::Spray => write!(f, "spray"),
        }
    }
}

/// Complete network configuration: shape + queue behavior.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetConfig {
    pub topology: Topology,
    pub ecn: EcnConfig,
    /// Per-output-port buffer capacity in bytes (tail drop beyond it).
    /// Ignored as a drop bound when PFC is enabled (lossless mode).
    pub buffer_bytes: usize,
    /// Lossless-fabric pause frames (off by default: the seed's lossy
    /// tail-drop behavior).
    pub pfc: PfcConfig,
    /// Path selection for fat-tree cross-leaf traffic (ECMP by default:
    /// byte-identical to every pre-spray result).
    pub routing: Routing,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            topology: Topology::FullMesh,
            ecn: EcnConfig::default(),
            buffer_bytes: 16 << 20,
            pfc: PfcConfig::default(),
            routing: Routing::Ecmp,
        }
    }
}

impl NetConfig {
    /// Default queue knobs for a given shape.
    pub fn for_topology(topology: Topology) -> Self {
        NetConfig {
            topology,
            ..NetConfig::default()
        }
    }
}

/// One switch output port: FIFO serializer + occupancy accounting.
///
/// Occupancy is settled *lazily*: instead of scheduling a drain timer per
/// frame (one extra executor event per frame per hop), each accepted frame
/// pushes its `(serialization end, bytes)` onto `inflight`, and
/// [`Port::settle`] walks the FIFO from the front whenever occupancy is
/// next observed — on the arrival path or through a stats accessor.
/// Virtual time is monotone and every observation settles first, so at
/// distinct instants the occupancy any event sees matches the eager-timer
/// scheme exactly. On an *exact tie* — a frame's serialization ending at
/// the same picosecond another frame arrives — settling counts the ending
/// frame as drained (`end <= now`), a fixed drain-before-arrival order,
/// where the old per-frame drain event resolved the tie by registration
/// sequence (either order, depending on scheduling history). The full
/// topology×cc loadgen matrix and all three simbench scenarios reproduce
/// byte-identically under this rule; revalidate both when touching it.
struct Port {
    fifo: FifoResource,
    gbps: f64,
    queued: Cell<usize>,
    /// Frames accepted but not yet fully serialized: (grant end, bytes).
    inflight: RefCell<VecDeque<(SimTime, u32)>>,
    marks: Cell<u64>,
    drops: Cell<u64>,
    forwarded: Cell<u64>,
}

impl Port {
    /// Retire every in-flight frame whose serialization completed at or
    /// before `now`, releasing its buffer bytes.
    fn settle(&self, now: SimTime) {
        let mut inflight = self.inflight.borrow_mut();
        while let Some(&(end, wire)) = inflight.front() {
            if end > now {
                break;
            }
            inflight.pop_front();
            self.queued.set(self.queued.get() - wire as usize);
        }
    }
}

/// Which entity feeds a paused port (for the waiter list).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FeederId {
    /// A host's egress link.
    Host(usize),
    /// An upstream switch output port.
    Port(usize),
}

/// One PFC-mode serializer: an explicit frame FIFO plus busy/parked state.
///
/// The analytic [`FifoResource`] grants service intervals eagerly at
/// enqueue time, which cannot model a serializer that must *stop* when its
/// downstream asserts pause. Under PFC every entity that serializes frames
/// (host egress links and switch output ports) runs this event-driven
/// queue instead: the head frame is launched only when the next-hop port
/// is not asserting XOFF, otherwise the whole feeder parks — which is
/// exactly how pause frames head-of-line-block victim traffic queued
/// behind a frame bound for the congested port.
struct FeederQ<T> {
    q: RefCell<VecDeque<Box<HopState<T>>>>,
    busy: Cell<bool>,
    parked: Cell<bool>,
}

impl<T> Default for FeederQ<T> {
    fn default() -> Self {
        FeederQ {
            q: RefCell::new(VecDeque::new()),
            busy: Cell::new(false),
            parked: Cell::new(false),
        }
    }
}

/// PFC pause state for one switch output port.
struct PfcPort<T> {
    feeder: FeederQ<T>,
    /// Locally asserting pause (the switch's own view; pause accounting
    /// and the deadlock watchdog run off this).
    xoff: Cell<bool>,
    /// Pause state as *observed* by upstream feeders: transitions lag
    /// `xoff` by one propagation delay (the pause frame crossing the
    /// link), so frames already launched in that window still land — the
    /// traffic the XOFF/buffer headroom exists to absorb.
    xoff_seen: Cell<bool>,
    /// Transition counter: each in-flight pause signal carries the epoch
    /// it was sent under and is discarded once superseded.
    epoch: Cell<u32>,
    /// Pause wedged on by the fault plane (exempt from the XON drain
    /// rule; only [`Switched::force_pause`] or the watchdog clears it).
    forced: Cell<bool>,
    pause_since: Cell<SimTime>,
    /// XOFF assertions (pause frames sent upstream, coalesced per episode).
    pause_events: Cell<u64>,
    /// Cumulative time spent asserting pause (completed episodes).
    pause_total: Cell<SimDuration>,
    /// Feeders parked on this port's XON, woken in park order.
    waiters: RefCell<VecDeque<FeederId>>,
}

impl<T> Default for PfcPort<T> {
    fn default() -> Self {
        PfcPort {
            feeder: FeederQ::default(),
            xoff: Cell::new(false),
            xoff_seen: Cell::new(false),
            epoch: Cell::new(0),
            forced: Cell::new(false),
            pause_since: Cell::new(SimTime::ZERO),
            pause_events: Cell::new(0),
            pause_total: Cell::new(SimDuration::ZERO),
            waiters: RefCell::new(VecDeque::new()),
        }
    }
}

/// Runtime fault-plane state for a switched fabric, mutated by the
/// `cord-chaos` crate through [`Network`]'s fault API.
///
/// Always allocated, but `active` stays `false` until the first
/// injection, so the healthy hot path pays exactly one predictable branch
/// per check and schedules zero extra events — a run that never injects a
/// fault is byte-identical to a build without this struct (revalidated by
/// the loadgen matrix and the simbench digest in CI).
struct FaultState {
    /// Latched by the first injection; never cleared (a *cleared* fault
    /// still leaves history in the counters below).
    active: Cell<bool>,
    /// Host links administratively down (link flap).
    host_down: Vec<Cell<bool>>,
    /// Host-egress line-rate multiplier (1.0 = healthy).
    host_rate: Vec<Cell<f64>>,
    /// Extra one-way latency on the host's egress hop, ns.
    host_extra_ns: Vec<Cell<f64>>,
    /// Switch ports gone dark (switch death).
    port_dead: Vec<Cell<bool>>,
    /// Bitmask of dead fat-tree spines, consulted by reroute.
    dead_spines: Cell<u64>,
    /// Frames lost to dead hardware: dead ports, downed host links, and
    /// serializer queues stranded by a switch death.
    dead_drops: Cell<u64>,
    /// Frames whose path avoided a dead spine via deterministic reroute.
    reroutes: Cell<u64>,
}

impl FaultState {
    fn new(nodes: usize, ports: usize) -> FaultState {
        FaultState {
            active: Cell::new(false),
            host_down: (0..nodes).map(|_| Cell::new(false)).collect(),
            host_rate: (0..nodes).map(|_| Cell::new(1.0)).collect(),
            host_extra_ns: (0..nodes).map(|_| Cell::new(0.0)).collect(),
            port_dead: (0..ports).map(|_| Cell::new(false)).collect(),
            dead_spines: Cell::new(0),
            dead_drops: Cell::new(0),
            reroutes: Cell::new(0),
        }
    }

    fn dead_drop(&self) {
        self.dead_drops.set(self.dead_drops.get() + 1);
    }
}

/// Event-driven serializer state, allocated only when PFC is enabled.
struct PfcFabric<T> {
    hosts: Vec<FeederQ<T>>,
    ports: Vec<PfcPort<T>>,
}

struct Switched<T> {
    sim: Sim,
    spec: LinkSpec,
    cfg: NetConfig,
    plan: RoutePlan,
    host_egress: Vec<FifoResource>,
    ports: Vec<Port>,
    ingress_tx: Vec<Sender<Frame<T>>>,
    /// `Some` iff `cfg.pfc.enabled`: the pause-aware serialization path.
    pfc: Option<PfcFabric<T>>,
    /// Per-packet sequence for spray selection, incremented once per
    /// routed frame. Transmit order is deterministic, so the counter —
    /// and therefore every spray decision — is too.
    spray_seq: Cell<u64>,
    /// Fault-plane admin state (inert until the first injection).
    faults: FaultState,
    /// Observability sink: port occupancy, drops, pause transitions.
    trace: Trace,
}

enum Kind<T> {
    Mesh(Fabric<T>),
    Switched(Rc<Switched<T>>),
}

/// Topology-pluggable frame transport connecting `n` nodes.
pub struct Network<T> {
    kind: Kind<T>,
}

impl<T: 'static> Network<T> {
    /// Build the network; returns it plus each node's ingress receiver.
    /// Panics if `cfg.topology` fails [`Topology::validate`] — validate
    /// specs before building.
    pub fn new(
        sim: &Sim,
        spec: LinkSpec,
        nodes: usize,
        cfg: NetConfig,
    ) -> (Self, Vec<Receiver<Frame<T>>>) {
        Self::new_traced(sim, spec, nodes, cfg, Trace::disabled())
    }

    /// [`Network::new`] with an observability sink: port occupancy,
    /// drops, and pause transitions are emitted as typed trace events
    /// (one predictable branch per event when the sink is disabled).
    pub fn new_traced(
        sim: &Sim,
        spec: LinkSpec,
        nodes: usize,
        cfg: NetConfig,
        trace: Trace,
    ) -> (Self, Vec<Receiver<Frame<T>>>) {
        cfg.topology
            .validate(nodes)
            .expect("topology validated before network build");
        match cfg.topology {
            Topology::FullMesh => {
                let (fab, rxs) = Fabric::new_traced(sim, spec, nodes, trace);
                (
                    Network {
                        kind: Kind::Mesh(fab),
                    },
                    rxs,
                )
            }
            _ => {
                let plan = RoutePlan::new(cfg.topology, nodes);
                let ports = (0..plan.num_ports())
                    .map(|i| Port {
                        fifo: FifoResource::new(sim),
                        gbps: plan.port_gbps(i, spec.gbps),
                        queued: Cell::new(0),
                        inflight: RefCell::new(VecDeque::new()),
                        marks: Cell::new(0),
                        drops: Cell::new(0),
                        forwarded: Cell::new(0),
                    })
                    .collect();
                let mut ingress_tx = Vec::with_capacity(nodes);
                let mut ingress_rx = Vec::with_capacity(nodes);
                for _ in 0..nodes {
                    let (tx, rx) = channel();
                    ingress_tx.push(tx);
                    ingress_rx.push(rx);
                }
                let pfc = cfg.pfc.enabled.then(|| {
                    assert!(
                        cfg.pfc.xon_bytes <= cfg.pfc.xoff_bytes,
                        "PFC XON watermark must not exceed XOFF"
                    );
                    PfcFabric {
                        hosts: (0..nodes).map(|_| FeederQ::default()).collect(),
                        ports: (0..plan.num_ports()).map(|_| PfcPort::default()).collect(),
                    }
                });
                let faults = FaultState::new(nodes, plan.num_ports());
                let sw = Rc::new(Switched {
                    sim: sim.clone(),
                    spec,
                    cfg,
                    plan,
                    host_egress: (0..nodes).map(|_| FifoResource::new(sim)).collect(),
                    ports,
                    ingress_tx,
                    pfc,
                    spray_seq: Cell::new(0),
                    faults,
                    trace,
                });
                (
                    Network {
                        kind: Kind::Switched(sw),
                    },
                    ingress_rx,
                )
            }
        }
    }

    pub fn nodes(&self) -> usize {
        match &self.kind {
            Kind::Mesh(f) => f.nodes(),
            Kind::Switched(s) => s.plan.nodes(),
        }
    }

    pub fn spec(&self) -> &LinkSpec {
        match &self.kind {
            Kind::Mesh(f) => f.spec(),
            Kind::Switched(s) => &s.spec,
        }
    }

    pub fn topology(&self) -> Topology {
        match &self.kind {
            Kind::Mesh(_) => Topology::FullMesh,
            Kind::Switched(s) => s.cfg.topology,
        }
    }

    /// Path-selection policy in effect (the full mesh has one path per
    /// pair, so it always reports [`Routing::Ecmp`]).
    pub fn routing(&self) -> Routing {
        match &self.kind {
            Kind::Mesh(_) => Routing::Ecmp,
            Kind::Switched(s) => s.cfg.routing,
        }
    }

    /// Serialization time for `wire_bytes` at the host link rate.
    pub fn serialize_time(&self, wire_bytes: usize) -> SimDuration {
        cord_sim::transmission_time(wire_bytes as u64, self.spec().gbps)
    }

    /// Transmit a frame; it arrives at the destination asynchronously (or
    /// is dropped at a full switch buffer).
    pub fn transmit(&self, frame: Frame<T>) {
        match &self.kind {
            Kind::Mesh(f) => f.transmit(frame),
            Kind::Switched(s) => Switched::transmit(s, frame),
        }
    }

    /// Routing plan for switched topologies (`None` on the full mesh).
    pub fn plan(&self) -> Option<&RoutePlan> {
        match &self.kind {
            Kind::Mesh(_) => None,
            Kind::Switched(s) => Some(&s.plan),
        }
    }

    /// Bytes currently queued at a switch output port.
    ///
    /// Like every `port_*` accessor, panics on the full mesh (it has no
    /// switch ports): discover valid indices through [`Network::plan`],
    /// which is `None` there. The `total_*` accessors are mesh-safe.
    pub fn port_queued_bytes(&self, port: usize) -> usize {
        let s = self.switched();
        let p = &s.ports[port];
        p.settle(s.sim.now());
        p.queued.get()
    }

    /// Frames ECN-marked at a switch output port (panics on the full
    /// mesh, see [`Network::port_queued_bytes`]).
    pub fn port_marks(&self, port: usize) -> u64 {
        self.switched().ports[port].marks.get()
    }

    /// Frames tail-dropped at a switch output port (panics on the full
    /// mesh, see [`Network::port_queued_bytes`]).
    pub fn port_drops(&self, port: usize) -> u64 {
        self.switched().ports[port].drops.get()
    }

    /// Frames accepted (queued for serialization) at a port (panics on
    /// the full mesh, see [`Network::port_queued_bytes`]).
    pub fn port_forwarded(&self, port: usize) -> u64 {
        self.switched().ports[port].forwarded.get()
    }

    /// Total ECN marks across all switch ports.
    pub fn total_marks(&self) -> u64 {
        match &self.kind {
            Kind::Mesh(_) => 0,
            Kind::Switched(s) => s.ports.iter().map(|p| p.marks.get()).sum(),
        }
    }

    /// Total tail drops across all switch ports.
    pub fn total_drops(&self) -> u64 {
        match &self.kind {
            Kind::Mesh(_) => 0,
            Kind::Switched(s) => s.ports.iter().map(|p| p.drops.get()).sum(),
        }
    }

    /// Whether the fabric runs in lossless (PFC) mode.
    pub fn pfc_enabled(&self) -> bool {
        match &self.kind {
            Kind::Mesh(_) => false,
            Kind::Switched(s) => s.pfc.is_some(),
        }
    }

    /// XOFF episodes asserted by a switch port (panics on the full mesh,
    /// see [`Network::port_queued_bytes`]). Zero when PFC is off.
    pub fn port_pauses(&self, port: usize) -> u64 {
        self.switched()
            .pfc
            .as_ref()
            .map_or(0, |p| p.ports[port].pause_events.get())
    }

    /// Whether a switch port is currently asserting pause upstream
    /// (panics on the full mesh, see [`Network::port_queued_bytes`]).
    pub fn port_paused(&self, port: usize) -> bool {
        self.switched()
            .pfc
            .as_ref()
            .is_some_and(|p| p.ports[port].xoff.get())
    }

    /// Total XOFF episodes across all switch ports (0 on the mesh or with
    /// PFC off).
    pub fn total_pauses(&self) -> u64 {
        match &self.kind {
            Kind::Mesh(_) => 0,
            Kind::Switched(s) => s
                .pfc
                .as_ref()
                .map_or(0, |p| p.ports.iter().map(|pp| pp.pause_events.get()).sum()),
        }
    }

    /// Cumulative pause time across all switch ports, including episodes
    /// still asserted at the current instant.
    pub fn total_pause_time(&self) -> SimDuration {
        match &self.kind {
            Kind::Mesh(_) => SimDuration::ZERO,
            Kind::Switched(s) => s.pfc.as_ref().map_or(SimDuration::ZERO, |p| {
                let now = s.sim.now();
                p.ports.iter().fold(SimDuration::ZERO, |acc, pp| {
                    let open = if pp.xoff.get() {
                        now.since(pp.pause_since.get())
                    } else {
                        SimDuration::ZERO
                    };
                    acc + pp.pause_total.get() + open
                })
            }),
        }
    }

    // ================== fault plane (cord-chaos API) ==================

    /// Administratively down (`true`) or restore (`false`) a host link.
    ///
    /// On the full mesh and the switched analytic path, frames touching a
    /// downed link are dropped and counted in
    /// [`Network::fault_dead_drops`]. Under PFC the host's egress
    /// serializer instead *parks* until the link returns (lossless-fabric
    /// behavior), though frames bound *to* the dead host are still lost
    /// at delivery.
    pub fn set_host_link_down(&self, node: usize, down: bool) {
        match &self.kind {
            Kind::Mesh(f) => f.set_link_down(node, down),
            Kind::Switched(s) => Switched::set_host_link_down(s, node, down),
        }
    }

    /// Degrade `node`'s host link: multiply its line rate by
    /// `rate_factor` and add `extra_ns` of one-way latency on its egress
    /// hop. `(1.0, 0.0)` restores the healthy link.
    pub fn set_host_link_degrade(&self, node: usize, rate_factor: f64, extra_ns: f64) {
        assert!(
            rate_factor > 0.0 && rate_factor.is_finite(),
            "rate factor must be positive"
        );
        assert!(extra_ns >= 0.0, "extra latency must be non-negative");
        match &self.kind {
            Kind::Mesh(f) => f.set_link_degrade(node, rate_factor, extra_ns),
            Kind::Switched(s) => {
                s.faults.active.set(true);
                s.faults.host_rate[node].set(rate_factor);
                s.faults.host_extra_ns[node].set(extra_ns);
            }
        }
    }

    /// Kill fat-tree spine switch `spine`: its downlinks and the leaf
    /// uplinks wired to them go dark. Subsequent cross-leaf paths reroute
    /// deterministically around the corpse
    /// ([`RoutePlan::route_avoiding`]); frames already committed to dead
    /// hardware are lost and counted. Panics on the full mesh (see
    /// [`Network::port_queued_bytes`]) and on non-fat-tree plans.
    pub fn kill_spine(&self, spine: usize) {
        let s = self.switched_rc();
        assert!(
            matches!(s.cfg.topology, Topology::FatTree { .. }),
            "kill_spine requires a fat tree"
        );
        assert!(spine < s.plan.spines(), "spine {spine} out of range");
        Switched::kill_spine(s, spine);
    }

    /// Force (`on = true`) or release pause on a switch port regardless
    /// of its occupancy — the injector behind pause-storm and
    /// cyclic-buffer-dependency wedges. No-op when PFC is disabled;
    /// panics on the full mesh (see [`Network::port_queued_bytes`]).
    pub fn force_pause(&self, port: usize, on: bool) {
        Switched::force_pause(self.switched_rc(), port, on);
    }

    /// PFC no-progress watchdog (SONiC-style): break every port that has
    /// been continuously asserting pause for at least `stuck_for`,
    /// forcibly releasing it so the fabric makes progress again. Returns
    /// the number of ports broken — the deadlock detection counter.
    /// Always 0 on the full mesh or with PFC off.
    pub fn pfc_watchdog_scan(&self, stuck_for: SimDuration) -> u64 {
        match &self.kind {
            Kind::Mesh(_) => 0,
            Kind::Switched(s) => Switched::pfc_watchdog_scan(s, stuck_for),
        }
    }

    /// Frames rerouted around dead spines (0 on the full mesh).
    pub fn fault_reroutes(&self) -> u64 {
        match &self.kind {
            Kind::Mesh(_) => 0,
            Kind::Switched(s) => s.faults.reroutes.get(),
        }
    }

    /// Frames lost to dead hardware: dead ports, downed host links, and
    /// serializer queues stranded by a switch death.
    pub fn fault_dead_drops(&self) -> u64 {
        match &self.kind {
            Kind::Mesh(f) => f.link_drops(),
            Kind::Switched(s) => s.faults.dead_drops.get(),
        }
    }

    /// Cumulative pause time billed to one switch port, including an
    /// episode still open at the current instant — the per-victim
    /// pause-time counter (panics on the full mesh, see
    /// [`Network::port_queued_bytes`]). Zero when PFC is off.
    pub fn port_pause_time(&self, port: usize) -> SimDuration {
        let s = self.switched();
        s.pfc.as_ref().map_or(SimDuration::ZERO, |p| {
            let pp = &p.ports[port];
            let open = if pp.xoff.get() {
                s.sim.now().since(pp.pause_since.get())
            } else {
                SimDuration::ZERO
            };
            pp.pause_total.get() + open
        })
    }

    fn switched(&self) -> &Switched<T> {
        self.switched_rc()
    }

    fn switched_rc(&self) -> &Rc<Switched<T>> {
        match &self.kind {
            Kind::Mesh(_) => panic!("full mesh has no switch ports"),
            Kind::Switched(s) => s,
        }
    }
}

/// A frame in transit across the switched fabric, boxed once at
/// `transmit` so every per-hop event closure captures one pointer (and
/// stays within the executor's inline-closure budget) instead of copying
/// the frame and path into each scheduled event.
struct HopState<T> {
    frame: Frame<T>,
    path: [u32; RoutePlan::MAX_PATH],
    hops: u8,
    /// Index of the hop currently being processed.
    i: u8,
}

impl<T: 'static> Switched<T> {
    /// Entry from the NIC: every event the switched fabric schedules from
    /// here on (per-hop arrivals, serializer completions, pause signals)
    /// is attributed to the [`Subsystem::SwitchPort`] bucket — the tag is
    /// captured at schedule time and re-installed when each timer fires,
    /// so it propagates through chained reschedules without plumbing.
    fn transmit(this: &Rc<Self>, frame: Frame<T>) {
        let sim = this.sim.clone();
        sim.with_tag(Subsystem::SwitchPort, || Self::transmit_inner(this, frame));
    }

    fn transmit_inner(this: &Rc<Self>, frame: Frame<T>) {
        let nodes = this.plan.nodes();
        assert!(frame.src < nodes && frame.dst < nodes);
        if this.pfc.is_some() {
            Self::pfc_transmit(this, frame);
            return;
        }
        // Lossy path: a downed host link at either end drops the frame at
        // transmit time (loopback is NIC-internal and never touches it).
        if this.faults.active.get()
            && frame.src != frame.dst
            && (this.faults.host_down[frame.src].get() || this.faults.host_down[frame.dst].get())
        {
            this.faults.dead_drop();
            return;
        }
        let ser = transmission_time(frame.wire_bytes as u64, this.host_gbps(frame.src));
        let grant = this.host_egress[frame.src].enqueue(ser);
        if frame.src == frame.dst {
            // Loopback: NIC-internal path, no switches.
            let sw = Rc::clone(this);
            let frame = Box::new(frame);
            this.sim.schedule_at(grant.end, move |_| {
                let _ = sw.ingress_tx[frame.dst].try_send(*frame);
            });
            return;
        }
        let mut path = [0; RoutePlan::MAX_PATH];
        let Some(hops) = this.fault_route(&frame, &mut path) else {
            return; // no live path: the frame died with the fabric
        };
        let at = grant.end + this.prop() + this.host_extra(frame.src);
        let st = Box::new(HopState {
            frame,
            path: path.map(|p| p as u32),
            hops: hops as u8,
            i: 0,
        });
        Self::hop(Rc::clone(this), st, at);
    }

    fn prop(&self) -> SimDuration {
        SimDuration::from_ns_f64(self.spec.propagation_ns)
    }

    /// Host-egress line rate, honoring a degraded link. With no fault
    /// active this is exactly `spec.gbps` (bit-identical serialization).
    fn host_gbps(&self, node: usize) -> f64 {
        if self.faults.active.get() {
            self.spec.gbps * self.faults.host_rate[node].get()
        } else {
            self.spec.gbps
        }
    }

    /// Extra one-way latency billed on a degraded host link's egress hop.
    fn host_extra(&self, node: usize) -> SimDuration {
        if self.faults.active.get() {
            SimDuration::from_ns_f64(self.faults.host_extra_ns[node].get())
        } else {
            SimDuration::ZERO
        }
    }

    /// Route `frame`, honoring the dead-spine mask. `None` means no live
    /// path exists (already counted as lost to dead hardware).
    fn fault_route(
        &self,
        frame: &Frame<T>,
        path: &mut [usize; RoutePlan::MAX_PATH],
    ) -> Option<usize> {
        let dead = self.faults.dead_spines.get();
        if self.cfg.routing == Routing::Spray {
            return self.spray_route(frame, dead, path);
        }
        if dead == 0 {
            return Some(self.plan.route_into(frame.src, frame.dst, frame.flow, path));
        }
        match self
            .plan
            .route_avoiding(frame.src, frame.dst, frame.flow, dead, path)
        {
            None => {
                self.faults.dead_drop();
                None
            }
            Some((hops, rerouted)) => {
                if rerouted {
                    self.faults.reroutes.set(self.faults.reroutes.get() + 1);
                }
                Some(hops)
            }
        }
    }

    /// Per-packet spray routing: snapshot the source leaf's uplink queue
    /// depths (the congestion signal) and hand the pure policy on
    /// [`RoutePlan`] the frame key plus this fabric's packet sequence.
    /// Both serialization paths (analytic and PFC) route here exactly
    /// once per frame, at fabric entry, so the sequence — and with it the
    /// whole spray schedule — is deterministic in transmit order.
    fn spray_route(
        &self,
        frame: &Frame<T>,
        dead: u64,
        path: &mut [usize; RoutePlan::MAX_PATH],
    ) -> Option<usize> {
        let seq = self.spray_seq.get();
        self.spray_seq.set(seq.wrapping_add(1));
        // Congestion snapshot, gathered only when the policy actually
        // chooses among spines (fat-tree cross-leaf); `dead_spines` caps
        // addressable spines at 64, so a stack buffer suffices.
        let mut congestion = [0usize; 64];
        let mut snapshot: &[usize] = &[];
        if let Topology::FatTree { .. } = self.cfg.topology {
            let spines = self.plan.spines();
            let ls = self.plan.leaf_of(frame.src);
            if ls != self.plan.leaf_of(frame.dst) {
                let now = self.sim.now();
                for (s, c) in congestion.iter_mut().enumerate().take(spines) {
                    let p = &self.ports[ls * spines + s];
                    p.settle(now);
                    *c = p.queued.get();
                }
                snapshot = &congestion[..spines.min(64)];
            }
        }
        match self
            .plan
            .spray_route_into(frame.src, frame.dst, frame.flow, seq, snapshot, dead, path)
        {
            None => {
                self.faults.dead_drop();
                None
            }
            Some((hops, rerouted)) => {
                if rerouted {
                    self.faults.reroutes.set(self.faults.reroutes.get() + 1);
                }
                Some(hops)
            }
        }
    }

    /// Process hop `st.i` of the path at time `at`: run the frame through
    /// the port's buffer/ECN checks and serializer, then forward or
    /// deliver.
    fn hop(this: Rc<Self>, mut st: Box<HopState<T>>, at: SimTime) {
        let sim = this.sim.clone();
        sim.schedule_at(at, move |sim| {
            let idx = st.path[st.i as usize] as usize;
            if this.faults.active.get() && this.faults.port_dead[idx].get() {
                this.faults.dead_drop();
                return; // the frame arrived at a dead port
            }
            let wire = st.frame.wire_bytes;
            let grant_end = {
                let p = &this.ports[idx];
                // Retire frames that finished serializing before this
                // arrival — the lazy equivalent of per-frame drain timers.
                p.settle(sim.now());
                if p.queued.get() + wire > this.cfg.buffer_bytes {
                    p.drops.set(p.drops.get() + 1);
                    this.trace.emit(
                        sim.now(),
                        TraceKind::PortDrop {
                            port: idx as u32,
                            bytes: wire as u32,
                        },
                    );
                    return; // tail drop
                }
                if this.cfg.ecn.enabled && p.queued.get() >= this.cfg.ecn.threshold_bytes {
                    st.frame.ecn = true;
                    p.marks.set(p.marks.get() + 1);
                }
                p.queued.set(p.queued.get() + wire);
                p.forwarded.set(p.forwarded.get() + 1);
                this.trace.emit(
                    sim.now(),
                    TraceKind::PortEnqueue {
                        port: idx as u32,
                        queued_bytes: p.queued.get() as u32,
                    },
                );
                let g = p.fifo.enqueue(transmission_time(wire as u64, p.gbps));
                p.inflight.borrow_mut().push_back((g.end, wire as u32));
                g.end
            };
            let next_at = grant_end + this.prop();
            if st.i + 1 == st.hops {
                // Last port is the downlink to the destination host.
                sim.schedule_at(next_at, move |_| {
                    if this.faults.active.get() && this.faults.host_down[st.frame.dst].get() {
                        this.faults.dead_drop();
                        return;
                    }
                    let _ = this.ingress_tx[st.frame.dst].try_send(st.frame);
                });
            } else {
                st.i += 1;
                Self::hop(Rc::clone(&this), st, next_at);
            }
        });
    }

    // ===================== PFC (lossless) path =====================
    //
    // Same route, same per-hop timing as the analytic path when nothing is
    // paused, but every serializer is an explicit event-driven FIFO
    // (`FeederQ`) so it can *stop*: before launching its head frame, a
    // feeder checks the next-hop port's XOFF state and parks if pause is
    // asserted. Parked feeders are woken in park order when the port
    // drains to XON. Frames are never dropped on this path.

    fn pfc(&self) -> &PfcFabric<T> {
        self.pfc.as_ref().expect("PFC path requires pfc state")
    }

    fn pfc_transmit(this: &Rc<Self>, frame: Frame<T>) {
        let st = if frame.src == frame.dst {
            // Loopback: NIC-internal path, no switches (hops = 0).
            Box::new(HopState {
                frame,
                path: [0; RoutePlan::MAX_PATH],
                hops: 0,
                i: 0,
            })
        } else {
            let mut path = [0; RoutePlan::MAX_PATH];
            let Some(hops) = this.fault_route(&frame, &mut path) else {
                return; // no live path: the frame died with the fabric
            };
            Box::new(HopState {
                frame,
                path: path.map(|p| p as u32),
                hops: hops as u8,
                i: 0,
            })
        };
        let node = st.frame.src;
        this.pfc().hosts[node].q.borrow_mut().push_back(st);
        Self::pfc_kick_host(this, node);
    }

    /// Try to start the host-egress serializer for `node`'s head frame.
    fn pfc_kick_host(this: &Rc<Self>, node: usize) {
        let pfc = this.pfc();
        let h = &pfc.hosts[node];
        if h.busy.get() || h.parked.get() {
            return;
        }
        // A downed link is dark, not dropping: lossless-fabric frames wait
        // in the feeder until the flap clears (the link-up path re-kicks).
        if this.faults.active.get() && this.faults.host_down[node].get() {
            return;
        }
        let first_port = match h.q.borrow().front() {
            None => return,
            Some(st) if st.hops > 0 => Some(st.path[0] as usize),
            Some(_) => None, // loopback: no downstream port to pause us
        };
        if let Some(q) = first_port {
            if pfc.ports[q].xoff_seen.get() {
                h.parked.set(true);
                pfc.ports[q]
                    .waiters
                    .borrow_mut()
                    .push_back(FeederId::Host(node));
                return;
            }
        }
        h.busy.set(true);
        let st = h.q.borrow_mut().pop_front().expect("head checked above");
        let ser = transmission_time(st.frame.wire_bytes as u64, this.host_gbps(node));
        let sw = Rc::clone(this);
        this.sim.schedule_after(ser, move |sim| {
            let node = st.frame.src;
            sw.pfc().hosts[node].busy.set(false);
            if st.hops == 0 {
                // Loopback delivers at serialization end, as on the
                // analytic path.
                let _ = sw.ingress_tx[st.frame.dst].try_send(st.frame);
            } else {
                let at = sim.now() + sw.prop() + sw.host_extra(node);
                let sw2 = Rc::clone(&sw);
                sim.schedule_at(at, move |_| Self::pfc_arrive(&sw2, st));
            }
            Self::pfc_kick_host(&sw, node);
        });
    }

    /// A frame lands in port `st.path[st.i]`'s buffer: account occupancy,
    /// ECN-mark, assert XOFF at the watermark, and kick the serializer.
    fn pfc_arrive(this: &Rc<Self>, mut st: Box<HopState<T>>) {
        let idx = st.path[st.i as usize] as usize;
        if this.faults.active.get() && this.faults.port_dead[idx].get() {
            // PFC cannot pause a corpse: frames committed to a dead port
            // are the one loss a lossless fabric admits under faults.
            this.faults.dead_drop();
            return;
        }
        let wire = st.frame.wire_bytes;
        let p = &this.ports[idx];
        // Same marking rule (and check-before-add order) as the analytic
        // hop; no drop branch — PFC mode is lossless by construction.
        if this.cfg.ecn.enabled && p.queued.get() >= this.cfg.ecn.threshold_bytes {
            st.frame.ecn = true;
            p.marks.set(p.marks.get() + 1);
        }
        p.queued.set(p.queued.get() + wire);
        p.forwarded.set(p.forwarded.get() + 1);
        this.trace.emit(
            this.sim.now(),
            TraceKind::PortEnqueue {
                port: idx as u32,
                queued_bytes: p.queued.get() as u32,
            },
        );
        let pp = &this.pfc().ports[idx];
        if !pp.xoff.get() && p.queued.get() >= this.cfg.pfc.xoff_bytes {
            Self::set_pause(this, idx, true);
        }
        pp.feeder.q.borrow_mut().push_back(st);
        Self::pfc_kick_port(this, idx);
    }

    /// Flip port `idx`'s local pause state. Accounting (episode count,
    /// pause clock) runs at the local instant — the switch's own view —
    /// while upstream feeders *observe* the transition one propagation
    /// delay later via [`Switched::pause_signal`], like a real pause
    /// frame crossing the link (the PR-6 propagation-delay refinement).
    fn set_pause(this: &Rc<Self>, idx: usize, on: bool) {
        let pp = &this.pfc().ports[idx];
        debug_assert_ne!(pp.xoff.get(), on, "pause transition must flip");
        pp.xoff.set(on);
        if on {
            pp.pause_events.set(pp.pause_events.get() + 1);
            pp.pause_since.set(this.sim.now());
            this.trace
                .emit(this.sim.now(), TraceKind::PauseOn { port: idx as u32 });
        } else {
            pp.pause_total
                .set(pp.pause_total.get() + this.sim.now().since(pp.pause_since.get()));
            this.trace
                .emit(this.sim.now(), TraceKind::PauseOff { port: idx as u32 });
        }
        let epoch = pp.epoch.get().wrapping_add(1);
        pp.epoch.set(epoch);
        // Pack (epoch, on) into one word so the closure captures
        // (Rc, u32, u32) and stays within the executor's inline budget.
        let word = (epoch << 1) | u32::from(on);
        let idx = idx as u32;
        let sw = Rc::clone(this);
        this.sim
            .schedule_after(this.prop(), move |_| Self::pause_signal(&sw, idx, word));
    }

    /// A pause transition reaches port `idx`'s feeders: update the
    /// observed state and, on XON, wake parked feeders in park order.
    /// Signals superseded by a newer transition are discarded.
    fn pause_signal(this: &Rc<Self>, idx: u32, word: u32) {
        let pp = &this.pfc().ports[idx as usize];
        if pp.epoch.get() & 0x7FFF_FFFF != word >> 1 {
            return; // superseded
        }
        let on = word & 1 == 1;
        pp.xoff_seen.set(on);
        if !on {
            Self::wake_waiters(this, idx as usize);
        }
    }

    /// Wake every feeder parked on port `idx`, in park order.
    fn wake_waiters(this: &Rc<Self>, idx: usize) {
        let pfc = this.pfc();
        let waiters: Vec<FeederId> = pfc.ports[idx].waiters.borrow_mut().drain(..).collect();
        for w in waiters {
            match w {
                FeederId::Host(n) => {
                    pfc.hosts[n].parked.set(false);
                    Self::pfc_kick_host(this, n);
                }
                FeederId::Port(i) => {
                    pfc.ports[i].feeder.parked.set(false);
                    Self::pfc_kick_port(this, i);
                }
            }
        }
    }

    /// Try to start port `idx`'s serializer for its head frame, parking on
    /// the next-hop port if that port is asserting pause.
    fn pfc_kick_port(this: &Rc<Self>, idx: usize) {
        let pfc = this.pfc();
        let pp = &pfc.ports[idx];
        if pp.feeder.busy.get() || pp.feeder.parked.get() {
            return;
        }
        let next_port = match pp.feeder.q.borrow().front() {
            None => return,
            Some(st) if st.i + 1 < st.hops => Some(st.path[st.i as usize + 1] as usize),
            Some(_) => None, // last hop: the destination host never pauses
        };
        if let Some(nxt) = next_port {
            if pfc.ports[nxt].xoff_seen.get() {
                pp.feeder.parked.set(true);
                pfc.ports[nxt]
                    .waiters
                    .borrow_mut()
                    .push_back(FeederId::Port(idx));
                return;
            }
        }
        pp.feeder.busy.set(true);
        let st = pp.feeder.q.borrow_mut().pop_front().expect("head checked");
        let ser = transmission_time(st.frame.wire_bytes as u64, this.ports[idx].gbps);
        let sw = Rc::clone(this);
        this.sim
            .schedule_after(ser, move |_| Self::pfc_port_done(&sw, st));
    }

    /// Port `st.path[st.i]` finished serializing `st.frame`: release its
    /// buffer bytes, de-assert XOFF at the XON watermark (parked feeders
    /// wake once the XON signal propagates), forward the frame, and
    /// continue the queue.
    fn pfc_port_done(this: &Rc<Self>, mut st: Box<HopState<T>>) {
        let idx = st.path[st.i as usize] as usize;
        let wire = st.frame.wire_bytes;
        let p = &this.ports[idx];
        p.queued.set(p.queued.get() - wire);
        let pp = &this.pfc().ports[idx];
        pp.feeder.busy.set(false);
        if pp.xoff.get() && !pp.forced.get() && p.queued.get() <= this.cfg.pfc.xon_bytes {
            Self::set_pause(this, idx, false);
        }
        let at = this.sim.now() + this.prop();
        let last = st.i + 1 == st.hops;
        let sw = Rc::clone(this);
        if last {
            this.sim.schedule_at(at, move |_| {
                if sw.faults.active.get() && sw.faults.host_down[st.frame.dst].get() {
                    sw.faults.dead_drop();
                    return;
                }
                let _ = sw.ingress_tx[st.frame.dst].try_send(st.frame);
            });
        } else {
            st.i += 1;
            this.sim.schedule_at(at, move |_| Self::pfc_arrive(&sw, st));
        }
        Self::pfc_kick_port(this, idx);
    }

    // ===================== fault plane internals =====================

    fn set_host_link_down(this: &Rc<Self>, node: usize, down: bool) {
        this.faults.active.set(true);
        this.faults.host_down[node].set(down);
        if !down && this.pfc.is_some() {
            // Link restored: resume the frames that waited out the flap.
            Self::pfc_kick_host(this, node);
        }
    }

    /// Switch death: mark every port on `spine` (downlinks and the leaf
    /// uplinks wired to it) dead, flush stranded serializer queues, and —
    /// under PFC — tear down the corpse's pause state so nothing stays
    /// parked on it forever. A dead link carries no pause signal, so the
    /// teardown is immediate, not propagated.
    fn kill_spine(this: &Rc<Self>, spine: usize) {
        let f = &this.faults;
        f.active.set(true);
        f.dead_spines.set(f.dead_spines.get() | 1 << spine);
        for idx in 0..this.plan.num_ports() {
            let on_spine = match this.plan.port_kind(idx) {
                PortKind::LeafUp { spine: s, .. } | PortKind::SpineDown { spine: s, .. } => {
                    s == spine
                }
                _ => false,
            };
            if !on_spine || f.port_dead[idx].get() {
                continue;
            }
            f.port_dead[idx].set(true);
            if let Some(pfc) = &this.pfc {
                let pp = &pfc.ports[idx];
                // Frames waiting in the dead port's serializer are lost.
                let stranded = pp.feeder.q.borrow_mut().drain(..).count() as u64;
                f.dead_drops.set(f.dead_drops.get() + stranded);
                pp.forced.set(false);
                if pp.xoff.get() {
                    pp.xoff.set(false);
                    pp.pause_total
                        .set(pp.pause_total.get() + this.sim.now().since(pp.pause_since.get()));
                }
                // Invalidate in-flight pause signals and release every
                // feeder parked on the corpse.
                pp.epoch.set(pp.epoch.get().wrapping_add(1));
                pp.xoff_seen.set(false);
                Self::wake_waiters(this, idx);
            }
        }
    }

    /// Chaos injector: wedge (`on`) or release port `idx`'s pause state
    /// regardless of occupancy. A release only de-asserts immediately
    /// when the queue sits at or below XON; otherwise the natural drain
    /// path finishes the job.
    fn force_pause(this: &Rc<Self>, idx: usize, on: bool) {
        if this.pfc.is_none() {
            return;
        }
        this.faults.active.set(true);
        let pp = &this.pfc().ports[idx];
        pp.forced.set(on);
        if on && !pp.xoff.get() {
            Self::set_pause(this, idx, true);
        } else if !on && pp.xoff.get() && this.ports[idx].queued.get() <= this.cfg.pfc.xon_bytes {
            Self::set_pause(this, idx, false);
        }
    }

    /// One watchdog sweep: break every port continuously paused for at
    /// least `stuck_for`, returning how many were broken.
    fn pfc_watchdog_scan(this: &Rc<Self>, stuck_for: SimDuration) -> u64 {
        let Some(pfc) = &this.pfc else {
            return 0;
        };
        let now = this.sim.now();
        let mut broken = 0;
        for idx in 0..pfc.ports.len() {
            let pp = &pfc.ports[idx];
            if pp.xoff.get() && now.since(pp.pause_since.get()) >= stuck_for {
                pp.forced.set(false);
                Self::set_pause(this, idx, false);
                broken += 1;
            }
        }
        broken
    }
}
