//! The runtime network: topology-pluggable frame transport.
//!
//! [`Network`] is what `cord-nic` transmits through. For
//! [`Topology::FullMesh`] it delegates to `cord-hw`'s ideal mesh
//! ([`Fabric`]) so default results stay bit-comparable with the seed
//! reproduction. For switched topologies it models every switch output
//! port as a store-and-forward FIFO with a finite shared buffer:
//!
//! * **Queueing** — a frame occupies its output port for `wire_bytes` at
//!   the port's line rate; frames behind it wait. Crossing a switch adds
//!   one propagation delay per physical link.
//! * **Finite buffers** — a frame arriving at a port whose queued bytes
//!   would exceed `buffer_bytes` is tail-dropped (counted per port). RC
//!   has no retransmit timer in this model, so experiments that want loss
//!   should use UD or frame-level harnesses; the default buffer is large
//!   enough that windowed workloads never drop.
//! * **ECN** — when a frame arrives at a port whose queue is at or above
//!   `threshold_bytes`, its ECN bit is set (DCQCN-style marking on egress
//!   queue depth). The receiving NIC echoes a CNP to the sender, which is
//!   where `cord-nic`'s DCQCN rate limiter reacts.
//!
//! Everything is deterministic: routing is a pure hash, queues are
//! analytic FIFOs, and event scheduling order follows transmit order.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

use cord_hw::link::{Fabric, Frame};
use cord_hw::machine::LinkSpec;
use cord_sim::sync::{channel, Receiver, Sender};
use cord_sim::{transmission_time, FifoResource, Sim, SimDuration, SimTime};

use crate::route::{RoutePlan, Topology};

/// ECN marking knobs for switch output ports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EcnConfig {
    pub enabled: bool,
    /// Mark arriving frames when the port's queue holds at least this many
    /// bytes (DCQCN's K threshold).
    pub threshold_bytes: usize,
}

impl Default for EcnConfig {
    fn default() -> Self {
        EcnConfig {
            enabled: true,
            threshold_bytes: 64 << 10,
        }
    }
}

/// Complete network configuration: shape + queue behavior.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetConfig {
    pub topology: Topology,
    pub ecn: EcnConfig,
    /// Per-output-port buffer capacity in bytes (tail drop beyond it).
    pub buffer_bytes: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            topology: Topology::FullMesh,
            ecn: EcnConfig::default(),
            buffer_bytes: 16 << 20,
        }
    }
}

impl NetConfig {
    /// Default queue knobs for a given shape.
    pub fn for_topology(topology: Topology) -> Self {
        NetConfig {
            topology,
            ..NetConfig::default()
        }
    }
}

/// One switch output port: FIFO serializer + occupancy accounting.
///
/// Occupancy is settled *lazily*: instead of scheduling a drain timer per
/// frame (one extra executor event per frame per hop), each accepted frame
/// pushes its `(serialization end, bytes)` onto `inflight`, and
/// [`Port::settle`] walks the FIFO from the front whenever occupancy is
/// next observed — on the arrival path or through a stats accessor.
/// Virtual time is monotone and every observation settles first, so at
/// distinct instants the occupancy any event sees matches the eager-timer
/// scheme exactly. On an *exact tie* — a frame's serialization ending at
/// the same picosecond another frame arrives — settling counts the ending
/// frame as drained (`end <= now`), a fixed drain-before-arrival order,
/// where the old per-frame drain event resolved the tie by registration
/// sequence (either order, depending on scheduling history). The full
/// topology×cc loadgen matrix and all three simbench scenarios reproduce
/// byte-identically under this rule; revalidate both when touching it.
struct Port {
    fifo: FifoResource,
    gbps: f64,
    queued: Cell<usize>,
    /// Frames accepted but not yet fully serialized: (grant end, bytes).
    inflight: RefCell<VecDeque<(SimTime, u32)>>,
    marks: Cell<u64>,
    drops: Cell<u64>,
    forwarded: Cell<u64>,
}

impl Port {
    /// Retire every in-flight frame whose serialization completed at or
    /// before `now`, releasing its buffer bytes.
    fn settle(&self, now: SimTime) {
        let mut inflight = self.inflight.borrow_mut();
        while let Some(&(end, wire)) = inflight.front() {
            if end > now {
                break;
            }
            inflight.pop_front();
            self.queued.set(self.queued.get() - wire as usize);
        }
    }
}

struct Switched<T> {
    sim: Sim,
    spec: LinkSpec,
    cfg: NetConfig,
    plan: RoutePlan,
    host_egress: Vec<FifoResource>,
    ports: Vec<Port>,
    ingress_tx: Vec<Sender<Frame<T>>>,
}

enum Kind<T> {
    Mesh(Fabric<T>),
    Switched(Rc<Switched<T>>),
}

/// Topology-pluggable frame transport connecting `n` nodes.
pub struct Network<T> {
    kind: Kind<T>,
}

impl<T: 'static> Network<T> {
    /// Build the network; returns it plus each node's ingress receiver.
    /// Panics if `cfg.topology` fails [`Topology::validate`] — validate
    /// specs before building.
    pub fn new(
        sim: &Sim,
        spec: LinkSpec,
        nodes: usize,
        cfg: NetConfig,
    ) -> (Self, Vec<Receiver<Frame<T>>>) {
        cfg.topology
            .validate(nodes)
            .expect("topology validated before network build");
        match cfg.topology {
            Topology::FullMesh => {
                let (fab, rxs) = Fabric::new(sim, spec, nodes);
                (
                    Network {
                        kind: Kind::Mesh(fab),
                    },
                    rxs,
                )
            }
            _ => {
                let plan = RoutePlan::new(cfg.topology, nodes);
                let ports = (0..plan.num_ports())
                    .map(|i| Port {
                        fifo: FifoResource::new(sim),
                        gbps: plan.port_gbps(i, spec.gbps),
                        queued: Cell::new(0),
                        inflight: RefCell::new(VecDeque::new()),
                        marks: Cell::new(0),
                        drops: Cell::new(0),
                        forwarded: Cell::new(0),
                    })
                    .collect();
                let mut ingress_tx = Vec::with_capacity(nodes);
                let mut ingress_rx = Vec::with_capacity(nodes);
                for _ in 0..nodes {
                    let (tx, rx) = channel();
                    ingress_tx.push(tx);
                    ingress_rx.push(rx);
                }
                let sw = Rc::new(Switched {
                    sim: sim.clone(),
                    spec,
                    cfg,
                    plan,
                    host_egress: (0..nodes).map(|_| FifoResource::new(sim)).collect(),
                    ports,
                    ingress_tx,
                });
                (
                    Network {
                        kind: Kind::Switched(sw),
                    },
                    ingress_rx,
                )
            }
        }
    }

    pub fn nodes(&self) -> usize {
        match &self.kind {
            Kind::Mesh(f) => f.nodes(),
            Kind::Switched(s) => s.plan.nodes(),
        }
    }

    pub fn spec(&self) -> &LinkSpec {
        match &self.kind {
            Kind::Mesh(f) => f.spec(),
            Kind::Switched(s) => &s.spec,
        }
    }

    pub fn topology(&self) -> Topology {
        match &self.kind {
            Kind::Mesh(_) => Topology::FullMesh,
            Kind::Switched(s) => s.cfg.topology,
        }
    }

    /// Serialization time for `wire_bytes` at the host link rate.
    pub fn serialize_time(&self, wire_bytes: usize) -> SimDuration {
        cord_sim::transmission_time(wire_bytes as u64, self.spec().gbps)
    }

    /// Transmit a frame; it arrives at the destination asynchronously (or
    /// is dropped at a full switch buffer).
    pub fn transmit(&self, frame: Frame<T>) {
        match &self.kind {
            Kind::Mesh(f) => f.transmit(frame),
            Kind::Switched(s) => Switched::transmit(s, frame),
        }
    }

    /// Routing plan for switched topologies (`None` on the full mesh).
    pub fn plan(&self) -> Option<&RoutePlan> {
        match &self.kind {
            Kind::Mesh(_) => None,
            Kind::Switched(s) => Some(&s.plan),
        }
    }

    /// Bytes currently queued at a switch output port.
    ///
    /// Like every `port_*` accessor, panics on the full mesh (it has no
    /// switch ports): discover valid indices through [`Network::plan`],
    /// which is `None` there. The `total_*` accessors are mesh-safe.
    pub fn port_queued_bytes(&self, port: usize) -> usize {
        let s = self.switched();
        let p = &s.ports[port];
        p.settle(s.sim.now());
        p.queued.get()
    }

    /// Frames ECN-marked at a switch output port (panics on the full
    /// mesh, see [`Network::port_queued_bytes`]).
    pub fn port_marks(&self, port: usize) -> u64 {
        self.switched().ports[port].marks.get()
    }

    /// Frames tail-dropped at a switch output port (panics on the full
    /// mesh, see [`Network::port_queued_bytes`]).
    pub fn port_drops(&self, port: usize) -> u64 {
        self.switched().ports[port].drops.get()
    }

    /// Frames accepted (queued for serialization) at a port (panics on
    /// the full mesh, see [`Network::port_queued_bytes`]).
    pub fn port_forwarded(&self, port: usize) -> u64 {
        self.switched().ports[port].forwarded.get()
    }

    /// Total ECN marks across all switch ports.
    pub fn total_marks(&self) -> u64 {
        match &self.kind {
            Kind::Mesh(_) => 0,
            Kind::Switched(s) => s.ports.iter().map(|p| p.marks.get()).sum(),
        }
    }

    /// Total tail drops across all switch ports.
    pub fn total_drops(&self) -> u64 {
        match &self.kind {
            Kind::Mesh(_) => 0,
            Kind::Switched(s) => s.ports.iter().map(|p| p.drops.get()).sum(),
        }
    }

    fn switched(&self) -> &Switched<T> {
        match &self.kind {
            Kind::Mesh(_) => panic!("full mesh has no switch ports"),
            Kind::Switched(s) => s,
        }
    }
}

/// A frame in transit across the switched fabric, boxed once at
/// `transmit` so every per-hop event closure captures one pointer (and
/// stays within the executor's inline-closure budget) instead of copying
/// the frame and path into each scheduled event.
struct HopState<T> {
    frame: Frame<T>,
    path: [u32; RoutePlan::MAX_PATH],
    hops: u8,
    /// Index of the hop currently being processed.
    i: u8,
}

impl<T: 'static> Switched<T> {
    fn transmit(this: &Rc<Self>, frame: Frame<T>) {
        let nodes = this.plan.nodes();
        assert!(frame.src < nodes && frame.dst < nodes);
        let ser = transmission_time(frame.wire_bytes as u64, this.spec.gbps);
        let grant = this.host_egress[frame.src].enqueue(ser);
        if frame.src == frame.dst {
            // Loopback: NIC-internal path, no switches.
            let sw = Rc::clone(this);
            let frame = Box::new(frame);
            this.sim.schedule_at(grant.end, move |_| {
                let _ = sw.ingress_tx[frame.dst].try_send(*frame);
            });
            return;
        }
        let mut path = [0; RoutePlan::MAX_PATH];
        let hops = this
            .plan
            .route_into(frame.src, frame.dst, frame.flow, &mut path);
        let at = grant.end + this.prop();
        let st = Box::new(HopState {
            frame,
            path: path.map(|p| p as u32),
            hops: hops as u8,
            i: 0,
        });
        Self::hop(Rc::clone(this), st, at);
    }

    fn prop(&self) -> SimDuration {
        SimDuration::from_ns_f64(self.spec.propagation_ns)
    }

    /// Process hop `st.i` of the path at time `at`: run the frame through
    /// the port's buffer/ECN checks and serializer, then forward or
    /// deliver.
    fn hop(this: Rc<Self>, mut st: Box<HopState<T>>, at: SimTime) {
        let sim = this.sim.clone();
        sim.schedule_at(at, move |sim| {
            let idx = st.path[st.i as usize] as usize;
            let wire = st.frame.wire_bytes;
            let grant_end = {
                let p = &this.ports[idx];
                // Retire frames that finished serializing before this
                // arrival — the lazy equivalent of per-frame drain timers.
                p.settle(sim.now());
                if p.queued.get() + wire > this.cfg.buffer_bytes {
                    p.drops.set(p.drops.get() + 1);
                    return; // tail drop
                }
                if this.cfg.ecn.enabled && p.queued.get() >= this.cfg.ecn.threshold_bytes {
                    st.frame.ecn = true;
                    p.marks.set(p.marks.get() + 1);
                }
                p.queued.set(p.queued.get() + wire);
                p.forwarded.set(p.forwarded.get() + 1);
                let g = p.fifo.enqueue(transmission_time(wire as u64, p.gbps));
                p.inflight.borrow_mut().push_back((g.end, wire as u32));
                g.end
            };
            let next_at = grant_end + this.prop();
            if st.i + 1 == st.hops {
                // Last port is the downlink to the destination host.
                sim.schedule_at(next_at, move |_| {
                    let _ = this.ingress_tx[st.frame.dst].try_send(st.frame);
                });
            } else {
                st.i += 1;
                Self::hop(Rc::clone(&this), st, next_at);
            }
        });
    }
}
