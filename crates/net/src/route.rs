//! Topology descriptions and deterministic routing.
//!
//! A [`RoutePlan`] turns a [`Topology`] + node count into a flat array of
//! switch *output ports* and a pure routing function: `route(src, dst,
//! flow)` returns the sequence of port indices a frame traverses after
//! leaving the source host's egress link. Pure and side-effect free, so
//! ECMP determinism is directly unit-testable.
//!
//! Path selection is ECMP hashed on `(src, dst, flow)` — the NIC sets the
//! flow label from the QP pair, so every fragment of a QP's traffic takes
//! the same path and RC's in-order delivery survives multipathing.

use std::fmt;

/// Network shape connecting the cluster's nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Topology {
    /// Ideal full mesh — today's back-to-back behavior, the default. Every
    /// node pair has a dedicated wire; the only shared queue is the
    /// receiver's ingress port.
    FullMesh,
    /// Two-tier leaf/spine fat tree built from `radix`-port switches:
    /// `radix/2` hosts per leaf, `radix/2` spines, every leaf wired to
    /// every spine (1:1 oversubscription). Cross-leaf traffic picks a
    /// spine by ECMP.
    FatTree { radix: usize },
    /// Two switches joined by one bottleneck link at `bottleneck_gbps`;
    /// the first half of the nodes sit on the left switch, the rest on the
    /// right. All cross traffic shares the bottleneck.
    Dumbbell { bottleneck_gbps: f64 },
}

impl Topology {
    /// The smallest fat tree (even radix, minimum 8) that can host
    /// `nodes` nodes — radix 8 up to 32 nodes, then growing as needed.
    pub fn fat_tree_for(nodes: usize) -> Topology {
        let mut radix = 8;
        while radix * radix / 2 < nodes {
            radix += 2;
        }
        Topology::FatTree { radix }
    }

    /// Check the topology can host `nodes` nodes.
    pub fn validate(&self, nodes: usize) -> Result<(), String> {
        match *self {
            Topology::FullMesh => Ok(()),
            Topology::FatTree { radix } => {
                if radix < 2 || radix % 2 != 0 {
                    return Err(format!("fat-tree radix must be even and >= 2, got {radix}"));
                }
                let leaves = nodes.div_ceil(radix / 2);
                if leaves > radix {
                    return Err(format!(
                        "fat-tree radix {radix} supports at most {} nodes, got {nodes}",
                        radix * radix / 2
                    ));
                }
                Ok(())
            }
            Topology::Dumbbell { bottleneck_gbps } => {
                if bottleneck_gbps <= 0.0 || bottleneck_gbps.is_nan() {
                    return Err(format!(
                        "dumbbell bottleneck must be positive, got {bottleneck_gbps}"
                    ));
                }
                if nodes < 2 {
                    return Err("dumbbell needs at least 2 nodes".into());
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Topology::FullMesh => write!(f, "full-mesh"),
            Topology::FatTree { radix } => write!(f, "fat-tree/{radix}"),
            Topology::Dumbbell { bottleneck_gbps } => {
                write!(f, "dumbbell/{bottleneck_gbps}g")
            }
        }
    }
}

/// What one switch output port feeds (diagnostics and rate selection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortKind {
    /// Leaf `leaf` uplink toward spine `spine`.
    LeafUp { leaf: usize, spine: usize },
    /// Spine `spine` downlink toward leaf `leaf`.
    SpineDown { spine: usize, leaf: usize },
    /// Switch downlink toward `host` (last hop).
    HostDown { host: usize },
    /// Dumbbell bottleneck, left switch → right switch.
    BottleneckLr,
    /// Dumbbell bottleneck, right switch → left switch.
    BottleneckRl,
}

/// Port table + routing function for one switched topology instance.
pub struct RoutePlan {
    topology: Topology,
    nodes: usize,
    ports: Vec<PortKind>,
    /// Fat tree: hosts per leaf / spine count. Dumbbell: first right-side
    /// node index.
    hosts_per_leaf: usize,
    spines: usize,
    leaves: usize,
    split: usize,
}

/// SplitMix64 finalizer — the deterministic ECMP mixing function.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// ECMP hash over the frame's invariant path key.
pub fn ecmp_hash(src: usize, dst: usize, flow: u64) -> u64 {
    mix(mix(mix(flow).wrapping_add(src as u64)).wrapping_add(dst as u64))
}

impl RoutePlan {
    /// Build the port table for `topology` over `nodes` nodes. Panics if
    /// the topology fails [`Topology::validate`] (callers validate first)
    /// or is [`Topology::FullMesh`] (which has no switches).
    pub fn new(topology: Topology, nodes: usize) -> RoutePlan {
        topology.validate(nodes).expect("validated topology");
        match topology {
            Topology::FullMesh => panic!("full mesh has no switch ports"),
            Topology::FatTree { radix } => {
                let hosts_per_leaf = radix / 2;
                let spines = radix / 2;
                let leaves = nodes.div_ceil(hosts_per_leaf);
                let mut ports = Vec::new();
                for leaf in 0..leaves {
                    for spine in 0..spines {
                        ports.push(PortKind::LeafUp { leaf, spine });
                    }
                }
                for spine in 0..spines {
                    for leaf in 0..leaves {
                        ports.push(PortKind::SpineDown { spine, leaf });
                    }
                }
                for host in 0..nodes {
                    ports.push(PortKind::HostDown { host });
                }
                RoutePlan {
                    topology,
                    nodes,
                    ports,
                    hosts_per_leaf,
                    spines,
                    leaves,
                    split: 0,
                }
            }
            Topology::Dumbbell { .. } => {
                let split = nodes.div_ceil(2);
                let mut ports = vec![PortKind::BottleneckLr, PortKind::BottleneckRl];
                for host in 0..nodes {
                    ports.push(PortKind::HostDown { host });
                }
                RoutePlan {
                    topology,
                    nodes,
                    ports,
                    hosts_per_leaf: 0,
                    spines: 0,
                    leaves: 0,
                    split,
                }
            }
        }
    }

    pub fn topology(&self) -> Topology {
        self.topology
    }

    pub fn nodes(&self) -> usize {
        self.nodes
    }

    pub fn num_ports(&self) -> usize {
        self.ports.len()
    }

    pub fn port_kind(&self, port: usize) -> PortKind {
        self.ports[port]
    }

    /// Line rate of a port given the host link rate.
    pub fn port_gbps(&self, port: usize, line_gbps: f64) -> f64 {
        match (self.topology, self.ports[port]) {
            (
                Topology::Dumbbell { bottleneck_gbps },
                PortKind::BottleneckLr | PortKind::BottleneckRl,
            ) => bottleneck_gbps,
            _ => line_gbps,
        }
    }

    /// Leaf switch a fat-tree host hangs off (fat trees only).
    pub fn leaf_of(&self, host: usize) -> usize {
        assert!(
            matches!(self.topology, Topology::FatTree { .. }),
            "leaf_of is only meaningful on fat trees"
        );
        host / self.hosts_per_leaf
    }

    /// Port index of the downlink that feeds `host` (the incast hot spot).
    pub fn host_down_port(&self, host: usize) -> usize {
        self.ports.len() - self.nodes + host
    }

    /// Dumbbell: the bottleneck port crossed left→right (`lr = true`) or
    /// right→left.
    pub fn bottleneck_port(&self, lr: bool) -> usize {
        assert!(matches!(self.topology, Topology::Dumbbell { .. }));
        usize::from(!lr)
    }

    /// Longest port sequence any topology routes through.
    pub const MAX_PATH: usize = 3;

    /// Allocation-free routing for the per-packet hot path: fills `out`
    /// with the port sequence a frame traverses after the source host's
    /// egress link and returns its length. Deterministic in
    /// `(src, dst, flow)`.
    pub fn route_into(
        &self,
        src: usize,
        dst: usize,
        flow: u64,
        out: &mut [usize; Self::MAX_PATH],
    ) -> usize {
        assert!(src < self.nodes && dst < self.nodes && src != dst);
        match self.topology {
            Topology::FullMesh => unreachable!(),
            Topology::FatTree { .. } => {
                let (ls, ld) = (self.leaf_of(src), self.leaf_of(dst));
                if ls == ld {
                    out[0] = self.host_down_port(dst);
                    return 1;
                }
                let spine = (ecmp_hash(src, dst, flow) % self.spines as u64) as usize;
                out[0] = ls * self.spines + spine; // leaf up
                out[1] = self.leaves * self.spines + spine * self.leaves + ld; // spine down
                out[2] = self.host_down_port(dst);
                3
            }
            Topology::Dumbbell { .. } => {
                let (src_left, dst_left) = (src < self.split, dst < self.split);
                if src_left == dst_left {
                    out[0] = self.host_down_port(dst);
                    1
                } else {
                    out[0] = self.bottleneck_port(src_left);
                    out[1] = self.host_down_port(dst);
                    2
                }
            }
        }
    }

    /// Fat-tree spine count (0 on other topologies).
    pub fn spines(&self) -> usize {
        self.spines
    }

    /// [`RoutePlan::route_into`], avoiding fat-tree spines whose bit is set
    /// in `dead_spines` (the fault plane's switch-death mask; spine `s` is
    /// bit `1 << s`, so up to 64 spines — radix 128 — are addressable).
    ///
    /// The primary spine is the ECMP choice; when it is dead the probe
    /// walks `(spine + k) % spines` for `k = 1, 2, ...` and takes the
    /// first live spine, so the reroute is a pure function of
    /// `(src, dst, flow, dead_spines)` and same-seed runs stay
    /// byte-identical. Returns `Some((hops, rerouted))`, or `None` when a
    /// cross-leaf path exists but every spine is dead. Same-leaf fat-tree
    /// paths and all dumbbell paths never touch a spine; they delegate to
    /// [`RoutePlan::route_into`] with `rerouted = false`.
    pub fn route_avoiding(
        &self,
        src: usize,
        dst: usize,
        flow: u64,
        dead_spines: u64,
        out: &mut [usize; Self::MAX_PATH],
    ) -> Option<(usize, bool)> {
        if let Topology::FatTree { .. } = self.topology {
            let (ls, ld) = (self.leaf_of(src), self.leaf_of(dst));
            if ls != ld {
                let primary = (ecmp_hash(src, dst, flow) % self.spines as u64) as usize;
                let mut spine = primary;
                let mut k = 0;
                while dead_spines & (1 << spine) != 0 {
                    k += 1;
                    if k == self.spines {
                        return None; // every spine is dead
                    }
                    spine = (primary + k) % self.spines;
                }
                out[0] = ls * self.spines + spine;
                out[1] = self.leaves * self.spines + spine * self.leaves + ld;
                out[2] = self.host_down_port(dst);
                return Some((3, spine != primary));
            }
        }
        Some((self.route_into(src, dst, flow, out), false))
    }

    /// Per-packet spray spine selection — the adaptive-routing policy
    /// proper, pure in `(src, dst, flow, pkt_seq, congestion, dead_spines)`
    /// so same-seed runs stay byte-identical and the policy is directly
    /// unit-testable.
    ///
    /// `congestion[s]` is the queued-byte depth of the source leaf's uplink
    /// toward spine `s` at selection time (missing entries read as 0). The
    /// least-congested live spine wins; ties break toward the first spine
    /// scanned from a start offset hashed over `(src, dst, flow, pkt_seq)`,
    /// so equally idle spines are sprayed packet by packet instead of
    /// pinning the whole flow. Returns `None` when every spine is dead.
    pub fn spray_spine(
        &self,
        src: usize,
        dst: usize,
        flow: u64,
        pkt_seq: u64,
        congestion: &[usize],
        dead_spines: u64,
    ) -> Option<usize> {
        let n = self.spines;
        let start = (ecmp_hash(src, dst, flow ^ mix(pkt_seq)) % n as u64) as usize;
        let mut best: Option<(usize, usize)> = None;
        for k in 0..n {
            let s = (start + k) % n;
            if dead_spines & (1 << s) != 0 {
                continue;
            }
            let q = congestion.get(s).copied().unwrap_or(0);
            if best.is_none_or(|(bq, _)| q < bq) {
                best = Some((q, s));
            }
        }
        best.map(|(_, s)| s)
    }

    /// [`RoutePlan::route_avoiding`] with per-packet spray: fat-tree
    /// cross-leaf paths pick their spine via [`RoutePlan::spray_spine`]
    /// instead of the static ECMP hash; everything else (same-leaf,
    /// dumbbell) has a single path and delegates unchanged. The `rerouted`
    /// flag reports whether dead-spine avoidance moved the packet off the
    /// spine spray would have chosen on a healthy fabric, mirroring the
    /// ECMP reroute accounting.
    #[allow(clippy::too_many_arguments)]
    pub fn spray_route_into(
        &self,
        src: usize,
        dst: usize,
        flow: u64,
        pkt_seq: u64,
        congestion: &[usize],
        dead_spines: u64,
        out: &mut [usize; Self::MAX_PATH],
    ) -> Option<(usize, bool)> {
        if let Topology::FatTree { .. } = self.topology {
            let (ls, ld) = (self.leaf_of(src), self.leaf_of(dst));
            if ls != ld {
                let spine = self.spray_spine(src, dst, flow, pkt_seq, congestion, dead_spines)?;
                let healthy = self
                    .spray_spine(src, dst, flow, pkt_seq, congestion, 0)
                    .expect("at least one spine exists");
                out[0] = ls * self.spines + spine;
                out[1] = self.leaves * self.spines + spine * self.leaves + ld;
                out[2] = self.host_down_port(dst);
                return Some((3, spine != healthy));
            }
        }
        self.route_avoiding(src, dst, flow, dead_spines, out)
    }

    /// [`RoutePlan::route_into`], returning the path as a `Vec`.
    pub fn route(&self, src: usize, dst: usize, flow: u64) -> Vec<usize> {
        let mut out = [0; Self::MAX_PATH];
        let len = self.route_into(src, dst, flow, &mut out);
        out[..len].to_vec()
    }

    /// Number of physical links a frame crosses (host egress + one per
    /// routed port).
    pub fn hops(&self, src: usize, dst: usize, flow: u64) -> usize {
        1 + self.route(src, dst, flow).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fat_tree_for_scales_radix_with_nodes() {
        assert_eq!(Topology::fat_tree_for(2), Topology::FatTree { radix: 8 });
        assert_eq!(Topology::fat_tree_for(16), Topology::FatTree { radix: 8 });
        assert_eq!(Topology::fat_tree_for(32), Topology::FatTree { radix: 8 });
        assert_eq!(Topology::fat_tree_for(64), Topology::FatTree { radix: 12 });
        for nodes in [2usize, 16, 32, 33, 64, 100, 500] {
            Topology::fat_tree_for(nodes).validate(nodes).unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "fat trees")]
    fn leaf_of_rejects_dumbbell_plans() {
        let p = RoutePlan::new(
            Topology::Dumbbell {
                bottleneck_gbps: 25.0,
            },
            8,
        );
        let _ = p.leaf_of(0);
    }

    #[test]
    fn topology_validation() {
        assert!(Topology::FullMesh.validate(64).is_ok());
        assert!(Topology::FatTree { radix: 8 }.validate(16).is_ok());
        assert!(Topology::FatTree { radix: 7 }.validate(4).is_err(), "odd");
        assert!(Topology::FatTree { radix: 0 }.validate(2).is_err());
        assert!(
            Topology::FatTree { radix: 4 }.validate(64).is_err(),
            "too many nodes for radix"
        );
        assert!(Topology::Dumbbell {
            bottleneck_gbps: 25.0
        }
        .validate(8)
        .is_ok());
        assert!(Topology::Dumbbell {
            bottleneck_gbps: 0.0
        }
        .validate(8)
        .is_err());
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(Topology::FullMesh.to_string(), "full-mesh");
        assert_eq!(Topology::FatTree { radix: 8 }.to_string(), "fat-tree/8");
        assert_eq!(
            Topology::Dumbbell {
                bottleneck_gbps: 25.0
            }
            .to_string(),
            "dumbbell/25g"
        );
    }

    #[test]
    fn fat_tree_layout_counts() {
        let p = RoutePlan::new(Topology::FatTree { radix: 8 }, 16);
        // 4 leaves × 4 spines up + 4×4 down + 16 host downlinks.
        assert_eq!(p.num_ports(), 16 + 16 + 16);
        assert_eq!(p.leaf_of(0), 0);
        assert_eq!(p.leaf_of(15), 3);
        assert_eq!(
            p.port_kind(p.host_down_port(7)),
            PortKind::HostDown { host: 7 }
        );
    }

    #[test]
    fn ecmp_is_deterministic_and_spreads() {
        let p = RoutePlan::new(Topology::FatTree { radix: 8 }, 16);
        // Same key → same path, every time.
        for flow in 0..32u64 {
            assert_eq!(p.route(0, 12, flow), p.route(0, 12, flow));
        }
        // Different flows between one node pair use more than one spine.
        let spines: std::collections::BTreeSet<usize> = (0..64u64)
            .map(|flow| p.route(0, 12, flow)[0]) // leaf-up port encodes spine
            .collect();
        assert!(spines.len() > 1, "ECMP never spread: {spines:?}");
        // Same-leaf traffic takes the one-hop path.
        assert_eq!(p.route(0, 1, 9).len(), 1);
        assert_eq!(p.hops(0, 1, 9), 2);
        assert_eq!(p.hops(0, 12, 9), 4);
    }

    #[test]
    fn fat_tree_route_is_consistent() {
        let p = RoutePlan::new(Topology::FatTree { radix: 8 }, 16);
        let path = p.route(2, 13, 77);
        let PortKind::LeafUp { leaf, spine } = p.port_kind(path[0]) else {
            panic!("first hop must go up");
        };
        assert_eq!(leaf, p.leaf_of(2));
        let PortKind::SpineDown {
            spine: s2,
            leaf: l2,
        } = p.port_kind(path[1])
        else {
            panic!("second hop must come down");
        };
        assert_eq!(s2, spine, "same spine down as up");
        assert_eq!(l2, p.leaf_of(13));
        assert_eq!(p.port_kind(path[2]), PortKind::HostDown { host: 13 });
    }

    #[test]
    fn route_avoiding_skips_dead_spines_deterministically() {
        let p = RoutePlan::new(Topology::FatTree { radix: 8 }, 16);
        let mut out = [0; RoutePlan::MAX_PATH];
        // No dead spines: identical to route_into, never flagged rerouted.
        for flow in 0..32u64 {
            let (hops, rerouted) = p.route_avoiding(0, 12, flow, 0, &mut out).unwrap();
            assert_eq!((hops, rerouted), (3, false));
            assert_eq!(out[..3].to_vec(), p.route(0, 12, flow));
        }
        // Kill the primary spine of one flow: its path moves to a live
        // spine and is flagged; an unaffected flow keeps its path.
        let primary = |flow: u64| {
            let PortKind::LeafUp { spine, .. } = p.port_kind(p.route(0, 12, flow)[0]) else {
                panic!("first hop must go up");
            };
            spine
        };
        let f = (0..64u64).find(|&f| primary(f) == 1).unwrap();
        let (hops, rerouted) = p.route_avoiding(0, 12, f, 1 << 1, &mut out).unwrap();
        assert_eq!((hops, rerouted), (3, true));
        let PortKind::LeafUp { spine, .. } = p.port_kind(out[0]) else {
            panic!();
        };
        assert_eq!(spine, 2, "probe walks to the next live spine");
        let unaffected = (0..64u64).find(|&f| primary(f) == 3).unwrap();
        let (_, moved) = p
            .route_avoiding(0, 12, unaffected, 1 << 1, &mut out)
            .unwrap();
        assert!(!moved, "flows off the dead spine keep their path");
        // Deterministic: same inputs, same reroute.
        let a = p.route_avoiding(0, 12, f, 1 << 1, &mut out);
        let path_a = out;
        let b = p.route_avoiding(0, 12, f, 1 << 1, &mut out);
        assert_eq!((a, path_a), (b, out));
        // Same-leaf traffic ignores the mask entirely.
        assert_eq!(p.route_avoiding(0, 1, 9, 0xF, &mut out), Some((1, false)));
        // All spines dead: no cross-leaf path remains.
        assert_eq!(p.route_avoiding(0, 12, f, 0xF, &mut out), None);
    }

    #[test]
    fn spray_spine_is_pure_and_congestion_aware() {
        let p = RoutePlan::new(Topology::FatTree { radix: 8 }, 16);
        // Pure: same tuple, same spine, every time.
        for pkt in 0..16u64 {
            let a = p.spray_spine(0, 12, 7, pkt, &[10, 20, 30, 40], 0);
            let b = p.spray_spine(0, 12, 7, pkt, &[10, 20, 30, 40], 0);
            assert_eq!(a, b);
        }
        // Strictly least-congested spine wins regardless of pkt_seq.
        for pkt in 0..32u64 {
            assert_eq!(p.spray_spine(0, 12, 7, pkt, &[9, 5, 7, 8], 0), Some(1));
        }
        // A congested pick is abandoned even if it is the hash favorite.
        let favorite = p.spray_spine(0, 12, 7, 3, &[0, 0, 0, 0], 0).unwrap();
        let mut load = [0usize; 4];
        load[favorite] = 1 << 20;
        assert_ne!(p.spray_spine(0, 12, 7, 3, &load, 0), Some(favorite));
        // Short congestion slices read as idle rather than panicking.
        assert!(p.spray_spine(0, 12, 7, 3, &[], 0).is_some());
    }

    #[test]
    fn spray_spreads_ties_per_packet_and_respects_dead_spines() {
        let p = RoutePlan::new(Topology::FatTree { radix: 8 }, 16);
        // Equal congestion: successive packets of ONE flow visit more than
        // one spine — the per-packet spread ECMP cannot give.
        let spines: std::collections::BTreeSet<usize> = (0..64u64)
            .filter_map(|pkt| p.spray_spine(0, 12, 7, pkt, &[0, 0, 0, 0], 0))
            .collect();
        assert!(spines.len() > 1, "spray never spread: {spines:?}");
        // Dead spines are never chosen, even when least congested.
        for pkt in 0..32u64 {
            let s = p.spray_spine(0, 12, 7, pkt, &[0, 99, 99, 99], 1 << 0);
            assert_ne!(s, Some(0));
        }
        // All dead: no path.
        assert_eq!(p.spray_spine(0, 12, 7, 0, &[0; 4], 0xF), None);
    }

    #[test]
    fn spray_route_matches_layout_and_delegates_off_fat_tree() {
        let p = RoutePlan::new(Topology::FatTree { radix: 8 }, 16);
        let mut out = [0; RoutePlan::MAX_PATH];
        let (hops, rerouted) = p
            .spray_route_into(2, 13, 77, 5, &[0, 64, 0, 0], 0, &mut out)
            .unwrap();
        assert_eq!((hops, rerouted), (3, false));
        let PortKind::LeafUp { leaf, spine } = p.port_kind(out[0]) else {
            panic!("first hop must go up");
        };
        assert_eq!(leaf, p.leaf_of(2));
        assert_ne!(spine, 1, "congested spine avoided");
        let PortKind::SpineDown {
            spine: s2,
            leaf: l2,
        } = p.port_kind(out[1])
        else {
            panic!("second hop must come down");
        };
        assert_eq!((s2, l2), (spine, p.leaf_of(13)));
        assert_eq!(p.port_kind(out[2]), PortKind::HostDown { host: 13 });
        // Killing the chosen spine reroutes and flags it.
        let (_, moved) = p
            .spray_route_into(2, 13, 77, 5, &[0, 64, 0, 0], 1 << spine, &mut out)
            .unwrap();
        assert!(moved);
        // Same-leaf fat-tree traffic and dumbbells have one path: spray
        // degenerates to the static route.
        assert_eq!(
            p.spray_route_into(0, 1, 9, 42, &[0; 4], 0, &mut out),
            Some((1, false))
        );
        let d = RoutePlan::new(
            Topology::Dumbbell {
                bottleneck_gbps: 25.0,
            },
            8,
        );
        let (hops, _) = d.spray_route_into(1, 6, 1, 3, &[], 0, &mut out).unwrap();
        assert_eq!(out[..hops].to_vec(), d.route(1, 6, 1));
    }

    #[test]
    fn dumbbell_routes_cross_traffic_through_bottleneck() {
        let p = RoutePlan::new(
            Topology::Dumbbell {
                bottleneck_gbps: 25.0,
            },
            8,
        );
        // Same side: one hop, no bottleneck.
        assert_eq!(p.route(0, 3, 1), vec![p.host_down_port(3)]);
        // Cross: bottleneck then downlink, directional ports.
        assert_eq!(
            p.route(1, 6, 1),
            vec![p.bottleneck_port(true), p.host_down_port(6)]
        );
        assert_eq!(
            p.route(6, 1, 1),
            vec![p.bottleneck_port(false), p.host_down_port(1)]
        );
        assert_eq!(p.port_gbps(p.bottleneck_port(true), 100.0), 25.0);
        assert_eq!(p.port_gbps(p.host_down_port(0), 100.0), 100.0);
    }
}
