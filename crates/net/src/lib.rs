//! # cord-net — switched topologies, shared queues, and ECN
//!
//! The seed reproduction wires nodes back-to-back: `cord-hw`'s fabric is
//! an ideal full mesh where every frame goes straight from source egress
//! to destination ingress, so cluster-scale scenarios named after
//! congestion (incast, shuffle) never actually experience any. This crate
//! replaces that with explicit topologies and congestion:
//!
//! * [`Topology`] — [`Topology::FullMesh`] (the default; byte-identical to
//!   the seed's behavior), two-tier [`Topology::FatTree`] with ECMP over
//!   the spines, and [`Topology::Dumbbell`] with a shared bottleneck link.
//! * [`Network`] — the runtime transport `cord-nic` ships packets
//!   through: per-output-port FIFO queues, finite buffers with tail drop,
//!   and ECN marking at a configurable queue-depth threshold
//!   ([`EcnConfig`]).
//! * [`RoutePlan`] — pure, unit-testable routing: ECMP hashed on
//!   `(src, dst, flow)`, so a QP's fragments share one path and RC
//!   ordering survives multipathing. [`Routing::Spray`] switches
//!   cross-leaf fat-tree traffic to congestion-aware per-packet spray
//!   ([`RoutePlan::spray_spine`]): each packet picks the least-congested
//!   live spine off the source leaf, reordering fragments by design —
//!   pair it with `cord-nic`'s selective-repeat receiver.
//!
//! ## The congestion-control loop
//!
//! Switches mark frames (this crate) → the receiving NIC echoes a CNP to
//! the sender → the sender's DCQCN rate limiter cuts its per-QP rate and
//! recovers on timers (`cord-nic::cc`, gated per QP by
//! `CcAlgorithm::{None, Dcqcn}`). End to end the loop is deterministic:
//! the same spec and seed yield byte-identical results.
//!
//! ## Lossless mode (PFC)
//!
//! With [`PfcConfig::enabled`] the fabric becomes lossless: a port whose
//! queue crosses the XOFF watermark pauses the upstream feeders that
//! serialize into it, the backlog propagates hop by hop into the hosts'
//! egress queues, and nothing is ever tail-dropped. The price is
//! head-of-line blocking — victim flows parked behind a paused head frame
//! — and, under oversubscription, fabric-wide pause storms; both are
//! reproducible pathologies (see the `pfc-hol-blocking` and `pause-storm`
//! workload scenarios).
//!
//! ## Knobs
//!
//! | Knob | Where | Default |
//! |---|---|---|
//! | topology | [`NetConfig::topology`] | `FullMesh` |
//! | routing policy | [`NetConfig::routing`] | `Ecmp` |
//! | ECN threshold | [`EcnConfig::threshold_bytes`] | 64 KiB |
//! | port buffer | [`NetConfig::buffer_bytes`] | 16 MiB |
//! | PFC on/off | [`PfcConfig::enabled`] | off |
//! | PFC XOFF / XON | [`PfcConfig::xoff_bytes`] / [`PfcConfig::xon_bytes`] | 128 / 64 KiB |
//! | fat-tree radix | [`Topology::FatTree`] | — (8 in the workload layer) |
//! | bottleneck rate | [`Topology::Dumbbell`] | — |

pub mod network;
pub mod route;

pub use network::{EcnConfig, NetConfig, Network, PfcConfig, Routing};
pub use route::{ecmp_hash, PortKind, RoutePlan, Topology};

// Re-export the frame type networks carry, so `cord-nic` has one import
// surface for transport types.
pub use cord_hw::link::Frame;
