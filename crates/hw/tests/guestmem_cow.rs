//! Property test: the copy-on-write [`GuestMem`] is observationally
//! identical to a naive flat-buffer model that copies on every access.
//!
//! A DetRng-driven op sequence (alloc / write / fill / read / zero-copy
//! install across arenas) runs against both implementations. Two
//! properties are checked after every step:
//!
//! 1. **Byte equivalence** — every read returns exactly the bytes the
//!    naive model holds for that range.
//! 2. **Snapshot stability** — a [`PayloadSeg`] returned by an earlier
//!    read continues to expose the bytes as they were at read time, no
//!    matter how many overlapping writes/installs/fills happen afterwards
//!    (this is the guarantee the old copying `read` gave for free and COW
//!    must preserve).

use cord_hw::{GuestMem, PayloadSeg, GUEST_BASE};
use cord_sim::DetRng;

/// Naive reference: one contiguous buffer per arena, every op a copy.
struct NaiveMem {
    buf: Vec<u8>,
}

impl NaiveMem {
    fn new() -> Self {
        NaiveMem { buf: Vec::new() }
    }

    fn alloc(&mut self, len: usize, fill: u8) -> u64 {
        let addr = GUEST_BASE + self.buf.len() as u64;
        self.buf.extend(std::iter::repeat_n(fill, len));
        addr
    }

    fn start(&self, addr: u64) -> usize {
        (addr - GUEST_BASE) as usize
    }

    fn read(&self, addr: u64, len: usize) -> Vec<u8> {
        let s = self.start(addr);
        self.buf[s..s + len].to_vec()
    }

    fn write(&mut self, addr: u64, data: &[u8]) {
        let s = self.start(addr);
        self.buf[s..s + data.len()].copy_from_slice(data);
    }

    fn fill(&mut self, addr: u64, len: usize, v: u8) {
        let s = self.start(addr);
        self.buf[s..s + len].fill(v);
    }

    fn len(&self) -> usize {
        self.buf.len()
    }
}

/// One arena pair (COW implementation + reference) plus the live
/// snapshots whose stability we keep asserting.
struct Arena {
    cow: GuestMem,
    naive: NaiveMem,
    /// (segment, bytes it must keep showing forever).
    snapshots: Vec<(PayloadSeg, Vec<u8>)>,
}

impl Arena {
    fn new() -> Self {
        Arena {
            cow: GuestMem::new(),
            naive: NaiveMem::new(),
            snapshots: Vec::new(),
        }
    }

    /// A random in-bounds (addr, len) range; None while empty.
    fn random_range(&self, rng: &DetRng) -> Option<(u64, usize)> {
        let total = self.naive.len();
        if total == 0 {
            return None;
        }
        let start = rng.uniform_range(0, total as u64);
        let max_len = (total as u64 - start).min(300);
        let len = rng.uniform_range(0, max_len + 1) as usize;
        Some((GUEST_BASE + start, len))
    }

    fn check_snapshots(&self, step: usize) {
        for (i, (seg, expect)) in self.snapshots.iter().enumerate() {
            assert_eq!(
                &seg[..],
                &expect[..],
                "snapshot {i} mutated by step {step}: COW broke read stability"
            );
        }
    }
}

#[test]
fn cow_guestmem_matches_naive_reference_model() {
    let rng = DetRng::from_seed(0xC0B_D5EED);
    // Two arenas so installs exercise the cross-arena zero-copy path the
    // NIC RX pipeline uses (sender chunk referenced by receiver patches).
    let mut arenas = [Arena::new(), Arena::new()];

    for step in 0..4000 {
        let which = rng.uniform_range(0, 2) as usize;
        match rng.uniform_range(0, 100) {
            // Occasionally grow an arena (bounded so ranges stay dense).
            0..=4 => {
                let len = rng.uniform_range(1, 600) as usize;
                let fill = rng.next_u64() as u8;
                let a = &mut arenas[which];
                if a.naive.len() < 16 << 10 {
                    let r = a.cow.alloc(len, fill);
                    let addr = a.naive.alloc(len, fill);
                    assert_eq!(r.addr, addr, "allocation layout must match");
                }
            }
            // Byte writes.
            5..=34 => {
                let a = &mut arenas[which];
                if let Some((addr, len)) = a.random_range(&rng) {
                    let data: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
                    a.cow.write(addr, &data).unwrap();
                    a.naive.write(addr, &data);
                }
            }
            // Region fills.
            35..=44 => {
                let a = &mut arenas[which];
                if let Some((addr, len)) = a.random_range(&rng) {
                    let v = rng.next_u64() as u8;
                    a.cow.fill(cord_hw::MemRegion { addr, len }, v).unwrap();
                    a.naive.fill(addr, len, v);
                }
            }
            // Zero-copy installs: read from arena `which`, land in the
            // other one (or the same one half the time).
            45..=69 => {
                let src_is = which;
                let dst_is = if rng.uniform_range(0, 2) == 0 {
                    which
                } else {
                    1 - which
                };
                let Some((src_addr, len)) = arenas[src_is].random_range(&rng) else {
                    continue;
                };
                let seg = arenas[src_is].cow.read(src_addr, len).unwrap();
                let bytes = arenas[src_is].naive.read(src_addr, len);
                assert_eq!(&seg[..], &bytes[..], "pre-install read diverged");
                let dst_total = arenas[dst_is].naive.len();
                if dst_total < len {
                    continue;
                }
                let dst_start = rng.uniform_range(0, (dst_total - len) as u64 + 1);
                let dst_addr = GUEST_BASE + dst_start;
                arenas[dst_is].cow.install(dst_addr, &seg).unwrap();
                arenas[dst_is].naive.write(dst_addr, &bytes);
            }
            // Reads: verify bytes and retain some as stability snapshots.
            _ => {
                let a = &mut arenas[which];
                if let Some((addr, len)) = a.random_range(&rng) {
                    let seg = a.cow.read(addr, len).unwrap();
                    let expect = a.naive.read(addr, len);
                    assert_eq!(&seg[..], &expect[..], "read diverged at step {step}");
                    if a.snapshots.len() < 64 && rng.uniform_range(0, 4) == 0 {
                        a.snapshots.push((seg, expect));
                    } else if a.snapshots.len() >= 64 {
                        // Rotate so drops exercise refcount-release paths.
                        let i = rng.uniform_range(0, a.snapshots.len() as u64) as usize;
                        a.snapshots.swap_remove(i);
                    }
                }
            }
        }
        for a in &arenas {
            a.check_snapshots(step);
        }
    }

    // Final sweep: whole-arena reads must match the reference exactly.
    for (i, a) in arenas.iter().enumerate() {
        if a.naive.len() > 0 {
            let got = a.cow.read(GUEST_BASE, a.naive.len()).unwrap();
            assert_eq!(&got[..], &a.naive.buf[..], "arena {i} final state");
        }
    }
}

/// Out-of-bounds behavior must match the flat model's address arithmetic.
#[test]
fn cow_bounds_match_flat_semantics() {
    let m = GuestMem::new();
    let a = m.alloc(32, 1);
    let b = m.alloc(32, 2);
    // Reads and writes crossing the a|b boundary are legal (the arena is
    // contiguous), exactly as with the flat buffer.
    assert_eq!(m.read(a.addr + 30, 4).unwrap(), vec![1, 1, 2, 2]);
    m.write(a.addr + 30, &[9, 9, 9, 9]).unwrap();
    assert_eq!(
        m.read(a.addr + 28, 8).unwrap(),
        vec![1, 1, 9, 9, 9, 9, 2, 2]
    );
    // One past the frontier is out of bounds.
    assert!(m.read(b.end(), 1).is_err());
    assert!(m.write(b.end() - 1, &[0, 0]).is_err());
    assert!(m.read(GUEST_BASE - 1, 1).is_err());
}
