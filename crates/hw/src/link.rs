//! Network fabric model.
//!
//! Nodes are connected by full-duplex point-to-point links (the paper's
//! system L is two nodes back-to-back; system A is two VMs across a cloud
//! fabric, modelled as a higher-propagation link). Each node has an egress
//! serializer at line rate; frames arrive at the destination's ingress
//! channel after serialization + propagation. Loopback frames (same node)
//! pass through the NIC's internal path and skip propagation.
//!
//! The destination's ingress port is a real serializer too: a node's RX
//! wire can only receive one frame at a time, so frames from many
//! concurrent senders queue at the receiver (the incast effect) instead of
//! landing simultaneously. For a single sender the ingress interval is
//! exactly the egress interval shifted by propagation, so point-to-point
//! timings are unchanged.
//!
//! The fabric is generic over the frame payload so `cord-nic` can ship its
//! packet type through it without a dependency cycle. Switched topologies
//! with shared queues live in `cord-net` and reuse [`Frame`]; this module
//! stays the ideal full mesh.
//!
//! Note that `transmit` consults only per-port state in deterministic call
//! order, so runs are reproducible.

use std::cell::Cell;
use std::rc::Rc;

use cord_sim::sync::{channel, Receiver, Sender};
use cord_sim::{FifoResource, Sim, SimDuration, Trace, TraceKind};

use crate::machine::LinkSpec;

/// A frame in flight: destination node + opaque payload.
pub struct Frame<T> {
    /// Source node.
    pub src: usize,
    /// Destination node.
    pub dst: usize,
    /// Bytes occupied on the wire (payload + headers).
    pub wire_bytes: usize,
    /// Flow label for ECMP path selection in switched topologies (the NIC
    /// derives it from the QP pair). Ignored by the full mesh.
    pub flow: u64,
    /// ECN congestion-experienced mark, set by switches whose egress queue
    /// is over threshold. Always false on the ideal mesh.
    pub ecn: bool,
    /// The cargo (the NIC ships its packet type here).
    pub payload: T,
}

/// Runtime per-link fault state (set by the `cord-chaos` plane through
/// `cord-net`'s fault API). `active` stays `false` until the first
/// injection, so the healthy transmit path pays one predictable branch
/// and stays bit-identical to a fault-free build.
struct MeshFaults {
    active: Cell<bool>,
    /// Node links administratively down (frames touching one are lost).
    down: Vec<Cell<bool>>,
    /// Egress line-rate multiplier per node (1.0 = healthy).
    rate: Vec<Cell<f64>>,
    /// Extra one-way latency per node's egress hop, ns.
    extra_ns: Vec<Cell<f64>>,
    /// Frames lost to downed links.
    drops: Cell<u64>,
}

struct FabricInner<T> {
    sim: Sim,
    spec: LinkSpec,
    egress: Vec<FifoResource>,
    ingress: Vec<FifoResource>,
    ingress_tx: Vec<Sender<Frame<T>>>,
    faults: MeshFaults,
    trace: Trace,
}

/// Shared fabric connecting `n` nodes. The state lives behind one `Rc` so
/// the per-frame delivery closures capture a single reference-count bump
/// instead of cloning senders and port resources.
pub struct Fabric<T> {
    inner: Rc<FabricInner<T>>,
}

impl<T: 'static> Fabric<T> {
    /// Build a fabric; returns the fabric and each node's ingress receiver.
    pub fn new(sim: &Sim, spec: LinkSpec, nodes: usize) -> (Self, Vec<Receiver<Frame<T>>>) {
        Self::new_traced(sim, spec, nodes, Trace::disabled())
    }

    /// [`Fabric::new`] with a trace sink: every frame crossing the mesh
    /// emits a [`TraceKind::MeshTx`] at its transmit instant.
    pub fn new_traced(
        sim: &Sim,
        spec: LinkSpec,
        nodes: usize,
        trace: Trace,
    ) -> (Self, Vec<Receiver<Frame<T>>>) {
        let mut egress = Vec::with_capacity(nodes);
        let mut ingress = Vec::with_capacity(nodes);
        let mut ingress_tx = Vec::with_capacity(nodes);
        let mut ingress_rx = Vec::with_capacity(nodes);
        for _ in 0..nodes {
            egress.push(FifoResource::new(sim));
            ingress.push(FifoResource::new(sim));
            let (tx, rx) = channel();
            ingress_tx.push(tx);
            ingress_rx.push(rx);
        }
        (
            Fabric {
                inner: Rc::new(FabricInner {
                    sim: sim.clone(),
                    spec,
                    egress,
                    ingress,
                    ingress_tx,
                    faults: MeshFaults {
                        active: Cell::new(false),
                        down: (0..nodes).map(|_| Cell::new(false)).collect(),
                        rate: (0..nodes).map(|_| Cell::new(1.0)).collect(),
                        extra_ns: (0..nodes).map(|_| Cell::new(0.0)).collect(),
                        drops: Cell::new(0),
                    },
                    trace,
                }),
            },
            ingress_rx,
        )
    }

    /// Number of connected nodes.
    pub fn nodes(&self) -> usize {
        self.inner.egress.len()
    }

    /// The link calibration constants.
    pub fn spec(&self) -> &LinkSpec {
        &self.inner.spec
    }

    /// Serialization time for `wire_bytes` at line rate.
    pub fn serialize_time(&self, wire_bytes: usize) -> SimDuration {
        cord_sim::transmission_time(wire_bytes as u64, self.inner.spec.gbps)
    }

    /// Transmit a frame. Serializes on the source's egress port (FIFO at
    /// line rate), propagates, then serializes through the destination's
    /// ingress port — concurrent senders to one node queue there.
    /// Returns immediately; the frame arrives asynchronously.
    pub fn transmit(&self, frame: Frame<T>) {
        assert!(frame.src < self.nodes() && frame.dst < self.nodes());
        let inner = &self.inner;
        // Fault plane: a downed link at either end loses the frame at
        // transmit time (loopback is NIC-internal and never touches the
        // wire); a degraded source link serializes slower and adds
        // latency. Frames already in flight are past the decision point.
        let f = &inner.faults;
        let mut extra = SimDuration::ZERO;
        let mut gbps = inner.spec.gbps;
        if f.active.get() {
            if frame.src != frame.dst && (f.down[frame.src].get() || f.down[frame.dst].get()) {
                f.drops.set(f.drops.get() + 1);
                return;
            }
            gbps *= f.rate[frame.src].get();
            extra = SimDuration::from_ns_f64(f.extra_ns[frame.src].get());
        }
        inner.trace.emit(
            inner.sim.now(),
            TraceKind::MeshTx {
                src: frame.src as u32,
                dst: frame.dst as u32,
                bytes: frame.wire_bytes as u32,
            },
        );
        let ser = cord_sim::transmission_time(frame.wire_bytes as u64, gbps);
        let grant = inner.egress[frame.src].enqueue(ser);
        // Boxed once: the delivery closures then capture a pointer (small
        // enough for the executor's inline-closure path) instead of the
        // whole frame.
        let frame = Box::new(frame);
        if frame.src == frame.dst {
            // Loopback: NIC-internal path, no wire, no ingress port.
            let fab = Rc::clone(inner);
            inner.sim.schedule_at(grant.end, move |_| {
                // Receiver dropped means the node shut down; frame is lost,
                // which is fine (UD semantics) — RC recovers via higher
                // layers.
                let _ = fab.ingress_tx[frame.dst].try_send(*frame);
            });
            return;
        }
        // The first bit reaches the destination at grant.start + prop; the
        // ingress port then receives for one serialization time (ending at
        // grant.end + prop when the RX wire is idle).
        let first_bit = grant.start + SimDuration::from_ns_f64(inner.spec.propagation_ns) + extra;
        let fab = Rc::clone(inner);
        inner.sim.schedule_at(first_bit, move |sim| {
            let ser = cord_sim::transmission_time(frame.wire_bytes as u64, fab.spec.gbps);
            let g = fab.ingress[frame.dst].enqueue(ser);
            sim.schedule_at(g.end, move |_| {
                if fab.faults.active.get() && fab.faults.down[frame.dst].get() {
                    fab.faults.drops.set(fab.faults.drops.get() + 1);
                    return;
                }
                let _ = fab.ingress_tx[frame.dst].try_send(*frame);
            });
        });
    }

    /// Administratively down (or restore) a node's link: frames to or
    /// from it are dropped and counted in [`Fabric::link_drops`].
    pub fn set_link_down(&self, node: usize, down: bool) {
        self.inner.faults.active.set(true);
        self.inner.faults.down[node].set(down);
    }

    /// Degrade a node's link: multiply its egress line rate by
    /// `rate_factor` and add `extra_ns` of one-way latency. `(1.0, 0.0)`
    /// restores the healthy link.
    pub fn set_link_degrade(&self, node: usize, rate_factor: f64, extra_ns: f64) {
        assert!(
            rate_factor > 0.0 && rate_factor.is_finite(),
            "rate factor must be positive"
        );
        assert!(extra_ns >= 0.0, "extra latency must be non-negative");
        self.inner.faults.active.set(true);
        self.inner.faults.rate[node].set(rate_factor);
        self.inner.faults.extra_ns[node].set(extra_ns);
    }

    /// Frames lost to downed links.
    pub fn link_drops(&self) -> u64 {
        self.inner.faults.drops.get()
    }

    /// Egress utilization of a node's port.
    pub fn egress_utilization(&self, node: usize) -> f64 {
        self.inner.egress[node].utilization()
    }

    /// Frames serialized by a node's egress port.
    pub fn egress_frames(&self, node: usize) -> u64 {
        self.inner.egress[node].served()
    }

    /// Frames received through a node's ingress port (excludes loopback).
    pub fn ingress_frames(&self, node: usize) -> u64 {
        self.inner.ingress[node].served()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> LinkSpec {
        LinkSpec {
            gbps: 100.0, // 80 ps/B
            propagation_ns: 200.0,
        }
    }

    fn frame(src: usize, dst: usize, wire_bytes: usize, payload: u32) -> Frame<u32> {
        Frame {
            src,
            dst,
            wire_bytes,
            flow: 0,
            ecn: false,
            payload,
        }
    }

    #[test]
    fn frame_arrives_after_serialization_and_propagation() {
        let sim = Sim::new();
        let (fab, mut rx) = Fabric::<u32>::new(&sim, spec(), 2);
        let rx1 = rx.remove(1);
        let t = sim.block_on({
            let sim = sim.clone();
            async move {
                fab.transmit(frame(0, 1, 1000, 7));
                let f = rx1.recv().await.unwrap();
                assert_eq!(f.payload, 7);
                assert!(!f.ecn);
                sim.now()
            }
        });
        // 1000 B * 80 ps + 200 ns = 80 + 200.
        assert_eq!(t.as_ns_f64(), 280.0);
    }

    #[test]
    fn egress_serializes_back_to_back_frames() {
        let sim = Sim::new();
        let (fab, mut rx) = Fabric::<u32>::new(&sim, spec(), 2);
        let rx1 = rx.remove(1);
        let times = sim.block_on({
            let sim = sim.clone();
            async move {
                for i in 0..3 {
                    fab.transmit(frame(0, 1, 1250, i)); // 100 ns each
                }
                let mut out = Vec::new();
                for _ in 0..3 {
                    let f = rx1.recv().await.unwrap();
                    out.push((f.payload, sim.now().as_ns_f64()));
                }
                out
            }
        });
        assert_eq!(times[0], (0, 300.0));
        assert_eq!(times[1], (1, 400.0));
        assert_eq!(times[2], (2, 500.0));
    }

    #[test]
    fn loopback_skips_propagation() {
        let sim = Sim::new();
        let (fab, mut rx) = Fabric::<u32>::new(&sim, spec(), 2);
        let rx0 = rx.remove(0);
        let t = sim.block_on({
            let sim = sim.clone();
            async move {
                fab.transmit(frame(0, 0, 1250, 1));
                rx0.recv().await.unwrap();
                sim.now()
            }
        });
        assert_eq!(t.as_ns_f64(), 100.0);
    }

    #[test]
    fn opposite_directions_do_not_contend() {
        let sim = Sim::new();
        let (fab, mut rx) = Fabric::<u32>::new(&sim, spec(), 2);
        let rx1 = rx.remove(1);
        let rx0 = rx.remove(0);
        let t = sim.block_on({
            let sim = sim.clone();
            async move {
                fab.transmit(frame(0, 1, 1250, 1));
                fab.transmit(frame(1, 0, 1250, 2));
                rx1.recv().await.unwrap();
                let t1 = sim.now();
                rx0.recv().await.unwrap();
                (t1, sim.now())
            }
        });
        // Full duplex: both arrive at 300 ns.
        assert_eq!(t.0.as_ns_f64(), 300.0);
        assert_eq!(t.1.as_ns_f64(), 300.0);
    }

    #[test]
    fn utilization_counts_only_busy_time() {
        let sim = Sim::new();
        let (fab, _rx) = Fabric::<u32>::new(&sim, spec(), 2);
        sim.block_on({
            let sim = sim.clone();
            async move {
                fab.transmit(frame(0, 1, 1250, 0));
                sim.sleep(SimDuration::from_ns(1000)).await;
                assert!((fab.egress_utilization(0) - 0.1).abs() < 1e-9);
                assert_eq!(fab.egress_frames(0), 1);
                assert_eq!(fab.ingress_frames(1), 1);
            }
        });
    }

    #[test]
    fn link_faults_drop_degrade_and_restore() {
        let sim = Sim::new();
        let (fab, mut rx) = Fabric::<u32>::new(&sim, spec(), 3);
        let rx1 = rx.remove(1);
        sim.block_on({
            let sim = sim.clone();
            async move {
                // Down: frames touching the link die at transmit, both
                // directions, and are counted.
                fab.set_link_down(2, true);
                fab.transmit(frame(2, 1, 1250, 0));
                fab.transmit(frame(1, 2, 1250, 1));
                sim.sleep(SimDuration::from_us(1)).await;
                assert!(rx1.try_recv().is_none());
                assert_eq!(fab.link_drops(), 2);
                // Restore: timing matches the healthy link exactly.
                fab.set_link_down(2, false);
                let t0 = sim.now();
                fab.transmit(frame(2, 1, 1250, 2));
                assert_eq!(rx1.recv().await.unwrap().payload, 2);
                assert_eq!(sim.now().since(t0).as_ns_f64(), 300.0);
                // Degrade node 2 to quarter rate with 100 ns extra: the
                // first frame pays the added latency; the second also
                // waits out the slowed 400 ns egress serialization.
                fab.set_link_degrade(2, 0.25, 100.0);
                let t0 = sim.now();
                fab.transmit(frame(2, 1, 1250, 3));
                fab.transmit(frame(2, 1, 1250, 4));
                assert_eq!(rx1.recv().await.unwrap().payload, 3);
                assert_eq!(sim.now().since(t0).as_ns_f64(), 400.0);
                assert_eq!(rx1.recv().await.unwrap().payload, 4);
                assert_eq!(sim.now().since(t0).as_ns_f64(), 800.0);
                // Full restore: back to the healthy 300 ns.
                fab.set_link_degrade(2, 1.0, 0.0);
                let t0 = sim.now();
                fab.transmit(frame(2, 1, 1250, 5));
                assert_eq!(rx1.recv().await.unwrap().payload, 5);
                assert_eq!(sim.now().since(t0).as_ns_f64(), 300.0);
            }
        });
    }

    #[test]
    fn receiver_ingress_serializes_concurrent_senders() {
        // N senders fire one frame each at t=0 toward node 0. Their egress
        // ports are all idle, but node 0's RX wire receives one frame at a
        // time, so the last arrival grows linearly with fan-in.
        fn last_arrival(fan_in: usize) -> f64 {
            let sim = Sim::new();
            let (fab, mut rx) = Fabric::<u32>::new(&sim, spec(), fan_in + 1);
            let rx0 = rx.remove(0);
            sim.block_on({
                let sim = sim.clone();
                async move {
                    for s in 1..=fan_in {
                        fab.transmit(frame(s, 0, 1250, s as u32)); // 100 ns
                    }
                    for _ in 0..fan_in {
                        rx0.recv().await.unwrap();
                    }
                    sim.now().as_ns_f64()
                }
            })
        }
        // First frame lands at 300 ns; each extra sender adds one 100 ns
        // serialization on the shared ingress wire.
        assert_eq!(last_arrival(1), 300.0);
        assert_eq!(last_arrival(2), 400.0);
        assert_eq!(last_arrival(8), 1000.0);
        assert!(last_arrival(16) > last_arrival(8));
    }
}
