//! Machine presets and calibration constants.
//!
//! Every cost in the reproduction lives here, with the paper observation it
//! was calibrated against. The two presets mirror the paper's testbeds:
//!
//! * **System L** (§5): two nodes, Intel i5-4590 4-core, ConnectX-6 Dx RoCE,
//!   back-to-back, 100 Gbit/s effective, Turbo Boost *disabled*, KPTI off.
//! * **System A** (§5): Azure HB120 VMs, EPYC 7V73X (120 cores passed),
//!   virtualized ConnectX-6 InfiniBand at 200 Gbit/s, Turbo/DVFS active
//!   (provider-controlled), KPTI off (hardware Meltdown mitigation).

use cord_sim::SimDuration;

/// CPU cost model. All values are core-cycles-equivalent virtual time at the
/// nominal frequency; DVFS scales them at execution time.
#[derive(Debug, Clone)]
pub struct CpuSpec {
    /// Number of cores per node available to benchmark processes.
    pub cores: usize,
    /// Minimal user→kernel→user round trip (the paper's `getppid`
    /// emulation of "no kernel bypass": +70 ns on system L, Fig. 1a).
    pub syscall_ns: f64,
    /// One CoRD data-plane crossing: syscall + argument marshalling into the
    /// kernel driver (§4: ioctl-style serialization done minimally).
    pub cord_crossing_ns: f64,
    /// Kernel-side driver work per CoRD data-plane op (ring the doorbell,
    /// validate the user's verbs objects).
    pub cord_driver_ns: f64,
    /// Control-plane ioctl (create QP/CQ/MR): serialization heavy, but off
    /// the critical path (§4).
    pub ioctl_ns: f64,
    /// Extra cost per kernel entry when KPTI page-table switching is on.
    pub kpti_extra_ns: f64,
    /// Interrupt delivery latency (NIC EQ → core).
    pub interrupt_ns: f64,
    /// Scheduler wakeup from blocked epoll/completion-channel wait.
    pub wakeup_ns: f64,
    /// Sustained memcpy bandwidth for cache-resident buffers, GB/s (used by
    /// the no-zero-copy knob and the socket/IPoIB stacks).
    pub memcpy_gbps: f64,
    /// Streaming memcpy bandwidth once the working set exceeds the LLC
    /// (DRAM-bound), GB/s. This is what obstructs large-message bandwidth
    /// in Fig. 1b's no-zero-copy series.
    pub memcpy_cold_gbps: f64,
    /// Last-level cache size in bytes (warm/cold memcpy threshold).
    pub llc_bytes: usize,
    /// Fixed per-memcpy-call overhead.
    pub memcpy_setup_ns: f64,
    /// User-space work to build + post one WQE (bypass path).
    pub post_wqe_ns: f64,
    /// User-space cost of one CQ poll that finds nothing.
    pub poll_empty_ns: f64,
    /// User-space cost of consuming one CQE.
    pub poll_cqe_ns: f64,
}

/// NIC cost/feature model (ConnectX-6-class).
#[derive(Debug, Clone)]
pub struct NicSpec {
    /// MMIO doorbell write (posted write, CPU-side cost).
    pub doorbell_ns: f64,
    /// NIC processing per WQE (fetch, parse, schedule).
    pub wqe_proc_ns: f64,
    /// NIC TX pipeline occupancy per packet (segmentation pacing).
    pub tx_pkt_ns: f64,
    /// NIC processing per packet on RX.
    pub rx_pkt_ns: f64,
    /// Path MTU in bytes (RoCE/IB 4096).
    pub mtu: usize,
    /// Per-packet wire header overhead in bytes (Eth+IP+UDP+BTH for RoCE).
    pub header_bytes: usize,
    /// Max inline data the *bypass* user driver pushes in the WQE
    /// (avoids the DMA payload fetch for small sends).
    pub inline_cap: usize,
    /// Whether the CoRD kernel driver supports inline sends. The paper's
    /// prototype does NOT (§5: source of system A's bimodal overhead).
    pub cord_inline: bool,
    /// CPU cost per inline byte (copied into the WQE by the poster).
    pub inline_byte_ns: f64,
    /// Send-queue depth per QP.
    pub sq_depth: usize,
    /// Receive-queue depth per QP.
    pub rq_depth: usize,
    /// Completion-queue depth.
    pub cq_depth: usize,
    /// Maximum outstanding RDMA reads per QP (IB `max_rd_atomic`).
    pub max_rd_atomic: usize,
}

/// PCIe / DMA model.
#[derive(Debug, Clone)]
pub struct PcieSpec {
    /// One-way DMA transaction latency (request to first data).
    pub dma_latency_ns: f64,
    /// Streaming DMA bandwidth, GB/s.
    pub dma_gbps: f64,
}

/// Link model (one full-duplex point-to-point port per node).
#[derive(Debug, Clone)]
pub struct LinkSpec {
    /// Line rate in Gbit/s.
    pub gbps: f64,
    /// Propagation + switch traversal, one way.
    pub propagation_ns: f64,
}

/// DVFS / Turbo Boost model.
#[derive(Debug, Clone)]
pub struct DvfsSpec {
    /// Turbo enabled? (System L disables it; system A cannot.)
    pub turbo: bool,
    /// Maximum speedup factor the governor can grant (e.g. 0.03 = 3%).
    pub turbo_headroom: f64,
    /// EWMA time constant for the kernel-time fraction estimate.
    pub ewma_window: SimDuration,
}

/// IPoIB (IP-over-InfiniBand) stack cost model. IPoIB is the paper's
/// "functionally equivalent competitor" (§5): the kernel is on the data
/// path, but with the *whole* network stack rather than CoRD's thin driver.
#[derive(Debug, Clone)]
pub struct IpoibSpec {
    /// Datagram-mode MTU (IB 4K MTU minus IPoIB encapsulation).
    pub mtu: usize,
    /// Kernel TX stack work per packet on the sender's core, ns.
    pub tx_pkt_ns: f64,
    /// Node-wide TX serialization per packet (qdisc + netdev xmit under the
    /// single IPoIB device lock), ns. This sets the node's IPoIB TX
    /// ceiling: 2044 B / qdisc_ns.
    pub qdisc_ns: f64,
    /// Kernel RX (softirq) work per packet, ns.
    pub rx_pkt_ns: f64,
    /// sendmsg() syscall entry/argument cost, ns.
    pub sendmsg_ns: f64,
    /// recvmsg()/epoll return path cost, ns.
    pub recvmsg_ns: f64,
    /// Number of RX queues (softirq contexts) — multiqueue IPoIB.
    pub rx_queues: usize,
    /// NAPI poll batch size (packets per interrupt).
    pub napi_batch: usize,
}

/// Virtualization noise model (system A only).
#[derive(Debug, Clone)]
pub struct NoiseSpec {
    /// Enable jitter injection.
    pub enabled: bool,
    /// Lognormal sigma applied to syscall/interrupt costs.
    pub sigma: f64,
    /// Probability of a hypervisor preemption on a kernel entry.
    pub preempt_prob: f64,
    /// Cost of one such preemption, ns.
    pub preempt_ns: f64,
}

/// Complete machine description; one per simulated cluster.
#[derive(Debug, Clone)]
pub struct MachineSpec {
    /// Preset name ("system L", "system A", ...).
    pub name: &'static str,
    /// Number of nodes in the cluster.
    pub nodes: usize,
    /// CPU core calibration.
    pub cpu: CpuSpec,
    /// NIC pipeline calibration.
    pub nic: NicSpec,
    /// PCIe/DMA calibration.
    pub pcie: PcieSpec,
    /// Link rate and propagation.
    pub link: LinkSpec,
    /// IPoIB stack calibration.
    pub ipoib: IpoibSpec,
    /// DVFS/turbo governor model.
    pub dvfs: DvfsSpec,
    /// Virtualization jitter model.
    pub noise: NoiseSpec,
    /// Kernel page-table isolation (both testbeds disable it, §5).
    pub kpti: bool,
}

/// System L: i5-4590 + ConnectX-6 Dx RoCE, 100 Gbit/s effective,
/// back-to-back, turbo off, KPTI off. Calibrated against Fig. 1a's baseline
/// row (0.99 µs @16 B, 1.95 µs @4 KiB, 86 µs @1 MiB) and Fig. 4's message
/// rates (~12 M/s small messages, ~370 k/s @32 KiB).
pub fn system_l() -> MachineSpec {
    MachineSpec {
        name: "L",
        nodes: 2,
        cpu: CpuSpec {
            cores: 4,
            syscall_ns: 70.0,
            cord_crossing_ns: 220.0,
            cord_driver_ns: 80.0,
            ioctl_ns: 1800.0,
            kpti_extra_ns: 350.0,
            interrupt_ns: 2600.0,
            wakeup_ns: 500.0,
            memcpy_gbps: 14.0,
            memcpy_cold_gbps: 6.5,
            llc_bytes: 6 << 20, // i5-4590: 6 MiB LLC
            memcpy_setup_ns: 20.0,
            post_wqe_ns: 30.0,
            poll_empty_ns: 15.0,
            poll_cqe_ns: 15.0,
        },
        nic: NicSpec {
            doorbell_ns: 45.0,
            wqe_proc_ns: 40.0,
            tx_pkt_ns: 20.0,
            rx_pkt_ns: 35.0,
            mtu: 4096,
            header_bytes: 66,
            inline_cap: 220,
            cord_inline: false,
            inline_byte_ns: 0.12,
            sq_depth: 256,
            rq_depth: 512,
            cq_depth: 4096,
            max_rd_atomic: 16,
        },
        pcie: PcieSpec {
            dma_latency_ns: 210.0,
            dma_gbps: 13.0,
        },
        link: LinkSpec {
            gbps: 100.0,
            propagation_ns: 300.0,
        },
        ipoib: IpoibSpec {
            mtu: 2044,
            tx_pkt_ns: 650.0,
            qdisc_ns: 560.0, // ≈29 Gbit/s node ceiling
            rx_pkt_ns: 750.0,
            sendmsg_ns: 400.0,
            recvmsg_ns: 450.0,
            rx_queues: 2,
            napi_batch: 64,
        },
        dvfs: DvfsSpec {
            turbo: false,
            turbo_headroom: 0.03,
            ewma_window: SimDuration::from_us(50),
        },
        noise: NoiseSpec {
            enabled: false,
            sigma: 0.0,
            preempt_prob: 0.0,
            preempt_ns: 0.0,
        },
        kpti: false,
    }
}

/// System A: Azure HB120 (EPYC 7V73X, 120 cores) with virtualized
/// ConnectX-6 InfiniBand at 200 Gbit/s. Virtualization makes kernel entries
/// slower and noisier; turbo is on (cloud policy); bypass inline sends reach
/// 1 KiB while the CoRD prototype has none — the source of the paper's
/// bimodal Fig. 5a overhead.
pub fn system_a() -> MachineSpec {
    MachineSpec {
        name: "A",
        nodes: 2,
        cpu: CpuSpec {
            cores: 120,
            syscall_ns: 110.0,
            cord_crossing_ns: 320.0,
            cord_driver_ns: 100.0,
            ioctl_ns: 2600.0,
            kpti_extra_ns: 350.0,
            interrupt_ns: 3200.0,
            wakeup_ns: 600.0,
            memcpy_gbps: 18.0,
            memcpy_cold_gbps: 14.0,
            llc_bytes: 512 << 20, // EPYC 7V73X: 3D V-cache, effectively huge
            memcpy_setup_ns: 20.0,
            post_wqe_ns: 28.0,
            poll_empty_ns: 14.0,
            poll_cqe_ns: 14.0,
        },
        nic: NicSpec {
            doorbell_ns: 55.0,
            wqe_proc_ns: 35.0,
            tx_pkt_ns: 18.0,
            rx_pkt_ns: 30.0,
            mtu: 4096,
            header_bytes: 40, // IB LRH+BTH etc.
            inline_cap: 1024,
            cord_inline: false,
            inline_byte_ns: 0.10,
            sq_depth: 256,
            rq_depth: 512,
            cq_depth: 4096,
            max_rd_atomic: 16,
        },
        pcie: PcieSpec {
            dma_latency_ns: 260.0,
            dma_gbps: 24.0,
        },
        link: LinkSpec {
            gbps: 200.0,
            propagation_ns: 600.0, // through the cloud fabric
        },
        ipoib: IpoibSpec {
            mtu: 2044,
            tx_pkt_ns: 900.0,
            qdisc_ns: 520.0, // ≈31 Gbit/s node ceiling
            rx_pkt_ns: 1100.0,
            sendmsg_ns: 1400.0,
            recvmsg_ns: 1600.0,
            rx_queues: 2,
            napi_batch: 64,
        },
        dvfs: DvfsSpec {
            turbo: true,
            turbo_headroom: 0.035,
            ewma_window: SimDuration::from_us(50),
        },
        noise: NoiseSpec {
            enabled: true,
            sigma: 0.18,
            preempt_prob: 0.002,
            preempt_ns: 9000.0,
        },
        kpti: false,
    }
}

impl MachineSpec {
    /// Wire time for `bytes` of payload in one packet, including headers.
    pub fn wire_time(&self, payload_bytes: usize) -> SimDuration {
        cord_sim::transmission_time(
            (payload_bytes + self.nic.header_bytes) as u64,
            self.link.gbps,
        )
    }

    /// DMA streaming time for `bytes` (excluding transaction latency).
    pub fn dma_stream_time(&self, bytes: usize) -> SimDuration {
        cord_sim::copy_time(bytes as u64, self.pcie.dma_gbps)
    }

    /// memcpy time for `bytes` including fixed setup; bandwidth depends on
    /// whether the buffer fits in the LLC.
    pub fn memcpy_time(&self, bytes: usize) -> SimDuration {
        let rate = if bytes <= self.cpu.llc_bytes {
            self.cpu.memcpy_gbps
        } else {
            self.cpu.memcpy_cold_gbps
        };
        SimDuration::from_ns_f64(self.cpu.memcpy_setup_ns) + cord_sim::copy_time(bytes as u64, rate)
    }

    /// Number of MTU-sized fragments for a message of `len` bytes.
    /// Zero-length messages still occupy one packet.
    pub fn fragments(&self, len: usize) -> usize {
        if len == 0 {
            1
        } else {
            len.div_ceil(self.nic.mtu)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_where_the_paper_says() {
        let l = system_l();
        let a = system_a();
        assert!(!l.dvfs.turbo && a.dvfs.turbo, "turbo: L off, A on");
        assert!(!l.noise.enabled && a.noise.enabled, "noise: A only");
        assert!(a.link.gbps > l.link.gbps, "A has 200G, L 100G");
        assert!(
            a.cpu.cord_crossing_ns > l.cpu.cord_crossing_ns,
            "virtualized kernel entries are slower"
        );
        assert!(a.nic.inline_cap > l.nic.inline_cap);
        assert!(
            !l.nic.cord_inline && !a.nic.cord_inline,
            "prototype lacks inline (§5)"
        );
        assert!(!l.kpti && !a.kpti, "KPTI disabled on both (§5)");
    }

    #[test]
    fn wire_time_matches_line_rate() {
        let l = system_l();
        // 4096+66 bytes at 100 Gbit/s = 4162*80 ps.
        assert_eq!(l.wire_time(4096).as_ps(), 4162 * 80);
    }

    #[test]
    fn fragment_math() {
        let l = system_l();
        assert_eq!(l.fragments(0), 1);
        assert_eq!(l.fragments(1), 1);
        assert_eq!(l.fragments(4096), 1);
        assert_eq!(l.fragments(4097), 2);
        assert_eq!(l.fragments(1 << 20), 256);
    }

    #[test]
    fn memcpy_time_tracks_paper_no_zc_overhead() {
        // Fig. 1a: no-zero-copy adds ~143 µs at 1 MiB (one copy per side,
        // two sides on the latency path).
        let l = system_l();
        let per_side = l.memcpy_time(1 << 20);
        let both = per_side + per_side;
        let us = both.as_us_f64();
        assert!((130.0..160.0).contains(&us), "both-sides copy = {us} µs");
    }
}
