//! Simulated process memory.
//!
//! Every simulated process owns a `GuestMem` arena. Message payloads are
//! real bytes copied end-to-end through the NIC pipeline, so tests can
//! assert data integrity across segmentation, DMA, and reassembly — the
//! same guarantee a real RDMA stack must provide.

use std::cell::RefCell;
use std::rc::Rc;

use bytes::Bytes;

/// Errors raised by guest-memory accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// Address range exceeds the allocated arena.
    OutOfBounds { addr: u64, len: usize },
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::OutOfBounds { addr, len } => {
                write!(
                    f,
                    "guest memory access out of bounds: addr={addr:#x} len={len}"
                )
            }
        }
    }
}

impl std::error::Error for MemError {}

/// Base virtual address of the first allocation; nonzero so that address 0
/// is never valid (catching "forgot to set the address" bugs).
pub const GUEST_BASE: u64 = 0x1_0000;

struct Inner {
    buf: Vec<u8>,
    next: u64,
}

/// A process's memory arena. Clones share the arena.
#[derive(Clone)]
pub struct GuestMem {
    inner: Rc<RefCell<Inner>>,
}

/// A contiguous allocation inside a [`GuestMem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRegion {
    pub addr: u64,
    pub len: usize,
}

impl MemRegion {
    pub fn slice(&self, offset: usize, len: usize) -> MemRegion {
        assert!(offset + len <= self.len, "sub-region out of range");
        MemRegion {
            addr: self.addr + offset as u64,
            len,
        }
    }

    pub fn end(&self) -> u64 {
        self.addr + self.len as u64
    }
}

impl Default for GuestMem {
    fn default() -> Self {
        Self::new()
    }
}

impl GuestMem {
    pub fn new() -> Self {
        GuestMem {
            inner: Rc::new(RefCell::new(Inner {
                buf: Vec::new(),
                next: GUEST_BASE,
            })),
        }
    }

    /// Allocate `len` bytes initialized to `fill`.
    pub fn alloc(&self, len: usize, fill: u8) -> MemRegion {
        let mut inner = self.inner.borrow_mut();
        let addr = inner.next;
        inner.next += len as u64;
        let new_len = (inner.next - GUEST_BASE) as usize;
        inner.buf.resize(new_len, 0);
        let start = (addr - GUEST_BASE) as usize;
        inner.buf[start..start + len].fill(fill);
        MemRegion { addr, len }
    }

    /// Allocate and initialize from a slice.
    pub fn alloc_from(&self, data: &[u8]) -> MemRegion {
        let r = self.alloc(data.len(), 0);
        self.write(r.addr, data).expect("fresh allocation in range");
        r
    }

    /// Bounds check against an already-borrowed arena (one `RefCell`
    /// borrow per access, not two — reads and writes are per-fragment hot
    /// paths).
    fn check_in(inner: &Inner, addr: u64, len: usize) -> Result<usize, MemError> {
        let err = MemError::OutOfBounds { addr, len };
        if addr < GUEST_BASE {
            return Err(err);
        }
        let start = (addr - GUEST_BASE) as usize;
        if start + len > inner.buf.len() {
            return Err(err);
        }
        Ok(start)
    }

    fn check(&self, addr: u64, len: usize) -> Result<usize, MemError> {
        Self::check_in(&self.inner.borrow(), addr, len)
    }

    /// Read `len` bytes at `addr` into an owned `Bytes`.
    pub fn read(&self, addr: u64, len: usize) -> Result<Bytes, MemError> {
        let inner = self.inner.borrow();
        let start = Self::check_in(&inner, addr, len)?;
        Ok(Bytes::copy_from_slice(&inner.buf[start..start + len]))
    }

    /// Write `data` at `addr`.
    pub fn write(&self, addr: u64, data: &[u8]) -> Result<(), MemError> {
        let mut inner = self.inner.borrow_mut();
        let start = Self::check_in(&inner, addr, data.len())?;
        inner.buf[start..start + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Read a region.
    pub fn read_region(&self, r: MemRegion) -> Result<Bytes, MemError> {
        self.read(r.addr, r.len)
    }

    /// Fill a region with a byte value.
    pub fn fill(&self, r: MemRegion, v: u8) -> Result<(), MemError> {
        let start = self.check(r.addr, r.len)?;
        let mut inner = self.inner.borrow_mut();
        inner.buf[start..start + r.len].fill(v);
        Ok(())
    }

    /// Total bytes allocated so far.
    pub fn allocated(&self) -> usize {
        self.inner.borrow().buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_write_read_roundtrip() {
        let m = GuestMem::new();
        let r = m.alloc(64, 0xAA);
        assert_eq!(r.addr, GUEST_BASE);
        assert_eq!(m.read(r.addr, 64).unwrap(), Bytes::from(vec![0xAA; 64]));
        m.write(r.addr + 8, &[1, 2, 3]).unwrap();
        let b = m.read(r.addr + 8, 3).unwrap();
        assert_eq!(&b[..], &[1, 2, 3]);
    }

    #[test]
    fn allocations_do_not_overlap() {
        let m = GuestMem::new();
        let a = m.alloc(16, 1);
        let b = m.alloc(16, 2);
        assert_eq!(a.end(), b.addr);
        assert_eq!(m.read_region(a).unwrap(), Bytes::from(vec![1; 16]));
        assert_eq!(m.read_region(b).unwrap(), Bytes::from(vec![2; 16]));
    }

    #[test]
    fn out_of_bounds_is_rejected() {
        let m = GuestMem::new();
        let r = m.alloc(8, 0);
        assert!(m.read(r.addr, 9).is_err());
        assert!(m.read(0, 1).is_err(), "address 0 is never valid");
        assert!(m.write(r.end(), &[1]).is_err());
    }

    #[test]
    fn alloc_from_copies_data() {
        let m = GuestMem::new();
        let r = m.alloc_from(b"hello rdma");
        assert_eq!(&m.read_region(r).unwrap()[..], b"hello rdma");
    }

    #[test]
    fn subregion_slicing() {
        let m = GuestMem::new();
        let r = m.alloc_from(b"0123456789");
        let s = r.slice(3, 4);
        assert_eq!(&m.read_region(s).unwrap()[..], b"3456");
    }

    #[test]
    #[should_panic(expected = "sub-region out of range")]
    fn subregion_overflow_panics() {
        let r = MemRegion { addr: 0, len: 4 };
        let _ = r.slice(2, 3);
    }
}
