//! Simulated process memory with a copy-on-write payload path.
//!
//! Every simulated process owns a [`GuestMem`] arena. Message payloads are
//! real bytes carried end-to-end through the NIC pipeline, so tests can
//! assert data integrity across segmentation, DMA, and reassembly — the
//! same guarantee a real RDMA stack must provide.
//!
//! ## Zero-copy design
//!
//! The arena is a sequence of per-allocation *chunks*, each backed by a
//! reference-counted buffer. [`GuestMem::read`] returns a [`PayloadSeg`] —
//! an offset+length view over the chunk's current backing — in O(1),
//! without copying the bytes. The snapshot is stable: a later write to the
//! same range clones the chunk first (copy-on-write) whenever any segment
//! still references it, so a reader always sees the bytes exactly as they
//! were at read time, which is what the old copying `read` guaranteed.
//!
//! On the receive side, [`GuestMem::install`] lands an inbound fragment by
//! *reference*: the segment (still backed by the sender's chunk) is
//! recorded as a patch over the destination chunk instead of being copied
//! into it. Patches are merged into the backing buffer lazily — when the
//! range is next read or written through the plain byte APIs, or when the
//! patch list grows past a small bound. Steady-state RX traffic that lands
//! fragments at the same offsets over and over (every RPC reuses its
//! receive buffer) therefore never copies payload bytes at all: each
//! install just replaces the previous patch for that range.
//!
//! None of this is visible in virtual time — reads and writes are
//! instantaneous model operations either way — so simulation results are
//! bit-identical to the copying implementation; only wall-clock time and
//! allocator traffic change.

use std::cell::RefCell;
use std::fmt;
use std::ops::Deref;
use std::rc::Rc;

use bytes::Bytes;

/// Errors raised by guest-memory accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// Address range exceeds the allocated arena.
    OutOfBounds {
        /// Faulting virtual address.
        addr: u64,
        /// Length of the attempted access.
        len: usize,
    },
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::OutOfBounds { addr, len } => {
                write!(
                    f,
                    "guest memory access out of bounds: addr={addr:#x} len={len}"
                )
            }
        }
    }
}

impl std::error::Error for MemError {}

/// Base virtual address of the first allocation; nonzero so that address 0
/// is never valid (catching "forgot to set the address" bugs).
pub const GUEST_BASE: u64 = 0x1_0000;

/// Patch-list length at which a chunk merges its patches back into the
/// backing buffer. Small enough that patch lookups stay cheap, large
/// enough that a windowed RPC workload (whose fragments keep landing at
/// the same offsets and so *replace* patches instead of appending) never
/// triggers a merge at all.
const MAX_PATCHES: usize = 32;

/// A contiguous, immutable view of payload bytes: an offset+length window
/// over a reference-counted buffer.
///
/// This is what [`GuestMem::read`] returns and what NIC fragments carry
/// through WQE → packet → frame → RX completion. Cloning and sub-slicing
/// are O(1) (a reference-count bump); the bytes themselves are shared with
/// the arena chunk they were read from and are guaranteed stable — the
/// arena copies on write while any segment is alive.
///
/// # Examples
///
/// ```
/// use cord_hw::GuestMem;
///
/// let mem = GuestMem::new();
/// let region = mem.alloc_from(b"zero copy payload");
/// let seg = mem.read(region.addr, region.len).unwrap();
/// assert_eq!(&seg[..], b"zero copy payload");
///
/// // Snapshots are stable across later writes (copy-on-write):
/// mem.write(region.addr, b"ZERO").unwrap();
/// assert_eq!(&seg[..5], b"zero ");
/// assert_eq!(&mem.read(region.addr, 4).unwrap()[..], b"ZERO");
/// ```
#[derive(Clone)]
pub struct PayloadSeg {
    data: Rc<Vec<u8>>,
    start: usize,
    len: usize,
}

impl PayloadSeg {
    /// A segment viewing `data[start..start + len]`.
    pub(crate) fn new(data: Rc<Vec<u8>>, start: usize, len: usize) -> PayloadSeg {
        debug_assert!(start + len <= data.len());
        PayloadSeg { data, start, len }
    }

    /// A segment owning a fresh copy of `src`.
    pub fn copy_from_slice(src: &[u8]) -> PayloadSeg {
        PayloadSeg::new(Rc::new(src.to_vec()), 0, src.len())
    }

    /// Number of payload bytes in the view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Zero-copy sub-view of `self[offset..offset + len]`.
    pub fn slice(&self, offset: usize, len: usize) -> PayloadSeg {
        assert!(offset + len <= self.len, "segment slice out of bounds");
        PayloadSeg::new(Rc::clone(&self.data), self.start + offset, len)
    }

    /// Copy the viewed bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self[..].to_vec()
    }

    /// Zero-copy conversion into the workspace's [`Bytes`] type (shares
    /// the same backing buffer).
    pub fn to_bytes(&self) -> Bytes {
        Bytes::from_shared(Rc::clone(&self.data), self.start, self.start + self.len)
    }
}

impl Deref for PayloadSeg {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.start + self.len]
    }
}

impl AsRef<[u8]> for PayloadSeg {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for PayloadSeg {
    fn eq(&self, other: &PayloadSeg) -> bool {
        self[..] == other[..]
    }
}

impl Eq for PayloadSeg {}

impl PartialEq<[u8]> for PayloadSeg {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl PartialEq<&[u8]> for PayloadSeg {
    fn eq(&self, other: &&[u8]) -> bool {
        &self[..] == *other
    }
}

impl PartialEq<Vec<u8>> for PayloadSeg {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl PartialEq<Bytes> for PayloadSeg {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl From<Vec<u8>> for PayloadSeg {
    fn from(v: Vec<u8>) -> PayloadSeg {
        let len = v.len();
        PayloadSeg::new(Rc::new(v), 0, len)
    }
}

impl fmt::Debug for PayloadSeg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PayloadSeg(b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\")")
    }
}

/// How a patch's range must relate to a queried range (see
/// [`Chunk::unshadowed_patch`]).
#[derive(Clone, Copy)]
enum PatchRel {
    /// Ranges identical (required for in-place replacement).
    Exact,
    /// Patch fully covers the queried range (sufficient for reads).
    Covering,
}

/// One inbound segment recorded over a chunk without copying.
struct Patch {
    /// Offset within the chunk.
    offset: usize,
    seg: PayloadSeg,
}

/// One allocation's backing storage.
struct Chunk {
    /// First virtual address covered by this chunk.
    base: u64,
    /// Shared backing buffer; `Rc::strong_count > 1` means live read
    /// snapshots exist and a write must copy first.
    data: Rc<Vec<u8>>,
    /// Reference-installed writes not yet merged into `data`, in
    /// application order (later patches shadow earlier ones).
    patches: Vec<Patch>,
}

impl Chunk {
    fn len(&self) -> usize {
        self.data.len()
    }

    fn end(&self) -> u64 {
        self.base + self.len() as u64
    }

    /// Mutable access to the backing buffer, cloning it first if any
    /// outstanding [`PayloadSeg`] still references it (copy-on-write).
    fn data_mut(&mut self) -> &mut Vec<u8> {
        if Rc::strong_count(&self.data) > 1 {
            self.data = Rc::new(self.data.as_ref().clone());
        }
        Rc::get_mut(&mut self.data).expect("uniquely owned after COW")
    }

    /// Merge all pending patches into the backing buffer.
    fn merge_patches(&mut self) {
        if self.patches.is_empty() {
            return;
        }
        let patches = std::mem::take(&mut self.patches);
        let buf = self.data_mut();
        for p in patches {
            buf[p.offset..p.offset + p.seg.len()].copy_from_slice(&p.seg);
        }
    }

    /// Index of the most recent patch whose range relates to `[start,
    /// start + len)` as `rel` demands (exactly equal for in-place
    /// replacement, covering for by-reference reads) and that no *later*
    /// patch overlaps — the one position where the patch can be used
    /// without consulting the rest of the shadow order.
    fn unshadowed_patch(&self, start: usize, len: usize, rel: PatchRel) -> Option<usize> {
        let end = start + len;
        let k = self.patches.iter().rposition(|p| match rel {
            PatchRel::Exact => p.offset == start && p.seg.len() == len,
            PatchRel::Covering => p.offset <= start && p.offset + p.seg.len() >= end,
        })?;
        let shadowed = self.patches[k + 1..]
            .iter()
            .any(|p| p.offset < end && p.offset + p.seg.len() > start);
        (!shadowed).then_some(k)
    }

    /// Record `seg` at `offset` by reference. The fast path replaces an
    /// existing unshadowed patch for the identical range (the windowed-RPC
    /// case where every message reuses its landing offsets), so
    /// steady-state RX installs never copy and never grow the list.
    fn install(&mut self, offset: usize, seg: PayloadSeg) {
        if let Some(k) = self.unshadowed_patch(offset, seg.len(), PatchRel::Exact) {
            self.patches[k].seg = seg;
            return;
        }
        self.patches.push(Patch { offset, seg });
        if self.patches.len() >= MAX_PATCHES {
            self.merge_patches();
        }
    }

    /// Whether `[start, end)` (chunk-relative) overlaps any pending patch.
    fn overlaps_patch(&self, start: usize, end: usize) -> bool {
        self.patches
            .iter()
            .any(|p| p.offset < end && p.offset + p.seg.len() > start)
    }
}

struct Inner {
    /// Chunks in ascending-address order; addresses are dense, so chunk
    /// lookup is a binary search over a handful of entries.
    chunks: Vec<Chunk>,
    next: u64,
}

impl Inner {
    /// Index of the chunk containing `addr`, if any.
    fn chunk_idx(&self, addr: u64) -> Option<usize> {
        let i = self
            .chunks
            .partition_point(|c| c.end() <= addr)
            .min(self.chunks.len().saturating_sub(1));
        let c = self.chunks.get(i)?;
        (c.base <= addr && addr < c.end()).then_some(i)
    }

    /// Bounds check: the arena is contiguous from [`GUEST_BASE`] to the
    /// allocation frontier, exactly as in the flat-buffer implementation.
    fn check(&self, addr: u64, len: usize) -> Result<(), MemError> {
        let err = MemError::OutOfBounds { addr, len };
        if addr < GUEST_BASE || addr as u128 + len as u128 > self.next as u128 {
            return Err(err);
        }
        Ok(())
    }
}

/// A process's memory arena. Clones share the arena.
///
/// # Examples
///
/// ```
/// use cord_hw::GuestMem;
///
/// let mem = GuestMem::new();
/// let region = mem.alloc(64, 0xAA);
/// mem.write(region.addr, &[1, 2, 3]).unwrap();
/// let seg = mem.read(region.addr, 4).unwrap();
/// assert_eq!(&seg[..], &[1, 2, 3, 0xAA]);
/// ```
#[derive(Clone)]
pub struct GuestMem {
    inner: Rc<RefCell<Inner>>,
}

/// A contiguous allocation inside a [`GuestMem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRegion {
    /// First virtual address of the region.
    pub addr: u64,
    /// Region length in bytes.
    pub len: usize,
}

impl MemRegion {
    /// A sub-region `[offset, offset + len)` of this region.
    ///
    /// Panics if the sub-range does not fit.
    pub fn slice(&self, offset: usize, len: usize) -> MemRegion {
        assert!(offset + len <= self.len, "sub-region out of range");
        MemRegion {
            addr: self.addr + offset as u64,
            len,
        }
    }

    /// One past the last address of the region.
    pub fn end(&self) -> u64 {
        self.addr + self.len as u64
    }
}

impl Default for GuestMem {
    fn default() -> Self {
        Self::new()
    }
}

impl GuestMem {
    /// An empty arena.
    pub fn new() -> Self {
        GuestMem {
            inner: Rc::new(RefCell::new(Inner {
                chunks: Vec::new(),
                next: GUEST_BASE,
            })),
        }
    }

    /// Allocate `len` bytes initialized to `fill`.
    pub fn alloc(&self, len: usize, fill: u8) -> MemRegion {
        let mut inner = self.inner.borrow_mut();
        let addr = inner.next;
        inner.next += len as u64;
        inner.chunks.push(Chunk {
            base: addr,
            data: Rc::new(vec![fill; len]),
            patches: Vec::new(),
        });
        MemRegion { addr, len }
    }

    /// Allocate and initialize from a slice.
    pub fn alloc_from(&self, data: &[u8]) -> MemRegion {
        let mut inner = self.inner.borrow_mut();
        let addr = inner.next;
        inner.next += data.len() as u64;
        inner.chunks.push(Chunk {
            base: addr,
            data: Rc::new(data.to_vec()),
            patches: Vec::new(),
        });
        MemRegion {
            addr,
            len: data.len(),
        }
    }

    /// Read `len` bytes at `addr` as a zero-copy [`PayloadSeg`] snapshot.
    ///
    /// O(1) when the range lies within one allocation (the NIC data path
    /// always does): the segment shares the chunk's backing buffer, and
    /// later writes copy-on-write so the snapshot stays stable. Ranges
    /// spanning allocations fall back to a gather copy.
    pub fn read(&self, addr: u64, len: usize) -> Result<PayloadSeg, MemError> {
        let mut inner = self.inner.borrow_mut();
        inner.check(addr, len)?;
        if len == 0 {
            return Ok(PayloadSeg::new(Rc::new(Vec::new()), 0, 0));
        }
        let Some(i) = inner.chunk_idx(addr) else {
            return Err(MemError::OutOfBounds { addr, len });
        };
        let chunk = &mut inner.chunks[i];
        let start = (addr - chunk.base) as usize;
        if start + len <= chunk.len() {
            if !chunk.patches.is_empty() {
                // Fast path: a read inside one installed segment (whole
                // fragment or a header peek) is served by reference, if
                // nothing later shadows it.
                if let Some(k) = chunk.unshadowed_patch(start, len, PatchRel::Covering) {
                    let p = &chunk.patches[k];
                    return Ok(p.seg.slice(start - p.offset, len));
                }
                if chunk.overlaps_patch(start, start + len) {
                    chunk.merge_patches();
                }
            }
            return Ok(PayloadSeg::new(Rc::clone(&chunk.data), start, len));
        }
        // Cross-chunk read: gather (cold path; the arena is contiguous).
        drop(inner);
        let mut out = vec![0u8; len];
        self.gather(addr, &mut out)?;
        Ok(PayloadSeg::from(out))
    }

    /// Walk the chunks spanning `[addr, addr + len)` in address order,
    /// calling `op(chunk, start_in_chunk, span_len, done_before)` for each
    /// span. The single home of the chunk-walk arithmetic shared by
    /// [`GuestMem::write`], [`GuestMem::fill`], and the gather path.
    fn for_each_span(
        &self,
        addr: u64,
        len: usize,
        mut op: impl FnMut(&mut Chunk, usize, usize, usize),
    ) -> Result<(), MemError> {
        let mut inner = self.inner.borrow_mut();
        let mut done = 0;
        while done < len {
            let a = addr + done as u64;
            let Some(i) = inner.chunk_idx(a) else {
                return Err(MemError::OutOfBounds { addr, len });
            };
            let chunk = &mut inner.chunks[i];
            let start = (a - chunk.base) as usize;
            let n = (chunk.len() - start).min(len - done);
            op(chunk, start, n, done);
            done += n;
        }
        Ok(())
    }

    fn gather(&self, addr: u64, out: &mut [u8]) -> Result<(), MemError> {
        self.for_each_span(addr, out.len(), |chunk, start, n, done| {
            if chunk.overlaps_patch(start, start + n) {
                chunk.merge_patches();
            }
            out[done..done + n].copy_from_slice(&chunk.data[start..start + n]);
        })
    }

    /// Write `data` at `addr` (copy-on-write if snapshots are live).
    pub fn write(&self, addr: u64, data: &[u8]) -> Result<(), MemError> {
        self.inner.borrow().check(addr, data.len())?;
        self.for_each_span(addr, data.len(), |chunk, start, n, done| {
            if chunk.overlaps_patch(start, start + n) {
                chunk.merge_patches();
            }
            chunk.data_mut()[start..start + n].copy_from_slice(&data[done..done + n]);
        })
    }

    /// Land `seg` at `addr` by reference — the zero-copy receive path.
    ///
    /// Logically identical to `write(addr, &seg)`, but when the range lies
    /// within one allocation the bytes are recorded as a patch sharing the
    /// sender's buffer instead of being copied; the copy happens lazily if
    /// and when the range is next accessed through the byte APIs.
    pub fn install(&self, addr: u64, seg: &PayloadSeg) -> Result<(), MemError> {
        let mut inner = self.inner.borrow_mut();
        inner.check(addr, seg.len())?;
        if seg.is_empty() {
            return Ok(());
        }
        let Some(i) = inner.chunk_idx(addr) else {
            return Err(MemError::OutOfBounds {
                addr,
                len: seg.len(),
            });
        };
        let chunk = &mut inner.chunks[i];
        let start = (addr - chunk.base) as usize;
        if start + seg.len() <= chunk.len() {
            chunk.install(start, seg.clone());
            Ok(())
        } else {
            drop(inner);
            self.write(addr, seg)
        }
    }

    /// Read a region.
    pub fn read_region(&self, r: MemRegion) -> Result<PayloadSeg, MemError> {
        self.read(r.addr, r.len)
    }

    /// Fill a region with a byte value.
    pub fn fill(&self, r: MemRegion, v: u8) -> Result<(), MemError> {
        self.inner.borrow().check(r.addr, r.len)?;
        self.for_each_span(r.addr, r.len, |chunk, start, n, _| {
            if chunk.overlaps_patch(start, start + n) {
                chunk.merge_patches();
            }
            chunk.data_mut()[start..start + n].fill(v);
        })
    }

    /// Total bytes allocated so far.
    pub fn allocated(&self) -> usize {
        (self.inner.borrow().next - GUEST_BASE) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_write_read_roundtrip() {
        let m = GuestMem::new();
        let r = m.alloc(64, 0xAA);
        assert_eq!(r.addr, GUEST_BASE);
        assert_eq!(m.read(r.addr, 64).unwrap(), vec![0xAA; 64]);
        m.write(r.addr + 8, &[1, 2, 3]).unwrap();
        let b = m.read(r.addr + 8, 3).unwrap();
        assert_eq!(&b[..], &[1, 2, 3]);
    }

    #[test]
    fn allocations_do_not_overlap() {
        let m = GuestMem::new();
        let a = m.alloc(16, 1);
        let b = m.alloc(16, 2);
        assert_eq!(a.end(), b.addr);
        assert_eq!(m.read_region(a).unwrap(), vec![1; 16]);
        assert_eq!(m.read_region(b).unwrap(), vec![2; 16]);
    }

    #[test]
    fn out_of_bounds_is_rejected() {
        let m = GuestMem::new();
        let r = m.alloc(8, 0);
        assert!(m.read(r.addr, 9).is_err());
        assert!(m.read(0, 1).is_err(), "address 0 is never valid");
        assert!(m.write(r.end(), &[1]).is_err());
    }

    #[test]
    fn alloc_from_copies_data() {
        let m = GuestMem::new();
        let r = m.alloc_from(b"hello rdma");
        assert_eq!(&m.read_region(r).unwrap()[..], b"hello rdma");
    }

    #[test]
    fn subregion_slicing() {
        let m = GuestMem::new();
        let r = m.alloc_from(b"0123456789");
        let s = r.slice(3, 4);
        assert_eq!(&m.read_region(s).unwrap()[..], b"3456");
    }

    #[test]
    #[should_panic(expected = "sub-region out of range")]
    fn subregion_overflow_panics() {
        let r = MemRegion { addr: 0, len: 4 };
        let _ = r.slice(2, 3);
    }

    #[test]
    fn read_spanning_allocations_gathers() {
        let m = GuestMem::new();
        let a = m.alloc(4, 1);
        let _b = m.alloc(4, 2);
        let got = m.read(a.addr + 2, 4).unwrap();
        assert_eq!(&got[..], &[1, 1, 2, 2]);
    }

    #[test]
    fn write_spanning_allocations_scatters() {
        let m = GuestMem::new();
        let a = m.alloc(4, 0);
        let b = m.alloc(4, 0);
        m.write(a.addr + 2, &[7, 7, 7, 7]).unwrap();
        assert_eq!(m.read_region(a).unwrap(), vec![0, 0, 7, 7]);
        assert_eq!(m.read_region(b).unwrap(), vec![7, 7, 0, 0]);
    }

    #[test]
    fn snapshots_are_stable_across_writes() {
        let m = GuestMem::new();
        let r = m.alloc_from(b"immutable snapshot");
        let snap = m.read_region(r).unwrap();
        m.write(r.addr, b"OVERWRITTEN BYTES!").unwrap();
        assert_eq!(&snap[..], b"immutable snapshot", "COW preserved the view");
        assert_eq!(&m.read_region(r).unwrap()[..], b"OVERWRITTEN BYTES!");
    }

    #[test]
    fn snapshots_are_stable_across_fill() {
        let m = GuestMem::new();
        let r = m.alloc(8, 3);
        let snap = m.read_region(r).unwrap();
        m.fill(r, 9).unwrap();
        assert_eq!(snap, vec![3; 8]);
        assert_eq!(m.read_region(r).unwrap(), vec![9; 8]);
    }

    #[test]
    fn install_lands_bytes_without_copy() {
        let src = GuestMem::new();
        let dst = GuestMem::new();
        let sr = src.alloc_from(b"payload from the wire");
        let dr = dst.alloc(64, 0);
        let seg = src.read_region(sr).unwrap();
        dst.install(dr.addr + 8, &seg).unwrap();
        // Exact-range readback is served by reference.
        let got = dst.read(dr.addr + 8, sr.len).unwrap();
        assert_eq!(&got[..], b"payload from the wire");
        // Overlapping byte reads see the merged view.
        let merged = dst.read(dr.addr, 64).unwrap();
        assert_eq!(&merged[..8], &[0; 8]);
        assert_eq!(&merged[8..8 + sr.len], b"payload from the wire");
    }

    #[test]
    fn install_snapshot_isolated_from_source_writes() {
        let src = GuestMem::new();
        let dst = GuestMem::new();
        let sr = src.alloc_from(b"first");
        let dr = dst.alloc(8, 0);
        let seg = src.read_region(sr).unwrap();
        dst.install(dr.addr, &seg).unwrap();
        // The sender reuses its buffer: the installed bytes must not change.
        src.write(sr.addr, b"xxxxx").unwrap();
        assert_eq!(&dst.read(dr.addr, 5).unwrap()[..], b"first");
    }

    #[test]
    fn repeated_same_range_installs_do_not_grow_patches() {
        let src = GuestMem::new();
        let dst = GuestMem::new();
        let sr = src.alloc(4096, 0);
        let dr = dst.alloc(8192, 0);
        for round in 0..200u32 {
            src.write(sr.addr, &round.to_le_bytes()).unwrap();
            let seg = src.read_region(sr).unwrap();
            dst.install(dr.addr, &seg).unwrap();
            dst.install(dr.addr + 4096, &seg).unwrap();
        }
        let inner = dst.inner.borrow();
        assert!(
            inner.chunks[0].patches.len() <= 2,
            "windowed installs must replace, not accumulate: {}",
            inner.chunks[0].patches.len()
        );
        drop(inner);
        assert_eq!(&dst.read(dr.addr, 4).unwrap()[..], 199u32.to_le_bytes());
    }

    #[test]
    fn patch_merge_bound_is_enforced() {
        let src = GuestMem::new();
        let dst = GuestMem::new();
        let sr = src.alloc_from(&(0u8..32).collect::<Vec<_>>());
        let dr = dst.alloc(64, 0xFF);
        // 40 distinct single-byte installs force at least one merge.
        for i in 0..40usize {
            let seg = src.read(sr.addr + (i % 32) as u64, 1).unwrap();
            dst.install(dr.addr + (i % 64) as u64, &seg).unwrap();
        }
        assert!(dst.inner.borrow().chunks[0].patches.len() < MAX_PATCHES);
        for i in 0..40usize {
            let want = (i % 32) as u8;
            assert_eq!(dst.read(dr.addr + i as u64, 1).unwrap()[0], want);
        }
    }

    #[test]
    fn header_peek_of_installed_fragment_is_by_reference() {
        let src = GuestMem::new();
        let dst = GuestMem::new();
        let sr = src.alloc_from(b"HDR|payload bytes");
        let dr = dst.alloc(64, 0);
        let seg = src.read_region(sr).unwrap();
        dst.install(dr.addr + 4, &seg).unwrap();
        // A sub-range read inside the installed patch must not force a
        // merge (the patch list survives) and must see the right bytes.
        assert_eq!(&dst.read(dr.addr + 4, 3).unwrap()[..], b"HDR");
        assert_eq!(&dst.read(dr.addr + 8, 7).unwrap()[..], b"payload");
        assert_eq!(
            dst.inner.borrow().chunks[0].patches.len(),
            1,
            "peek reads must not merge the patch away"
        );
    }

    #[test]
    fn reinstall_of_unchanged_buffer_still_overwrites_overlap() {
        // Regression: re-sending an unmodified source buffer (retransmit,
        // constant payload) over a range that an overlapping install
        // touched in between must behave as a fresh write, not be
        // shadowed by the older overlapping patch.
        let src = GuestMem::new();
        let dst = GuestMem::new();
        let a = src.alloc_from(b"AAAA");
        let b = src.alloc_from(b"BB");
        let dr = dst.alloc(8, 0);
        let seg_a = src.read_region(a).unwrap();
        let seg_b = src.read_region(b).unwrap();
        dst.install(dr.addr, &seg_a).unwrap();
        dst.install(dr.addr + 1, &seg_b).unwrap();
        // Same backing buffer, same range as the first install.
        dst.install(dr.addr, &src.read_region(a).unwrap()).unwrap();
        assert_eq!(&dst.read(dr.addr, 4).unwrap()[..], b"AAAA");
        let _ = seg_a;
        let _ = seg_b;
    }

    #[test]
    fn overlapping_installs_apply_in_order() {
        let src = GuestMem::new();
        let dst = GuestMem::new();
        let a = src.alloc_from(b"AAAA");
        let b = src.alloc_from(b"BB");
        let dr = dst.alloc(8, 0);
        dst.install(dr.addr, &src.read_region(a).unwrap()).unwrap();
        dst.install(dr.addr + 1, &src.read_region(b).unwrap())
            .unwrap();
        assert_eq!(&dst.read(dr.addr, 5).unwrap()[..], b"ABBA\0");
    }

    #[test]
    fn payload_seg_slice_and_eq() {
        let seg = PayloadSeg::from(b"0123456789".to_vec());
        let s = seg.slice(3, 4);
        assert_eq!(&s[..], b"3456");
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert_eq!(s.to_vec(), b"3456".to_vec());
        assert_eq!(s, PayloadSeg::from(b"3456".to_vec()));
        let b = s.to_bytes();
        assert_eq!(&b[..], b"3456");
    }
}
