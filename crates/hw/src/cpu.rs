//! CPU core execution model.
//!
//! A [`Core`] turns abstract work (user compute, kernel entries, memcpy)
//! into virtual-time delays, applying the DVFS factor and virtualization
//! jitter. It also feeds the DVFS governor the kernel-time fraction that
//! drives the paper's "system calls interact with DVFS" effect.

use std::cell::Cell;
use std::rc::Rc;

use cord_sim::{Sim, SimDuration, Subsystem};

use crate::dvfs::Dvfs;
use crate::machine::{CpuSpec, MachineSpec};
use crate::noise::Noise;

/// Identifies a core within a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CoreId {
    /// Node the core belongs to.
    pub node: usize,
    /// Core index within the node.
    pub core: usize,
}

/// One CPU core; cheap to clone (handles share state).
#[derive(Clone)]
pub struct Core {
    sim: Sim,
    /// Which (node, core) this handle executes on.
    pub id: CoreId,
    spec: Rc<CpuSpec>,
    dvfs: Dvfs,
    noise: Noise,
    kpti: bool,
    busy_total: Rc<Cell<SimDuration>>,
    kernel_total: Rc<Cell<SimDuration>>,
    syscalls: Rc<Cell<u64>>,
}

impl Core {
    /// A core on `sim`'s clock with the machine's CPU spec, DVFS governor,
    /// and jitter source.
    pub fn new(sim: &Sim, id: CoreId, machine: &MachineSpec, dvfs: Dvfs, noise: Noise) -> Self {
        Core {
            sim: sim.clone(),
            id,
            spec: Rc::new(machine.cpu.clone()),
            dvfs,
            noise,
            kpti: machine.kpti,
            busy_total: Rc::new(Cell::new(SimDuration::ZERO)),
            kernel_total: Rc::new(Cell::new(SimDuration::ZERO)),
            syscalls: Rc::new(Cell::new(0)),
        }
    }

    /// The CPU calibration constants this core bills against.
    pub fn spec(&self) -> &CpuSpec {
        &self.spec
    }

    /// The simulation this core lives in.
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    async fn burn(&self, d: SimDuration, kernel: bool) {
        let scaled = self.dvfs.scale(d);
        // Billing sleeps carry the CPU bucket in the executor's
        // per-subsystem counters (the tag is captured at creation, so it
        // survives the await).
        self.sim
            .with_tag(Subsystem::CpuBilling, || self.sim.sleep(scaled))
            .await;
        self.busy_total.set(self.busy_total.get() + scaled);
        if kernel {
            self.kernel_total.set(self.kernel_total.get() + scaled);
        }
        self.dvfs
            .record(scaled, if kernel { scaled } else { SimDuration::ZERO });
    }

    /// Whether consecutive billing sleeps on this core can be fused into
    /// one deadline: true when the DVFS factor is pinned to 1.0 (turbo
    /// off) and kernel entries are jitter-free (noise off). Under those
    /// conditions `burn(a); burn(b)` and `burn(a + b)` advance the clock,
    /// the accounting totals, and the governor state identically — the
    /// fused form just parks the task once instead of N times.
    fn fused_billing(&self) -> bool {
        !self.dvfs.turbo_enabled() && !self.noise.is_enabled()
    }

    /// Burn a sequence of user-mode costs (in nanoseconds) as one fused
    /// sleep when billing is fusable, or exactly as the equivalent
    /// sequence of [`Core::compute_ns`] calls otherwise.
    pub async fn compute_ns_parts(&self, parts: &[f64]) {
        if self.fused_billing() {
            // Round each part to picoseconds *before* summing, exactly as
            // the unfused path does — summing the f64s first would round
            // once and drift by a picosecond on non-integral costs.
            let total: SimDuration = parts.iter().map(|&ns| SimDuration::from_ns_f64(ns)).sum();
            self.burn(total, false).await;
        } else {
            for &ns in parts {
                self.burn(SimDuration::from_ns_f64(ns), false).await;
            }
        }
    }

    /// Burn two consecutive kernel-mode costs with a single park when
    /// billing is fusable, preserving the per-part jitter draws and DVFS
    /// evolution of `kernel_work(a); kernel_work(b)` otherwise.
    pub async fn kernel_work2(&self, a: SimDuration, b: SimDuration) {
        if self.fused_billing() {
            self.burn(a + b, true).await;
        } else {
            self.kernel_work(a).await;
            self.kernel_work(b).await;
        }
    }

    /// Burn user-mode CPU time.
    pub async fn compute(&self, d: SimDuration) {
        self.burn(d, false).await;
    }

    /// Burn user-mode CPU time given in nanoseconds.
    pub async fn compute_ns(&self, ns: f64) {
        self.burn(SimDuration::from_ns_f64(ns), false).await;
    }

    /// Burn kernel-mode CPU time (jittered under virtualization).
    pub async fn kernel_work(&self, d: SimDuration) {
        let jittered = self.noise.kernel_cost(d);
        self.burn(jittered, true).await;
    }

    /// A minimal syscall round trip (the paper's `getppid` knob).
    pub async fn syscall_roundtrip(&self) {
        self.syscalls.set(self.syscalls.get() + 1);
        let mut cost = SimDuration::from_ns_f64(self.spec.syscall_ns);
        if self.kpti {
            cost += SimDuration::from_ns_f64(self.spec.kpti_extra_ns);
        }
        self.kernel_work(cost).await;
    }

    /// One CoRD data-plane crossing: user→kernel transition plus argument
    /// handling. Driver work is billed separately by the kernel driver.
    pub async fn cord_crossing(&self) {
        self.cord_crossing_plus(SimDuration::ZERO).await;
    }

    /// A CoRD crossing immediately followed by `extra` in-kernel work
    /// (driver execution on an op with no decision point in between),
    /// billed as one fused sleep when the core allows it.
    pub async fn cord_crossing_plus(&self, extra: SimDuration) {
        self.syscalls.set(self.syscalls.get() + 1);
        let mut cost = SimDuration::from_ns_f64(self.spec.cord_crossing_ns);
        if self.kpti {
            cost += SimDuration::from_ns_f64(self.spec.kpti_extra_ns);
        }
        if extra.is_zero() {
            self.kernel_work(cost).await;
        } else {
            self.kernel_work2(cost, extra).await;
        }
    }

    /// A control-plane ioctl (QP/CQ/MR creation).
    pub async fn ioctl(&self) {
        self.syscalls.set(self.syscalls.get() + 1);
        let mut cost = SimDuration::from_ns_f64(self.spec.ioctl_ns);
        if self.kpti {
            cost += SimDuration::from_ns_f64(self.spec.kpti_extra_ns);
        }
        self.kernel_work(cost).await;
    }

    /// Copy `bytes` through the CPU. Buffers larger than the LLC stream
    /// from DRAM at the (lower) cold rate.
    pub async fn memcpy(&self, bytes: usize) {
        let rate = if bytes <= self.spec.llc_bytes {
            self.spec.memcpy_gbps
        } else {
            self.spec.memcpy_cold_gbps
        };
        let d = SimDuration::from_ns_f64(self.spec.memcpy_setup_ns)
            + cord_sim::copy_time(bytes as u64, rate);
        self.burn(d, false).await;
    }

    /// Blocked-wakeup path: interrupt delivery plus scheduler wakeup.
    /// Billed as kernel time (it is).
    pub async fn interrupt_wakeup(&self) {
        let cost = SimDuration::from_ns_f64(self.spec.interrupt_ns + self.spec.wakeup_ns);
        self.kernel_work(cost).await;
    }

    /// Account CPU time that already elapsed while this core busy-polled
    /// (the simulator parks pollers instead of spinning through virtual
    /// time, but the DVFS governor must still see the core as busy).
    /// `kernel_frac` is the fraction of the spin spent inside the kernel
    /// (≈0 for bypass polling, ≈0.9 for CoRD poll syscalls) — this is the
    /// lever behind the paper's "system calls interact with DVFS" effect.
    pub fn account_spin(&self, d: SimDuration, kernel_frac: f64) {
        debug_assert!((0.0..=1.0).contains(&kernel_frac));
        self.busy_total.set(self.busy_total.get() + d);
        let k = d.mul_f64(kernel_frac);
        self.kernel_total.set(self.kernel_total.get() + k);
        self.dvfs.record(d, k);
    }

    /// Total busy (user + kernel) time billed so far.
    pub fn busy_total(&self) -> SimDuration {
        self.busy_total.get()
    }

    /// Total kernel-mode time billed so far.
    pub fn kernel_total(&self) -> SimDuration {
        self.kernel_total.get()
    }

    /// Number of system-call entries billed.
    pub fn syscall_count(&self) -> u64 {
        self.syscalls.get()
    }

    /// This core's DVFS governor handle.
    pub fn dvfs(&self) -> &Dvfs {
        &self.dvfs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::system_l;
    use cord_sim::SimTime;

    fn mk_core(sim: &Sim) -> Core {
        let m = system_l();
        let dvfs = Dvfs::new(sim, m.dvfs.clone());
        Core::new(
            sim,
            CoreId { node: 0, core: 0 },
            &m,
            dvfs,
            Noise::disabled(),
        )
    }

    #[test]
    fn compute_advances_time_exactly() {
        let sim = Sim::new();
        let core = mk_core(&sim);
        let t = sim.block_on({
            let sim = sim.clone();
            async move {
                core.compute(SimDuration::from_us(3)).await;
                sim.now()
            }
        });
        assert_eq!(t, SimTime::ZERO + SimDuration::from_us(3));
    }

    #[test]
    fn syscall_costs_track_spec() {
        let sim = Sim::new();
        let core = mk_core(&sim);
        let spec_ns = core.spec().syscall_ns;
        let t = sim.block_on({
            let sim = sim.clone();
            let core = core.clone();
            async move {
                core.syscall_roundtrip().await;
                sim.now()
            }
        });
        assert_eq!(t.as_ns_f64(), spec_ns);
        assert_eq!(core.syscall_count(), 1);
    }

    #[test]
    fn kpti_adds_cost() {
        let sim = Sim::new();
        let mut m = system_l();
        m.kpti = true;
        let dvfs = Dvfs::new(&sim, m.dvfs.clone());
        let core = Core::new(
            &sim,
            CoreId { node: 0, core: 0 },
            &m,
            dvfs,
            Noise::disabled(),
        );
        let t = sim.block_on({
            let sim = sim.clone();
            let core = core.clone();
            async move {
                core.syscall_roundtrip().await;
                sim.now()
            }
        });
        assert_eq!(t.as_ns_f64(), m.cpu.syscall_ns + m.cpu.kpti_extra_ns);
    }

    #[test]
    fn accounting_splits_user_and_kernel() {
        let sim = Sim::new();
        let core = mk_core(&sim);
        sim.block_on({
            let core = core.clone();
            async move {
                core.compute(SimDuration::from_us(10)).await;
                core.kernel_work(SimDuration::from_us(5)).await;
            }
        });
        assert_eq!(core.busy_total(), SimDuration::from_us(15));
        assert_eq!(core.kernel_total(), SimDuration::from_us(5));
    }

    #[test]
    fn memcpy_scales_with_size() {
        let sim = Sim::new();
        let core = mk_core(&sim);
        let t = sim.block_on({
            let sim = sim.clone();
            let core = core.clone();
            async move {
                core.memcpy(1 << 20).await;
                sim.now()
            }
        });
        // 1 MiB at 14 GB/s ≈ 74.9 µs + 20 ns setup.
        let us = t.as_us_f64();
        assert!((70.0..80.0).contains(&us), "memcpy 1MiB = {us} µs");
    }

    #[test]
    fn turbo_speeds_up_kernel_heavy_core() {
        let sim = Sim::new();
        let mut m = system_l();
        m.dvfs.turbo = true;
        let dvfs = Dvfs::new(&sim, m.dvfs.clone());
        let core = Core::new(
            &sim,
            CoreId { node: 0, core: 0 },
            &m,
            dvfs,
            Noise::disabled(),
        );
        sim.block_on({
            let core = core.clone();
            async move {
                // Warm the governor with kernel-heavy work.
                for _ in 0..20 {
                    core.kernel_work(SimDuration::from_us(20)).await;
                }
            }
        });
        assert!(core.dvfs().freq_factor() > 1.02);
    }
}
