//! # cord-hw — hardware substrate models
//!
//! Machines, CPU cores (with DVFS and virtualization jitter), PCIe DMA
//! engines, network links, and simulated process memory. These components
//! carry the calibration constants that map the CoRD paper's two physical
//! testbeds (§5: system L and system A) onto the discrete-event simulator.
//!
//! The presets live in [`machine::system_l`] and [`machine::system_a`];
//! every constant is documented with the paper observation it reproduces.

#![deny(missing_docs)]

pub mod cpu;
pub mod dvfs;
pub mod link;
pub mod machine;
pub mod memory;
pub mod noise;
pub mod pcie;

pub use cpu::{Core, CoreId};
pub use dvfs::Dvfs;
pub use link::{Fabric, Frame};
pub use machine::{system_a, system_l, MachineSpec};
pub use memory::{GuestMem, MemError, MemRegion, PayloadSeg, GUEST_BASE};
pub use noise::Noise;
pub use pcie::{DmaDir, DmaEngine};
