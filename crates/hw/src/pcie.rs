//! PCIe / DMA engine model.
//!
//! One engine per NIC. A transfer occupies the engine for its streaming
//! time (bandwidth-limited, FIFO across concurrent users) and completes one
//! transaction latency later. Fragments pipeline naturally: while fragment
//! *n* is in flight on the wire, fragment *n+1* streams over PCIe.

use cord_sim::{FifoResource, Sim, SimDuration, SimTime};

use crate::machine::PcieSpec;

/// Direction of a DMA transfer relative to host memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaDir {
    /// NIC reads host memory (TX payload fetch).
    FromHost,
    /// NIC writes host memory (RX payload / CQE delivery).
    ToHost,
}

/// A NIC's DMA engine; cheap to clone.
#[derive(Clone)]
pub struct DmaEngine {
    sim: Sim,
    spec: PcieSpec,
    /// Separate FIFO per direction: PCIe is full duplex.
    from_host: FifoResource,
    to_host: FifoResource,
}

impl DmaEngine {
    /// An idle engine with the given PCIe calibration.
    pub fn new(sim: &Sim, spec: PcieSpec) -> Self {
        DmaEngine {
            sim: sim.clone(),
            spec,
            from_host: FifoResource::new(sim),
            to_host: FifoResource::new(sim),
        }
    }

    fn lane(&self, dir: DmaDir) -> &FifoResource {
        match dir {
            DmaDir::FromHost => &self.from_host,
            DmaDir::ToHost => &self.to_host,
        }
    }

    /// Time to stream `bytes` (excluding latency).
    pub fn stream_time(&self, bytes: usize) -> SimDuration {
        cord_sim::copy_time(bytes as u64, self.spec.dma_gbps)
    }

    /// Schedule a transfer and return its completion instant without
    /// waiting (pipelined use).
    pub fn enqueue(&self, dir: DmaDir, bytes: usize) -> SimTime {
        let g = self.lane(dir).enqueue(self.stream_time(bytes));
        g.end + SimDuration::from_ns_f64(self.spec.dma_latency_ns)
    }

    /// Perform a transfer, waiting until the data is fully available.
    pub async fn transfer(&self, dir: DmaDir, bytes: usize) {
        let done = self.enqueue(dir, bytes);
        self.sim.sleep_until(done).await;
    }

    /// The latency component alone (e.g. doorbell-to-WQE-fetch).
    pub fn latency(&self) -> SimDuration {
        SimDuration::from_ns_f64(self.spec.dma_latency_ns)
    }

    /// Transactions completed in the given direction.
    pub fn served(&self, dir: DmaDir) -> u64 {
        self.lane(dir).served()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(sim: &Sim) -> DmaEngine {
        DmaEngine::new(
            sim,
            PcieSpec {
                dma_latency_ns: 200.0,
                dma_gbps: 10.0, // 100 ps/B
            },
        )
    }

    #[test]
    fn single_transfer_is_stream_plus_latency() {
        let sim = Sim::new();
        let e = engine(&sim);
        let t = sim.block_on({
            let sim = sim.clone();
            async move {
                e.transfer(DmaDir::FromHost, 1000).await;
                sim.now()
            }
        });
        // 1000 B * 100 ps + 200 ns = 100 ns + 200 ns.
        assert_eq!(t.as_ns_f64(), 300.0);
    }

    #[test]
    fn same_direction_serializes_opposite_overlaps() {
        let sim = Sim::new();
        let e = engine(&sim);
        // Two same-direction transfers: second starts after first streams.
        let done1 = e.enqueue(DmaDir::FromHost, 1000);
        let done2 = e.enqueue(DmaDir::FromHost, 1000);
        assert_eq!(done2.as_ns_f64() - done1.as_ns_f64(), 100.0);
        // Opposite direction: independent lane, same completion as first.
        let done3 = e.enqueue(DmaDir::ToHost, 1000);
        assert_eq!(done3, done1);
    }

    #[test]
    fn pipelining_hides_latency_for_fragments() {
        let sim = Sim::new();
        let e = engine(&sim);
        // 8 fragments of 4096 B: completion spacing equals stream time,
        // latency paid once per fragment but overlapped.
        let mut completions = Vec::new();
        for _ in 0..8 {
            completions.push(e.enqueue(DmaDir::FromHost, 4096));
        }
        for w in completions.windows(2) {
            assert_eq!((w[1] - w[0]).as_ps(), 4096 * 100);
        }
    }
}
