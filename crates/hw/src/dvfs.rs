//! DVFS / Turbo Boost governor model.
//!
//! The paper observes (§5) that CoRD *marginally outperforms* kernel bypass
//! in large-message bandwidth tests and on EP/CG when Turbo Boost is
//! enabled, and attributes this to system calls interacting with DVFS: a
//! core that periodically enters the kernel presents a lighter sustained
//! power signature than one spinning in a userspace poll loop, letting the
//! package sustain a slightly higher boost bin.
//!
//! We model exactly that: each core tracks an EWMA of the fraction of its
//! busy time spent on kernel entries; the frequency factor rises linearly
//! with that fraction up to `turbo_headroom`. With turbo disabled the
//! factor is pinned to 1.0.

use std::cell::Cell;
use std::rc::Rc;

use cord_sim::{Sim, SimDuration, SimTime};

use crate::machine::DvfsSpec;

/// Per-core DVFS state. Cloneable handle.
#[derive(Clone)]
pub struct Dvfs {
    sim: Sim,
    spec: DvfsSpec,
    /// EWMA of kernel-time fraction of busy time, in [0, 1].
    kernel_frac: Rc<Cell<f64>>,
    last_update: Rc<Cell<SimTime>>,
}

impl Dvfs {
    /// A governor with no kernel-time history (factor 1.0).
    pub fn new(sim: &Sim, spec: DvfsSpec) -> Self {
        Dvfs {
            sim: sim.clone(),
            spec,
            kernel_frac: Rc::new(Cell::new(0.0)),
            last_update: Rc::new(Cell::new(SimTime::ZERO)),
        }
    }

    /// Record `busy` time of which `kernel` was spent in-kernel.
    pub fn record(&self, busy: SimDuration, kernel: SimDuration) {
        if !self.spec.turbo || busy.is_zero() {
            return;
        }
        let frac = (kernel.as_ps() as f64 / busy.as_ps() as f64).min(1.0);
        // EWMA with weight proportional to the observed interval length.
        let w = (busy.as_ps() as f64 / self.spec.ewma_window.as_ps() as f64).min(1.0);
        let old = self.kernel_frac.get();
        self.kernel_frac.set(old * (1.0 - w) + frac * w);
        self.last_update.set(self.sim.now());
    }

    /// Current frequency factor: durations are *divided* by this, so
    /// factor > 1 means faster execution.
    pub fn freq_factor(&self) -> f64 {
        if !self.spec.turbo {
            return 1.0;
        }
        1.0 + self.spec.turbo_headroom * self.kernel_frac.get()
    }

    /// Scale a nominal duration by the current frequency.
    pub fn scale(&self, d: SimDuration) -> SimDuration {
        let f = self.freq_factor();
        if f == 1.0 {
            d
        } else {
            d.mul_f64(1.0 / f)
        }
    }

    /// Current EWMA estimate of the kernel-time fraction.
    pub fn kernel_fraction(&self) -> f64 {
        self.kernel_frac.get()
    }

    /// Whether turbo is enabled (when false, `scale` is the identity and
    /// `record` is a no-op — the precondition for fused CPU billing).
    pub fn turbo_enabled(&self) -> bool {
        self.spec.turbo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(turbo: bool) -> DvfsSpec {
        DvfsSpec {
            turbo,
            turbo_headroom: 0.03,
            ewma_window: SimDuration::from_us(50),
        }
    }

    #[test]
    fn disabled_turbo_is_identity() {
        let sim = Sim::new();
        let d = Dvfs::new(&sim, spec(false));
        d.record(SimDuration::from_us(100), SimDuration::from_us(100));
        assert_eq!(d.freq_factor(), 1.0);
        assert_eq!(
            d.scale(SimDuration::from_ns(1000)),
            SimDuration::from_ns(1000)
        );
    }

    #[test]
    fn kernel_heavy_load_boosts() {
        let sim = Sim::new();
        let d = Dvfs::new(&sim, spec(true));
        // Saturate the EWMA with kernel-heavy intervals.
        for _ in 0..10 {
            d.record(SimDuration::from_us(100), SimDuration::from_us(50));
        }
        let f = d.freq_factor();
        assert!(f > 1.01 && f <= 1.03, "factor {f}");
        // Scaled durations shrink.
        let scaled = d.scale(SimDuration::from_ns(1000));
        assert!(scaled < SimDuration::from_ns(1000));
    }

    #[test]
    fn pure_userspace_spin_no_boost() {
        let sim = Sim::new();
        let d = Dvfs::new(&sim, spec(true));
        for _ in 0..10 {
            d.record(SimDuration::from_us(100), SimDuration::ZERO);
        }
        assert_eq!(d.freq_factor(), 1.0);
    }

    #[test]
    fn ewma_decays_towards_new_regime() {
        let sim = Sim::new();
        let d = Dvfs::new(&sim, spec(true));
        for _ in 0..10 {
            d.record(SimDuration::from_us(100), SimDuration::from_us(100));
        }
        let boosted = d.freq_factor();
        for _ in 0..10 {
            d.record(SimDuration::from_us(100), SimDuration::ZERO);
        }
        assert!(d.freq_factor() < boosted);
    }
}
