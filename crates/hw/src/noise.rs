//! Virtualization jitter model (system A).
//!
//! The paper reports system A's per-message overhead as "larger, with higher
//! variation" (§5) — a virtualized kernel entry sometimes takes a detour
//! through the hypervisor. We model each kernel-entry cost as a lognormal
//! multiple of its nominal value plus a rare, expensive preemption.

use cord_sim::{DetRng, SimDuration};

use crate::machine::NoiseSpec;

/// Jitter source; cheap to clone (shares the RNG stream).
#[derive(Clone)]
pub struct Noise {
    spec: NoiseSpec,
    rng: DetRng,
}

impl Noise {
    /// A jitter source drawing from `rng` per the spec.
    pub fn new(spec: NoiseSpec, rng: DetRng) -> Self {
        Noise { spec, rng }
    }

    /// A disabled source (system L).
    pub fn disabled() -> Self {
        Noise {
            spec: NoiseSpec {
                enabled: false,
                sigma: 0.0,
                preempt_prob: 0.0,
                preempt_ns: 0.0,
            },
            rng: DetRng::from_seed(0),
        }
    }

    /// Whether jitter is being injected.
    pub fn is_enabled(&self) -> bool {
        self.spec.enabled
    }

    /// Jitter a nominal kernel-entry cost.
    pub fn kernel_cost(&self, nominal: SimDuration) -> SimDuration {
        if !self.spec.enabled {
            return nominal;
        }
        // Lognormal with median == nominal.
        let factor = self.rng.lognormal(0.0, self.spec.sigma);
        let mut d = nominal.mul_f64(factor);
        if self.spec.preempt_prob > 0.0 && self.rng.uniform() < self.spec.preempt_prob {
            d += SimDuration::from_ns_f64(self.spec.preempt_ns);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_identity() {
        let n = Noise::disabled();
        let d = SimDuration::from_ns(500);
        for _ in 0..10 {
            assert_eq!(n.kernel_cost(d), d);
        }
    }

    #[test]
    fn enabled_jitters_around_nominal() {
        let n = Noise::new(
            NoiseSpec {
                enabled: true,
                sigma: 0.2,
                preempt_prob: 0.0,
                preempt_ns: 0.0,
            },
            DetRng::from_seed(42),
        );
        let nominal = SimDuration::from_ns(1000);
        let samples: Vec<f64> = (0..5000)
            .map(|_| n.kernel_cost(nominal).as_ns_f64())
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        // Lognormal mean = exp(sigma^2/2) * median ≈ 1.02 * 1000.
        assert!((mean - 1020.0).abs() < 40.0, "mean {mean}");
        assert!(samples.iter().any(|&s| s > 1200.0));
        assert!(samples.iter().any(|&s| s < 850.0));
    }

    #[test]
    fn preemptions_appear_at_configured_rate() {
        let n = Noise::new(
            NoiseSpec {
                enabled: true,
                sigma: 0.01,
                preempt_prob: 0.05,
                preempt_ns: 50_000.0,
            },
            DetRng::from_seed(7),
        );
        let nominal = SimDuration::from_ns(100);
        let preempted = (0..10_000)
            .filter(|_| n.kernel_cost(nominal) > SimDuration::from_ns(10_000))
            .count();
        let rate = preempted as f64 / 10_000.0;
        assert!((rate - 0.05).abs() < 0.01, "rate {rate}");
    }
}
