//! Per-process verbs context.

use cord_hw::{Core, GuestMem, MemRegion};
use cord_kern::Kernel;
use cord_nic::{Access, Mr, Nic, Transport};

use crate::cq::UserCq;
use crate::qp::UserQp;

/// Which dataplane this endpoint uses (§3, Fig. 2b vs 2c).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataplane {
    /// Classical kernel-bypass RDMA.
    Bypass,
    /// Converged RDMA Dataplane: every data-plane verb is a system call.
    Cord,
}

impl std::fmt::Display for Dataplane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Dataplane::Bypass => write!(f, "BP"),
            Dataplane::Cord => write!(f, "CoRD"),
        }
    }
}

/// A process's verbs context: its CPU core, node kernel, NIC, and memory.
#[derive(Clone)]
pub struct Context {
    core: Core,
    kernel: Kernel,
    mem: GuestMem,
    mode: Dataplane,
}

impl Context {
    /// Open a context. `core` is the CPU the process is pinned to;
    /// `kernel` is its node's kernel (which owns the NIC handle).
    pub fn open(core: Core, kernel: Kernel, mode: Dataplane) -> Self {
        Context {
            core,
            kernel,
            mem: GuestMem::new(),
            mode,
        }
    }

    pub fn mode(&self) -> Dataplane {
        self.mode
    }

    pub fn core(&self) -> &Core {
        &self.core
    }

    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    pub fn nic(&self) -> &Nic {
        self.kernel.nic()
    }

    pub fn node(&self) -> usize {
        self.kernel.node()
    }

    /// The process's memory arena.
    pub fn mem(&self) -> &GuestMem {
        &self.mem
    }

    /// Allocate and zero a buffer.
    pub fn alloc(&self, len: usize, fill: u8) -> MemRegion {
        self.mem.alloc(len, fill)
    }

    /// Allocate a buffer initialized from `data`.
    pub fn alloc_from(&self, data: &[u8]) -> MemRegion {
        self.mem.alloc_from(data)
    }

    /// Register a memory region (control plane: one ioctl — identical under
    /// both dataplanes, §4).
    pub async fn reg_mr(&self, region: MemRegion, access: Access) -> Mr {
        self.kernel.control_ioctl(&self.core).await;
        self.nic()
            .mr_table()
            .register(self.mem.clone(), region, access)
    }

    /// Create a completion queue (control plane).
    pub async fn create_cq(&self, depth: usize) -> UserCq {
        self.kernel.control_ioctl(&self.core).await;
        UserCq::new(self.clone(), self.nic().create_cq(depth))
    }

    /// Create a queue pair (control plane).
    pub async fn create_qp(
        &self,
        transport: Transport,
        send_cq: &UserCq,
        recv_cq: &UserCq,
    ) -> UserQp {
        self.kernel.control_ioctl(&self.core).await;
        let qpn = self
            .nic()
            .create_qp(transport, send_cq.raw().clone(), recv_cq.raw().clone());
        UserQp::new(
            self.clone(),
            qpn,
            transport,
            send_cq.clone(),
            recv_cq.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cord_hw::{system_l, CoreId, Dvfs, Noise};
    use cord_nic::build_cluster;
    use cord_sim::{Sim, Trace};

    pub(crate) fn test_ctx(sim: &Sim, mode: Dataplane) -> Context {
        let spec = system_l();
        let nics = build_cluster(sim, &spec, Trace::disabled());
        let kern = Kernel::new(sim, &spec, nics[0].clone(), Trace::disabled());
        let core = Core::new(
            sim,
            CoreId { node: 0, core: 0 },
            &spec,
            Dvfs::new(sim, spec.dvfs.clone()),
            Noise::disabled(),
        );
        Context::open(core, kern, mode)
    }

    #[test]
    fn control_plane_is_identical_across_modes() {
        // MR registration costs one ioctl regardless of dataplane (§4).
        for mode in [Dataplane::Bypass, Dataplane::Cord] {
            let sim = Sim::new();
            let ctx = test_ctx(&sim, mode);
            let spec = system_l();
            let t = sim.block_on({
                let ctx = ctx.clone();
                let sim2 = sim.clone();
                async move {
                    let buf = ctx.alloc(4096, 0);
                    ctx.reg_mr(buf, Access::all()).await;
                    sim2.now()
                }
            });
            assert_eq!(t.as_ns_f64(), spec.cpu.ioctl_ns, "mode {mode}");
        }
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(Dataplane::Bypass.to_string(), "BP");
        assert_eq!(Dataplane::Cord.to_string(), "CoRD");
    }
}
