//! # cord-verbs — the user-level verbs API
//!
//! The "narrow waist" of high-performance networking (§4 of the paper):
//! contexts, protection of memory regions, completion queues, queue pairs,
//! `post_send` / `post_recv` / `poll_cq`. The same API runs over two
//! dataplanes, selected per endpoint:
//!
//! * [`Dataplane::Bypass`] — classical RDMA: the user-level driver writes
//!   WQEs and rings MMIO doorbells directly; inline sends up to the NIC's
//!   cap; CQ polling is a userspace load.
//! * [`Dataplane::Cord`] — every data-plane op is a system call into the
//!   CoRD kernel driver, which interposes policies and then drives the
//!   same NIC. No inline support (the prototype limitation behind the
//!   paper's Fig. 5a bimodality).
//!
//! Client and server choose modes independently — exactly the BP→CoRD /
//! CoRD→BP / CoRD→CoRD matrix of Fig. 3.

pub mod context;
pub mod cq;
pub mod qp;

pub use context::{Context, Dataplane};
pub use cq::{CompletionWait, UserCq};
pub use qp::UserQp;

// Re-export the vocabulary types callers need.
pub use cord_nic::{
    Access, Cqe, CqeOpcode, CqeStatus, LKey, Mr, Opcode, QpNum, QpState, RKey, RecvWqe, SendWqe,
    Sge, Transport, UdDest, VerbsError, WrId,
};
