//! User-side completion queue wrapper: polling and event-driven waits with
//! the right CPU billing for each dataplane.

use cord_nic::{Cq, Cqe};
use cord_sim::SimDuration;

use crate::context::{Context, Dataplane};

/// How a consumer waits for completions (§2's polling vs. interrupts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionWait {
    /// Busy-poll the CQ (the RDMA default).
    BusyPoll,
    /// Arm the CQ and block on the completion channel (one interrupt per
    /// wakeup — the paper's "no busy-polling" knob).
    Event,
}

/// Estimated fraction of a CoRD poll loop iteration spent in the kernel;
/// feeds the DVFS governor during accounted spin time.
const CORD_SPIN_KERNEL_FRAC: f64 = 0.9;

/// A user-space CQ handle.
#[derive(Clone)]
pub struct UserCq {
    ctx: Context,
    cq: Cq,
}

impl UserCq {
    pub(crate) fn new(ctx: Context, cq: Cq) -> Self {
        UserCq { ctx, cq }
    }

    /// Wrap an existing raw CQ (for middleware such as the MPI layer that
    /// creates its objects through the control plane directly).
    pub fn from_raw(ctx: Context, cq: Cq) -> Self {
        UserCq { ctx, cq }
    }

    pub fn raw(&self) -> &Cq {
        &self.cq
    }

    pub fn len(&self) -> usize {
        self.cq.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cq.is_empty()
    }

    /// One `ibv_poll_cq` call: bills CPU per the dataplane, returns up to
    /// `max` CQEs.
    pub async fn poll(&self, max: usize) -> Vec<Cqe> {
        let core = self.ctx.core().clone();
        match self.ctx.mode() {
            Dataplane::Bypass => {
                let spec = core.spec();
                core.compute_ns(spec.poll_empty_ns).await;
                let cqes = self.cq.poll(max);
                if !cqes.is_empty() {
                    core.compute_ns(spec.poll_cqe_ns * cqes.len() as f64).await;
                }
                cqes
            }
            Dataplane::Cord => {
                let cqes = self.ctx.kernel().cord_poll_cq(&core, &self.cq, max).await;
                if !cqes.is_empty() {
                    let spec = core.spec();
                    core.compute_ns(spec.poll_cqe_ns * cqes.len() as f64).await;
                }
                cqes
            }
        }
    }

    /// Collect exactly `n` completions using the given wait strategy.
    ///
    /// Busy-polling is simulated without spinning through virtual time:
    /// the waiter parks on the CQ's push notification, then performs one
    /// more (billed) poll — which reproduces the detection-granularity
    /// latency of a real poll loop — and retroactively accounts the spin
    /// time to the core so the DVFS governor sees a hot core.
    pub async fn wait_cqes(&self, n: usize, wait: CompletionWait) -> Vec<Cqe> {
        let mut out = Vec::with_capacity(n);
        let core = self.ctx.core().clone();
        loop {
            let got = self.poll(n - out.len()).await;
            out.extend(got);
            if out.len() >= n {
                return out;
            }
            match wait {
                CompletionWait::BusyPoll => {
                    let start = core.sim().now();
                    self.cq.wait_push().await;
                    let spun = core.sim().now().since(start);
                    if !spun.is_zero() {
                        let kfrac = match self.ctx.mode() {
                            Dataplane::Bypass => 0.0,
                            Dataplane::Cord => CORD_SPIN_KERNEL_FRAC,
                        };
                        core.account_spin(spun, kfrac);
                    }
                }
                CompletionWait::Event => {
                    self.cq.arm();
                    // Double-check after arming (the classic race).
                    if self.cq.is_empty() {
                        self.cq.wait_event().await;
                    }
                    core.interrupt_wakeup().await;
                }
            }
        }
    }

    /// Convenience: wait for one completion, busy-polling.
    pub async fn wait_one(&self) -> Cqe {
        self.wait_cqes(1, CompletionWait::BusyPoll)
            .await
            .pop()
            .expect("wait_cqes returns n")
    }

    /// One empty-poll's worth of virtual time at this dataplane — the
    /// detection granularity of a busy-poll loop (used by latency harnesses
    /// for reporting, not billed here).
    pub fn poll_period(&self) -> SimDuration {
        let spec = self.ctx.core().spec();
        match self.ctx.mode() {
            Dataplane::Bypass => SimDuration::from_ns_f64(spec.poll_empty_ns),
            Dataplane::Cord => SimDuration::from_ns_f64(
                spec.cord_crossing_ns + spec.cord_driver_ns + spec.poll_empty_ns,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Dataplane;
    use cord_hw::{system_l, CoreId, Dvfs, Noise};
    use cord_kern::Kernel;
    use cord_nic::{build_cluster, CqeOpcode, CqeStatus, QpNum, WrId};
    use cord_sim::{Sim, Trace};

    fn ctx(sim: &Sim, mode: Dataplane) -> Context {
        let spec = system_l();
        let nics = build_cluster(sim, &spec, Trace::disabled());
        let kern = Kernel::new(sim, &spec, nics[0].clone(), Trace::disabled());
        let core = cord_hw::Core::new(
            sim,
            CoreId { node: 0, core: 0 },
            &spec,
            Dvfs::new(sim, spec.dvfs.clone()),
            Noise::disabled(),
        );
        Context::open(core, kern, mode)
    }

    fn cqe(wr: u64) -> Cqe {
        Cqe {
            wr_id: WrId(wr),
            status: CqeStatus::Success,
            opcode: CqeOpcode::Send,
            byte_len: 0,
            qp: QpNum(1),
            imm: None,
            src_qp: None,
            src_node: None,
        }
    }

    #[test]
    fn bypass_poll_costs_nanoseconds_cord_costs_a_syscall() {
        let spec = system_l();
        let mut costs = Vec::new();
        for mode in [Dataplane::Bypass, Dataplane::Cord] {
            let sim = Sim::new();
            let c = ctx(&sim, mode);
            let ucq = sim.block_on({
                let c = c.clone();
                async move { c.create_cq(64).await }
            });
            let before = sim.now();
            sim.block_on({
                let ucq = ucq.clone();
                async move {
                    let got = ucq.poll(16).await;
                    assert!(got.is_empty());
                }
            });
            costs.push(sim.now().since(before).as_ns_f64());
        }
        assert_eq!(costs[0], spec.cpu.poll_empty_ns);
        assert_eq!(
            costs[1],
            spec.cpu.cord_crossing_ns + spec.cpu.cord_driver_ns
        );
    }

    #[test]
    fn wait_cqes_busy_poll_detects_after_arrival() {
        let sim = Sim::new();
        let c = ctx(&sim, Dataplane::Bypass);
        let ucq = sim.block_on({
            let c = c.clone();
            async move { c.create_cq(64).await }
        });
        let raw = ucq.raw().clone();
        let s = sim.clone();
        let t = sim.block_on({
            let ucq = ucq.clone();
            let sim2 = sim.clone();
            async move {
                let start = sim2.now();
                s.spawn({
                    let s2 = s.clone();
                    async move {
                        s2.sleep(SimDuration::from_us(5)).await;
                        raw.push(cqe(1));
                    }
                });
                let got = ucq.wait_cqes(1, CompletionWait::BusyPoll).await;
                assert_eq!(got.len(), 1);
                sim2.now().since(start)
            }
        });
        let us = t.as_us_f64();
        assert!(us >= 5.0, "cannot detect before arrival");
        assert!(us < 5.2, "busy-poll detects promptly: {us}");
    }

    #[test]
    fn event_wait_adds_interrupt_cost() {
        let spec = system_l();
        let sim = Sim::new();
        let c = ctx(&sim, Dataplane::Bypass);
        let ucq = sim.block_on({
            let c = c.clone();
            async move { c.create_cq(64).await }
        });
        let raw = ucq.raw().clone();
        let s = sim.clone();
        let t = sim.block_on({
            let ucq = ucq.clone();
            let sim2 = sim.clone();
            async move {
                s.spawn({
                    let s2 = s.clone();
                    async move {
                        s2.sleep(SimDuration::from_us(5)).await;
                        raw.push(cqe(1));
                    }
                });
                ucq.wait_cqes(1, CompletionWait::Event).await;
                sim2.now()
            }
        });
        let us = t.as_us_f64();
        let floor = 5.0 + (spec.cpu.interrupt_ns + spec.cpu.wakeup_ns) / 1000.0;
        assert!(us >= floor, "event wait {us} µs >= {floor} µs");
    }

    #[test]
    fn spin_time_is_accounted_to_the_core() {
        let sim = Sim::new();
        let c = ctx(&sim, Dataplane::Bypass);
        let core = c.core().clone();
        let ucq = sim.block_on({
            let c = c.clone();
            async move { c.create_cq(64).await }
        });
        let raw = ucq.raw().clone();
        let s = sim.clone();
        sim.block_on({
            let ucq = ucq.clone();
            async move {
                s.spawn({
                    let s2 = s.clone();
                    async move {
                        s2.sleep(SimDuration::from_us(50)).await;
                        raw.push(cqe(1));
                    }
                });
                ucq.wait_cqes(1, CompletionWait::BusyPoll).await;
            }
        });
        // The ~50 µs of spinning shows up as busy time.
        assert!(core.busy_total() >= SimDuration::from_us(50));
    }
}
