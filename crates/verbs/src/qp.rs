//! User-side queue pair: posting through either dataplane, plus connection
//! management.

use cord_nic::{QpNum, QpState, RecvWqe, SendWqe, Transport, VerbsError};

use crate::context::{Context, Dataplane};
use crate::cq::UserCq;

/// A user-space QP handle.
#[derive(Clone)]
pub struct UserQp {
    ctx: Context,
    qpn: QpNum,
    transport: Transport,
    send_cq: UserCq,
    recv_cq: UserCq,
}

impl UserQp {
    pub(crate) fn new(
        ctx: Context,
        qpn: QpNum,
        transport: Transport,
        send_cq: UserCq,
        recv_cq: UserCq,
    ) -> Self {
        UserQp {
            ctx,
            qpn,
            transport,
            send_cq,
            recv_cq,
        }
    }

    /// Wrap an existing raw QP (for middleware such as the MPI layer that
    /// creates its objects through the control plane directly).
    pub fn from_raw(
        ctx: Context,
        qpn: QpNum,
        transport: Transport,
        send_cq: UserCq,
        recv_cq: UserCq,
    ) -> Self {
        UserQp::new(ctx, qpn, transport, send_cq, recv_cq)
    }

    pub fn qpn(&self) -> QpNum {
        self.qpn
    }

    pub fn node(&self) -> usize {
        self.ctx.node()
    }

    pub fn transport(&self) -> Transport {
        self.transport
    }

    pub fn send_cq(&self) -> &UserCq {
        &self.send_cq
    }

    pub fn recv_cq(&self) -> &UserCq {
        &self.recv_cq
    }

    pub fn ctx(&self) -> &Context {
        &self.ctx
    }

    pub fn state(&self) -> QpState {
        self.ctx.nic().qp_state(self.qpn).expect("own QP")
    }

    /// Transition this QP to RTS, optionally connecting to a peer
    /// (control plane: one ioctl per `ibv_modify_qp`; the CM handshake's
    /// out-of-band QPN exchange is assumed done by the caller).
    pub async fn connect(&self, peer: Option<(usize, QpNum)>) -> Result<(), VerbsError> {
        // Three modify_qp ioctls: INIT, RTR, RTS.
        for _ in 0..3 {
            self.ctx.kernel().control_ioctl(self.ctx.core()).await;
        }
        self.ctx.nic().connect(self.qpn, peer)
    }

    /// `ibv_post_send` through the configured dataplane.
    pub async fn post_send(&self, wqe: SendWqe) -> Result<(), VerbsError> {
        let core = self.ctx.core().clone();
        match self.ctx.mode() {
            Dataplane::Bypass => {
                let spec = core.spec();
                let nic_spec = self.ctx.nic().spec().nic.clone();
                // WQE build, optional inline copy, and the MMIO doorbell
                // are consecutive user-mode costs: one fused park.
                if wqe.opcode == cord_nic::Opcode::Send && wqe.sge.len <= nic_spec.inline_cap {
                    let inline_ns = nic_spec.inline_byte_ns * wqe.sge.len as f64;
                    core.compute_ns_parts(&[spec.post_wqe_ns, inline_ns, nic_spec.doorbell_ns])
                        .await;
                } else {
                    core.compute_ns_parts(&[spec.post_wqe_ns, nic_spec.doorbell_ns])
                        .await;
                }
                self.ctx.nic().post_send(self.qpn, wqe, true)
            }
            Dataplane::Cord => self.ctx.kernel().cord_post_send(&core, self.qpn, wqe).await,
        }
    }

    /// `ibv_post_recv` with a linked list of WQEs: one doorbell (bypass) or
    /// one system call (CoRD) amortized over the batch.
    pub async fn post_recv_batch(&self, wqes: Vec<RecvWqe>) -> Result<(), VerbsError> {
        let core = self.ctx.core().clone();
        match self.ctx.mode() {
            Dataplane::Bypass => {
                let spec = core.spec();
                core.compute_ns_parts(&[
                    spec.post_wqe_ns * wqes.len() as f64,
                    self.ctx.nic().spec().nic.doorbell_ns,
                ])
                .await;
                for wqe in wqes {
                    self.ctx.nic().post_recv(self.qpn, wqe)?;
                }
                Ok(())
            }
            Dataplane::Cord => {
                self.ctx
                    .kernel()
                    .cord_post_recv_batch(&core, self.qpn, wqes)
                    .await
            }
        }
    }

    /// `ibv_post_recv` through the configured dataplane.
    pub async fn post_recv(&self, wqe: RecvWqe) -> Result<(), VerbsError> {
        let core = self.ctx.core().clone();
        match self.ctx.mode() {
            Dataplane::Bypass => {
                let spec = core.spec();
                core.compute_ns_parts(&[spec.post_wqe_ns, self.ctx.nic().spec().nic.doorbell_ns])
                    .await;
                self.ctx.nic().post_recv(self.qpn, wqe)
            }
            Dataplane::Cord => self.ctx.kernel().cord_post_recv(&core, self.qpn, wqe).await,
        }
    }
}

/// Out-of-band connection setup for a pair of RC QPs (what `rdma_cm` would
/// negotiate over TCP): exchanges QPNs and drives both state machines.
pub async fn connect_rc_pair(a: &UserQp, b: &UserQp) -> Result<(), VerbsError> {
    a.connect(Some((b.node(), b.qpn()))).await?;
    b.connect(Some((a.node(), a.qpn()))).await
}

/// Activate a UD QP (no peer).
pub async fn activate_ud(qp: &UserQp) -> Result<(), VerbsError> {
    qp.connect(None).await
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Dataplane;
    use cord_hw::{system_l, Core, CoreId, Dvfs, Noise};
    use cord_kern::Kernel;
    use cord_nic::{build_cluster, Access, CqeStatus, Sge, WrId};
    use cord_sim::{Sim, Trace};

    /// Two contexts on opposite nodes with the given dataplane modes.
    pub(crate) fn ctx_pair(sim: &Sim, a: Dataplane, b: Dataplane) -> (Context, Context) {
        let spec = system_l();
        let nics = build_cluster(sim, &spec, Trace::disabled());
        let mk = |node: usize, mode: Dataplane| {
            let kern = Kernel::new(sim, &spec, nics[node].clone(), Trace::disabled());
            let core = Core::new(
                sim,
                CoreId { node, core: 0 },
                &spec,
                Dvfs::new(sim, spec.dvfs.clone()),
                Noise::disabled(),
            );
            Context::open(core, kern, mode)
        };
        (mk(0, a), mk(1, b))
    }

    async fn rc_endpoints(ca: &Context, cb: &Context) -> (UserQp, UserQp) {
        let scq_a = ca.create_cq(256).await;
        let rcq_a = ca.create_cq(256).await;
        let scq_b = cb.create_cq(256).await;
        let rcq_b = cb.create_cq(256).await;
        let qa = ca.create_qp(Transport::Rc, &scq_a, &rcq_a).await;
        let qb = cb.create_qp(Transport::Rc, &scq_b, &rcq_b).await;
        connect_rc_pair(&qa, &qb).await.unwrap();
        (qa, qb)
    }

    fn modes() -> [(Dataplane, Dataplane); 4] {
        [
            (Dataplane::Bypass, Dataplane::Bypass),
            (Dataplane::Bypass, Dataplane::Cord),
            (Dataplane::Cord, Dataplane::Bypass),
            (Dataplane::Cord, Dataplane::Cord),
        ]
    }

    #[test]
    fn send_recv_works_in_every_mode_combination() {
        for (ma, mb) in modes() {
            let sim = Sim::new();
            let (ca, cb) = ctx_pair(&sim, ma, mb);
            let ok = sim.block_on({
                let (ca, cb) = (ca.clone(), cb.clone());
                async move {
                    let (qa, qb) = rc_endpoints(&ca, &cb).await;
                    let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
                    let src = ca.alloc_from(&data);
                    let dst = cb.alloc(1000, 0);
                    let mra = ca.reg_mr(src, Access::all()).await;
                    let mrb = cb.reg_mr(dst, Access::all()).await;
                    qb.post_recv(RecvWqe::new(
                        WrId(1),
                        Sge {
                            addr: dst.addr,
                            len: 1000,
                            lkey: mrb.lkey,
                        },
                    ))
                    .await
                    .unwrap();
                    qa.post_send(SendWqe::send(
                        WrId(2),
                        Sge {
                            addr: src.addr,
                            len: 1000,
                            lkey: mra.lkey,
                        },
                    ))
                    .await
                    .unwrap();
                    let r = qb.recv_cq().wait_one().await;
                    let s = qa.send_cq().wait_one().await;
                    assert_eq!(r.status, CqeStatus::Success, "{ma}->{mb}");
                    assert_eq!(s.status, CqeStatus::Success, "{ma}->{mb}");
                    cb.mem().read(dst.addr, 1000).unwrap()[..] == data[..]
                }
            });
            assert!(ok, "payload intact {ma}->{mb}");
        }
    }

    #[test]
    fn cord_post_is_slower_than_bypass_by_crossing_cost() {
        let spec = system_l();
        let mut post_cost = Vec::new();
        for mode in [Dataplane::Bypass, Dataplane::Cord] {
            let sim = Sim::new();
            let (ca, cb) = ctx_pair(&sim, mode, Dataplane::Bypass);
            let t = sim.block_on({
                let (ca, cb) = (ca.clone(), cb.clone());
                let sim2 = sim.clone();
                async move {
                    let (qa, _qb) = rc_endpoints(&ca, &cb).await;
                    let src = ca.alloc(64, 1);
                    let mra = ca.reg_mr(src, Access::all()).await;
                    let before = sim2.now();
                    qa.post_send(
                        SendWqe::write(
                            WrId(1),
                            Sge {
                                addr: src.addr,
                                len: 64,
                                lkey: mra.lkey,
                            },
                            // Write to our own registered buffer on the peer:
                            // invalid rkey doesn't matter for post cost; use
                            // a bogus target and ignore the completion.
                            src.addr,
                            cord_nic::RKey(999),
                        )
                        .unsignaled(),
                    )
                    .await
                    .unwrap();
                    sim2.now().since(before)
                }
            });
            post_cost.push(t.as_ns_f64());
        }
        let bypass = post_cost[0];
        let cord = post_cost[1];
        // CoRD ≈ crossing + driver; bypass ≈ wqe build + doorbell.
        assert!(cord > bypass, "cord {cord} > bypass {bypass}");
        let delta = cord - bypass;
        let expect = spec.cpu.cord_crossing_ns + spec.cpu.cord_driver_ns
            - (spec.cpu.post_wqe_ns + spec.nic.doorbell_ns);
        assert!(
            (delta - expect).abs() < 1.0,
            "delta {delta} ns vs expected {expect} ns"
        );
    }

    #[test]
    fn policy_denial_surfaces_through_user_api() {
        use cord_kern::SecurityPolicy;
        use std::rc::Rc;
        let sim = Sim::new();
        let (ca, cb) = ctx_pair(&sim, Dataplane::Cord, Dataplane::Bypass);
        ca.kernel().add_policy(Rc::new(
            SecurityPolicy::new().deny_op(cord_nic::Opcode::Send),
        ));
        let err = sim.block_on({
            let (ca, cb) = (ca.clone(), cb.clone());
            async move {
                let (qa, _qb) = rc_endpoints(&ca, &cb).await;
                let src = ca.alloc(16, 0);
                let mra = ca.reg_mr(src, Access::all()).await;
                qa.post_send(SendWqe::send(
                    WrId(1),
                    Sge {
                        addr: src.addr,
                        len: 16,
                        lkey: mra.lkey,
                    },
                ))
                .await
            }
        });
        assert_eq!(err, Err(VerbsError::PolicyDenied("opcode forbidden")));
    }

    #[test]
    fn bypass_ignores_policies_cord_enforces_them() {
        // The same policy installed in the kernel is invisible to a bypass
        // endpoint — the paper's core motivation in one test.
        use cord_kern::SecurityPolicy;
        use std::rc::Rc;
        for (mode, expect_denied) in [(Dataplane::Bypass, false), (Dataplane::Cord, true)] {
            let sim = Sim::new();
            let (ca, cb) = ctx_pair(&sim, mode, Dataplane::Bypass);
            ca.kernel()
                .add_policy(Rc::new(SecurityPolicy::new().max_message(8)));
            let denied = sim.block_on({
                let (ca, cb) = (ca.clone(), cb.clone());
                async move {
                    let (qa, qb) = rc_endpoints(&ca, &cb).await;
                    let src = ca.alloc(64, 1);
                    let dst = cb.alloc(64, 0);
                    let mra = ca.reg_mr(src, Access::all()).await;
                    let mrb = cb.reg_mr(dst, Access::all()).await;
                    qb.post_recv(RecvWqe::new(
                        WrId(1),
                        Sge {
                            addr: dst.addr,
                            len: 64,
                            lkey: mrb.lkey,
                        },
                    ))
                    .await
                    .unwrap();
                    qa.post_send(SendWqe::send(
                        WrId(2),
                        Sge {
                            addr: src.addr,
                            len: 64,
                            lkey: mra.lkey,
                        },
                    ))
                    .await
                    .is_err()
                }
            });
            assert_eq!(denied, expect_denied, "mode {mode}");
        }
    }
}
