//! End-to-end trace export: run a builtin scenario with the lifecycle
//! trace armed, render it as Chrome trace_event JSON, and check both the
//! structure (required fields, metadata, nesting balance) and the
//! semantics the pathology promises (PFC pause episodes as duration
//! events, victim messages spanning them).

use cord_bench::perfetto::chrome_trace;
use cord_workload::scenarios::{by_name, Scale};
use cord_workload::{run_scenario_full, RunOptions};
use serde::Value;

fn scale() -> Scale {
    Scale {
        nodes: 8,
        tenants: 4,
        requests: 20,
        seed: 0x7AC3,
        ..Scale::default()
    }
}

fn run_traced(name: &str) -> (Vec<cord_sim::TraceEvent>, Value) {
    let spec = by_name(name, scale()).unwrap();
    let out = run_scenario_full(
        &spec,
        RunOptions {
            trace_capacity: Some(1 << 20),
        },
    )
    .unwrap();
    let events = out.trace.expect("trace was armed");
    assert!(!events.is_empty(), "{name}: lifecycle trace must fill");
    let json = chrome_trace(&events);
    (events, json)
}

fn records(v: &Value) -> &[Value] {
    let Value::Object(top) = v else { panic!() };
    let (key, Value::Array(events)) = &top[0] else {
        panic!()
    };
    assert_eq!(key, "traceEvents");
    events
}

fn field<'a>(rec: &'a Value, key: &str) -> &'a Value {
    let Value::Object(f) = rec else { panic!() };
    &f.iter().find(|(k, _)| k == key).expect(key).1
}

fn as_str(v: &Value) -> &str {
    match v {
        Value::Str(s) => s,
        other => panic!("{other:?}"),
    }
}

/// The headline acceptance test: `pfc-hol-blocking` traced end to end
/// yields a loadable Chrome trace with pause episodes as balanced `B`/`E`
/// duration events on port tracks and victim messages as async spans.
#[test]
fn pfc_hol_blocking_exports_pause_episodes_as_durations() {
    let (events, json) = run_traced("pfc-hol-blocking");

    // The scenario's whole point is HoL blocking via PFC.
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, cord_sim::TraceKind::PauseOn { .. })),
        "the pathology must pause"
    );

    let recs = records(&json);
    let mut pause_depth: i64 = 0;
    let mut pause_b = 0u64;
    let (mut msg_b, mut msg_e) = (0u64, 0u64);
    for r in recs {
        let name = as_str(field(r, "name"));
        let ph = as_str(field(r, "ph"));
        match (name, ph) {
            ("pause", "B") => {
                pause_depth += 1;
                pause_b += 1;
            }
            ("pause", "E") => pause_depth -= 1,
            ("msg", "b") => msg_b += 1,
            ("msg", "e") => msg_e += 1,
            _ => {}
        }
        assert!(pause_depth >= 0, "E before B");
    }
    assert!(pause_b > 0, "pause episodes must render as durations");
    assert_eq!(pause_depth, 0, "every pause B needs its E");
    assert!(msg_b > 0, "victim messages must render as async spans");
    assert_eq!(msg_b, msg_e, "every message span must close");

    // Port tracks are named in the metadata so the UI shows "port N",
    // not a bare tid.
    assert!(recs
        .iter()
        .any(|r| { as_str(field(r, "ph")) == "M" && as_str(field(r, "name")) == "thread_name" }));
}

/// Same seed, same spec → byte-identical trace JSON: the exporter adds
/// no nondeterminism on top of the simulator's.
#[test]
fn same_seed_trace_export_is_byte_identical() {
    let (_, a) = run_traced("pfc-hol-blocking");
    let (_, b) = run_traced("pfc-hol-blocking");
    let a = serde_json::to_string_pretty(&a).unwrap();
    let b = serde_json::to_string_pretty(&b).unwrap();
    assert_eq!(a, b);
}

/// Arming the trace must not perturb the simulation: virtual time and
/// all completion accounting match the untraced run exactly.
#[test]
fn tracing_does_not_perturb_the_run() {
    let spec = by_name("pfc-hol-blocking", scale()).unwrap();
    let plain = run_scenario_full(&spec, RunOptions::default()).unwrap();
    let traced = run_scenario_full(
        &spec,
        RunOptions {
            trace_capacity: Some(1 << 20),
        },
    )
    .unwrap();
    assert!(plain.trace.is_none());
    assert_eq!(plain.report.elapsed_ms, traced.report.elapsed_ms);
    assert_eq!(plain.report.total_completed, traced.report.total_completed);
    let a = serde_json::to_string_pretty(&plain.report).unwrap();
    let b = serde_json::to_string_pretty(&traced.report).unwrap();
    assert_eq!(a, b, "the report must not see the observer");
}
