//! Criterion benches for the simulator substrate itself: executor event
//! throughput, NIC datapath rate, and IPoIB stack rate. These guard the
//! harness's own performance (a slow simulator means slow experiments).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use cord_core::prelude::*;
use cord_sim::sync::channel;
use cord_sim::{Sim, SimDuration};

fn bench_executor(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("timer_events_100k", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let s = sim.clone();
            sim.block_on(async move {
                for _ in 0..100_000u32 {
                    s.sleep(SimDuration::from_ns(10)).await;
                }
            });
            black_box(sim.timer_fires())
        })
    });
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("channel_pingpong_100k", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let s = sim.clone();
            let (tx1, rx1) = channel::<u32>();
            let (tx2, rx2) = channel::<u32>();
            sim.block_on(async move {
                let echo = s.spawn(async move {
                    while let Ok(v) = rx1.recv().await {
                        if tx2.try_send(v).is_err() {
                            break;
                        }
                    }
                });
                for i in 0..100_000u32 {
                    tx1.try_send(i).unwrap();
                    rx2.recv().await.unwrap();
                }
                drop(tx1);
                echo.await;
            });
        })
    });
    g.finish();
}

fn bench_nic_datapath(c: &mut Criterion) {
    let mut g = c.benchmark_group("nic");
    g.sample_size(10);
    g.bench_function("rc_send_4k_x1000", |b| {
        b.iter(|| {
            let fabric = Fabric::builder(system_l()).build();
            let ca = fabric.new_context(0, Dataplane::Bypass);
            let cb = fabric.new_context(1, Dataplane::Bypass);
            fabric.block_on(async move {
                let scq = ca.create_cq(2048).await;
                let rcq_a = ca.create_cq(2048).await;
                let scq_b = cb.create_cq(2048).await;
                let rcq = cb.create_cq(2048).await;
                let qa = ca.create_qp(Transport::Rc, &scq, &rcq_a).await;
                let qb = cb.create_qp(Transport::Rc, &scq_b, &rcq).await;
                connect_rc_pair(&qa, &qb).await.unwrap();
                let src = ca.alloc(4096, 1);
                let dst = cb.alloc(4096, 0);
                let mra = ca.reg_mr(src, Access::all()).await;
                let mrb = cb.reg_mr(dst, Access::all()).await;
                for i in 0..1000u64 {
                    qb.post_recv(RecvWqe::new(
                        WrId(i),
                        Sge {
                            addr: dst.addr,
                            len: 4096,
                            lkey: mrb.lkey,
                        },
                    ))
                    .await
                    .unwrap();
                    qa.post_send(SendWqe::send(
                        WrId(i),
                        Sge {
                            addr: src.addr,
                            len: 4096,
                            lkey: mra.lkey,
                        },
                    ))
                    .await
                    .unwrap();
                    black_box(qb.recv_cq().wait_one().await);
                    qa.send_cq().wait_one().await;
                }
            });
        })
    });
    g.finish();
}

fn bench_ipoib(c: &mut Criterion) {
    let mut g = c.benchmark_group("ipoib");
    g.sample_size(10);
    g.bench_function("socket_64k_x100", |b| {
        b.iter(|| {
            let fabric = Fabric::builder(system_l()).with_ipoib().build();
            let c0 = fabric.new_core(0);
            let c1 = fabric.new_core(1);
            let a = fabric.ipoib(0).socket();
            let bsock = fabric.ipoib(1).socket();
            let ba = bsock.addr();
            fabric.block_on(async move {
                let data = vec![7u8; 65536];
                for _ in 0..100 {
                    a.send_to(&c0, ba, &data).await.unwrap();
                    black_box(bsock.recv(&c1).await);
                }
            });
        })
    });
    g.finish();
}

criterion_group!(engine, bench_executor, bench_nic_datapath, bench_ipoib);
criterion_main!(engine);
