//! Microbenchmarks for the simulator-core primitives: spawn/join
//! throughput, timer-wheel sleep churn, cancellation storms, and wake
//! dedup. These isolate executor regressions without running full
//! scenarios (which mix in NIC/network model cost).

use std::future::Future;

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use cord_sim::{Sim, SimDuration};

/// Spawn-and-join a burst of trivial tasks (slab reuse, ready-queue ops).
fn bench_spawn_join(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor");
    const N: u64 = 100_000;
    g.throughput(Throughput::Elements(N));
    g.bench_function("spawn_join_100k", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let s = sim.clone();
            let total = sim.block_on(async move {
                let mut acc = 0u64;
                for i in 0..N {
                    acc += s.spawn(async move { i }).await;
                }
                acc
            });
            black_box(total);
        });
    });
    g.finish();
}

/// One million sequential sleeps: insert + fire + wake + poll per sleep.
fn bench_sleeps(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor");
    const N: u64 = 1_000_000;
    g.throughput(Throughput::Elements(N));
    g.bench_function("sleep_1m_sequential", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let s = sim.clone();
            sim.block_on(async move {
                for _ in 0..N {
                    s.sleep(SimDuration::from_ns(100)).await;
                }
            });
            black_box(sim.timer_fires());
        });
    });
    g.finish();
}

/// 1000 concurrent sleepers × 1000 rounds with staggered deadlines: the
/// wheel under a realistically mixed pending set.
fn bench_concurrent_sleepers(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor");
    const TASKS: u64 = 1_000;
    const ROUNDS: u64 = 1_000;
    g.throughput(Throughput::Elements(TASKS * ROUNDS));
    g.bench_function("sleep_1k_tasks_x_1k", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let s = sim.clone();
            sim.block_on(async move {
                let mut hs = Vec::new();
                for t in 0..TASKS {
                    let s2 = s.clone();
                    hs.push(s.spawn(async move {
                        for _ in 0..ROUNDS {
                            s2.sleep(SimDuration::from_ns(500 + 7 * t)).await;
                        }
                    }));
                }
                for h in hs {
                    h.await;
                }
            });
            black_box(sim.timer_fires());
        });
    });
    g.finish();
}

/// Register sleeps and drop them immediately: O(1) cancel via slot
/// handles, entry recycling, and no tombstone rot in the wheel.
fn bench_cancel_storm(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor");
    const N: u64 = 100_000;
    g.throughput(Throughput::Elements(N));
    g.bench_function("timer_cancel_storm_100k", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let s = sim.clone();
            sim.block_on(async move {
                for i in 0..N {
                    // Poll once to register, then drop (cancel).
                    let mut sl = Box::pin(s.sleep(SimDuration::from_us(1 + (i % 64))));
                    std::future::poll_fn(|cx| {
                        let _ = sl.as_mut().poll(cx);
                        std::task::Poll::Ready(())
                    })
                    .await;
                    drop(sl);
                }
                // The wheel must be empty again: a single short sleep ends
                // the run without wading through stale entries.
                s.sleep(SimDuration::from_ns(1)).await;
            });
            black_box(sim.timer_fires());
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_spawn_join,
    bench_sleeps,
    bench_concurrent_sleepers,
    bench_cancel_storm
);
criterion_main!(benches);
