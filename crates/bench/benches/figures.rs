//! Criterion benches: one group per paper table/figure, running scaled-down
//! versions of each experiment. Criterion measures the *wall-clock* cost of
//! regenerating each result (the simulated values themselves are printed by
//! the `fig*` binaries); these benches both track harness performance and
//! serve as continuously-exercised versions of every experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cord_hw::{system_a, system_l};
use cord_mpi::MpiTransport;
use cord_npb::{run_benchmark, Bench, Class};
use cord_perftest::{run_test, EmuKnobs, TestOp, TestSpec};
use cord_verbs::Dataplane;

fn bench_fig1(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1");
    g.sample_size(10);
    g.bench_function("lat_baseline_4k", |b| {
        b.iter(|| {
            black_box(run_test(
                system_l(),
                TestSpec::new(TestOp::SendLat)
                    .size(4096)
                    .iters(30)
                    .warmup(5),
                1,
            ))
        })
    });
    g.bench_function("lat_no_zero_copy_1m", |b| {
        b.iter(|| {
            black_box(run_test(
                system_l(),
                TestSpec::new(TestOp::SendLat)
                    .size(1 << 20)
                    .iters(20)
                    .warmup(4)
                    .knobs(EmuKnobs::no_zero_copy()),
                1,
            ))
        })
    });
    g.bench_function("bw_no_busy_polling_64k", |b| {
        b.iter(|| {
            black_box(run_test(
                system_l(),
                TestSpec::new(TestOp::SendBw)
                    .size(65536)
                    .iters(120)
                    .knobs(EmuKnobs::no_busy_polling()),
                1,
            ))
        })
    });
    g.finish();
}

fn bench_fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    for (op, label) in [
        (TestOp::ReadLat, "read"),
        (TestOp::WriteLat, "write"),
        (TestOp::SendLat, "send"),
    ] {
        g.bench_function(format!("overhead_{label}_cord_cord"), |b| {
            b.iter(|| {
                black_box(run_test(
                    system_l(),
                    TestSpec::new(op)
                        .size(4096)
                        .iters(30)
                        .warmup(5)
                        .modes(Dataplane::Cord, Dataplane::Cord),
                    1,
                ))
            })
        });
    }
    g.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    for size in [64usize, 4096, 32768] {
        g.bench_function(format!("send_bw_cord_{size}"), |b| {
            b.iter(|| {
                black_box(run_test(
                    system_l(),
                    TestSpec::new(TestOp::SendBw)
                        .size(size)
                        .iters(200)
                        .modes(Dataplane::Cord, Dataplane::Cord),
                    1,
                ))
            })
        });
    }
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.bench_function("system_a_send_lat_overhead", |b| {
        b.iter(|| {
            let base = run_test(
                system_a(),
                TestSpec::new(TestOp::SendLat)
                    .size(4096)
                    .iters(30)
                    .warmup(5),
                5,
            );
            let cord = run_test(
                system_a(),
                TestSpec::new(TestOp::SendLat)
                    .size(4096)
                    .iters(30)
                    .warmup(5)
                    .modes(Dataplane::Cord, Dataplane::Cord),
                5,
            );
            black_box(cord.lat_avg_us - base.lat_avg_us)
        })
    });
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    for (bench, label) in [(Bench::Mg, "mg"), (Bench::Cg, "cg")] {
        g.bench_function(format!("npb_{label}_class_s_cord"), |b| {
            b.iter(|| {
                black_box(run_benchmark(
                    system_a(),
                    bench,
                    Class::S,
                    4,
                    MpiTransport::Verbs(Dataplane::Cord),
                    3,
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(figures, bench_fig1, bench_fig3, bench_fig4, bench_fig5, bench_fig6);
criterion_main!(figures);
