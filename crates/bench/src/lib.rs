//! Shared plumbing for the figure-harness binaries: table rendering, JSON
//! result persistence (under `results/`), the CI perf-regression gate
//! over simbench digests ([`gate`]), and the Chrome/Perfetto trace
//! exporter ([`perfetto`]).

use std::fs;
use std::path::PathBuf;

use serde::Serialize;

pub mod gate;
pub mod perfetto;

/// Pretty-print a table with a header row.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Persist a machine-readable result file under `results/`.
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    let dir = PathBuf::from("results");
    if fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(s) = serde_json::to_string_pretty(value) {
        if fs::write(&path, s).is_ok() {
            println!("[saved {}]", path.display());
        }
    }
}

/// Append one record to a JSON-Lines trajectory file under `results/`.
///
/// Unlike [`save_json`], the file is never overwritten: each full
/// benchmark run appends its rows, so the committed file accumulates the
/// repo's performance history (one line per bench per labelled run).
pub fn append_jsonl<T: Serialize>(name: &str, value: &T) {
    let dir = PathBuf::from("results");
    if fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.jsonl"));
    if let Ok(s) = serde_json::to_string(value) {
        let line = format!("{s}\n");
        match fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| std::io::Write::write_all(&mut f, line.as_bytes()))
        {
            Ok(()) => println!("[appended {}]", path.display()),
            Err(e) => eprintln!("[failed to append {}: {e}]", path.display()),
        }
    }
}

/// Geometric sweep of message sizes `lo..=hi` (powers of two).
pub fn pow2_sizes(lo: usize, hi: usize) -> Vec<usize> {
    let mut v = Vec::new();
    let mut s = lo;
    while s <= hi {
        v.push(s);
        s *= 2;
    }
    v
}

/// Iteration count that keeps total transferred bytes bounded.
pub fn iters_for(size: usize, target_bytes: usize, lo: usize, hi: usize) -> usize {
    (target_bytes / size.max(1)).clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_powers_of_two() {
        assert_eq!(pow2_sizes(16, 128), vec![16, 32, 64, 128]);
    }

    #[test]
    fn iters_clamp() {
        assert_eq!(iters_for(1, 1000, 10, 100), 100);
        assert_eq!(iters_for(10_000, 1000, 10, 100), 10);
    }
}
