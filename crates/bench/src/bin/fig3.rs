//! Figure 3 — latency overhead on system L at 4 KiB for every
//! transport/op combination and every client/server dataplane pairing.
//!
//! Paper shape: RDMA read with server-side CoRD is free; all other ops
//! pay ~equally per CoRD side; everything stays under ~1.25 µs.

use cord_bench::{print_table, save_json};
use cord_hw::system_l;
use cord_perftest::{run_test, TestOp, TestSpec};
use cord_verbs::{Dataplane, Transport};
use rayon::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct Fig3Row {
    mode: String,
    baseline_us: f64,
    bp_to_cord: f64,
    cord_to_bp: f64,
    cord_to_cord: f64,
}

fn main() {
    let combos = [
        (TestOp::ReadLat, Transport::Rc, "Read/RC"),
        (TestOp::WriteLat, Transport::Rc, "Write/RC"),
        (TestOp::SendLat, Transport::Rc, "Send/RC"),
        (TestOp::SendLat, Transport::Ud, "Send/UD"),
    ];
    let results: Vec<Fig3Row> = combos
        .par_iter()
        .map(|&(op, tr, label)| {
            let lat = |c: Dataplane, s: Dataplane| {
                run_test(
                    system_l(),
                    TestSpec::new(op)
                        .transport(tr)
                        .size(4096)
                        .iters(100)
                        .warmup(10)
                        .modes(c, s),
                    1,
                )
                .lat_avg_us
            };
            use Dataplane::{Bypass as BP, Cord as CD};
            let base = lat(BP, BP);
            Fig3Row {
                mode: label.to_string(),
                baseline_us: base,
                bp_to_cord: lat(BP, CD) - base,
                cord_to_bp: lat(CD, BP) - base,
                cord_to_cord: lat(CD, CD) - base,
            }
        })
        .collect();

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.mode.clone(),
                format!("{:.2}", r.baseline_us),
                format!("{:+.2}", r.bp_to_cord),
                format!("{:+.2}", r.cord_to_bp),
                format!("{:+.2}", r.cord_to_cord),
            ]
        })
        .collect();
    print_table(
        "Fig. 3: latency overhead (µs) at 4 KiB, system L",
        &["mode", "baseline", "BP→CoRD", "CoRD→BP", "CoRD→CoRD"],
        &rows,
    );
    println!("\npaper shape: Read BP→CoRD ≈ 0 (server CPU uninvolved); other ops add ~equally per side; max ≤ ~1.25 µs");
    save_json("fig3", &results);
}
