//! `perfgate` — the CI perf-regression gate over simbench digests.
//!
//! ```text
//! cargo run --release --bin simbench -- --quick
//! cargo run --release --bin perfgate
//! ```
//!
//! Compares `results/simbench_digest.txt` (the digest the quick run just
//! produced) against the committed `results/simbench_baseline_digest.txt`:
//! semantic fields (virtual time, completions, goodput, drop/pause/retx
//! counters) must match byte-exactly; `polls`/`timer_fires` may improve
//! freely but fail the gate when they regress more than 10 %.
//!
//! Baseline refresh (one line, after an intentional perf/semantic change):
//!
//! ```text
//! cargo run --release --bin simbench -- --quick && cp results/simbench_digest.txt results/simbench_baseline_digest.txt
//! ```

use cord_bench::gate::check_digests;

const TOLERANCE: f64 = 0.10;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut current = String::from("results/simbench_digest.txt");
    let mut baseline = String::from("results/simbench_baseline_digest.txt");
    while let Some(flag) = args.next() {
        let value = args.next();
        match (flag.as_str(), value) {
            ("--current", Some(v)) => current = v,
            ("--baseline", Some(v)) => baseline = v,
            _ => {
                eprintln!("usage: perfgate [--current <digest>] [--baseline <digest>]");
                std::process::exit(2);
            }
        }
    }
    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("perfgate: cannot read {path}: {e}");
            std::process::exit(2);
        })
    };
    let (base, cur) = (read(&baseline), read(&current));
    match check_digests(&base, &cur, TOLERANCE) {
        Ok(()) => {
            println!(
                "perfgate: OK — semantics byte-exact, perf within +{:.0}% tolerance",
                TOLERANCE * 100.0
            );
            println!("perfgate: {}", cur.trim_end().replace('\n', "\nperfgate: "));
        }
        Err(violations) => {
            eprintln!("perfgate: FAILED ({} violation(s))", violations.len());
            for v in &violations {
                eprintln!("  - {v}");
            }
            eprintln!(
                "refresh after an intentional change:\n  cargo run --release --bin simbench -- --quick && cp {current} {baseline}"
            );
            std::process::exit(1);
        }
    }
}
