//! Figure 6 — relative runtime of the NPB suite on system A over CoRD and
//! IPoIB, normalized to kernel-bypass RDMA.
//!
//! Paper shape: CoRD ≈ 1.0 everywhere (EP and CG slightly below 1 — the
//! DVFS/turbo interaction); IPoIB up to 2× slower, worst on the
//! simultaneously data- and message-intensive IS and SP.

use cord_bench::{print_table, save_json};
use cord_hw::system_a;
use cord_mpi::MpiTransport;
use cord_npb::{run_benchmark, Bench, Class};
use cord_verbs::Dataplane;
use rayon::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct Fig6Row {
    bench: String,
    nranks: usize,
    rdma_us: f64,
    cord_rel: f64,
    ipoib_rel: f64,
    gbit_per_rank: f64,
    msgs_per_rank_s: f64,
}

fn main() {
    let ranks: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(32);
    let class = Class::A;

    let results: Vec<Fig6Row> = Bench::ALL
        .par_iter()
        .map(|&bench| {
            let run = |t| run_benchmark(system_a(), bench, class, ranks, t, 42);
            let rdma = run(MpiTransport::Verbs(Dataplane::Bypass));
            let cord = run(MpiTransport::Verbs(Dataplane::Cord));
            let ipoib = run(MpiTransport::Ipoib);
            Fig6Row {
                bench: bench.label().to_string(),
                nranks: rdma.nranks,
                rdma_us: rdma.runtime_us,
                cord_rel: cord.runtime_us / rdma.runtime_us,
                ipoib_rel: ipoib.runtime_us / rdma.runtime_us,
                gbit_per_rank: rdma.gbit_per_rank,
                msgs_per_rank_s: rdma.msgs_per_rank_s,
            }
        })
        .collect();

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.bench.clone(),
                format!("{}", r.nranks),
                format!("{:.0}", r.rdma_us),
                format!("{:.3}", r.cord_rel),
                format!("{:.3}", r.ipoib_rel),
                format!("{:.2}", r.gbit_per_rank),
                format!("{:.0}", r.msgs_per_rank_s),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Fig. 6: NPB relative runtime, system A, class {} ({} ranks wanted)",
            class.label(),
            ranks
        ),
        &[
            "bench",
            "ranks",
            "RDMA µs",
            "CoRD rel",
            "IPoIB rel",
            "Gb/s/rank",
            "msg/s/rank",
        ],
        &rows,
    );
    println!(
        "\npaper shape: CoRD ≈ 1.0 (EP/CG slightly <1 via DVFS); IPoIB up to 2× (worst: IS, SP)"
    );
    save_json("fig6", &results);
}
