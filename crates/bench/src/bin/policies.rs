//! CoRD policy demonstrations (§3: QoS, security, isolation,
//! observability) and their data-plane costs — the capabilities that
//! justify putting the kernel back on the data path.

use std::rc::Rc;

use cord_bench::{print_table, save_json};
use cord_core::prelude::*;
use cord_perftest::{run_on, TestOp, TestSpec};
use serde::Serialize;

#[derive(Serialize)]
struct PolicyCost {
    chain: String,
    lat_us: f64,
    overhead_vs_no_policy_us: f64,
}

fn lat_with(policies: &str, install: impl Fn(&Kernel)) -> f64 {
    let fabric = Fabric::builder(system_l()).seed(4).build();
    install(fabric.kernel(0));
    install(fabric.kernel(1));
    let spec = TestSpec::new(TestOp::SendLat)
        .size(4096)
        .iters(100)
        .warmup(10)
        .modes(Dataplane::Cord, Dataplane::Cord);
    let m = run_on(&fabric, spec);
    let _ = policies;
    m.lat_avg_us
}

/// A named policy-chain installer.
type Install = Box<dyn Fn(&Kernel)>;

fn main() {
    // --- Policy chain costs ----------------------------------------------
    let base = lat_with("none", |_| {});
    let chains: Vec<(&str, Install)> = vec![
        (
            "observe",
            Box::new(|k: &Kernel| k.add_policy(Rc::new(ObservePolicy::new()))),
        ),
        (
            "security",
            Box::new(|k: &Kernel| {
                k.add_policy(Rc::new(SecurityPolicy::new().max_message(1 << 20)))
            }),
        ),
        (
            "rate-limit(50G,20M/s)",
            Box::new(|k: &Kernel| k.add_policy(Rc::new(RateLimitPolicy::new(50.0, 20e6)))),
        ),
        (
            "quota(1024)",
            Box::new(|k: &Kernel| k.add_policy(Rc::new(QuotaPolicy::new(1024)))),
        ),
        (
            "full chain",
            Box::new(|k: &Kernel| {
                k.add_policy(Rc::new(ObservePolicy::new()));
                k.add_policy(Rc::new(SecurityPolicy::new().max_message(1 << 20)));
                k.add_policy(Rc::new(RateLimitPolicy::new(50.0, 20e6)));
                k.add_policy(Rc::new(QuotaPolicy::new(1024)));
            }),
        ),
    ];
    let mut results = vec![PolicyCost {
        chain: "no policy".into(),
        lat_us: base,
        overhead_vs_no_policy_us: 0.0,
    }];
    for (name, install) in &chains {
        let l = lat_with(name, install);
        results.push(PolicyCost {
            chain: name.to_string(),
            lat_us: l,
            overhead_vs_no_policy_us: l - base,
        });
    }
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.chain.clone(),
                format!("{:.3}", r.lat_us),
                format!("{:+.3}", r.overhead_vs_no_policy_us),
            ]
        })
        .collect();
    print_table(
        "CoRD policy-chain cost (4 KiB CoRD→CoRD send latency, system L)",
        &["chain", "lat µs", "overhead"],
        &rows,
    );

    // --- Rate limiter actually limits -------------------------------------
    {
        let fabric = Fabric::builder(system_l()).seed(4).build();
        fabric
            .kernel(0)
            .add_policy(Rc::new(RateLimitPolicy::new(5.0, 1e9)));
        let m = run_on(
            &fabric,
            TestSpec::new(TestOp::SendBw)
                .size(65536)
                .iters(400)
                .modes(Dataplane::Cord, Dataplane::Bypass),
        );
        println!(
            "\nrate-limit 5 Gbit/s: tenant measured {:.2} Gbit/s (unlimited: ~98) — OS-enforced bandwidth isolation",
            m.bw_gbps
        );
        assert!(m.bw_gbps < 6.0);
    }

    // --- Observability ----------------------------------------------------
    {
        let fabric = Fabric::builder(system_l()).seed(4).build();
        let obs = Rc::new(ObservePolicy::new());
        fabric.kernel(0).add_policy(obs.clone());
        run_on(
            &fabric,
            TestSpec::new(TestOp::SendBw)
                .size(4096)
                .iters(300)
                .modes(Dataplane::Cord, Dataplane::Bypass),
        );
        let all = obs.all();
        println!("\nobservability: per-QP counters the OS collected without app cooperation:");
        for (qpn, s) in all.iter().take(3) {
            println!(
                "  qp{qpn}: posts={} bytes={} completions={} errors={}",
                s.posts, s.bytes_posted, s.completions, s.errors
            );
        }
    }

    save_json("policies", &results);
}
