//! Figure 1 — "Removing" performance-improving techniques (system L).
//!
//! (a) RC send latency at 16 B / 4 KiB / 1 MiB for Baseline, No kernel
//!     bypass (getppid per op), No busy-polling (interrupts), No zero-copy
//!     (extra memcpy per side).
//! (b) Relative send bandwidth across sizes for the same removals.
//!
//! Paper reference values (Fig. 1a): baseline 0.99/1.95/86 µs; no-KB
//! 1.06/1.95/86; no-polling 4.69/4.16/90; no-ZC 1.03/2.31/229.

use cord_bench::{iters_for, pow2_sizes, print_table, save_json};
use cord_hw::system_l;
use cord_perftest::{run_test, EmuKnobs, TestOp, TestSpec};
use rayon::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct Fig1 {
    latency_us: Vec<(String, Vec<f64>)>,
    relative_bw: Vec<(String, Vec<(usize, f64)>)>,
    baseline_small_bw_gbps: f64,
}

fn knob_sets() -> Vec<(&'static str, EmuKnobs)> {
    vec![
        ("Baseline", EmuKnobs::BASELINE),
        ("No kernel bypass", EmuKnobs::no_kernel_bypass()),
        ("No busy-polling", EmuKnobs::no_busy_polling()),
        ("No zero copy (ZC)", EmuKnobs::no_zero_copy()),
    ]
}

fn main() {
    // --- Fig. 1a: latency table -----------------------------------------
    let lat_sizes = [16usize, 4096, 1 << 20];
    let lat: Vec<(String, Vec<f64>)> = knob_sets()
        .par_iter()
        .map(|(name, knobs)| {
            let row: Vec<f64> = lat_sizes
                .iter()
                .map(|&size| {
                    run_test(
                        system_l(),
                        TestSpec::new(TestOp::SendLat)
                            .size(size)
                            .iters(100)
                            .warmup(10)
                            .knobs(*knobs),
                        1,
                    )
                    .lat_avg_us
                })
                .collect();
            (name.to_string(), row)
        })
        .collect();

    let rows: Vec<Vec<String>> = lat
        .iter()
        .map(|(name, vals)| {
            let mut r = vec![name.clone()];
            r.extend(vals.iter().map(|v| format!("{v:.2}")));
            r
        })
        .collect();
    print_table(
        "Fig. 1a: send latency (µs), system L",
        &["variant", "16B", "4KiB", "1MiB"],
        &rows,
    );

    // --- Fig. 1b: relative bandwidth ------------------------------------
    let sizes = pow2_sizes(16, 16 << 20);
    let baselines: Vec<(usize, f64)> = sizes
        .par_iter()
        .map(|&size| {
            let iters = iters_for(size, 256 << 20, 100, 2000);
            let m = run_test(
                system_l(),
                TestSpec::new(TestOp::SendBw).size(size).iters(iters),
                1,
            );
            (size, m.bw_gbps)
        })
        .collect();
    let baseline_small = baselines[0].1;

    let mut rel_series = Vec::new();
    for (name, knobs) in knob_sets().into_iter().skip(1) {
        let series: Vec<(usize, f64)> = sizes
            .par_iter()
            .zip(&baselines)
            .map(|(&size, &(_, base))| {
                let iters = iters_for(size, 256 << 20, 100, 2000);
                let m = run_test(
                    system_l(),
                    TestSpec::new(TestOp::SendBw)
                        .size(size)
                        .iters(iters)
                        .knobs(knobs),
                    1,
                );
                (size, m.bw_gbps / base)
            })
            .collect();
        rel_series.push((name.to_string(), series));
    }

    let rows: Vec<Vec<String>> = sizes
        .iter()
        .enumerate()
        .map(|(i, &size)| {
            let mut r = vec![format!("{size}")];
            r.push(format!("{:.2}", baselines[i].1));
            for (_, s) in &rel_series {
                r.push(format!("{:.3}", s[i].1));
            }
            r
        })
        .collect();
    print_table(
        "Fig. 1b: bandwidth relative to baseline, system L",
        &["size B", "base Gb/s", "no-KB", "no-poll", "no-ZC"],
        &rows,
    );
    println!("\nbaseline small-message bandwidth: {baseline_small:.2} Gbit/s (paper: ~1.4)",);

    save_json(
        "fig1",
        &Fig1 {
            latency_us: lat,
            relative_bw: rel_series,
            baseline_small_bw_gbps: baseline_small,
        },
    );
}
