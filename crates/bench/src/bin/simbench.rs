//! `simbench` — wall-clock benchmarks of the simulator core on fixed
//! loadgen scenarios, persisted as the repo's perf trajectory.
//!
//! ```text
//! cargo run --release --bin simbench            # full suite
//! cargo run --release --bin simbench -- --quick # CI smoke (seconds)
//! cargo run --release --bin simbench -- incast-dcqcn
//! ```
//!
//! Every named benchmark pins its scenario spec completely (nodes,
//! tenants, requests, topology, cc, seed), so two builds of the simulator
//! can be compared run-to-run:
//!
//! * `kv-fanout`   — closed-loop small RPC fan-out on the full mesh; the
//!   message-rate / executor-churn stress.
//! * `incast-dcqcn` — open-loop 32 KiB fan-in on a fat tree with DCQCN,
//!   the timer-heavy case (CNP echo gates, rate-limiter pacing gates,
//!   alpha/recovery timers on every QP).
//! * `shuffle`     — all-to-all 16 KiB exchange, ~960 concurrent QPs; the
//!   task-count / ready-queue stress.
//! * `lossy-retx`  — the incast on a small-buffer tail-dropping fat tree
//!   with RC retransmission armed: the go-back-N window, sequence NAKs,
//!   and tombstone-cancelled retransmit timers on the hot path. Its
//!   digest line additionally pins the drop/replay counters.
//! * `lossy-retx-spray` — the same lossy fan-in under per-packet spray
//!   routing with the selective-repeat receiver: per-packet congestion
//!   snapshots, out-of-order fragment installs, SACK-driven partial
//!   replays. Its digest line pins spray determinism and the SACK
//!   replay economy.
//! * `allreduce-ring` — a fabric-saturating 16-rank × 512 KiB ring
//!   allreduce over `cord-mpi` with DCQCN: the rendezvous RTS/CTS/DATA
//!   hot path. Its digest line pins the collective schedule end to end.
//! * `prefill-decode` — disaggregated serving: open-loop 128 KiB
//!   KV-cache pushes from the prefill half into the decode half of a
//!   fat tree under a 250 µs SLO.
//!
//! Results land in `results/simbench_<name>.json` (`--quick` writes
//! `simbench_quick_<name>.json`, so smoke runs never clobber the
//! committed full-run perf trajectory): wall seconds plus the executor's
//! own counters (polls/s, timer fires/s). Wall-clock fields are
//! nondeterministic by nature, so the virtual-time digest every run must
//! reproduce exactly is written separately to
//! `results/simbench_digest.txt` — CI runs the bench twice and diffs that
//! file byte-for-byte.
//!
//! Two observability side-channels ride along without touching the
//! digest: `results/simbench_attr.txt` attributes every bench's polls
//! and timer fires to the subsystem that caused them (NIC engines,
//! switch ports, CPU billing, other — the executor's [`Subsystem`]
//! tags), and `--trace` arms the packet-lifecycle ring during each bench
//! and exports `results/simbench[_quick]_trace_<bench>.json` in Chrome
//! trace_event form. Tracing observes without perturbing: the digest is
//! byte-identical with and without `--trace`.
//!
//! [`Subsystem`]: cord_sim::Subsystem

use std::fmt::Write as _;
use std::time::Instant;

use cord_bench::perfetto::write_chrome_trace;
use cord_bench::{append_jsonl, print_table, save_json};
use cord_nic::CcAlgorithm;
use cord_sim::Subsystem;
use cord_workload::scenarios::{self, Scale};
use cord_workload::{run_scenario_full, RunOptions, ScenarioSpec};

use serde::Serialize;

/// Ring capacity for `--trace` (same bound as loadgen's).
const TRACE_CAPACITY: usize = 1 << 20;

/// One benchmark = one fully pinned scenario.
struct Bench {
    name: &'static str,
    spec: ScenarioSpec,
}

/// The fixed benchmark suite. `quick` divides request counts by 10 so CI
/// can run the whole suite (twice) in seconds.
fn suite(quick: bool) -> Vec<Bench> {
    let req = |n: usize| if quick { (n / 10).max(1) } else { n };
    let scale = |requests: usize, cc: CcAlgorithm| Scale {
        requests: req(requests),
        cc: Some(cc),
        ..Scale::default()
    };
    vec![
        Bench {
            name: "kv-fanout",
            spec: scenarios::kv_fanout(scale(600, CcAlgorithm::None)),
        },
        Bench {
            name: "incast-dcqcn",
            spec: scenarios::incast(scale(600, CcAlgorithm::Dcqcn)),
        },
        Bench {
            name: "shuffle",
            spec: scenarios::shuffle(scale(300, CcAlgorithm::None)),
        },
        Bench {
            name: "lossy-retx",
            // Half the tenant fan-in of the other benches: a sustained
            // 600-request run at the full 32-tenant overload drives some
            // QPs into (legitimate, deterministic) retry exhaustion;
            // 16 tenants keep the bench lossy but fully recoverable, so
            // the digest pins `completed` at the issued count.
            spec: scenarios::lossy_incast_rc(Scale {
                tenants: 16,
                requests: req(600),
                ..Scale::default()
            }),
        },
        Bench {
            name: "lossy-retx-spray",
            // The same lossy fan-in under congestion-aware per-packet
            // spray and selective repeat: every cross-leaf packet takes a
            // per-packet congestion snapshot and the receiver runs the
            // SACK/out-of-order-install path — the multipath hot path.
            // Its digest line pins both spray determinism (packet-level
            // path choices feed `drops`) and the SACK replay economy
            // (`retx` is the selective-repeat replay count).
            spec: scenarios::spray_incast(Scale {
                tenants: 16,
                requests: req(600),
                ..Scale::default()
            }),
        },
        Bench {
            name: "allreduce-ring",
            // A fabric-saturating ring allreduce (16 ranks × 512 KiB):
            // the rendezvous hot path — every chunk is an RTS/CTS/DATA
            // exchange — plus DCQCN timers on every rank's QPs. Its
            // digest line pins the collective schedule end to end
            // (virtual_ms moves if a single chunk reorders).
            spec: scenarios::allreduce_ring(Scale {
                requests: req(600),
                ..Scale::default()
            }),
        },
        Bench {
            name: "prefill-decode",
            // Disaggregated serving: open-loop 128 KiB KV-cache pushes
            // from the prefill half into the decode half of a fat tree,
            // DCQCN armed, 250 µs SLO. The digest pins completion and
            // goodput; SLO attainment lives in the loadgen scoreboard.
            spec: scenarios::prefill_decode(Scale {
                requests: req(150),
                ..Scale::default()
            }),
        },
    ]
}

#[derive(Serialize)]
struct SimbenchReport {
    /// Trajectory label for this run (`--label`, e.g. "pr4").
    label: String,
    bench: String,
    scenario: String,
    nodes: usize,
    tenants: usize,
    requests_per_tenant: usize,
    topology: String,
    cc: String,
    seed: u64,
    quick: bool,
    /// Wall-clock time of `run_scenario` (nondeterministic; excluded from
    /// the determinism digest).
    wall_seconds: f64,
    virtual_ms: f64,
    polls: u64,
    timer_fires: u64,
    polls_per_sec: f64,
    timer_fires_per_sec: f64,
    completed: u64,
    goodput_gbps: f64,
}

/// What one bench run leaves behind: the perf report, the scenario's
/// fabric counters (digest-only — the JSON stays pure perf data), the
/// per-subsystem attribution line, and the lifecycle trace if armed.
struct BenchRun {
    report: SimbenchReport,
    fabric: Option<cord_workload::FabricCounters>,
    attr: String,
    trace: Option<Vec<cord_sim::TraceEvent>>,
}

fn run_bench(b: &Bench, quick: bool, label: &str, trace: bool) -> BenchRun {
    let opts = RunOptions {
        trace_capacity: trace.then_some(TRACE_CAPACITY),
    };
    let t0 = Instant::now();
    let out = run_scenario_full(&b.spec, opts).unwrap_or_else(|e| panic!("{}: {e}", b.name));
    let wall = t0.elapsed().as_secs_f64();
    let (report, core) = (out.report, out.core);
    let fabric = report.fabric;
    // Attribution: deterministic counts, but deliberately NOT part of the
    // digest — the digest's poll/fire totals are perf-gated (±tolerance),
    // and splitting them there would turn every executor tweak into four
    // baseline refreshes. The side file keeps the breakdown inspectable.
    let mut attr = b.name.to_string();
    for sub in Subsystem::ALL {
        write!(
            attr,
            " polls[{}]={}",
            sub.label(),
            core.sim.polls_by[sub as usize]
        )
        .unwrap();
    }
    for sub in Subsystem::ALL {
        write!(
            attr,
            " fires[{}]={}",
            sub.label(),
            core.sim.timer_fires_by[sub as usize]
        )
        .unwrap();
    }
    let r = SimbenchReport {
        label: label.to_string(),
        bench: b.name.to_string(),
        scenario: report.scenario.clone(),
        nodes: report.nodes,
        tenants: b.spec.tenants.len(),
        requests_per_tenant: b.spec.tenants.first().map_or(0, |t| t.requests),
        topology: report.topology.clone(),
        cc: report.cc.clone(),
        seed: b.spec.seed,
        quick,
        wall_seconds: wall,
        virtual_ms: report.elapsed_ms,
        polls: core.sim.polls,
        timer_fires: core.sim.timer_fires,
        polls_per_sec: core.sim.polls as f64 / wall,
        timer_fires_per_sec: core.sim.timer_fires as f64 / wall,
        completed: report.total_completed,
        goodput_gbps: report.total_goodput_gbps,
    };
    BenchRun {
        report: r,
        fabric,
        attr,
        trace: out.trace,
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: simbench [--quick] [--trace] [--label <name>] [bench ...]\n\
         benches: kv-fanout, incast-dcqcn, shuffle, lossy-retx, lossy-retx-spray,\n\
         \x20        allreduce-ring, prefill-decode"
    );
    std::process::exit(2);
}

fn main() {
    let mut quick = false;
    let mut trace = false;
    let mut label = String::from("dev");
    let mut picked: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--trace" => trace = true,
            "--label" => match args.next() {
                Some(v) if !v.starts_with('-') => label = v,
                _ => usage(),
            },
            s if s.starts_with('-') => usage(),
            s => picked.push(s.to_string()),
        }
    }
    let benches: Vec<Bench> = suite(quick)
        .into_iter()
        .filter(|b| picked.is_empty() || picked.iter().any(|p| p == b.name))
        .collect();
    if benches.is_empty() {
        usage();
    }

    let mut rows = Vec::new();
    let mut digest = String::new();
    let mut attr = String::new();
    for b in &benches {
        let run = run_bench(b, quick, &label, trace);
        let (r, fabric) = (run.report, run.fabric);
        writeln!(attr, "{}", run.attr).unwrap();
        rows.push(vec![
            r.bench.clone(),
            format!("{:.3}", r.wall_seconds),
            format!("{:.3}", r.virtual_ms),
            format!("{}", r.polls),
            format!("{}", r.timer_fires),
            format!("{:.2e}", r.polls_per_sec),
            format!("{:.2e}", r.timer_fires_per_sec),
        ]);
        // Everything in the digest must be bit-reproducible across runs.
        write!(
            digest,
            "{} virtual_ms={} polls={} timer_fires={} completed={} goodput_gbps={}",
            r.bench, r.virtual_ms, r.polls, r.timer_fires, r.completed, r.goodput_gbps
        )
        .unwrap();
        // Fabric benches (PFC / RC retransmission) also pin their
        // loss-recovery counters — these are simulation semantics, so they
        // belong with the byte-exact fields, not the perf ones.
        if let Some(f) = &fabric {
            write!(
                digest,
                " drops={} pauses={} pause_ms={} retx={}",
                f.net_drops, f.net_pauses, f.net_pause_ms, f.retx_replays
            )
            .unwrap();
        }
        writeln!(digest).unwrap();
        // Quick smoke runs write under a different name so they never
        // clobber the committed full-run trajectory files.
        let prefix = if quick { "simbench_quick" } else { "simbench" };
        save_json(&format!("{prefix}_{}", r.bench), &r);
        if let Some(events) = &run.trace {
            let path = format!("results/{prefix}_trace_{}.json", r.bench);
            match write_chrome_trace(std::path::Path::new(&path), events) {
                Ok(()) => println!("[saved {path} — {} trace events]", events.len()),
                Err(e) => eprintln!("{}: trace write failed: {e}", r.bench),
            }
        }
        // Full runs (the committed perf numbers) also accumulate into the
        // append-only trajectory; quick smoke runs never touch it.
        if !quick {
            append_jsonl("simbench_trajectory", &r);
        }
    }
    print_table(
        &format!("simbench{}", if quick { " --quick" } else { "" }),
        &[
            "bench", "wall s", "virt ms", "polls", "fires", "polls/s", "fires/s",
        ],
        &rows,
    );
    if std::fs::create_dir_all("results").is_ok()
        && std::fs::write("results/simbench_digest.txt", &digest).is_ok()
    {
        println!("[saved results/simbench_digest.txt]");
    }
    // The attribution breakdown lives beside the digest, never in it:
    // deterministic and diffable, but not a gate.
    if std::fs::write("results/simbench_attr.txt", &attr).is_ok() {
        println!("[saved results/simbench_attr.txt]");
    }
}
