//! Figure 4 — CoRD throughput relative to bypass on system L, across
//! message sizes (2³…2¹⁸) for Read/RC, Write/RC, Send/RC, Send/UD, with
//! the bypass message-rate overlay.
//!
//! Paper anchors: bypass small-message rate ~12.5 M/s; send at 32 KiB
//! ~370 k msg/s with only 1% degradation; UD capped at the 4 KiB MTU.

use cord_bench::{iters_for, pow2_sizes, print_table, save_json};
use cord_hw::system_l;
use cord_perftest::{run_test, TestOp, TestSpec};
use cord_verbs::{Dataplane, Transport};
use rayon::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct Fig4Point {
    size: usize,
    relative: f64,
    bypass_mrate_mps: f64,
}

#[derive(Serialize)]
struct Fig4Series {
    mode: String,
    points: Vec<Fig4Point>,
}

fn main() {
    let combos = [
        (TestOp::ReadBw, Transport::Rc, "Read/RC"),
        (TestOp::WriteBw, Transport::Rc, "Write/RC"),
        (TestOp::SendBw, Transport::Rc, "Send/RC"),
        (TestOp::SendBw, Transport::Ud, "Send/UD"),
    ];
    let sizes = pow2_sizes(8, 1 << 18);
    let all: Vec<Fig4Series> = combos
        .par_iter()
        .map(|&(op, tr, label)| {
            let points: Vec<Fig4Point> = sizes
                .par_iter()
                .filter(|&&s| tr != Transport::Ud || s <= 4096)
                .map(|&size| {
                    let iters = iters_for(size, 128 << 20, 150, 2500);
                    let run = |c, s2| {
                        run_test(
                            system_l(),
                            TestSpec::new(op)
                                .transport(tr)
                                .size(size)
                                .iters(iters)
                                .modes(c, s2),
                            1,
                        )
                    };
                    use Dataplane::{Bypass as BP, Cord as CD};
                    let bp = run(BP, BP);
                    let cd = run(CD, CD);
                    Fig4Point {
                        size,
                        relative: cd.bw_gbps / bp.bw_gbps,
                        bypass_mrate_mps: bp.mrate_mps,
                    }
                })
                .collect();
            Fig4Series {
                mode: label.to_string(),
                points,
            }
        })
        .collect();

    for series in &all {
        let rows: Vec<Vec<String>> = series
            .points
            .iter()
            .map(|p| {
                vec![
                    format!("{}", p.size),
                    format!("{:.3}", p.relative),
                    format!("{:.3}", p.bypass_mrate_mps),
                ]
            })
            .collect();
        print_table(
            &format!(
                "Fig. 4 [{}]: CoRD relative throughput, system L",
                series.mode
            ),
            &["size B", "rel tput", "bypass Mmsg/s"],
            &rows,
        );
    }

    // Paper anchor callouts for send/RC.
    if let Some(send) = all.iter().find(|s| s.mode == "Send/RC") {
        if let Some(p32k) = send.points.iter().find(|p| p.size == 32768) {
            println!(
                "\nSend/RC @32 KiB: {:.0} k msg/s, degradation {:.1}% (paper: ~370 k, 1%)",
                p32k.bypass_mrate_mps * 1000.0,
                (1.0 - p32k.relative) * 100.0
            );
        }
    }
    save_json("fig4", &all);
}
