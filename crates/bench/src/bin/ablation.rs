//! Ablation studies beyond the paper's figures:
//!
//! 1. **Breaking point** (§6: "a set of real-world benchmark applications
//!    that shows the breaking point of CoRD"): sweep small-message burst
//!    rates and report where CoRD's throughput falls behind bypass by more
//!    than 5 / 25 / 50%.
//! 2. **Crossing-cost sensitivity**: how the Fig. 4 crossover moves as the
//!    user↔kernel crossing gets cheaper (the paper's future work targets a
//!    smaller per-message overhead).
//! 3. **KPTI**: what re-enabling page-table isolation (the §5 mitigation
//!    both testbeds disable) would cost CoRD.

use cord_bench::{iters_for, pow2_sizes, print_table, save_json};
use cord_hw::system_l;
use cord_perftest::{run_test, TestOp, TestSpec};
use cord_verbs::Dataplane;
use rayon::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct Ablation {
    breaking_points: Vec<(f64, Option<usize>)>,
    crossing_sensitivity: Vec<(f64, f64)>,
    kpti_overhead_us: f64,
}

fn main() {
    // --- 1. Breaking point ----------------------------------------------
    let sizes = pow2_sizes(8, 1 << 16);
    let rels: Vec<(usize, f64)> = sizes
        .par_iter()
        .map(|&size| {
            let iters = iters_for(size, 64 << 20, 150, 1500);
            let run = |c, s2| {
                run_test(
                    system_l(),
                    TestSpec::new(TestOp::SendBw)
                        .size(size)
                        .iters(iters)
                        .modes(c, s2),
                    3,
                )
            };
            use Dataplane::{Bypass as BP, Cord as CD};
            (size, run(CD, CD).bw_gbps / run(BP, BP).bw_gbps)
        })
        .collect();
    let rows: Vec<Vec<String>> = rels
        .iter()
        .map(|(s, r)| vec![format!("{s}"), format!("{r:.3}")])
        .collect();
    print_table(
        "Breaking point: CoRD relative send throughput vs size",
        &["size B", "rel"],
        &rows,
    );
    let mut breaking = Vec::new();
    for threshold in [0.95, 0.75, 0.50] {
        // Largest size still degraded below the threshold.
        let bp = rels
            .iter()
            .rev()
            .find(|(_, r)| *r < threshold)
            .map(|(s, _)| *s);
        println!(
            "CoRD loses >{:.0}% below message size: {}",
            (1.0 - threshold) * 100.0,
            bp.map(|s| format!("{s} B"))
                .unwrap_or_else(|| "never".into())
        );
        breaking.push((threshold, bp));
    }

    // --- 2. Crossing-cost sensitivity ------------------------------------
    let mut sensitivity = Vec::new();
    for factor in [1.0, 0.5, 0.25] {
        let mut m = system_l();
        m.cpu.cord_crossing_ns *= factor;
        m.cpu.cord_driver_ns *= factor;
        let size = 512usize;
        let iters = 1500;
        let run = |machine: cord_hw::MachineSpec, c, s2| {
            run_test(
                machine,
                TestSpec::new(TestOp::SendBw)
                    .size(size)
                    .iters(iters)
                    .modes(c, s2),
                3,
            )
        };
        use Dataplane::{Bypass as BP, Cord as CD};
        let rel = run(m.clone(), CD, CD).bw_gbps / run(m, BP, BP).bw_gbps;
        println!("crossing cost ×{factor:*<4}: CoRD relative throughput at 512 B = {rel:.3}");
        sensitivity.push((factor, rel));
    }
    println!("(the paper's future work: 'strive for a smaller per-message overhead')");

    // --- 3. KPTI ----------------------------------------------------------
    let lat = |kpti: bool| {
        let mut m = system_l();
        m.kpti = kpti;
        run_test(
            m,
            TestSpec::new(TestOp::SendLat)
                .size(4096)
                .iters(100)
                .warmup(10)
                .modes(Dataplane::Cord, Dataplane::Cord),
            1,
        )
        .lat_avg_us
    };
    let kpti_delta = lat(true) - lat(false);
    println!(
        "\nKPTI re-enabled: CoRD→CoRD send latency +{kpti_delta:.2} µs \
         (why §5 disables it; CPUs with hardware mitigation don't pay this)"
    );

    save_json(
        "ablation",
        &Ablation {
            breaking_points: breaking,
            crossing_sensitivity: sensitivity,
            kpti_overhead_us: kpti_delta,
        },
    );
}
