//! `loadgen` — run named multi-tenant traffic scenarios on a simulated
//! cluster and persist the per-tenant SLO scoreboard.
//!
//! ```text
//! cargo run --release --bin loadgen -- incast
//! cargo run --release --bin loadgen -- all --nodes 16 --tenants 32
//! cargo run --release --bin loadgen -- mixed --requests 300 --seed 7
//! cargo run --release --bin loadgen -- kv-fanout shuffle --cc dcqcn
//! cargo run --release --bin loadgen -- pfc-hol-blocking --trace trace.json
//! ```
//!
//! One or more scenario names (or `all`) run in order; each persists its
//! scoreboard before the next starts, so a bad name late in the list
//! never discards the results already on disk.
//!
//! `--topology` overrides the scenario's default network shape
//! (`full-mesh`; `fat-tree` = two-tier, radix sized to `--nodes`;
//! `dumbbell` = the shared `scenarios::DUMBBELL` bottleneck); `--cc`
//! selects per-QP congestion control (`none`, `dcqcn` — DCQCN binds to
//! RC tenants; UD traffic is unaffected). `--pfc` forces lossless-fabric
//! pause frames on or off (inert on the full mesh) and `--rc-retx`
//! forces RC go-back-N retransmission, overriding the scenario defaults
//! (`pfc-hol-blocking`/`pause-storm` default PFC on; `lossy-incast-rc`
//! defaults retransmission on). `--routing spray` switches cross-leaf
//! fat-tree traffic to congestion-aware per-packet spray and
//! `--retx-mode sr` selects the selective-repeat receiver it requires
//! (`spray-incast` defaults both on; spray without selective repeat is
//! rejected). `--faults off` strips a chaos scenario's
//! built-in fault schedule (`link-flap-recovery`, `switch-death-reroute`,
//! `straggler-nic`, `pfc-deadlock`, `straggler-allreduce`) for
//! fault-free baseline runs; `--faults on` keeps it (the default). The
//! ML builtins (`allreduce-ring`/`-tree`/`-hd`, `expert-shuffle`,
//! `straggler-allreduce`) size their reduction with `--elems` (f64
//! elements per rank) and report per-collective completion time, NCCL
//! bus bandwidth, and straggler skew alongside the scoreboard;
//! `prefill-decode` models disaggregated-serving KV-cache pushes with a
//! per-request SLO and reports attainment. All knobs are recorded in the
//! results JSON; fabric runs additionally record drop/pause/replay
//! counters and chaos runs the fault detection counters.
//!
//! `--trace <out.json>` arms the packet-lifecycle trace and exports it
//! as Chrome `trace_event` JSON — load the file in `chrome://tracing`
//! or <https://ui.perfetto.dev> to see pause episodes, replay windows,
//! fault windows, and per-message spans on virtual time. With several
//! scenarios the name gains a per-scenario suffix (`out_<scenario>.json`).
//! Tracing observes the run without perturbing it: the scoreboard JSON
//! is byte-identical with and without `--trace`.
//!
//! Results land in `results/loadgen_<scenario>.json`. Runs are
//! deterministic: the same arguments produce byte-identical JSON (and
//! byte-identical traces).

use std::path::{Path, PathBuf};

use cord_bench::perfetto::write_chrome_trace;
use cord_bench::{print_table, save_json};
use cord_net::{Routing, Topology};
use cord_nic::{CcAlgorithm, RetxMode};
use cord_workload::scenarios::{self, Scale};
use cord_workload::{run_scenario_full, RunOptions, ScenarioReport};

/// Ring capacity for `--trace`: big enough that small/medium runs keep
/// every event, bounded so pathological runs can't eat the heap.
const TRACE_CAPACITY: usize = 1 << 20;

fn usage() -> ! {
    eprintln!(
        "usage: loadgen <scenario...|all> [--nodes N] [--tenants T] [--requests R] [--seed S]\n\
         \x20              [--topology full-mesh|fat-tree|dumbbell] [--cc none|dcqcn]\n\
         \x20              [--pfc on|off] [--rc-retx on|off] [--faults on|off]\n\
         \x20              [--routing ecmp|spray] [--retx-mode gbn|sr]\n\
         \x20              [--elems N] [--trace out.json]\n\
         scenarios: {}",
        scenarios::NAMES.join(", ")
    );
    std::process::exit(2);
}

/// `on`/`off` boolean flag values.
fn parse_switch(v: &str) -> bool {
    match v {
        "on" => true,
        "off" => false,
        _ => usage(),
    }
}

/// Resolved once all flags are parsed, so `fat-tree` can size its radix
/// to the final `--nodes` value.
fn parse_topology(v: &str, nodes: usize) -> Topology {
    match v {
        "full-mesh" => Topology::FullMesh,
        "fat-tree" => Topology::fat_tree_for(nodes),
        "dumbbell" => scenarios::DUMBBELL,
        _ => usage(),
    }
}

struct Args {
    names: Vec<String>,
    scale: Scale,
    trace: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1).peekable();
    // Leading positionals: one or more scenario names, or `all`.
    let mut names = Vec::new();
    while let Some(next) = args.peek() {
        if next.starts_with('-') {
            break;
        }
        names.push(args.next().unwrap());
    }
    if names.is_empty() {
        usage();
    }
    let mut scale = Scale::default();
    let mut topology = None;
    let mut trace = None;
    while let Some(flag) = args.next() {
        let Some(value) = args.next() else { usage() };
        let parse = |v: &str| v.parse::<u64>().unwrap_or_else(|_| usage());
        match flag.as_str() {
            "--nodes" => scale.nodes = parse(&value).max(2) as usize,
            "--tenants" => scale.tenants = parse(&value).max(1) as usize,
            "--requests" => scale.requests = parse(&value).max(1) as usize,
            "--seed" => scale.seed = parse(&value),
            "--topology" => topology = Some(value),
            "--cc" => scale.cc = Some(value.parse::<CcAlgorithm>().unwrap_or_else(|_| usage())),
            "--elems" => scale.elems = Some(parse(&value).max(1) as usize),
            "--pfc" => scale.pfc = Some(parse_switch(&value)),
            "--rc-retx" => scale.rc_retx = Some(parse_switch(&value)),
            "--routing" => {
                scale.routing = Some(match value.as_str() {
                    "ecmp" => Routing::Ecmp,
                    "spray" => Routing::Spray,
                    _ => usage(),
                })
            }
            "--retx-mode" => {
                scale.retx_mode = Some(match value.as_str() {
                    "gbn" => RetxMode::Gbn,
                    "sr" => RetxMode::Sr,
                    _ => usage(),
                })
            }
            "--faults" => scale.faults = Some(parse_switch(&value)),
            "--trace" => trace = Some(PathBuf::from(value)),
            _ => usage(),
        }
    }
    scale.topology = topology.map(|t| parse_topology(&t, scale.nodes));
    if names.iter().any(|n| n == "all") {
        names = scenarios::NAMES.iter().map(|s| s.to_string()).collect();
    }
    Args {
        names,
        scale,
        trace,
    }
}

/// Per-scenario trace path: the flag value as-is for a single scenario,
/// `stem_<scenario>.ext` when several scenarios share one run.
fn trace_path(base: &Path, scenario: &str, solo: bool) -> PathBuf {
    if solo {
        return base.to_path_buf();
    }
    let stem = base.file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
    let ext = base.extension().and_then(|s| s.to_str()).unwrap_or("json");
    base.with_file_name(format!("{stem}_{scenario}.{ext}"))
}

fn show(report: &ScenarioReport) {
    let rows: Vec<Vec<String>> = report
        .tenants
        .iter()
        .map(|t| {
            vec![
                t.tenant.clone(),
                format!("{}", t.issued),
                format!("{}", t.completed),
                format!("{}", t.dropped),
                format!("{:.2}", t.p50_us),
                format!("{:.2}", t.p99_us),
                format!("{:.2}", t.p999_us),
                format!("{:.3}", t.goodput_gbps),
            ]
        })
        .collect();
    print_table(
        &format!(
            "{} — {} nodes ({}, cc={}), {} tenants, {} QPs, {:.3} ms virtual",
            report.scenario,
            report.nodes,
            report.topology,
            report.cc,
            report.tenants.len(),
            report.qps_created,
            report.elapsed_ms
        ),
        &[
            "tenant", "issued", "done", "drop", "p50 µs", "p99 µs", "p999 µs", "Gb/s",
        ],
        &rows,
    );
    println!(
        "totals: {} completed, {} policy drops, {:.2} Gbit/s aggregate goodput",
        report.total_completed, report.total_dropped, report.total_goodput_gbps
    );
    for c in &report.collectives {
        println!(
            "collective {} ({}): {} ranks × {} iters, {:.0} KiB/rank — \
             mean {:.1} µs, max {:.1} µs, busbw {:.2} Gbit/s, skew {:.3}",
            c.collective,
            c.op,
            c.ranks,
            c.iters,
            c.bytes_per_rank as f64 / 1024.0,
            c.mean_completion_us,
            c.max_completion_us,
            c.busbw_gbps,
            c.straggler_skew
        );
    }
}

fn main() {
    let args = parse_args();
    let solo = args.names.len() == 1;
    for name in &args.names {
        // Resolve each name only when its turn comes: scenarios earlier
        // in the list have already saved their results by the time a bad
        // name is hit, and those files survive the error exit.
        let Some(spec) = scenarios::by_name(name, args.scale) else {
            eprintln!(
                "unknown scenario: {name}\nvalid scenarios: {}",
                scenarios::NAMES.join(", ")
            );
            std::process::exit(1);
        };
        let opts = RunOptions {
            trace_capacity: args.trace.as_ref().map(|_| TRACE_CAPACITY),
        };
        let out = match run_scenario_full(&spec, opts) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("{name}: {e}");
                std::process::exit(1);
            }
        };
        show(&out.report);
        save_json(&format!("loadgen_{name}"), &out.report);
        if let (Some(base), Some(events)) = (&args.trace, &out.trace) {
            let path = trace_path(base, name, solo);
            match write_chrome_trace(&path, events) {
                Ok(()) => println!(
                    "trace: {} events -> {} (chrome://tracing, ui.perfetto.dev)",
                    events.len(),
                    path.display()
                ),
                Err(e) => {
                    eprintln!("{name}: trace write failed: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
}
