//! `loadgen` — run named multi-tenant traffic scenarios on a simulated
//! cluster and persist the per-tenant SLO scoreboard.
//!
//! ```text
//! cargo run --release --bin loadgen -- incast
//! cargo run --release --bin loadgen -- all --nodes 16 --tenants 32
//! cargo run --release --bin loadgen -- mixed --requests 300 --seed 7
//! cargo run --release --bin loadgen -- dumbbell-incast --cc dcqcn
//! cargo run --release --bin loadgen -- shuffle --topology fat-tree --cc dcqcn
//! ```
//!
//! `--topology` overrides the scenario's default network shape
//! (`full-mesh`; `fat-tree` = two-tier, radix sized to `--nodes`;
//! `dumbbell` = the shared `scenarios::DUMBBELL` bottleneck); `--cc`
//! selects per-QP congestion control (`none`, `dcqcn` — DCQCN binds to
//! RC tenants; UD traffic is unaffected). `--pfc` forces lossless-fabric
//! pause frames on or off (inert on the full mesh) and `--rc-retx`
//! forces RC go-back-N retransmission, overriding the scenario defaults
//! (`pfc-hol-blocking`/`pause-storm` default PFC on; `lossy-incast-rc`
//! defaults retransmission on). `--faults off` strips a chaos scenario's
//! built-in fault schedule (`link-flap-recovery`, `switch-death-reroute`,
//! `straggler-nic`, `pfc-deadlock`) for fault-free baseline runs;
//! `--faults on` keeps it (the default). All knobs are recorded in the
//! results JSON; fabric runs additionally record drop/pause/replay
//! counters and chaos runs the fault detection counters.
//!
//! Results land in `results/loadgen_<scenario>.json`. Runs are
//! deterministic: the same arguments produce byte-identical JSON.

use cord_bench::{print_table, save_json};
use cord_net::Topology;
use cord_nic::CcAlgorithm;
use cord_workload::scenarios::{self, Scale};
use cord_workload::{run_scenario, ScenarioReport};

fn usage() -> ! {
    eprintln!(
        "usage: loadgen <scenario|all> [--nodes N] [--tenants T] [--requests R] [--seed S]\n\
         \x20              [--topology full-mesh|fat-tree|dumbbell] [--cc none|dcqcn]\n\
         \x20              [--pfc on|off] [--rc-retx on|off] [--faults on|off]\n\
         scenarios: {}",
        scenarios::NAMES.join(", ")
    );
    std::process::exit(2);
}

/// `on`/`off` boolean flag values.
fn parse_switch(v: &str) -> bool {
    match v {
        "on" => true,
        "off" => false,
        _ => usage(),
    }
}

/// Resolved once all flags are parsed, so `fat-tree` can size its radix
/// to the final `--nodes` value.
fn parse_topology(v: &str, nodes: usize) -> Topology {
    match v {
        "full-mesh" => Topology::FullMesh,
        "fat-tree" => Topology::fat_tree_for(nodes),
        "dumbbell" => scenarios::DUMBBELL,
        _ => usage(),
    }
}

fn parse_args() -> (Vec<String>, Scale) {
    let mut args = std::env::args().skip(1);
    let Some(which) = args.next() else { usage() };
    if which.starts_with('-') {
        usage();
    }
    let mut scale = Scale::default();
    let mut topology = None;
    while let Some(flag) = args.next() {
        let Some(value) = args.next() else { usage() };
        let parse = |v: &str| v.parse::<u64>().unwrap_or_else(|_| usage());
        match flag.as_str() {
            "--nodes" => scale.nodes = parse(&value).max(2) as usize,
            "--tenants" => scale.tenants = parse(&value).max(1) as usize,
            "--requests" => scale.requests = parse(&value).max(1) as usize,
            "--seed" => scale.seed = parse(&value),
            "--topology" => topology = Some(value),
            "--cc" => scale.cc = value.parse::<CcAlgorithm>().unwrap_or_else(|_| usage()),
            "--pfc" => scale.pfc = Some(parse_switch(&value)),
            "--rc-retx" => scale.rc_retx = Some(parse_switch(&value)),
            "--faults" => scale.faults = Some(parse_switch(&value)),
            _ => usage(),
        }
    }
    scale.topology = topology.map(|t| parse_topology(&t, scale.nodes));
    let names: Vec<String> = if which == "all" {
        scenarios::NAMES.iter().map(|s| s.to_string()).collect()
    } else {
        vec![which]
    };
    (names, scale)
}

fn show(report: &ScenarioReport) {
    let rows: Vec<Vec<String>> = report
        .tenants
        .iter()
        .map(|t| {
            vec![
                t.tenant.clone(),
                format!("{}", t.issued),
                format!("{}", t.completed),
                format!("{}", t.dropped),
                format!("{:.2}", t.p50_us),
                format!("{:.2}", t.p99_us),
                format!("{:.2}", t.p999_us),
                format!("{:.3}", t.goodput_gbps),
            ]
        })
        .collect();
    print_table(
        &format!(
            "{} — {} nodes ({}, cc={}), {} tenants, {} QPs, {:.3} ms virtual",
            report.scenario,
            report.nodes,
            report.topology,
            report.cc,
            report.tenants.len(),
            report.qps_created,
            report.elapsed_ms
        ),
        &[
            "tenant", "issued", "done", "drop", "p50 µs", "p99 µs", "p999 µs", "Gb/s",
        ],
        &rows,
    );
    println!(
        "totals: {} completed, {} policy drops, {:.2} Gbit/s aggregate goodput",
        report.total_completed, report.total_dropped, report.total_goodput_gbps
    );
}

fn main() {
    let (names, scale) = parse_args();
    for name in &names {
        let Some(spec) = scenarios::by_name(name, scale) else {
            eprintln!("unknown scenario: {name}");
            usage();
        };
        let report = match run_scenario(&spec) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{name}: {e}");
                std::process::exit(1);
            }
        };
        show(&report);
        save_json(&format!("loadgen_{name}"), &report);
    }
}
