//! Figure 5 — CoRD on system A (Azure HB120, virtualized CX-6 IB 200G):
//! (a) latency overhead vs message size, with bimodality analysis — the
//!     paper observes two statistical modes (small ≤1 KiB vs large)
//!     because the CoRD prototype lacks inline sends;
//! (b) relative throughput vs size (recovers by ~2¹⁶).

use cord_bench::{iters_for, pow2_sizes, print_table, save_json};
use cord_hw::system_a;
use cord_perftest::{run_test, TestOp, TestSpec};
use cord_sim::stats::split_modes;
use cord_verbs::{Dataplane, Transport};
use rayon::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct Fig5a {
    mode: String,
    points: Vec<(usize, f64)>, // (size, overhead µs)
    low_mode_us: f64,
    high_mode_us: f64,
    bimodal: bool,
}

#[derive(Serialize)]
struct Fig5b {
    mode: String,
    points: Vec<(usize, f64)>, // (size, relative throughput)
}

fn main() {
    let lat_combos = [
        (TestOp::ReadLat, Transport::Rc, "Read/RC"),
        (TestOp::WriteLat, Transport::Rc, "Write/RC"),
        (TestOp::SendLat, Transport::Rc, "Send/RC"),
        (TestOp::SendLat, Transport::Ud, "Send/UD"),
    ];
    // --- Fig. 5a: latency overhead vs size ------------------------------
    let lat_sizes = pow2_sizes(64, 1 << 13);
    let fig5a: Vec<Fig5a> = lat_combos
        .par_iter()
        .map(|&(op, tr, label)| {
            let points: Vec<(usize, f64)> = lat_sizes
                .par_iter()
                .filter(|&&s| tr != Transport::Ud || s <= 4096)
                .map(|&size| {
                    let lat = |c, s2, seed| {
                        run_test(
                            system_a(),
                            TestSpec::new(op)
                                .transport(tr)
                                .size(size)
                                .iters(120)
                                .warmup(12)
                                .modes(c, s2),
                            seed,
                        )
                        .lat_avg_us
                    };
                    use Dataplane::{Bypass as BP, Cord as CD};
                    (size, lat(CD, CD, 5) - lat(BP, BP, 5))
                })
                .collect();
            let samples: Vec<f64> = points.iter().map(|p| p.1).collect();
            let split = split_modes(&samples);
            let (lo, hi, bimodal) = split
                .map(|m| (m.low_mean, m.high_mean, m.is_bimodal()))
                .unwrap_or((0.0, 0.0, false));
            Fig5a {
                mode: label.to_string(),
                points,
                low_mode_us: lo,
                high_mode_us: hi,
                bimodal,
            }
        })
        .collect();

    for s in &fig5a {
        let rows: Vec<Vec<String>> = s
            .points
            .iter()
            .map(|(size, o)| vec![format!("{size}"), format!("{o:+.2}")])
            .collect();
        print_table(
            &format!("Fig. 5a [{}]: CoRD latency overhead (µs), system A", s.mode),
            &["size B", "overhead"],
            &rows,
        );
        println!(
            "   modes: small-message {:.2} µs vs large-message {:.2} µs (bimodal: {})",
            s.high_mode_us, s.low_mode_us, s.bimodal
        );
    }
    println!("\npaper shape: overhead larger and noisier than system L; two modes (≤1 KiB worse: CoRD lacks inline sends)");

    // --- Fig. 5b: relative throughput ------------------------------------
    let bw_sizes = pow2_sizes(1 << 12, 1 << 17);
    let fig5b: Vec<Fig5b> = [
        (TestOp::ReadBw, Transport::Rc, "Read/RC"),
        (TestOp::WriteBw, Transport::Rc, "Write/RC"),
        (TestOp::SendBw, Transport::Rc, "Send/RC"),
    ]
    .par_iter()
    .map(|&(op, tr, label)| {
        let points: Vec<(usize, f64)> = bw_sizes
            .par_iter()
            .map(|&size| {
                let iters = iters_for(size, 128 << 20, 150, 1500);
                let run = |c, s2| {
                    run_test(
                        system_a(),
                        TestSpec::new(op)
                            .transport(tr)
                            .size(size)
                            .iters(iters)
                            .modes(c, s2),
                        9,
                    )
                };
                use Dataplane::{Bypass as BP, Cord as CD};
                (size, run(CD, CD).bw_gbps / run(BP, BP).bw_gbps)
            })
            .collect();
        Fig5b {
            mode: label.to_string(),
            points,
        }
    })
    .collect();

    for s in &fig5b {
        let rows: Vec<Vec<String>> = s
            .points
            .iter()
            .map(|(size, r)| vec![format!("{size}"), format!("{r:.3}")])
            .collect();
        print_table(
            &format!("Fig. 5b [{}]: CoRD relative throughput, system A", s.mode),
            &["size B", "rel tput"],
            &rows,
        );
    }

    save_json("fig5a", &fig5a);
    save_json("fig5b", &fig5b);
}
