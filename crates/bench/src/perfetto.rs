//! Chrome `trace_event` export of the lifecycle trace.
//!
//! Converts a [`TraceEvent`] buffer (see `cord_sim::trace`) into the JSON
//! Trace Event Format that `chrome://tracing` and Perfetto load directly:
//! an object with a `traceEvents` array of `{name, cat, ph, ts, pid, tid}`
//! records, timestamps in microseconds of *virtual* time.
//!
//! Track model:
//!
//! * **pid 0 — "fabric"**: one thread per switch port (pause episodes as
//!   `B`/`E` duration events, queue-depth `C` counters, drop instants),
//!   plus dedicated threads for fault windows, the PFC watchdog, and
//!   full-mesh transmits.
//! * **pid N+1 — "node N"**: one thread per QP. Message lifecycles run as
//!   async `b`/`e` spans (WQE post → CQE) so overlapping messages on one
//!   QP don't have to nest; replay windows are sync `B`/`E` durations;
//!   rate cuts are `C` counters; frags, flushes, denials and retry
//!   exhaustion are instants.
//!
//! The trace buffer is a bounded ring, so a window's opening edge may
//! have been evicted (or the run may end inside a window). The exporter
//! synthesizes the missing edge at the buffer's first/last timestamp —
//! every `B` has its `E`, every `b` its `e`, which the structure test
//! below pins.

use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::Path;

use cord_sim::{TraceEvent, TraceKind};
use serde::{Serialize, Value};

/// Fabric-process (pid 0) thread ids for tracks that are not ports.
/// Port indices are small (well under the fat tree's few hundred), so
/// high tids can't collide.
const MESH_TID: u64 = 800_000;
const WATCHDOG_TID: u64 = 900_000;
const FAULT_TID_BASE: u64 = 1_000_000;

/// The fabric process id; node `n` maps to pid `n + 1`.
const FABRIC_PID: u64 = 0;

fn node_pid(node: u32) -> u64 {
    node as u64 + 1
}

/// One output record under construction: the common fields every
/// trace_event shares, in fixed key order so export is deterministic.
fn record(name: &str, cat: &str, ph: &str, ts: f64, pid: u64, tid: u64) -> Vec<(String, Value)> {
    vec![
        ("name".into(), name.to_value()),
        ("cat".into(), cat.to_value()),
        ("ph".into(), ph.to_value()),
        ("ts".into(), ts.to_value()),
        ("pid".into(), pid.to_value()),
        ("tid".into(), tid.to_value()),
    ]
}

fn with_args(mut rec: Vec<(String, Value)>, args: Vec<(String, Value)>) -> Vec<(String, Value)> {
    rec.push(("args".into(), Value::Object(args)));
    rec
}

/// Async span id: unique per in-flight message.
fn msg_id(node: u32, qpn: u32, wr_id: u64) -> String {
    format!("n{node}.q{qpn}.w{wr_id}")
}

/// Exporter state: open sync/async windows plus the track registry.
#[derive(Default)]
struct Exporter {
    out: Vec<Value>,
    /// Ports currently holding XOFF (open "pause" `B`).
    pause_open: BTreeSet<u32>,
    /// QPs (node, qpn) inside a replay window (open "replay" `B`).
    replay_open: BTreeSet<(u32, u32)>,
    /// Fault indices currently applied (open "fault" `B`).
    fault_open: BTreeSet<u32>,
    /// In-flight async message spans, keyed by id.
    msg_open: BTreeMap<String, (u64, u64)>,
    /// (pid, name) process-name metadata to emit.
    pids: BTreeMap<u64, String>,
    /// (pid, tid, name) thread-name metadata to emit.
    tids: BTreeMap<(u64, u64), String>,
}

impl Exporter {
    fn push(&mut self, rec: Vec<(String, Value)>) {
        self.out.push(Value::Object(rec));
    }

    fn fabric_track(&mut self, tid: u64, name: String) -> (u64, u64) {
        self.pids
            .entry(FABRIC_PID)
            .or_insert_with(|| "fabric".into());
        self.tids.entry((FABRIC_PID, tid)).or_insert(name);
        (FABRIC_PID, tid)
    }

    fn qp_track(&mut self, node: u32, qpn: u32) -> (u64, u64) {
        let pid = node_pid(node);
        self.pids
            .entry(pid)
            .or_insert_with(|| format!("node {node}"));
        self.tids
            .entry((pid, qpn as u64))
            .or_insert_with(|| format!("qp {qpn}"));
        (pid, qpn as u64)
    }

    fn port_track(&mut self, port: u32) -> (u64, u64) {
        self.fabric_track(port as u64, format!("port {port}"))
    }

    fn event(&mut self, e: &TraceEvent, first_ts: f64) {
        let ts = e.at.as_us_f64();
        match e.kind {
            TraceKind::WqeStart {
                node,
                qpn,
                wr_id,
                bytes,
            } => {
                let (pid, tid) = self.qp_track(node, qpn);
                let id = msg_id(node, qpn, wr_id);
                let mut rec = record("msg", "msg", "b", ts, pid, tid);
                rec.push(("id".into(), id.to_value()));
                let rec = with_args(rec, vec![("bytes".into(), bytes.to_value())]);
                self.push(rec);
                self.msg_open.insert(id, (pid, tid));
            }
            TraceKind::CqeDone { node, qpn, wr_id } => {
                let (pid, tid) = self.qp_track(node, qpn);
                let id = msg_id(node, qpn, wr_id);
                if self.msg_open.remove(&id).is_none() {
                    // Opening edge evicted from the ring: synthesize it.
                    let mut b = record("msg", "msg", "b", first_ts, pid, tid);
                    b.push(("id".into(), id.to_value()));
                    self.push(b);
                }
                let mut rec = record("msg", "msg", "e", ts, pid, tid);
                rec.push(("id".into(), id.to_value()));
                self.push(rec);
            }
            TraceKind::FragTx {
                node,
                qpn,
                dst,
                msg_seq,
                frag,
                bytes,
            } => {
                let (pid, tid) = self.qp_track(node, qpn);
                let rec = with_args(
                    record("tx", "frag", "i", ts, pid, tid),
                    vec![
                        ("dst".into(), dst.to_value()),
                        ("seq".into(), msg_seq.to_value()),
                        ("frag".into(), frag.to_value()),
                        ("bytes".into(), bytes.to_value()),
                    ],
                );
                self.push(rec);
            }
            TraceKind::FragRx {
                node,
                qpn,
                src,
                msg_seq,
                frag,
                bytes,
            } => {
                let (pid, tid) = self.qp_track(node, qpn);
                let rec = with_args(
                    record("rx", "frag", "i", ts, pid, tid),
                    vec![
                        ("src".into(), src.to_value()),
                        ("seq".into(), msg_seq.to_value()),
                        ("frag".into(), frag.to_value()),
                        ("bytes".into(), bytes.to_value()),
                    ],
                );
                self.push(rec);
            }
            TraceKind::QpFlush { node, qpn } => {
                let (pid, tid) = self.qp_track(node, qpn);
                // A flush tears down the QP: any open replay window ends.
                if self.replay_open.remove(&(node, qpn)) {
                    self.push(record("replay", "retx", "E", ts, pid, tid));
                }
                self.push(record("flush", "nic", "i", ts, pid, tid));
            }
            TraceKind::PortEnqueue { port, queued_bytes } => {
                let (pid, tid) = self.port_track(port);
                let rec = with_args(
                    record("queued", "port", "C", ts, pid, tid),
                    vec![("bytes".into(), queued_bytes.to_value())],
                );
                self.push(rec);
            }
            TraceKind::PortDrop { port, bytes } => {
                let (pid, tid) = self.port_track(port);
                let rec = with_args(
                    record("drop", "port", "i", ts, pid, tid),
                    vec![("bytes".into(), bytes.to_value())],
                );
                self.push(rec);
            }
            TraceKind::PauseOn { port } => {
                let (pid, tid) = self.port_track(port);
                if self.pause_open.insert(port) {
                    self.push(record("pause", "pfc", "B", ts, pid, tid));
                }
            }
            TraceKind::PauseOff { port } => {
                let (pid, tid) = self.port_track(port);
                if !self.pause_open.remove(&port) {
                    self.push(record("pause", "pfc", "B", first_ts, pid, tid));
                }
                self.push(record("pause", "pfc", "E", ts, pid, tid));
            }
            TraceKind::ReplayStart { node, qpn, msg_seq } => {
                let (pid, tid) = self.qp_track(node, qpn);
                // Several messages can queue for one replay round; the
                // first opens the window, the rest ride inside it.
                if self.replay_open.insert((node, qpn)) {
                    let rec = with_args(
                        record("replay", "retx", "B", ts, pid, tid),
                        vec![("seq".into(), msg_seq.to_value())],
                    );
                    self.push(rec);
                }
            }
            TraceKind::ReplayEnd { node, qpn } => {
                let (pid, tid) = self.qp_track(node, qpn);
                if !self.replay_open.remove(&(node, qpn)) {
                    self.push(record("replay", "retx", "B", first_ts, pid, tid));
                }
                self.push(record("replay", "retx", "E", ts, pid, tid));
            }
            TraceKind::RetxExhausted { node, qpn } => {
                let (pid, tid) = self.qp_track(node, qpn);
                self.push(record("retx-exhausted", "nic", "i", ts, pid, tid));
            }
            TraceKind::RnrExhausted { node, qpn } => {
                let (pid, tid) = self.qp_track(node, qpn);
                self.push(record("rnr-exhausted", "nic", "i", ts, pid, tid));
            }
            TraceKind::RateCut {
                node,
                qpn,
                rate_mbps,
            } => {
                let (pid, tid) = self.qp_track(node, qpn);
                let rec = with_args(
                    record("rate", "cc", "C", ts, pid, tid),
                    vec![("mbps".into(), rate_mbps.to_value())],
                );
                self.push(rec);
            }
            TraceKind::MeshTx { src, dst, bytes } => {
                let (pid, tid) = self.fabric_track(MESH_TID, "mesh".into());
                let rec = with_args(
                    record("mesh-tx", "link", "i", ts, pid, tid),
                    vec![
                        ("src".into(), src.to_value()),
                        ("dst".into(), dst.to_value()),
                        ("bytes".into(), bytes.to_value()),
                    ],
                );
                self.push(rec);
            }
            TraceKind::PolicyDeny { node, qpn } => {
                let (pid, tid) = self.qp_track(node, qpn);
                self.push(record("policy-deny", "policy", "i", ts, pid, tid));
            }
            TraceKind::FaultOn { idx } => {
                let (pid, tid) =
                    self.fabric_track(FAULT_TID_BASE + idx as u64, format!("fault {idx}"));
                if self.fault_open.insert(idx) {
                    self.push(record("fault", "fault", "B", ts, pid, tid));
                }
            }
            TraceKind::FaultOff { idx } => {
                let (pid, tid) =
                    self.fabric_track(FAULT_TID_BASE + idx as u64, format!("fault {idx}"));
                if !self.fault_open.remove(&idx) {
                    self.push(record("fault", "fault", "B", first_ts, pid, tid));
                }
                self.push(record("fault", "fault", "E", ts, pid, tid));
            }
            TraceKind::DeadlockBreak { ports } => {
                let (pid, tid) = self.fabric_track(WATCHDOG_TID, "watchdog".into());
                let rec = with_args(
                    record("deadlock-break", "fault", "i", ts, pid, tid),
                    vec![("ports".into(), ports.to_value())],
                );
                self.push(rec);
            }
        }
    }

    /// Close every window still open at the end of the buffer: one-shot
    /// faults never clear, and the run may simply end mid-episode.
    fn finish(&mut self, last_ts: f64) {
        for port in std::mem::take(&mut self.pause_open) {
            let (pid, tid) = self.port_track(port);
            self.push(record("pause", "pfc", "E", last_ts, pid, tid));
        }
        for (node, qpn) in std::mem::take(&mut self.replay_open) {
            let (pid, tid) = self.qp_track(node, qpn);
            self.push(record("replay", "retx", "E", last_ts, pid, tid));
        }
        for idx in std::mem::take(&mut self.fault_open) {
            let (pid, tid) = self.fabric_track(FAULT_TID_BASE + idx as u64, format!("fault {idx}"));
            self.push(record("fault", "fault", "E", last_ts, pid, tid));
        }
        for (id, (pid, tid)) in std::mem::take(&mut self.msg_open) {
            let mut rec = record("msg", "msg", "e", last_ts, pid, tid);
            rec.push(("id".into(), id.to_value()));
            self.push(rec);
        }
    }

    /// Process/thread-name metadata records, emitted ahead of the events.
    fn metadata(&self) -> Vec<Value> {
        let mut meta = Vec::new();
        for (&pid, name) in &self.pids {
            let rec = with_args(
                record("process_name", "__metadata", "M", 0.0, pid, 0),
                vec![("name".into(), name.to_value())],
            );
            meta.push(Value::Object(rec));
        }
        for (&(pid, tid), name) in &self.tids {
            let rec = with_args(
                record("thread_name", "__metadata", "M", 0.0, pid, tid),
                vec![("name".into(), name.to_value())],
            );
            meta.push(Value::Object(rec));
        }
        meta
    }
}

/// Convert a trace buffer into a Chrome trace_event JSON tree.
///
/// Deterministic: the same buffer always yields the same tree (and the
/// same serialized bytes).
pub fn chrome_trace(events: &[TraceEvent]) -> Value {
    let mut ex = Exporter::default();
    let first_ts = events.first().map_or(0.0, |e| e.at.as_us_f64());
    let last_ts = events.last().map_or(0.0, |e| e.at.as_us_f64());
    for e in events {
        ex.event(e, first_ts);
    }
    // The buffer is emission-ordered and CQE completions are stamped at
    // their (future) DMA instant, so the true end of the window is the
    // maximum timestamp, not the last record's.
    let last_ts = events
        .iter()
        .map(|e| e.at.as_us_f64())
        .fold(last_ts, f64::max);
    ex.finish(last_ts);
    let mut all = ex.metadata();
    all.append(&mut ex.out);
    Value::Object(vec![
        ("traceEvents".into(), Value::Array(all)),
        ("displayTimeUnit".into(), "ms".to_value()),
    ])
}

/// Serialize `events` as Chrome trace_event JSON into `path`.
pub fn write_chrome_trace(path: &Path, events: &[TraceEvent]) -> io::Result<()> {
    let json = serde_json::to_string_pretty(&chrome_trace(events))
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::write(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cord_sim::SimTime;

    fn at(us: u64) -> SimTime {
        SimTime(us * 1_000_000)
    }

    fn ev(us: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent { at: at(us), kind }
    }

    /// Pull `(ph, pid, tid, name)` tuples out of a rendered trace.
    fn phases(v: &Value) -> Vec<(String, u64, u64, String)> {
        let Value::Object(fields) = v else { panic!() };
        let Value::Array(events) = &fields[0].1 else {
            panic!()
        };
        events
            .iter()
            .map(|e| {
                let Value::Object(f) = e else { panic!() };
                let get = |k: &str| {
                    f.iter()
                        .find(|(key, _)| key == k)
                        .map(|(_, v)| v.clone())
                        .unwrap()
                };
                let s = |v: Value| match v {
                    Value::Str(s) => s,
                    other => panic!("{other:?}"),
                };
                let n = |v: Value| match v {
                    Value::UInt(n) => n,
                    other => panic!("{other:?}"),
                };
                (s(get("ph")), n(get("pid")), n(get("tid")), s(get("name")))
            })
            .collect()
    }

    #[test]
    fn every_record_carries_the_required_fields() {
        let events = [
            ev(1, TraceKind::PauseOn { port: 3 }),
            ev(2, TraceKind::PortDrop { port: 3, bytes: 64 }),
            ev(
                3,
                TraceKind::WqeStart {
                    node: 0,
                    qpn: 7,
                    wr_id: 1,
                    bytes: 512,
                },
            ),
            ev(4, TraceKind::PauseOff { port: 3 }),
        ];
        let v = chrome_trace(&events);
        let Value::Object(top) = &v else { panic!() };
        assert_eq!(top[0].0, "traceEvents");
        let Value::Array(out) = &top[0].1 else {
            panic!()
        };
        for e in out {
            let Value::Object(f) = e else { panic!() };
            for key in ["name", "cat", "ph", "ts", "pid", "tid"] {
                assert!(f.iter().any(|(k, _)| k == key), "missing {key}: {f:?}");
            }
        }
    }

    /// The invariant chrome://tracing needs: every `B` is closed by an
    /// `E` on the same track, every async `b` by an `e` — including
    /// windows whose opening edge was evicted or that never closed.
    #[test]
    fn durations_balance_even_with_missing_edges() {
        let events = [
            // PauseOff with no PauseOn in the buffer (evicted).
            ev(5, TraceKind::PauseOff { port: 1 }),
            // PauseOn never released (run ended paused).
            ev(6, TraceKind::PauseOn { port: 2 }),
            // Two ReplayStarts coalesce into one window, closed once.
            ev(
                7,
                TraceKind::ReplayStart {
                    node: 0,
                    qpn: 4,
                    msg_seq: 9,
                },
            ),
            ev(
                8,
                TraceKind::ReplayStart {
                    node: 0,
                    qpn: 4,
                    msg_seq: 10,
                },
            ),
            ev(9, TraceKind::ReplayEnd { node: 0, qpn: 4 }),
            // CqeDone with no WqeStart; WqeStart with no CqeDone.
            ev(
                10,
                TraceKind::CqeDone {
                    node: 1,
                    qpn: 2,
                    wr_id: 77,
                },
            ),
            ev(
                11,
                TraceKind::WqeStart {
                    node: 1,
                    qpn: 2,
                    wr_id: 78,
                    bytes: 64,
                },
            ),
            // One-shot fault: applied, never cleared.
            ev(12, TraceKind::FaultOn { idx: 0 }),
        ];
        let v = chrome_trace(&events);
        let mut sync: BTreeMap<(u64, u64), i64> = BTreeMap::new();
        let (mut b, mut e) = (0i64, 0i64);
        for (ph, pid, tid, _) in phases(&v) {
            match ph.as_str() {
                "B" => *sync.entry((pid, tid)).or_default() += 1,
                "E" => *sync.entry((pid, tid)).or_default() -= 1,
                "b" => b += 1,
                "e" => e += 1,
                _ => {}
            }
        }
        assert!(sync.values().all(|&depth| depth == 0), "{sync:?}");
        assert_eq!(b, e, "async spans must pair");
    }

    #[test]
    fn pause_episode_renders_as_one_duration_on_the_port_track() {
        let events = [
            ev(1, TraceKind::PauseOn { port: 3 }),
            ev(2, TraceKind::PauseOn { port: 3 }), // duplicate assert: coalesced
            ev(9, TraceKind::PauseOff { port: 3 }),
        ];
        let ph = phases(&chrome_trace(&events));
        let pauses: Vec<_> = ph.iter().filter(|(_, _, _, n)| n == "pause").collect();
        assert_eq!(pauses.len(), 2, "{pauses:?}");
        assert_eq!(pauses[0].0, "B");
        assert_eq!(pauses[1].0, "E");
        assert_eq!(pauses[0].2, 3, "pause rides the port's tid");
    }

    #[test]
    fn empty_trace_exports_an_empty_event_array() {
        let v = chrome_trace(&[]);
        let Value::Object(top) = &v else { panic!() };
        assert_eq!(top[0].1, Value::Array(Vec::new()));
    }

    #[test]
    fn export_is_deterministic() {
        let events = [
            ev(1, TraceKind::PauseOn { port: 0 }),
            ev(
                2,
                TraceKind::MeshTx {
                    src: 0,
                    dst: 1,
                    bytes: 4096,
                },
            ),
            ev(3, TraceKind::PauseOff { port: 0 }),
        ];
        let a = serde_json::to_string_pretty(&chrome_trace(&events)).unwrap();
        let b = serde_json::to_string_pretty(&chrome_trace(&events)).unwrap();
        assert_eq!(a, b);
    }
}
