//! The CI perf-regression gate over simbench digests.
//!
//! A digest line looks like
//!
//! ```text
//! incast-dcqcn virtual_ms=5.14 polls=122315 timer_fires=217002 completed=1920 goodput_gbps=97.9
//! ```
//!
//! with optional trailing fabric counters (`drops=… pauses=… …`). Fields
//! split into two classes:
//!
//! * **Semantic fields** (everything except `polls`/`timer_fires`) pin
//!   simulation *semantics* — virtual time, completions, goodput, loss
//!   and pause counters. They are compared **byte-exactly** against the
//!   committed baseline: any difference means results changed, which is
//!   never an acceptable side effect of a perf PR.
//! * **Perf fields** (`polls`, `timer_fires`) measure executor work per
//!   run. They are deterministic for a given build but move when the
//!   implementation changes; the gate allows improvements and up to
//!   `tolerance` (default +10 %) regression before failing.
//!
//! To refresh the baseline after an intentional change:
//!
//! ```text
//! cargo run --release --bin simbench -- --quick && cp results/simbench_digest.txt results/simbench_baseline_digest.txt
//! ```
//!
//! (The committed full-run perf history lives separately in
//! `results/simbench_trajectory.jsonl`; the baseline tracks the same code
//! states at the CI smoke scale.)

/// One parsed digest line.
#[derive(Debug, Clone, PartialEq)]
pub struct DigestLine {
    pub bench: String,
    /// The byte-exact part: every `key=value` token except the perf ones,
    /// joined in original order.
    pub semantic: String,
    pub polls: u64,
    pub timer_fires: u64,
}

/// Parse a digest file into per-bench lines.
pub fn parse_digest(text: &str) -> Result<Vec<DigestLine>, String> {
    let mut out = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let bench = tokens
            .next()
            .ok_or_else(|| format!("line {}: empty", ln + 1))?
            .to_string();
        let (mut polls, mut fires) = (None, None);
        let mut semantic = Vec::new();
        for tok in tokens {
            let (key, value) = tok
                .split_once('=')
                .ok_or_else(|| format!("line {}: malformed token {tok:?}", ln + 1))?;
            let parse = |v: &str| {
                v.parse::<u64>()
                    .map_err(|_| format!("line {}: bad {key} value {v:?}", ln + 1))
            };
            match key {
                "polls" => polls = Some(parse(value)?),
                "timer_fires" => fires = Some(parse(value)?),
                _ => semantic.push(tok),
            }
        }
        out.push(DigestLine {
            semantic: semantic.join(" "),
            polls: polls.ok_or_else(|| format!("line {}: missing polls", ln + 1))?,
            timer_fires: fires.ok_or_else(|| format!("line {}: missing timer_fires", ln + 1))?,
            bench,
        });
    }
    if out.is_empty() {
        return Err("digest is empty".into());
    }
    Ok(out)
}

/// Compare a freshly produced digest against the committed baseline.
/// Returns the list of violations (empty = gate passes). `tolerance` is
/// the fractional perf regression allowed (0.10 = +10 %).
pub fn check_digests(baseline: &str, current: &str, tolerance: f64) -> Result<(), Vec<String>> {
    let parse = |name: &str, text: &str| {
        parse_digest(text).map_err(|e| vec![format!("{name} digest: {e}")])
    };
    let base = parse("baseline", baseline)?;
    let cur = parse("current", current)?;
    let mut violations = Vec::new();
    for b in &base {
        let Some(c) = cur.iter().find(|c| c.bench == b.bench) else {
            violations.push(format!("bench {} missing from current digest", b.bench));
            continue;
        };
        if c.semantic != b.semantic {
            violations.push(format!(
                "{}: semantic fields changed (simulation results drifted)\n  baseline: {}\n  current:  {}",
                b.bench, b.semantic, c.semantic
            ));
        }
        for (what, base_v, cur_v) in [
            ("polls", b.polls, c.polls),
            ("timer_fires", b.timer_fires, c.timer_fires),
        ] {
            let limit = (base_v as f64 * (1.0 + tolerance)).floor() as u64;
            if cur_v > limit {
                violations.push(format!(
                    "{}: {what} regressed {:.1}% ({base_v} -> {cur_v}, limit {limit})",
                    b.bench,
                    (cur_v as f64 / base_v as f64 - 1.0) * 100.0,
                ));
            }
        }
    }
    for c in &cur {
        if !base.iter().any(|b| b.bench == c.bench) {
            violations.push(format!(
                "bench {} not in baseline — refresh it (see module docs)",
                c.bench
            ));
        }
    }
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = "\
kv virtual_ms=0.79 polls=679048 timer_fires=852055 completed=19200 goodput_gbps=137.5
lossy virtual_ms=9.1 polls=100000 timer_fires=200000 completed=4800 goodput_gbps=30.2 drops=35299 pauses=0 pause_ms=0 retx=6488
";

    #[test]
    fn parses_perf_and_semantic_fields() {
        let lines = parse_digest(BASE).unwrap();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].bench, "kv");
        assert_eq!(lines[0].polls, 679048);
        assert_eq!(lines[0].timer_fires, 852055);
        assert_eq!(
            lines[0].semantic,
            "virtual_ms=0.79 completed=19200 goodput_gbps=137.5"
        );
        // Fabric counters are semantic (byte-exact), not perf.
        assert!(lines[1].semantic.contains("drops=35299"));
        assert!(lines[1].semantic.contains("retx=6488"));
    }

    #[test]
    fn identical_digests_pass() {
        assert!(check_digests(BASE, BASE, 0.10).is_ok());
    }

    #[test]
    fn perf_improvements_and_small_regressions_pass() {
        let better = BASE
            .replace("polls=679048", "polls=500000")
            .replace("timer_fires=852055", "timer_fires=900000"); // +5.6%
        assert!(check_digests(BASE, &better, 0.10).is_ok());
    }

    #[test]
    fn injected_twenty_percent_timer_fire_regression_fails() {
        // The acceptance experiment: +20% timer fires must trip the gate.
        let worse = BASE.replace("timer_fires=852055", "timer_fires=1022466");
        let errs = check_digests(BASE, &worse, 0.10).unwrap_err();
        assert_eq!(errs.len(), 1, "{errs:?}");
        assert!(errs[0].contains("timer_fires regressed 20.0%"), "{errs:?}");
    }

    #[test]
    fn semantic_drift_fails_byte_exactly() {
        // A one-ulp goodput change is a semantics failure, not perf.
        let drifted = BASE.replace("goodput_gbps=137.5", "goodput_gbps=137.50001");
        let errs = check_digests(BASE, &drifted, 0.10).unwrap_err();
        assert!(errs[0].contains("semantic fields changed"), "{errs:?}");
        // So is a change in the loss-recovery counters.
        let drifted = BASE.replace("retx=6488", "retx=6500");
        assert!(check_digests(BASE, &drifted, 0.10).is_err());
    }

    #[test]
    fn bench_set_mismatches_fail() {
        let missing = BASE.lines().next().unwrap().to_string() + "\n";
        let errs = check_digests(BASE, &missing, 0.10).unwrap_err();
        assert!(errs[0].contains("missing from current"), "{errs:?}");
        let extra = format!("{BASE}new virtual_ms=1 polls=1 timer_fires=1\n");
        let errs = check_digests(BASE, &extra, 0.10).unwrap_err();
        assert!(errs[0].contains("not in baseline"), "{errs:?}");
    }

    #[test]
    fn malformed_digests_are_rejected() {
        assert!(parse_digest("").is_err());
        assert!(parse_digest("kv virtual_ms=1").is_err(), "missing perf");
        assert!(parse_digest("kv polls=x timer_fires=1").is_err());
    }
}
