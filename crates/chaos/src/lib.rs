//! # cord-chaos: the deterministic fault-injection plane
//!
//! Everything else in the workspace simulates *healthy* hardware; this
//! crate breaks it on purpose. A [`FaultSchedule`] is a typed list of
//! fault events — link flaps, link degradation, spine-switch death,
//! straggler NICs, and the lossless-fabric pathologies (pause storms and
//! cyclic buffer dependencies) — with virtual-time stamps relative to the
//! instant the schedule is installed. [`ChaosPlane::install`] arms the
//! schedule on the sim clock, driving the fault hooks the lower layers
//! expose (`cord-net` admin state and reroutes, `cord-hw` link mutation,
//! `cord-nic` pipeline slowdown).
//!
//! ## Determinism
//!
//! The fault plane is part of the scenario, not an outside perturbation:
//! every event fires at a deterministic virtual instant, the only
//! randomness is an optional per-event jitter drawn from a dedicated
//! `DetRng` stream, and detection counters ([`ChaosStats`]) are plain
//! event counts. Same seed + same schedule ⇒ byte-identical runs; an
//! empty schedule leaves the simulation bit-identical to one with no
//! chaos plane at all (determinism invariant #9, see ARCHITECTURE.md).
//!
//! ## Detection
//!
//! Faults that the stack should *survive* (flaps, spine death, stragglers)
//! are observed through recovery counters — reroutes and frames lost to
//! dead hardware. Faults that wedge a lossless fabric (a cyclic buffer
//! dependency holding pause forever) are caught by a SONiC-style PFC
//! no-progress watchdog: ports continuously paused past the threshold are
//! counted as detected deadlocks and forcibly released so the run always
//! terminates with evidence instead of hanging.

pub mod plane;
pub mod schedule;

pub use plane::{ChaosPlane, ChaosStats};
pub use schedule::{FaultEvent, FaultSchedule};
