//! The chaos plane: arms a [`FaultSchedule`] on a running fabric.

use std::cell::Cell;
use std::rc::Rc;

use cord_net::{Network, PortKind};
use cord_nic::{Nic, Packet};
use cord_sim::{DetRng, Sim, SimDuration, SimTime, Trace, TraceKind};

use crate::schedule::{FaultEvent, FaultSchedule};

/// Detection counters exported by the plane, for report JSON and
/// scenario assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosStats {
    /// Fault events actually injected (a flap or degrade counts once, at
    /// its onset).
    pub injected: u64,
    /// Events skipped as inapplicable to this fabric (wrong topology,
    /// PFC off, node out of range) — skipping is not an error, so one
    /// schedule can ride a whole scenario matrix.
    pub skipped: u64,
    /// Frames rerouted around dead spines.
    pub reroutes: u64,
    /// Frames lost to dead hardware (dead ports, downed host links,
    /// serializer queues stranded by a switch death).
    pub dead_frames: u64,
    /// PFC deadlocks detected (and broken) by the no-progress watchdog:
    /// ports continuously asserting pause past the schedule's threshold.
    pub pfc_deadlocks: u64,
}

struct PlaneInner {
    sim: Sim,
    net: Rc<Network<Packet>>,
    nics: Vec<Nic>,
    /// The applicable events, in schedule order (skipped ones never make
    /// it here).
    events: Vec<FaultEvent>,
    watchdog: SimDuration,
    injected: Cell<u64>,
    skipped: Cell<u64>,
    deadlocks: Cell<u64>,
    /// Shared trace sink (the cluster's): fault windows land in it.
    trace: Trace,
    /// Virtual instant of the first fault onset, once one fires.
    first_onset: Cell<Option<SimTime>>,
    /// Virtual instant of the latest fault clearance (for one-shot events
    /// like a switch death, the onset — the fabric never heals, recovery
    /// is rerouting around the corpse). A watchdog deadlock break also
    /// counts: that is the instant the fabric can make progress again.
    last_clearance: Cell<Option<SimTime>>,
}

/// A fault schedule armed on the sim clock. Dropping the handle does not
/// disarm the scheduled events; keep it around to read [`ChaosPlane::stats`].
pub struct ChaosPlane {
    inner: Rc<PlaneInner>,
}

impl ChaosPlane {
    /// Arm `schedule` on `sim`, injecting faults into the fabric shared
    /// by `nics`. Event times are relative to the current sim instant;
    /// per-event jitter (if configured) is drawn from `rng`, which must be
    /// a stream dedicated to the chaos plane so fault timing never
    /// perturbs any other component's random sequence.
    ///
    /// Inapplicable events — a [`FaultEvent::SwitchDeath`] on a
    /// spine-less topology, a pause injector with PFC off, a node index
    /// beyond the cluster — are counted as skipped, not errors. When the
    /// fabric is lossless and at least one event applies, a PFC
    /// no-progress watchdog is armed alongside the schedule.
    ///
    /// # Panics
    ///
    /// Panics if `nics` is empty or `schedule.validate` fails.
    pub fn install(sim: &Sim, rng: &DetRng, nics: &[Nic], schedule: &FaultSchedule) -> ChaosPlane {
        assert!(!nics.is_empty(), "chaos plane needs at least one NIC");
        schedule
            .validate(nics.len())
            .expect("invalid fault schedule");
        let net = nics[0].network();
        let spines = net.plan().map_or(0, |p| p.spines());
        let pfc = net.pfc_enabled();

        let mut events = Vec::new();
        let mut skipped = 0u64;
        let mut arm: Vec<(usize, SimDuration, bool)> = Vec::new();
        for e in &schedule.events {
            let applicable = match *e {
                FaultEvent::LinkFlap { node, .. } | FaultEvent::LinkDegrade { node, .. } => {
                    node < nics.len()
                }
                FaultEvent::SwitchDeath { spine, .. } => spine < spines,
                FaultEvent::StragglerNic { node, .. } => node < nics.len(),
                FaultEvent::PauseStorm { .. } => pfc,
                FaultEvent::CyclicBufferDependency { .. } => pfc && spines > 0,
            };
            if !applicable {
                skipped += 1;
                continue;
            }
            // One jitter draw per applicable event, onset and clearance
            // shifted together so windows keep their length.
            let jitter = if schedule.jitter > SimDuration::ZERO {
                SimDuration::from_ps(rng.uniform_range(0, schedule.jitter.as_ps()))
            } else {
                SimDuration::ZERO
            };
            let idx = events.len();
            match *e {
                FaultEvent::LinkFlap { down_at, up_at, .. } => {
                    arm.push((idx, down_at + jitter, true));
                    arm.push((idx, up_at + jitter, false));
                }
                FaultEvent::LinkDegrade { from, until, .. }
                | FaultEvent::StragglerNic { from, until, .. }
                | FaultEvent::PauseStorm { from, until } => {
                    arm.push((idx, from + jitter, true));
                    arm.push((idx, until + jitter, false));
                }
                FaultEvent::SwitchDeath { at, .. } | FaultEvent::CyclicBufferDependency { at } => {
                    arm.push((idx, at + jitter, true));
                }
            }
            events.push(*e);
        }

        let inner = Rc::new(PlaneInner {
            sim: sim.clone(),
            net,
            nics: nics.to_vec(),
            events,
            watchdog: schedule.watchdog,
            injected: Cell::new(0),
            skipped: Cell::new(skipped),
            deadlocks: Cell::new(0),
            trace: nics[0].trace(),
            first_onset: Cell::new(None),
            last_clearance: Cell::new(None),
        });
        let t0 = sim.now();
        for (idx, offset, apply) in arm {
            let inner2 = Rc::clone(&inner);
            let idx = idx as u32;
            sim.schedule_at(t0 + offset, move |_| fire(&inner2, idx, apply));
        }
        if pfc && !inner.events.is_empty() && inner.watchdog > SimDuration::ZERO {
            let inner2 = Rc::clone(&inner);
            sim.schedule_at(t0 + inner.watchdog, move |_| watchdog_tick(&inner2));
        }
        ChaosPlane { inner }
    }

    /// Virtual instant of the first fault onset, if one has fired.
    pub fn first_onset(&self) -> Option<SimTime> {
        self.inner.first_onset.get()
    }

    /// Virtual instant of the latest fault clearance, if one has fired.
    /// One-shot events (switch death, cyclic buffer dependency) clear at
    /// their onset; a watchdog deadlock break also registers here.
    pub fn last_clearance(&self) -> Option<SimTime> {
        self.inner.last_clearance.get()
    }

    /// Detection counters so far (monotone over a run).
    pub fn stats(&self) -> ChaosStats {
        ChaosStats {
            injected: self.inner.injected.get(),
            skipped: self.inner.skipped.get(),
            reroutes: self.inner.net.fault_reroutes(),
            dead_frames: self.inner.net.fault_dead_drops(),
            pfc_deadlocks: self.inner.deadlocks.get(),
        }
    }
}

/// Apply (`apply = true`) or clear one armed event.
fn fire(inner: &Rc<PlaneInner>, idx: u32, apply: bool) {
    let now = inner.sim.now();
    let event = inner.events[idx as usize];
    if apply {
        inner.injected.set(inner.injected.get() + 1);
        inner.trace.emit(now, TraceKind::FaultOn { idx });
        if inner.first_onset.get().is_none() {
            inner.first_onset.set(Some(now));
        }
        // One-shot events have no clearing edge: the fabric is permanently
        // altered at onset, so recovery is measured from here.
        if matches!(
            event,
            FaultEvent::SwitchDeath { .. } | FaultEvent::CyclicBufferDependency { .. }
        ) {
            inner.last_clearance.set(Some(now));
        }
    } else {
        inner.trace.emit(now, TraceKind::FaultOff { idx });
        inner.last_clearance.set(Some(now));
    }
    match event {
        FaultEvent::LinkFlap { node, .. } => inner.net.set_host_link_down(node, apply),
        FaultEvent::LinkDegrade {
            node,
            rate_factor,
            extra_latency_ns,
            ..
        } => {
            if apply {
                inner
                    .net
                    .set_host_link_degrade(node, rate_factor, extra_latency_ns);
            } else {
                inner.net.set_host_link_degrade(node, 1.0, 0.0);
            }
        }
        FaultEvent::SwitchDeath { spine, .. } => inner.net.kill_spine(spine),
        FaultEvent::StragglerNic { node, slowdown, .. } => {
            inner.nics[node].set_slowdown(if apply { slowdown } else { 1.0 });
        }
        FaultEvent::PauseStorm { .. } => {
            let plan = inner.net.plan().expect("gated on a switched fabric");
            for host in 0..plan.nodes() {
                inner.net.force_pause(plan.host_down_port(host), apply);
            }
        }
        FaultEvent::CyclicBufferDependency { .. } => {
            // Wedge the pause cycle between leaf 0 and the spines: leaf
            // 0's uplinks and every spine port facing leaf 0 hold XOFF
            // forever. Only the watchdog can break this.
            let plan = inner.net.plan().expect("gated on a fat tree");
            for port in 0..plan.num_ports() {
                let wedge = matches!(
                    plan.port_kind(port),
                    PortKind::LeafUp { leaf: 0, .. } | PortKind::SpineDown { leaf: 0, .. }
                );
                if wedge {
                    inner.net.force_pause(port, true);
                }
            }
        }
    }
}

/// Periodic PFC no-progress scan: break ports continuously paused past
/// the threshold, count each as a detected deadlock, and reschedule.
fn watchdog_tick(inner: &Rc<PlaneInner>) {
    let broken = inner.net.pfc_watchdog_scan(inner.watchdog);
    inner.deadlocks.set(inner.deadlocks.get() + broken);
    if broken > 0 {
        let now = inner.sim.now();
        inner.trace.emit(
            now,
            TraceKind::DeadlockBreak {
                ports: broken as u32,
            },
        );
        // Breaking a wedge is the moment the fabric can move again.
        inner.last_clearance.set(Some(now));
    }
    let at: SimTime = inner.sim.now() + inner.watchdog;
    let inner2 = Rc::clone(inner);
    inner.sim.schedule_at(at, move |_| watchdog_tick(&inner2));
}
