//! Typed fault schedules: what breaks, when, and for how long.

use cord_sim::SimDuration;

/// One fault event. All times are offsets from the instant the schedule
/// is installed (scenario start), in virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// Host `node`'s link goes administratively down at `down_at` and
    /// comes back at `up_at`. Lossy fabrics drop frames touching the dead
    /// link; under PFC the host's egress parks (lossless) until link-up.
    LinkFlap {
        node: usize,
        down_at: SimDuration,
        up_at: SimDuration,
    },
    /// Host `node`'s link runs at `rate_factor` × line rate with
    /// `extra_latency_ns` of added one-way latency over `[from, until)`.
    LinkDegrade {
        node: usize,
        rate_factor: f64,
        extra_latency_ns: f64,
        from: SimDuration,
        until: SimDuration,
    },
    /// Fat-tree spine `spine` dies at `at`: all its ports go dark,
    /// in-flight frames on them are lost, and subsequent cross-leaf paths
    /// reroute deterministically around it. Permanent (switches do not
    /// resurrect mid-scenario).
    SwitchDeath { spine: usize, at: SimDuration },
    /// NIC `node`'s processing pipelines run `slowdown` × slower over
    /// `[from, until)` — wire rates are untouched, only per-WQE and
    /// per-packet processing cost inflates (a misbehaving firmware or
    /// thermally throttled NIC).
    StragglerNic {
        node: usize,
        slowdown: f64,
        from: SimDuration,
        until: SimDuration,
    },
    /// Force pause on every host-facing switch port over `[from, until)`:
    /// the whole lossless fabric freezes behind XOFF and must drain
    /// cleanly (no drops) when the storm lifts. Requires PFC.
    PauseStorm {
        from: SimDuration,
        until: SimDuration,
    },
    /// Wedge leaf 0 and its spine ports in a permanent pause cycle at
    /// `at` — the classic PFC cyclic-buffer-dependency deadlock. Nothing
    /// releases it except the no-progress watchdog, whose detections are
    /// the scenario's assertion target. Requires PFC on a fat tree.
    CyclicBufferDependency { at: SimDuration },
}

/// A deterministic fault schedule: the `faults` half of a scenario spec.
///
/// The default schedule is empty and injects nothing; an empty schedule
/// leaves every simulation result byte-identical to a run with no chaos
/// plane installed.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    /// The fault events, fired in virtual-time order.
    pub events: Vec<FaultEvent>,
    /// Optional uniform jitter added to every event time, drawn once per
    /// event from the plane's dedicated `DetRng` stream. Zero (the
    /// default) fires events exactly at their nominal instants.
    pub jitter: SimDuration,
    /// PFC no-progress watchdog threshold and scan period: a port
    /// continuously asserting pause for this long is a detected deadlock
    /// and is forcibly released.
    pub watchdog: SimDuration,
}

impl Default for FaultSchedule {
    fn default() -> Self {
        FaultSchedule {
            events: Vec::new(),
            jitter: SimDuration::ZERO,
            watchdog: SimDuration::from_us(100),
        }
    }
}

impl FaultSchedule {
    /// An empty schedule (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event (builder style).
    pub fn event(mut self, e: FaultEvent) -> Self {
        self.events.push(e);
        self
    }

    /// Set the per-event jitter (builder style).
    pub fn jitter(mut self, jitter: SimDuration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Set the PFC watchdog threshold (builder style).
    pub fn watchdog(mut self, watchdog: SimDuration) -> Self {
        self.watchdog = watchdog;
        self
    }

    /// Whether the schedule injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Validate against a cluster of `nodes` hosts. Topology-dependent
    /// applicability (a `SwitchDeath` on a dumbbell, a `PauseStorm` with
    /// PFC off) is *not* an error here — the plane counts those events as
    /// skipped at install time instead, so one schedule can ride a whole
    /// scenario matrix.
    pub fn validate(&self, nodes: usize) -> Result<(), String> {
        for (i, e) in self.events.iter().enumerate() {
            let err = |msg: String| Err(format!("fault event {i}: {msg}"));
            match *e {
                FaultEvent::LinkFlap {
                    node,
                    down_at,
                    up_at,
                } => {
                    if node >= nodes {
                        return err(format!("node {node} out of range (nodes = {nodes})"));
                    }
                    if up_at <= down_at {
                        return err("link must come back after it goes down".into());
                    }
                }
                FaultEvent::LinkDegrade {
                    node,
                    rate_factor,
                    extra_latency_ns,
                    from,
                    until,
                } => {
                    if node >= nodes {
                        return err(format!("node {node} out of range (nodes = {nodes})"));
                    }
                    if !(rate_factor > 0.0 && rate_factor.is_finite()) {
                        return err("rate factor must be positive and finite".into());
                    }
                    if !(extra_latency_ns >= 0.0 && extra_latency_ns.is_finite()) {
                        return err("extra latency must be non-negative and finite".into());
                    }
                    if until <= from {
                        return err("degrade window must be non-empty".into());
                    }
                }
                FaultEvent::SwitchDeath { .. } => {}
                FaultEvent::StragglerNic {
                    node,
                    slowdown,
                    from,
                    until,
                } => {
                    if node >= nodes {
                        return err(format!("node {node} out of range (nodes = {nodes})"));
                    }
                    if !(slowdown > 0.0 && slowdown.is_finite()) {
                        return err("slowdown must be positive and finite".into());
                    }
                    if until <= from {
                        return err("straggler window must be non-empty".into());
                    }
                }
                FaultEvent::PauseStorm { from, until } => {
                    if until <= from {
                        return err("storm window must be non-empty".into());
                    }
                }
                FaultEvent::CyclicBufferDependency { .. } => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_catches_bad_events() {
        let ok = FaultSchedule::new().event(FaultEvent::LinkFlap {
            node: 1,
            down_at: SimDuration::from_us(10),
            up_at: SimDuration::from_us(20),
        });
        assert!(ok.validate(4).is_ok());
        assert!(ok.validate(1).is_err(), "node out of range");

        let inverted = FaultSchedule::new().event(FaultEvent::LinkFlap {
            node: 0,
            down_at: SimDuration::from_us(20),
            up_at: SimDuration::from_us(10),
        });
        assert!(inverted.validate(4).is_err());

        let bad_rate = FaultSchedule::new().event(FaultEvent::LinkDegrade {
            node: 0,
            rate_factor: 0.0,
            extra_latency_ns: 0.0,
            from: SimDuration::ZERO,
            until: SimDuration::from_us(1),
        });
        assert!(bad_rate.validate(4).is_err());

        let bad_slow = FaultSchedule::new().event(FaultEvent::StragglerNic {
            node: 0,
            slowdown: f64::INFINITY,
            from: SimDuration::ZERO,
            until: SimDuration::from_us(1),
        });
        assert!(bad_slow.validate(4).is_err());

        assert!(FaultSchedule::new().is_empty());
        assert!(!ok.is_empty());
    }
}
