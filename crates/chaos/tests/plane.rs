//! Chaos-plane behavior against real fabrics: applicability gating,
//! injection timing, and the PFC-deadlock watchdog.

use cord_chaos::{ChaosPlane, FaultEvent, FaultSchedule};
use cord_hw::system_l;
use cord_net::{NetConfig, Topology};
use cord_nic::build_cluster_with;
use cord_sim::{RngFactory, Sim, SimDuration, Trace};

fn cluster(nodes: usize, cfg: NetConfig) -> (Sim, Vec<cord_nic::Nic>) {
    let sim = Sim::new();
    let mut spec = system_l();
    spec.nodes = nodes;
    let nics = build_cluster_with(&sim, &spec, cfg, Trace::disabled());
    (sim, nics)
}

#[test]
fn inapplicable_events_are_skipped_not_fatal() {
    // A full mesh has no spines and no PFC: every switch/pause event in
    // the schedule must be counted as skipped, and nothing may panic.
    let (sim, nics) = cluster(4, NetConfig::default());
    let rng = RngFactory::new(7).stream("chaos");
    let schedule = FaultSchedule::new()
        .event(FaultEvent::SwitchDeath {
            spine: 0,
            at: SimDuration::from_us(5),
        })
        .event(FaultEvent::PauseStorm {
            from: SimDuration::from_us(5),
            until: SimDuration::from_us(10),
        })
        .event(FaultEvent::CyclicBufferDependency {
            at: SimDuration::from_us(5),
        })
        .event(FaultEvent::LinkFlap {
            node: 1,
            down_at: SimDuration::from_us(5),
            up_at: SimDuration::from_us(10),
        });
    let plane = ChaosPlane::install(&sim, &rng, &nics, &schedule);
    sim.block_on({
        let s = sim.clone();
        async move { s.sleep(SimDuration::from_us(20)).await }
    });
    let stats = plane.stats();
    assert_eq!(stats.skipped, 3, "switch death + both pause injectors");
    assert_eq!(stats.injected, 1, "the flap still fires on the mesh");
    assert_eq!(stats.pfc_deadlocks, 0);
}

#[test]
fn events_fire_at_their_scheduled_instants() {
    let (sim, nics) = cluster(4, NetConfig::for_topology(Topology::FatTree { radix: 4 }));
    let rng = RngFactory::new(7).stream("chaos");
    let schedule = FaultSchedule::new()
        .event(FaultEvent::LinkDegrade {
            node: 0,
            rate_factor: 0.5,
            extra_latency_ns: 100.0,
            from: SimDuration::from_us(10),
            until: SimDuration::from_us(30),
        })
        .event(FaultEvent::StragglerNic {
            node: 1,
            slowdown: 8.0,
            from: SimDuration::from_us(20),
            until: SimDuration::from_us(40),
        });
    let plane = ChaosPlane::install(&sim, &rng, &nics, &schedule);
    let sleep_to = |us: u64| {
        sim.block_on({
            let s = sim.clone();
            async move {
                let target = cord_sim::SimTime::ZERO + SimDuration::from_us(us);
                s.sleep_until(target).await;
            }
        })
    };
    assert_eq!(plane.stats().injected, 0, "nothing before t=10µs");
    sleep_to(15);
    assert_eq!(plane.stats().injected, 1, "degrade applied at t=10µs");
    sleep_to(25);
    assert_eq!(plane.stats().injected, 2, "straggler applied at t=20µs");
    sleep_to(50);
    // Clearing events do not re-count: both windows have closed.
    assert_eq!(plane.stats().injected, 2);
    assert_eq!(plane.stats().skipped, 0);
}

#[test]
fn cyclic_buffer_dependency_is_detected_and_broken_by_the_watchdog() {
    let mut cfg = NetConfig::for_topology(Topology::FatTree { radix: 4 });
    cfg.pfc.enabled = true;
    let (sim, nics) = cluster(4, cfg);
    let rng = RngFactory::new(7).stream("chaos");
    let schedule = FaultSchedule::new()
        .event(FaultEvent::CyclicBufferDependency {
            at: SimDuration::from_us(10),
        })
        .watchdog(SimDuration::from_us(50));
    let plane = ChaosPlane::install(&sim, &rng, &nics, &schedule);
    sim.block_on({
        let s = sim.clone();
        async move { s.sleep(SimDuration::from_us(200)).await }
    });
    let stats = plane.stats();
    assert_eq!(stats.injected, 1);
    // Every wedged port (leaf 0's uplinks plus the spine ports facing
    // leaf 0) was continuously paused past the threshold, detected, and
    // forcibly released.
    let net = nics[0].network();
    let spines = net.plan().unwrap().spines();
    assert_eq!(stats.pfc_deadlocks, 2 * spines as u64);
    // Broken means released: no port still holds pause afterwards.
    assert_eq!(net.pfc_watchdog_scan(SimDuration::ZERO), 0);
}
