//! Tenant-scoped policy wrapper.
//!
//! Kernel policies apply to every QP that crosses a node's CoRD driver.
//! In a multi-tenant cluster, per-tenant controls (rate limits, quotas)
//! must bind only to that tenant's QPs — [`ScopedPolicy`] wraps any
//! [`CordPolicy`] and applies it only to registered QP numbers, letting
//! many tenants share one kernel with independent budgets.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;

use cord_kern::{CordPolicy, PolicyCtx, PolicyDecision};
use cord_nic::{Cqe, QpNum, SendWqe};
use cord_sim::SimDuration;

/// A [`CordPolicy`] decorator that applies its inner policy only to QPs
/// explicitly [`attach`](ScopedPolicy::attach)ed to it; everything else
/// passes through untouched.
pub struct ScopedPolicy {
    qpns: RefCell<BTreeSet<u32>>,
    inner: Rc<dyn CordPolicy>,
}

impl ScopedPolicy {
    /// Wrap `inner` with an (initially empty) QP scope.
    pub fn new(inner: Rc<dyn CordPolicy>) -> Rc<ScopedPolicy> {
        Rc::new(ScopedPolicy {
            qpns: RefCell::new(BTreeSet::new()),
            inner,
        })
    }

    /// Bind `qpn` to the wrapped policy.
    pub fn attach(&self, qpn: QpNum) {
        self.qpns.borrow_mut().insert(qpn.0);
    }

    fn in_scope(&self, qpn: QpNum) -> bool {
        self.qpns.borrow().contains(&qpn.0)
    }
}

impl CordPolicy for ScopedPolicy {
    fn name(&self) -> &'static str {
        "scoped"
    }

    fn on_post_send(&self, ctx: &PolicyCtx, wqe: &SendWqe) -> PolicyDecision {
        if self.in_scope(ctx.qpn) {
            self.inner.on_post_send(ctx, wqe)
        } else {
            PolicyDecision::Allow
        }
    }

    fn on_post_recv(&self, ctx: &PolicyCtx) -> PolicyDecision {
        if self.in_scope(ctx.qpn) {
            self.inner.on_post_recv(ctx)
        } else {
            PolicyDecision::Allow
        }
    }

    fn on_completions(&self, ctx: &PolicyCtx, cqes: &[Cqe]) {
        if self.in_scope(ctx.qpn) {
            self.inner.on_completions(ctx, cqes);
        }
    }

    /// The scope check itself is ~free; bill only the wrapped policy.
    fn cost(&self) -> SimDuration {
        self.inner.cost()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cord_kern::QuotaPolicy;
    use cord_nic::{LKey, Sge, WrId};
    use cord_sim::SimTime;

    fn ctx(qpn: u32) -> PolicyCtx {
        PolicyCtx {
            node: 0,
            qpn: QpNum(qpn),
            now: SimTime::ZERO,
        }
    }

    fn wqe() -> SendWqe {
        SendWqe::send(
            WrId(1),
            Sge {
                addr: 0x1_0000,
                len: 8,
                lkey: LKey(1),
            },
        )
    }

    #[test]
    fn out_of_scope_qps_are_untouched() {
        let scoped = ScopedPolicy::new(Rc::new(QuotaPolicy::new(1)));
        scoped.attach(QpNum(5));
        // QP 5 is bound by the quota; QP 6 is not.
        assert_eq!(scoped.on_post_send(&ctx(5), &wqe()), PolicyDecision::Allow);
        assert!(matches!(
            scoped.on_post_send(&ctx(5), &wqe()),
            PolicyDecision::Deny(_)
        ));
        for _ in 0..4 {
            assert_eq!(scoped.on_post_send(&ctx(6), &wqe()), PolicyDecision::Allow);
        }
    }
}
