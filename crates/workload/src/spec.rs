//! Tenant and scenario specifications.
//!
//! A [`ScenarioSpec`] describes one cluster-scale experiment: the fabric
//! (node count, machine preset, seed) plus a set of [`TenantSpec`]s. Each
//! tenant is an independent traffic source with its own arrival process,
//! message-size distributions, transport, dataplane, and optional kernel
//! policies (QoS class, rate limit, outstanding-op quota).

use cord_chaos::FaultSchedule;
use cord_hw::MachineSpec;
use cord_kern::QosClass;
use cord_net::{Routing, Topology};
use cord_nic::{CcAlgorithm, RetxMode, Transport};
use cord_sim::{DetRng, SimDuration};
use cord_verbs::Dataplane;

use crate::collective::CollectiveJob;

/// How a tenant's requests arrive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrival {
    /// Open loop: requests arrive by a Poisson process at `rate_per_s`,
    /// independent of completions (queueing delay counts toward latency).
    Open {
        /// Mean arrival rate, requests per second of virtual time.
        rate_per_s: f64,
    },
    /// Closed loop: each connection keeps one request in flight and thinks
    /// for `think` between a response and the next request.
    Closed {
        /// Pause between a response and the next request.
        think: SimDuration,
    },
}

/// Message-size distribution (bytes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SizeDist {
    /// Every draw is exactly this size.
    Fixed(usize),
    /// Uniform in `[lo, hi]`.
    Uniform {
        /// Inclusive lower bound.
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    },
    /// Lognormal with the underlying normal's location/scale, capped.
    Lognormal {
        /// Location of the underlying normal.
        mu: f64,
        /// Scale of the underlying normal.
        sigma: f64,
        /// Hard upper bound on draws.
        cap: usize,
    },
    /// `large_frac` of draws are `large`, the rest `small` — the classic
    /// RPC mix (tiny control messages, occasional bulk payloads).
    Bimodal {
        /// The common small size.
        small: usize,
        /// The occasional bulk size.
        large: usize,
        /// Fraction of draws that are `large`.
        large_frac: f64,
    },
}

impl SizeDist {
    /// Draw one size; never returns 0.
    pub fn sample(&self, rng: &DetRng) -> usize {
        let v = match *self {
            SizeDist::Fixed(n) => n,
            SizeDist::Uniform { lo, hi } => {
                debug_assert!(hi >= lo);
                rng.uniform_range(lo as u64, hi as u64 + 1) as usize
            }
            SizeDist::Lognormal { mu, sigma, cap } => (rng.lognormal(mu, sigma) as usize).min(cap),
            SizeDist::Bimodal {
                small,
                large,
                large_frac,
            } => {
                if rng.uniform() < large_frac {
                    large
                } else {
                    small
                }
            }
        };
        v.max(1)
    }

    /// Largest size this distribution can produce (buffer sizing).
    pub fn max(&self) -> usize {
        match *self {
            SizeDist::Fixed(n) => n.max(1),
            SizeDist::Uniform { hi, .. } => hi.max(1),
            SizeDist::Lognormal { cap, .. } => cap.max(1),
            SizeDist::Bimodal { small, large, .. } => small.max(large).max(1),
        }
    }
}

/// One tenant: a traffic source with service-level knobs.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Display name (unique within a scenario).
    pub name: String,
    /// Node the tenant's client processes run on.
    pub home: usize,
    /// Nodes hosting this tenant's servers; one connection (QP pair) is
    /// created per server per `conns_per_server`.
    pub servers: Vec<usize>,
    /// Parallel connections to each server node.
    pub conns_per_server: usize,
    /// RC or UD transport for every connection.
    pub transport: Transport,
    /// Which dataplane the tenant's endpoints use. Policies only bind under
    /// [`Dataplane::Cord`] — a Bypass tenant slips past every control.
    pub dataplane: Dataplane,
    /// Open (Poisson) or closed (think-time) arrival process.
    pub arrival: Arrival,
    /// Request payload size distribution.
    pub req_size: SizeDist,
    /// Response payload size distribution.
    pub resp_size: SizeDist,
    /// Total requests the tenant issues (spread round-robin over its
    /// connections).
    pub requests: usize,
    /// Max in-flight requests per connection (open loop only).
    pub window: usize,
    /// Server-side compute per request, ns.
    pub service_ns: f64,
    /// QoS class, enforced by a node-wide `QosPolicy` when any tenant sets
    /// one.
    pub qos: Option<QosClass>,
    /// Per-tenant token-bucket rate limit (Gbit/s), enforced on the home
    /// node's kernel for this tenant's QPs only.
    pub rate_limit_gbps: Option<f64>,
    /// Per-QP outstanding-op quota on the home node.
    pub quota: Option<usize>,
    /// Latency SLO on request sojourn time. `Some(d)` makes the tenant's
    /// report carry `slo_us`/`slo_attained` (the fraction of completed
    /// requests whose arrival-to-response time met the objective); `None`
    /// (the default) keeps every pre-existing report byte-identical.
    pub slo: Option<SimDuration>,
}

impl TenantSpec {
    /// A sane small-RPC tenant; override fields as needed.
    pub fn new(name: impl Into<String>, home: usize, servers: Vec<usize>) -> Self {
        TenantSpec {
            name: name.into(),
            home,
            servers,
            conns_per_server: 1,
            transport: Transport::Rc,
            dataplane: Dataplane::Cord,
            arrival: Arrival::Closed {
                think: SimDuration::ZERO,
            },
            req_size: SizeDist::Fixed(64),
            resp_size: SizeDist::Fixed(256),
            requests: 100,
            window: 8,
            service_ns: 150.0,
            qos: None,
            rate_limit_gbps: None,
            quota: None,
            slo: None,
        }
    }

    /// Number of client connections this tenant opens.
    pub fn connections(&self) -> usize {
        self.servers.len() * self.conns_per_server
    }

    /// Clamp message sizes to one MTU for UD transports and validate node
    /// indices against the fabric size.
    pub fn validate(&self, nodes: usize, mtu: usize) -> Result<(), String> {
        if self.home >= nodes {
            return Err(format!(
                "{}: home node {} out of range",
                self.name, self.home
            ));
        }
        if self.servers.is_empty() {
            return Err(format!("{}: no server nodes", self.name));
        }
        for &s in &self.servers {
            if s >= nodes {
                return Err(format!("{}: server node {s} out of range", self.name));
            }
            if s == self.home {
                return Err(format!("{}: server on home node {s}", self.name));
            }
        }
        if self.transport == Transport::Ud
            && (self.req_size.max() > mtu || self.resp_size.max() > mtu)
        {
            return Err(format!(
                "{}: UD messages must fit one MTU ({mtu} B)",
                self.name
            ));
        }
        if self.requests == 0 || self.window == 0 || self.conns_per_server == 0 {
            return Err(format!(
                "{}: requests/window/conns must be nonzero",
                self.name
            ));
        }
        Ok(())
    }
}

/// A complete cluster-scale experiment.
///
/// ```
/// use cord_workload::{ScenarioSpec, TenantSpec};
/// use cord_hw::system_l;
///
/// let spec = ScenarioSpec::new("demo", system_l(), 4)
///     .seed(7)
///     .tenant(TenantSpec::new("a", 0, vec![1, 2]));
/// spec.validate().unwrap();
/// assert_eq!(spec.total_connections(), 2);
/// ```
pub struct ScenarioSpec {
    /// Display name, echoed as the report's `scenario` field.
    pub name: String,
    /// Machine preset the fabric is cloned from; `nodes` overrides the
    /// preset's node count.
    pub machine: MachineSpec,
    /// Fabric size in nodes.
    pub nodes: usize,
    /// Root seed for every deterministic RNG stream in the run.
    pub seed: u64,
    /// Network shape connecting the nodes (default: ideal full mesh).
    pub topology: Topology,
    /// Routing policy on switched fabrics. [`Routing::Spray`] re-picks
    /// the least-congested spine per packet, reordering fragments by
    /// design — so it demands `rc_retx` with [`RetxMode::Sr`], the only
    /// receiver that installs fragments out of order.
    pub routing: Routing,
    /// Congestion control applied to every tenant QP (client and server
    /// side). `Dcqcn` only bites when the topology has shared queues,
    /// and — like real RoCE NICs — only on RC transport: UD tenants
    /// (e.g. `broadcast`) run unthrottled whatever this is set to.
    pub cc: CcAlgorithm,
    /// Lossless fabric: PFC pause frames on every switch port. Inert on
    /// the full mesh (no switches to pause), like DCQCN on UD.
    pub pfc: bool,
    /// Arm RC retransmission (go-back-N + retransmit timers) on every
    /// tenant RC QP — required for lossy (small-buffer, PFC-off)
    /// scenarios to make forward progress after tail drops.
    pub rc_retx: bool,
    /// Retransmission flavor when `rc_retx` is armed: go-back-N (the
    /// default, replays everything from the loss) or selective repeat
    /// (SACK-driven, replays only the holes; tolerates spray reordering).
    pub retx_mode: RetxMode,
    /// Override the per-port switch buffer (`None`: cord-net's 16 MiB
    /// default, deep enough that windowed workloads never drop).
    pub buffer_bytes: Option<usize>,
    /// Deterministic fault schedule (`cord-chaos`), armed at scenario
    /// start. The default (empty) schedule injects nothing and leaves the
    /// run byte-identical to one without a chaos plane.
    pub faults: FaultSchedule,
    /// Telemetry sampling cadence. `Some(c)` arms deterministic
    /// time-series samplers (per-port queue depth and pause state,
    /// per-QP DCQCN rate, per-tenant in-flight and windowed goodput) on
    /// the sim clock every `c` of virtual time, adding a `telemetry`
    /// block to the report. `None` (the default) samples nothing and
    /// keeps every pre-existing report byte-identical.
    pub telemetry: Option<SimDuration>,
    /// RPC traffic sources.
    pub tenants: Vec<TenantSpec>,
    /// Collective-shaped jobs (MPI worlds) run alongside the tenants.
    /// Empty (the default) keeps every pre-existing report
    /// byte-identical; a scenario may also run collectives alone.
    pub collectives: Vec<CollectiveJob>,
}

impl ScenarioSpec {
    /// A scenario with every knob at its default: full mesh, no CC, no
    /// PFC, no retransmission, no faults, no telemetry, no traffic.
    pub fn new(name: impl Into<String>, machine: MachineSpec, nodes: usize) -> Self {
        ScenarioSpec {
            name: name.into(),
            machine,
            nodes,
            seed: 0xC0BD,
            topology: Topology::FullMesh,
            routing: Routing::Ecmp,
            cc: CcAlgorithm::None,
            pfc: false,
            rc_retx: false,
            retx_mode: RetxMode::Gbn,
            buffer_bytes: None,
            faults: FaultSchedule::default(),
            telemetry: None,
            tenants: Vec::new(),
            collectives: Vec::new(),
        }
    }

    /// Set the root RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the network shape.
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Set the congestion-control algorithm for every QP in the run.
    pub fn cc(mut self, cc: CcAlgorithm) -> Self {
        self.cc = cc;
        self
    }

    /// Enable/disable PFC pause frames on switch ports.
    pub fn pfc(mut self, pfc: bool) -> Self {
        self.pfc = pfc;
        self
    }

    /// Arm RC retransmission on every RC QP.
    pub fn rc_retx(mut self, rc_retx: bool) -> Self {
        self.rc_retx = rc_retx;
        self
    }

    /// Set the routing policy on switched fabrics.
    pub fn routing(mut self, routing: Routing) -> Self {
        self.routing = routing;
        self
    }

    /// Set the retransmission flavor used when `rc_retx` is armed.
    pub fn retx_mode(mut self, mode: RetxMode) -> Self {
        self.retx_mode = mode;
        self
    }

    /// Override the per-port switch buffer.
    pub fn buffer_bytes(mut self, bytes: usize) -> Self {
        self.buffer_bytes = Some(bytes);
        self
    }

    /// Install a deterministic fault schedule.
    pub fn faults(mut self, faults: FaultSchedule) -> Self {
        self.faults = faults;
        self
    }

    /// Arm the deterministic time-series samplers at `cadence`.
    pub fn telemetry(mut self, cadence: SimDuration) -> Self {
        self.telemetry = Some(cadence);
        self
    }

    /// Add one tenant.
    pub fn tenant(mut self, t: TenantSpec) -> Self {
        self.tenants.push(t);
        self
    }

    /// Add one collective job.
    pub fn collective(mut self, job: CollectiveJob) -> Self {
        self.collectives.push(job);
        self
    }

    /// Fail-closed validation of the whole spec: torn knob combinations
    /// (spray without selective repeat, SR without retransmission),
    /// out-of-range node indices, duplicate names, and degenerate shapes
    /// are rejected before any fabric is built.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes < 2 {
            return Err("scenario needs at least 2 nodes".into());
        }
        self.topology
            .validate(self.nodes)
            .map_err(|e| format!("{}: {e}", self.name))?;
        // Spray delivers one flow's fragments over many paths, so the
        // receiver *will* see reordering; only the selective-repeat
        // receiver installs out-of-order fragments, and it only exists
        // when retransmission is armed. Refuse the torn combinations
        // instead of silently livelocking go-back-N.
        if self.retx_mode == RetxMode::Sr && !self.rc_retx {
            return Err(format!("{}: retx_mode sr requires rc_retx", self.name));
        }
        if self.routing == Routing::Spray && (!self.rc_retx || self.retx_mode != RetxMode::Sr) {
            return Err(format!(
                "{}: spray routing reorders packets and requires rc_retx with retx_mode sr",
                self.name
            ));
        }
        if self.tenants.is_empty() && self.collectives.is_empty() {
            return Err("scenario has no tenants or collectives".into());
        }
        if let Some(b) = self.buffer_bytes {
            if b == 0 {
                return Err(format!("{}: buffer_bytes must be nonzero", self.name));
            }
        }
        self.faults
            .validate(self.nodes)
            .map_err(|e| format!("{}: {e}", self.name))?;
        if self.telemetry == Some(SimDuration::ZERO) {
            return Err(format!("{}: telemetry cadence must be nonzero", self.name));
        }
        let mtu = self.machine.nic.mtu;
        let mut names = std::collections::BTreeSet::new();
        for t in &self.tenants {
            t.validate(self.nodes, mtu)?;
            // Names key RNG streams and report rows; duplicates would give
            // tenants correlated draws and indistinguishable scoreboards.
            if !names.insert(t.name.as_str()) {
                return Err(format!("duplicate tenant name: {}", t.name));
            }
        }
        // Collective jobs share the same namespace: their names key RNG
        // streams and report rows just like tenant names do.
        for j in &self.collectives {
            j.validate()?;
            if !names.insert(j.name.as_str()) {
                return Err(format!("duplicate tenant/collective name: {}", j.name));
            }
        }
        Ok(())
    }

    /// Total client connections (QP pairs) across all tenants.
    pub fn total_connections(&self) -> usize {
        self.tenants.iter().map(TenantSpec::connections).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cord_hw::system_l;

    #[test]
    fn size_dists_sample_in_range() {
        let rng = DetRng::from_seed(7);
        for _ in 0..200 {
            assert_eq!(SizeDist::Fixed(64).sample(&rng), 64);
            let u = SizeDist::Uniform { lo: 10, hi: 20 }.sample(&rng);
            assert!((10..=20).contains(&u));
            let b = SizeDist::Bimodal {
                small: 8,
                large: 4096,
                large_frac: 0.5,
            }
            .sample(&rng);
            assert!(b == 8 || b == 4096);
            let l = SizeDist::Lognormal {
                mu: 5.0,
                sigma: 1.0,
                cap: 1000,
            }
            .sample(&rng);
            assert!((1..=1000).contains(&l));
        }
    }

    #[test]
    fn sample_never_returns_zero() {
        let rng = DetRng::from_seed(3);
        assert_eq!(SizeDist::Fixed(0).sample(&rng), 1);
        assert_eq!(SizeDist::Fixed(0).max(), 1);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let spec = ScenarioSpec::new("t", system_l(), 4).tenant(TenantSpec::new("a", 0, vec![9]));
        assert!(spec.validate().is_err(), "server out of range");

        let spec = ScenarioSpec::new("t", system_l(), 4).tenant(TenantSpec::new("a", 0, vec![0]));
        assert!(spec.validate().is_err(), "server on home node");

        let mut ud = TenantSpec::new("a", 0, vec![1]);
        ud.transport = Transport::Ud;
        ud.req_size = SizeDist::Fixed(100_000);
        let spec = ScenarioSpec::new("t", system_l(), 4).tenant(ud);
        assert!(spec.validate().is_err(), "UD over MTU");

        let spec = ScenarioSpec::new("t", system_l(), 4)
            .tenant(TenantSpec::new("a", 0, vec![1]))
            .tenant(TenantSpec::new("a", 1, vec![2]));
        assert!(spec.validate().is_err(), "duplicate tenant name");

        let spec =
            ScenarioSpec::new("t", system_l(), 4).tenant(TenantSpec::new("a", 0, vec![1, 2, 3]));
        assert!(spec.validate().is_ok());
        assert_eq!(spec.total_connections(), 3);
    }

    #[test]
    fn collective_jobs_validate_inside_the_spec() {
        use crate::collective::{CollectiveJob, CollectiveOp};
        use cord_mpi::AllreduceAlgo;
        let op = CollectiveOp::Allreduce {
            algo: AllreduceAlgo::Ring,
            elems: 64,
        };
        // A collective-only scenario is valid — no tenants required.
        let spec =
            ScenarioSpec::new("c", system_l(), 4).collective(CollectiveJob::new("ring", op, 4));
        spec.validate().unwrap();
        // But a scenario with neither tenants nor collectives is not.
        assert!(ScenarioSpec::new("c", system_l(), 4).validate().is_err());
        // Jobs share the tenant namespace.
        let spec = ScenarioSpec::new("c", system_l(), 4)
            .tenant(TenantSpec::new("ring", 0, vec![1]))
            .collective(CollectiveJob::new("ring", op, 4));
        assert!(spec.validate().is_err(), "duplicate name across planes");
        // Degenerate job shapes fail closed.
        let spec =
            ScenarioSpec::new("c", system_l(), 4).collective(CollectiveJob::new("ring", op, 1));
        assert!(spec.validate().is_err(), "1-rank collective");
    }

    #[test]
    fn spray_demands_selective_repeat() {
        let base = || {
            ScenarioSpec::new("t", system_l(), 4)
                .topology(Topology::FatTree { radix: 4 })
                .tenant(TenantSpec::new("a", 0, vec![1]))
        };
        // Spray without any retransmission: go-back-N can't even be armed.
        let spec = base().routing(Routing::Spray);
        assert!(spec.validate().is_err(), "spray without rc_retx");
        // Spray over go-back-N: reordering would masquerade as loss.
        let spec = base().routing(Routing::Spray).rc_retx(true);
        assert!(spec.validate().is_err(), "spray with gbn");
        // Selective repeat without retransmission armed is torn too.
        let spec = base().retx_mode(RetxMode::Sr);
        assert!(spec.validate().is_err(), "sr without rc_retx");
        // The full combination is the supported one.
        let spec = base()
            .routing(Routing::Spray)
            .rc_retx(true)
            .retx_mode(RetxMode::Sr);
        spec.validate().unwrap();
        // Selective repeat under ECMP is fine (no reordering, just SACK).
        let spec = base().rc_retx(true).retx_mode(RetxMode::Sr);
        spec.validate().unwrap();
    }
}
