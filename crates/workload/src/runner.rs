//! Scenario orchestration: build a fabric, install per-tenant policies,
//! wire every connection, run all tenants concurrently, and summarize.

use std::cell::RefCell;
use std::rc::Rc;

use cord_chaos::ChaosPlane;
use cord_core::Fabric;
use cord_kern::{QosPolicy, QuotaPolicy, RateLimitPolicy};
use cord_mpi::{create_world, MpiTransport};
use cord_net::{NetConfig, Topology};
use cord_nic::{CcAlgorithm, RetxConfig, Transport};
use cord_sim::{SimDuration, TraceEvent};

use crate::collective::{drive_rank, CollectiveReport, JobTiming};
use crate::policy::ScopedPolicy;
use crate::rpc::{drive_client, establish, serve, ClientCfg};
use crate::spec::ScenarioSpec;
use crate::stats::{ChaosCounters, FabricCounters, ScenarioReport, TenantReport, TenantStats};
use crate::telemetry::{compute_recovery, Telemetry};

/// QoS guard window / low-priority penalty used when any tenant declares a
/// QoS class (one `QosPolicy` instance per node).
const QOS_GUARD: SimDuration = SimDuration::from_us(10);
const QOS_PENALTY: SimDuration = SimDuration::from_us(2);

/// Simulator-core counters captured after a scenario run, for perf
/// harnesses (`simbench`). Kept out of [`ScenarioReport`] so the loadgen
/// JSON stays byte-stable across simulator-core changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreStats {
    /// Executor counter snapshot (polls, timer fires, alloc/scan
    /// diagnostics).
    pub sim: cord_sim::SimStats,
}

/// Optional instrumentation for one scenario run, beyond what the spec
/// itself asks for. The default runs exactly as before: no trace buffer,
/// nothing extra returned.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunOptions {
    /// Arm the fabric-wide lifecycle trace with this ring capacity
    /// (events). The buffer is returned in [`RunOutput::trace`]; when the
    /// run emits more events than fit, the oldest are evicted.
    pub trace_capacity: Option<usize>,
}

/// Everything a fully instrumented run produces.
pub struct RunOutput {
    /// The per-tenant scoreboard (with telemetry/recovery blocks when the
    /// spec armed them).
    pub report: ScenarioReport,
    /// Executor core counters (perf harnesses).
    pub core: CoreStats,
    /// The lifecycle trace, when [`RunOptions::trace_capacity`] asked for
    /// one, in emission order.
    pub trace: Option<Vec<TraceEvent>>,
}

/// Execute `spec` to completion and return the per-tenant scoreboard.
///
/// Deterministic: the same spec and seed produce identical reports.
pub fn run_scenario(spec: &ScenarioSpec) -> Result<ScenarioReport, String> {
    run_scenario_instrumented(spec).map(|(r, _)| r)
}

/// [`run_scenario`], additionally returning the executor's core counters —
/// the denominator data for events-per-second perf trajectories.
pub fn run_scenario_instrumented(
    spec: &ScenarioSpec,
) -> Result<(ScenarioReport, CoreStats), String> {
    run_scenario_full(spec, RunOptions::default()).map(|o| (o.report, o.core))
}

/// [`run_scenario`] with explicit instrumentation options — the entry
/// point the `loadgen --trace` path uses.
pub fn run_scenario_full(spec: &ScenarioSpec, opts: RunOptions) -> Result<RunOutput, String> {
    spec.validate()?;
    let mut machine = spec.machine.clone();
    machine.nodes = spec.nodes;
    let mut net = NetConfig::for_topology(spec.topology);
    if let Some(bytes) = spec.buffer_bytes {
        net.buffer_bytes = bytes;
    }
    net.routing = spec.routing;
    // PFC pauses switch ports; the full mesh has none, so there the knob
    // is accepted but inert (mirroring DCQCN on UD transports).
    net.pfc.enabled = spec.pfc && spec.topology != Topology::FullMesh;
    let mut builder = Fabric::builder(machine).seed(spec.seed).net(net);
    if let Some(cap) = opts.trace_capacity {
        builder = builder.trace(cap);
    }
    let fabric = builder.build();
    let cc = spec.cc;
    let rc_retx = spec.rc_retx;
    let retx_mode = spec.retx_mode;
    // Guard against accidental busy loops in workload logic.
    fabric.sim().set_max_polls(4_000_000_000);

    // Filled at t0 (traffic launch) so fault times are relative to the
    // traffic, not diluted by the connection-establishment phase.
    let chaos_plane: Rc<RefCell<Option<ChaosPlane>>> = Rc::new(RefCell::new(None));
    // Likewise filled at t0: the samplers measure the traffic, not the
    // establishment phase.
    let telemetry: Rc<RefCell<Option<Telemetry>>> = Rc::new(RefCell::new(None));

    // Node-wide QoS arbitration, when any tenant declares a class.
    let qos: Vec<Rc<QosPolicy>> = if spec.tenants.iter().any(|t| t.qos.is_some()) {
        (0..spec.nodes)
            .map(|n| {
                let p = Rc::new(QosPolicy::new(QOS_GUARD, QOS_PENALTY));
                fabric.kernel(n).add_policy(p.clone());
                p
            })
            .collect()
    } else {
        Vec::new()
    };

    let stats: Vec<Rc<TenantStats>> = spec
        .tenants
        .iter()
        .map(|t| TenantStats::with_slo(t.slo))
        .collect();
    // Collective jobs get one shared stats block per job (fed by every
    // rank) plus per-rank iteration spans for the collective report.
    let coll_stats: Vec<Rc<TenantStats>> = spec
        .collectives
        .iter()
        .map(|_| TenantStats::new())
        .collect();
    let timings: Vec<Rc<JobTiming>> = spec
        .collectives
        .iter()
        .map(|j| JobTiming::new(j.iters, j.ranks))
        .collect();
    // Telemetry and recovery see tenants and collective jobs uniformly,
    // in spec order: tenants first, then jobs.
    let all_stats: Vec<Rc<TenantStats>> = stats.iter().chain(&coll_stats).cloned().collect();

    let f = fabric.clone();
    let tenants = spec.tenants.clone();
    let jobs = spec.collectives.clone();
    let stats2 = stats.clone();
    let all_stats2 = all_stats.clone();
    let coll_stats2 = coll_stats.clone();
    let timings2 = timings.clone();
    let faults = spec.faults.clone();
    let nodes = spec.nodes;
    let chaos_slot = Rc::clone(&chaos_plane);
    let telemetry_slot = Rc::clone(&telemetry);
    let cadence = spec.telemetry;
    let (elapsed, qps_created) = fabric.block_on(async move {
        let rng = f.rng().clone();
        let mut qps_created = 0usize;
        let mut clients = Vec::new();
        // Tenant client QPs whose DCQCN rate the samplers will read.
        let mut dcqcn_qps = Vec::new();

        // Phase 1: establish every connection (server windows preposted),
        // collecting the client drivers to launch together.
        for (ti, t) in tenants.iter().enumerate() {
            // Per-tenant controls, scoped to this tenant's client QPs on
            // its home-node kernel.
            let rate = t.rate_limit_gbps.map(|gbps| {
                // Generous fixed message budget: the tenant knob limits
                // bytes/s, so the byte bucket is the one meant to bind.
                let p = ScopedPolicy::new(Rc::new(RateLimitPolicy::new(gbps, 50e6)));
                f.kernel(t.home).add_policy(p.clone());
                p
            });
            let quota = t.quota.map(|q| {
                let p = ScopedPolicy::new(Rc::new(QuotaPolicy::new(q)));
                f.kernel(t.home).add_policy(p.clone());
                p
            });

            let nconn = t.connections();
            let mut conn_idx = 0usize;
            for &server_node in &t.servers {
                for _ in 0..t.conns_per_server {
                    let conn = establish(&f, t, server_node).await;
                    qps_created += 2;
                    // Scenario-wide congestion control on both endpoints
                    // (the server side is what echoes CNPs).
                    f.nic(t.home).set_cc(conn.client.qp.qpn(), cc).unwrap();
                    f.nic(server_node).set_cc(conn.server.qp.qpn(), cc).unwrap();
                    // RC retransmission is a connection attribute: armed
                    // symmetrically before any traffic (inert on UD).
                    if rc_retx {
                        let retx = Some(RetxConfig {
                            mode: retx_mode,
                            ..RetxConfig::default()
                        });
                        f.nic(t.home)
                            .set_rc_retx(conn.client.qp.qpn(), retx)
                            .unwrap();
                        f.nic(server_node)
                            .set_rc_retx(conn.server.qp.qpn(), retx)
                            .unwrap();
                    }
                    if let Some(p) = &rate {
                        p.attach(conn.client.qp.qpn());
                    }
                    if let Some(p) = &quota {
                        p.attach(conn.client.qp.qpn());
                    }
                    if let Some(class) = t.qos {
                        qos[t.home].classify(conn.client.qp.qpn().0, class);
                        qos[server_node].classify(conn.server.qp.qpn().0, class);
                    }
                    // Like real RoCE NICs, DCQCN state only exists on RC.
                    if cadence.is_some()
                        && cc == CcAlgorithm::Dcqcn
                        && conn.transport == Transport::Rc
                    {
                        dcqcn_qps.push((f.nic(t.home).clone(), conn.client.qp.qpn()));
                    }

                    // Requests are spread round-robin across connections.
                    let nreq = t.requests / nconn + usize::from(conn_idx < t.requests % nconn);
                    let peer = (conn.server.qp.node(), conn.server.qp.qpn());
                    clients.push((
                        conn,
                        peer,
                        ti,
                        nreq,
                        rng.stream_indexed(&format!("wl-client-{}", t.name), conn_idx as u64),
                        rng.stream_indexed(&format!("wl-server-{}", t.name), conn_idx as u64),
                    ));
                    conn_idx += 1;
                }
            }
        }

        // Phase 1b: build one MPI world per collective job. World setup
        // (QP mesh, prepost rings) runs on the establishment clock, so t0
        // still marks pure traffic launch. The scenario's cc/retx knobs
        // are armed symmetrically on every collective QP through the
        // `Comm::endpoints` hook — collective traffic obeys the same
        // fabric discipline as the tenants it contends with.
        let mut worlds = Vec::new();
        for job in &jobs {
            let world = create_world(&f, job.ranks, MpiTransport::Verbs(job.dataplane)).await;
            for comm in &world {
                for (node, qpn) in comm.endpoints() {
                    qps_created += 1;
                    f.nic(node).set_cc(qpn, cc).unwrap();
                    if rc_retx {
                        let retx = Some(RetxConfig {
                            mode: retx_mode,
                            ..RetxConfig::default()
                        });
                        f.nic(node).set_rc_retx(qpn, retx).unwrap();
                    }
                    if cadence.is_some() && cc == CcAlgorithm::Dcqcn {
                        dcqcn_qps.push((f.nic(node).clone(), qpn));
                    }
                }
            }
            worlds.push(world);
        }

        // Phase 2: launch all servers and clients at one instant, so the
        // arrival processes of every tenant overlap from t0.
        let t0 = f.sim().now();
        // Arm the fault schedule at t0: event times count from the
        // instant traffic launches. Skipped when empty so fault-free
        // runs carry no chaos plane (and draw no chaos RNG stream).
        if !faults.is_empty() {
            let nics: Vec<_> = (0..nodes).map(|n| f.nic(n).clone()).collect();
            *chaos_slot.borrow_mut() = Some(ChaosPlane::install(
                f.sim(),
                &f.rng().stream("chaos"),
                &nics,
                &faults,
            ));
        }
        // Arm the time-series samplers at t0 on the same clock. Reads
        // only — the workload's behavior (and every digest field) is
        // identical with or without them.
        if let Some(cadence) = cadence {
            *telemetry_slot.borrow_mut() = Some(Telemetry::install(
                f.sim(),
                f.nic(0).network(),
                dcqcn_qps,
                all_stats2.clone(),
                cadence,
            ));
        }
        let mut handles = Vec::new();
        for (conn, peer, ti, nreq, crng, srng) in clients {
            let t = &tenants[ti];
            f.spawn(serve(
                conn.server,
                conn.transport,
                t.resp_size,
                t.service_ns,
                srng,
            ));
            handles.push(f.spawn(drive_client(
                conn.client,
                ClientCfg {
                    peer,
                    transport: conn.transport,
                    arrival: t.arrival,
                    req_size: t.req_size,
                    window: conn.window,
                    nreq,
                },
                Rc::clone(&stats2[ti]),
                crng,
            )));
        }
        // Collective rank drivers launch at the same t0 as the RPC
        // clients, so collectives and tenants contend from the first
        // instant.
        for (ji, world) in worlds.into_iter().enumerate() {
            let job = &jobs[ji];
            for comm in world {
                let crng =
                    rng.stream_indexed(&format!("wl-collective-{}", job.name), comm.rank() as u64);
                handles.push(f.spawn(drive_rank(
                    comm,
                    job.op,
                    job.iters,
                    Rc::clone(&coll_stats2[ji]),
                    Rc::clone(&timings2[ji]),
                    crng,
                    f.sim().clone(),
                )));
            }
        }
        for h in handles {
            h.await;
        }
        (f.sim().now().since(t0), qps_created)
    });

    let mut tenants_report: Vec<TenantReport> = spec
        .tenants
        .iter()
        .zip(&stats)
        .map(|(t, s)| s.report(&t.name))
        .collect();
    // Collective jobs ride the same scoreboard: one row per job, whose
    // "requests" are per-rank iterations and whose bytes are each rank's
    // wire traffic.
    tenants_report.extend(
        spec.collectives
            .iter()
            .zip(&coll_stats)
            .map(|(j, s)| s.report(&j.name)),
    );
    let collectives_report: Vec<CollectiveReport> = spec
        .collectives
        .iter()
        .zip(&timings)
        .map(|(j, t)| t.summarize(j))
        .collect();
    // Fabric-level loss/pause/retransmit counters, reported only when one
    // of the new fabric knobs is in play so that every pre-existing
    // configuration serializes byte-identically.
    let fabric_counters = (spec.pfc || spec.rc_retx || spec.buffer_bytes.is_some()).then(|| {
        let network = fabric.nic(0).network();
        let (mut replays, mut exhausted) = (0u64, 0u64);
        for node in 0..spec.nodes {
            let (r, e) = fabric.nic(node).retx_stats();
            replays += r;
            exhausted += e;
        }
        FabricCounters {
            pfc: network.pfc_enabled(),
            rc_retx: spec.rc_retx,
            routing: spec.routing,
            retx_mode: spec.retx_mode,
            buffer_bytes: spec.buffer_bytes.map(|b| b as u64),
            net_drops: network.total_drops(),
            net_pauses: network.total_pauses(),
            net_pause_ms: network.total_pause_time().as_us_f64() / 1e3,
            retx_replays: replays,
            retx_exhausted: exhausted,
        }
    });
    let chaos_counters = chaos_plane.borrow().as_ref().map(|p| {
        let s = p.stats();
        ChaosCounters {
            faults: s.injected,
            faults_skipped: s.skipped,
            chaos_reroutes: s.reroutes,
            chaos_dead_frames: s.dead_frames,
            chaos_pfc_deadlocks: s.pfc_deadlocks,
        }
    });
    let names: Vec<String> = spec
        .tenants
        .iter()
        .map(|t| t.name.clone())
        .chain(spec.collectives.iter().map(|j| j.name.clone()))
        .collect();
    let telemetry_report = telemetry.borrow().as_ref().map(|t| t.report(&names));
    // Recovery verdicts need both a witnessed fault window (the chaos
    // plane saw an onset and a clearance) and the goodput series to
    // measure restoration against.
    let recovery = telemetry_report.as_ref().and_then(|tr| {
        let plane = chaos_plane.borrow();
        let plane = plane.as_ref()?;
        let (onset, clearance) = (plane.first_onset()?, plane.last_clearance()?);
        let t0 = telemetry.borrow().as_ref().map(|t| t.t0())?;
        Some(compute_recovery(tr, t0, onset, clearance, &all_stats))
    });
    let core = CoreStats {
        sim: fabric.sim().stats(),
    };
    let trace = fabric
        .trace()
        .is_enabled()
        .then(|| fabric.trace().snapshot());
    Ok(RunOutput {
        report: ScenarioReport::summarize(
            spec,
            qps_created,
            elapsed,
            tenants_report,
            fabric_counters,
            chaos_counters,
            recovery,
            telemetry_report,
            collectives_report,
        ),
        core,
        trace,
    })
}
