//! Per-tenant SLO accounting, built on `cord_sim::stats`.

use std::cell::RefCell;
use std::rc::Rc;

use cord_net::Routing;
use cord_nic::RetxMode;
use cord_sim::stats::Histogram;
use cord_sim::{SimDuration, SimTime};
use serde::Serialize;

/// Mutable per-tenant counters, shared by all of a tenant's connection
/// tasks via `Rc<TenantStats>`.
#[derive(Default)]
pub struct TenantStats {
    inner: RefCell<StatsInner>,
}

#[derive(Default)]
struct StatsInner {
    latency: Option<Histogram>,
    issued: u64,
    completed: u64,
    dropped: u64,
    bytes_moved: u64,
    /// First arrival and last completion, bounding the tenant's active span
    /// (its goodput denominator — tenants finish at different times).
    first_issue: Option<SimTime>,
    last_event: SimTime,
    /// Latency objective, when the tenant declared one; completions whose
    /// sojourn met it are counted in `slo_ok`.
    slo: Option<SimDuration>,
    slo_ok: u64,
}

impl TenantStats {
    /// Fresh counters with no latency objective.
    pub fn new() -> Rc<TenantStats> {
        Rc::new(TenantStats::default())
    }

    /// Fresh counters, tracking SLO attainment when `slo` is `Some`.
    pub fn with_slo(slo: Option<SimDuration>) -> Rc<TenantStats> {
        let st = TenantStats::default();
        st.inner.borrow_mut().slo = slo;
        Rc::new(st)
    }

    /// A request entered the system at `now`.
    pub fn on_issue(&self, now: SimTime) {
        let mut s = self.inner.borrow_mut();
        s.issued += 1;
        s.first_issue.get_or_insert(now);
        s.last_event = s.last_event.max(now);
    }

    /// A request finished: `sojourn` is arrival-to-response time (includes
    /// queueing for open-loop tenants); `bytes` is request + response
    /// payload.
    pub fn on_complete(&self, now: SimTime, sojourn: SimDuration, bytes: usize) {
        let mut s = self.inner.borrow_mut();
        s.completed += 1;
        s.bytes_moved += bytes as u64;
        s.last_event = s.last_event.max(now);
        if s.slo.is_some_and(|slo| sojourn <= slo) {
            s.slo_ok += 1;
        }
        s.latency
            .get_or_insert_with(Histogram::new)
            .record(sojourn.as_ps());
    }

    /// A request was refused by a kernel policy (quota, security, ...).
    pub fn on_drop(&self) {
        self.inner.borrow_mut().dropped += 1;
    }

    /// Requests completed so far.
    pub fn completed(&self) -> u64 {
        self.inner.borrow().completed
    }

    /// Requests refused by kernel policies so far.
    pub fn dropped(&self) -> u64 {
        self.inner.borrow().dropped
    }

    /// Snapshot `(issued, completed, bytes_moved)` for the telemetry
    /// samplers: in-flight is `issued - completed - dropped`, windowed
    /// goodput is the delta of `bytes_moved` across one cadence.
    pub fn progress(&self) -> (u64, u64, u64) {
        let s = self.inner.borrow();
        (s.issued, s.completed + s.dropped, s.bytes_moved)
    }

    /// Virtual instant of the tenant's last issue/completion (recovery
    /// accounting for tenants that finish before the next sample lands).
    pub fn last_event(&self) -> SimTime {
        self.inner.borrow().last_event
    }

    /// Freeze into a report. Goodput is computed over the tenant's own
    /// active span (first arrival to last completion), so tenants that
    /// finish early aren't diluted by a long-running scenario.
    pub fn report(&self, name: &str) -> TenantReport {
        let s = self.inner.borrow();
        let q = |quant: f64| -> f64 {
            s.latency
                .as_ref()
                .map(|h| h.quantile(quant) as f64 / 1e6)
                .unwrap_or(0.0)
        };
        let mean_us = s
            .latency
            .as_ref()
            .map(|h| h.mean() / 1e6)
            .filter(|m| m.is_finite())
            .unwrap_or(0.0);
        let span_s = s
            .first_issue
            .map(|t0| s.last_event.saturating_since(t0).as_secs_f64())
            .unwrap_or(0.0);
        TenantReport {
            tenant: name.to_string(),
            issued: s.issued,
            completed: s.completed,
            dropped: s.dropped,
            p50_us: q(0.50),
            p99_us: q(0.99),
            p999_us: q(0.999),
            mean_us,
            max_us: s
                .latency
                .as_ref()
                .map(|h| h.max() as f64 / 1e6)
                .unwrap_or(0.0),
            bytes_moved: s.bytes_moved,
            active_ms: span_s * 1e3,
            goodput_gbps: if span_s > 0.0 {
                s.bytes_moved as f64 * 8.0 / span_s / 1e9
            } else {
                0.0
            },
            slo_us: s.slo.map(|d| d.as_us_f64()),
            slo_attained: s.slo.map(|_| {
                if s.completed > 0 {
                    s.slo_ok as f64 / s.completed as f64
                } else {
                    0.0
                }
            }),
        }
    }
}

/// Immutable per-tenant scoreboard.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// Tenant (or collective job) name from the spec.
    pub tenant: String,
    /// Requests that entered the system.
    pub issued: u64,
    /// Requests that finished.
    pub completed: u64,
    /// Requests refused by kernel policies.
    pub dropped: u64,
    /// Median sojourn time, µs.
    pub p50_us: f64,
    /// 99th-percentile sojourn time, µs.
    pub p99_us: f64,
    /// 99.9th-percentile sojourn time, µs.
    pub p999_us: f64,
    /// Mean sojourn time, µs.
    pub mean_us: f64,
    /// Worst sojourn time, µs.
    pub max_us: f64,
    /// Payload bytes moved (request + response) by completed requests.
    pub bytes_moved: u64,
    /// First arrival to last completion, ms.
    pub active_ms: f64,
    /// Payload bits moved per second of the tenant's active span.
    pub goodput_gbps: f64,
    /// Latency objective, µs — only when the tenant declared one.
    pub slo_us: Option<f64>,
    /// Fraction of completed requests whose sojourn met the objective —
    /// only when the tenant declared one.
    pub slo_attained: Option<f64>,
}

// Hand-written so the SLO pair is *omitted* — not serialized as nulls —
// for tenants without an objective: every pre-existing report must stay
// byte-identical.
impl Serialize for TenantReport {
    fn to_value(&self) -> serde::Value {
        let mut fields: Vec<(String, serde::Value)> = vec![
            ("tenant".into(), self.tenant.to_value()),
            ("issued".into(), self.issued.to_value()),
            ("completed".into(), self.completed.to_value()),
            ("dropped".into(), self.dropped.to_value()),
            ("p50_us".into(), self.p50_us.to_value()),
            ("p99_us".into(), self.p99_us.to_value()),
            ("p999_us".into(), self.p999_us.to_value()),
            ("mean_us".into(), self.mean_us.to_value()),
            ("max_us".into(), self.max_us.to_value()),
            ("bytes_moved".into(), self.bytes_moved.to_value()),
            ("active_ms".into(), self.active_ms.to_value()),
            ("goodput_gbps".into(), self.goodput_gbps.to_value()),
        ];
        if let (Some(slo), Some(attained)) = (self.slo_us, self.slo_attained) {
            fields.push(("slo_us".into(), slo.to_value()));
            fields.push(("slo_attained".into(), attained.to_value()));
        }
        serde::Value::Object(fields)
    }
}

/// Fabric-level loss/pause/retransmission counters, present in a report
/// only when the scenario engaged one of the new fabric knobs (PFC, RC
/// retransmission, or a buffer override).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FabricCounters {
    /// PFC effectively enabled (false when requested on the full mesh,
    /// where the knob is inert).
    pub pfc: bool,
    /// RC retransmission armed on tenant QPs.
    pub rc_retx: bool,
    /// Routing policy; serialized only when non-default (spray), so
    /// ECMP reports stay byte-identical to their pre-spray JSON.
    pub routing: Routing,
    /// Retransmission flavor; serialized only when non-default (sr).
    pub retx_mode: RetxMode,
    /// Per-port buffer override, if any.
    pub buffer_bytes: Option<u64>,
    /// Frames tail-dropped by switch ports.
    pub net_drops: u64,
    /// XOFF pause episodes asserted across all switch ports.
    pub net_pauses: u64,
    /// Cumulative pause time across all switch ports, ms.
    pub net_pause_ms: f64,
    /// Messages queued for go-back-N replay across all NICs.
    pub retx_replays: u64,
    /// QPs errored out after exhausting their retry budget.
    pub retx_exhausted: u64,
}

/// Chaos-plane detection counters, present in a report only when the
/// scenario carried a non-empty fault schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosCounters {
    /// Fault events injected (each counted once, at onset).
    pub faults: u64,
    /// Events skipped as inapplicable to this fabric.
    pub faults_skipped: u64,
    /// Frames rerouted around dead spines.
    pub chaos_reroutes: u64,
    /// Frames lost to dead hardware.
    pub chaos_dead_frames: u64,
    /// PFC deadlocks detected (and broken) by the no-progress watchdog.
    pub chaos_pfc_deadlocks: u64,
}

/// One tenant's time series from the telemetry samplers, columnar: entry
/// `k` of every vector belongs to the `k`-th sample instant.
#[derive(Debug, Clone, Serialize)]
pub struct TenantSeries {
    /// Tenant (or collective job) name from the spec.
    pub tenant: String,
    /// Requests issued but not yet completed or dropped at each sample.
    pub inflight: Vec<u64>,
    /// Goodput over the window ending at each sample, Gbit/s.
    pub goodput_gbps: Vec<f64>,
}

/// Deterministic time-series telemetry: fixed-cadence samples driven by
/// the sim clock (never ambient time), present in a report only when the
/// scenario armed `ScenarioSpec::telemetry`.
#[derive(Debug, Clone)]
pub struct TelemetryReport {
    /// Sampling cadence, µs of virtual time.
    pub cadence_us: f64,
    /// Sample instants, µs since traffic launch (t0).
    pub t_us: Vec<f64>,
    /// Deepest switch-port queue at each sample, bytes (0 on a mesh).
    pub max_port_queued: Vec<u64>,
    /// Switch ports holding XOFF at each sample (0 without PFC).
    pub paused_ports: Vec<u64>,
    /// Slowest DCQCN rate across tenant client QPs at each sample,
    /// Gbit/s; `None` when no QP runs DCQCN.
    pub min_dcqcn_gbps: Option<Vec<f64>>,
    /// Per-tenant series, in scenario tenant order.
    pub tenants: Vec<TenantSeries>,
}

impl Serialize for TelemetryReport {
    fn to_value(&self) -> serde::Value {
        let mut fields: Vec<(String, serde::Value)> = vec![
            ("cadence_us".into(), self.cadence_us.to_value()),
            ("t_us".into(), self.t_us.to_value()),
            ("max_port_queued".into(), self.max_port_queued.to_value()),
            ("paused_ports".into(), self.paused_ports.to_value()),
        ];
        if let Some(r) = &self.min_dcqcn_gbps {
            fields.push(("min_dcqcn_gbps".into(), r.to_value()));
        }
        fields.push(("tenants".into(), self.tenants.to_value()));
        serde::Value::Object(fields)
    }
}

/// One tenant's recovery verdict after a fault cleared: the time from
/// clearance until windowed goodput returned to within 10% of the
/// pre-fault rate (or until the tenant finished everything it had left).
#[derive(Debug, Clone)]
pub struct TenantRecovery {
    /// Tenant (or collective job) name from the spec.
    pub tenant: String,
    /// Whether the tenant got back to ≥ 90% of its pre-fault goodput (or
    /// completed all requests) after the last fault clearance.
    pub recovered: bool,
    /// Clearance-to-recovery time, µs; absent when not recovered.
    pub recovery_us: Option<f64>,
}

impl Serialize for TenantRecovery {
    fn to_value(&self) -> serde::Value {
        let mut fields: Vec<(String, serde::Value)> = vec![
            ("tenant".into(), self.tenant.to_value()),
            ("recovered".into(), self.recovered.to_value()),
        ];
        if let Some(us) = self.recovery_us {
            fields.push(("recovery_us".into(), us.to_value()));
        }
        serde::Value::Object(fields)
    }
}

/// Whole-scenario result.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name from the spec.
    pub scenario: String,
    /// Machine preset the fabric was cloned from.
    pub machine: String,
    /// Fabric size in nodes.
    pub nodes: usize,
    /// Root RNG seed of the run.
    pub seed: u64,
    /// Network shape (e.g. `full-mesh`, `fat-tree/8`, `dumbbell/25g`).
    pub topology: String,
    /// Congestion control applied to tenant QPs (`none` or `dcqcn`).
    pub cc: String,
    /// Loss/pause/retransmit counters (`None` for pre-existing
    /// configurations, keeping their JSON byte-identical).
    pub fabric: Option<FabricCounters>,
    /// Chaos detection counters (`None` with an empty fault schedule,
    /// keeping fault-free JSON byte-identical).
    pub chaos: Option<ChaosCounters>,
    /// Per-tenant recovery-time verdicts (`None` unless a fault actually
    /// cleared *and* the telemetry samplers were armed to witness the
    /// recovery).
    pub recovery: Option<Vec<TenantRecovery>>,
    /// Deterministic time series (`None` unless the scenario armed
    /// `ScenarioSpec::telemetry`).
    pub telemetry: Option<TelemetryReport>,
    /// Client connections (QP pairs) the tenants opened.
    pub connections: usize,
    /// Total QPs created across tenants and collective worlds.
    pub qps_created: usize,
    /// Traffic-launch to last-completion, ms of virtual time.
    pub elapsed_ms: f64,
    /// Requests completed across all tenants (collective rows count one
    /// completion per rank per iteration).
    pub total_completed: u64,
    /// Requests refused by kernel policies, across all tenants.
    pub total_dropped: u64,
    /// Payload bits moved per second of the whole run.
    pub total_goodput_gbps: f64,
    /// Per-tenant scoreboards, spec order; collective jobs append one row
    /// each after the tenants.
    pub tenants: Vec<TenantReport>,
    /// Per-collective completion/bandwidth/skew rows. Empty (and omitted
    /// from the JSON) when the scenario ran no collectives, keeping every
    /// pre-existing report byte-identical.
    pub collectives: Vec<crate::collective::CollectiveReport>,
}

// Hand-written (rather than derived) so the fabric-counter block is
// *omitted* — not serialized as nulls — when absent: every scenario that
// existed before PFC/retransmission must keep byte-identical JSON.
impl Serialize for ScenarioReport {
    fn to_value(&self) -> serde::Value {
        let mut fields: Vec<(String, serde::Value)> = vec![
            ("scenario".into(), self.scenario.to_value()),
            ("machine".into(), self.machine.to_value()),
            ("nodes".into(), self.nodes.to_value()),
            ("seed".into(), self.seed.to_value()),
            ("topology".into(), self.topology.to_value()),
            ("cc".into(), self.cc.to_value()),
        ];
        if let Some(f) = &self.fabric {
            fields.push(("pfc".into(), f.pfc.to_value()));
            fields.push(("rc_retx".into(), f.rc_retx.to_value()));
            if f.routing != Routing::Ecmp {
                fields.push(("routing".into(), f.routing.to_string().to_value()));
            }
            if f.retx_mode != RetxMode::Gbn {
                fields.push(("retx_mode".into(), f.retx_mode.to_string().to_value()));
            }
            if let Some(b) = f.buffer_bytes {
                fields.push(("buffer_bytes".into(), b.to_value()));
            }
            fields.push(("net_drops".into(), f.net_drops.to_value()));
            fields.push(("net_pauses".into(), f.net_pauses.to_value()));
            fields.push(("net_pause_ms".into(), f.net_pause_ms.to_value()));
            fields.push(("retx_replays".into(), f.retx_replays.to_value()));
            fields.push(("retx_exhausted".into(), f.retx_exhausted.to_value()));
        }
        if let Some(c) = &self.chaos {
            fields.push(("faults".into(), c.faults.to_value()));
            fields.push(("faults_skipped".into(), c.faults_skipped.to_value()));
            fields.push(("chaos_reroutes".into(), c.chaos_reroutes.to_value()));
            fields.push(("chaos_dead_frames".into(), c.chaos_dead_frames.to_value()));
            fields.push((
                "chaos_pfc_deadlocks".into(),
                c.chaos_pfc_deadlocks.to_value(),
            ));
        }
        if let Some(r) = &self.recovery {
            fields.push(("recovery".into(), r.to_value()));
        }
        if let Some(t) = &self.telemetry {
            fields.push(("telemetry".into(), t.to_value()));
        }
        fields.extend([
            ("connections".into(), self.connections.to_value()),
            ("qps_created".into(), self.qps_created.to_value()),
            ("elapsed_ms".into(), self.elapsed_ms.to_value()),
            ("total_completed".into(), self.total_completed.to_value()),
            ("total_dropped".into(), self.total_dropped.to_value()),
            (
                "total_goodput_gbps".into(),
                self.total_goodput_gbps.to_value(),
            ),
            ("tenants".into(), self.tenants.to_value()),
        ]);
        if !self.collectives.is_empty() {
            fields.push(("collectives".into(), self.collectives.to_value()));
        }
        serde::Value::Object(fields)
    }
}

impl ScenarioReport {
    /// Assemble the report from a finished run's parts.
    #[allow(clippy::too_many_arguments)]
    pub fn summarize(
        spec: &crate::spec::ScenarioSpec,
        qps_created: usize,
        elapsed: SimDuration,
        tenants: Vec<TenantReport>,
        fabric: Option<FabricCounters>,
        chaos: Option<ChaosCounters>,
        recovery: Option<Vec<TenantRecovery>>,
        telemetry: Option<TelemetryReport>,
        collectives: Vec<crate::collective::CollectiveReport>,
    ) -> ScenarioReport {
        let secs = elapsed.as_secs_f64();
        let total_bytes: u64 = tenants.iter().map(|t| t.bytes_moved).sum();
        ScenarioReport {
            scenario: spec.name.clone(),
            machine: spec.machine.name.to_string(),
            nodes: spec.nodes,
            seed: spec.seed,
            topology: spec.topology.to_string(),
            cc: spec.cc.to_string(),
            fabric,
            chaos,
            recovery,
            telemetry,
            connections: spec.total_connections(),
            qps_created,
            elapsed_ms: elapsed.as_us_f64() / 1e3,
            total_completed: tenants.iter().map(|t| t.completed).sum(),
            total_dropped: tenants.iter().map(|t| t.dropped).sum(),
            total_goodput_gbps: if secs > 0.0 {
                total_bytes as f64 * 8.0 / secs / 1e9
            } else {
                0.0
            },
            tenants,
            collectives,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_computes_quantiles_and_goodput() {
        let st = TenantStats::new();
        st.on_issue(SimTime::ZERO);
        for i in 1..=100u64 {
            if i > 1 {
                st.on_issue(SimTime(i * 1_000_000));
            }
            st.on_complete(SimTime(i * 1_000_000), SimDuration::from_us(i), 1000);
        }
        st.on_drop();
        let r = st.report("t0");
        assert_eq!(r.issued, 100);
        assert_eq!(r.completed, 100);
        assert_eq!(r.dropped, 1);
        assert!((r.p50_us - 50.0).abs() < 3.0, "p50 {}", r.p50_us);
        assert!((r.p99_us - 99.0).abs() < 4.0, "p99 {}", r.p99_us);
        // 100 kB over a 100 µs active span = 8 Gbit/s.
        assert!((r.active_ms - 0.1).abs() < 1e-9, "{}", r.active_ms);
        assert!((r.goodput_gbps - 8.0).abs() < 0.01, "{}", r.goodput_gbps);
    }

    #[test]
    fn slo_attainment_counts_only_within_objective() {
        let st = TenantStats::with_slo(Some(SimDuration::from_us(50)));
        st.on_issue(SimTime::ZERO);
        for i in 1..=10u64 {
            if i > 1 {
                st.on_issue(SimTime(i * 1_000_000));
            }
            // Sojourns 10, 20, ..., 100 µs: exactly 5 meet the 50 µs SLO.
            st.on_complete(SimTime(i * 1_000_000), SimDuration::from_us(i * 10), 100);
        }
        let r = st.report("slo");
        assert_eq!(r.slo_us, Some(50.0));
        assert_eq!(r.slo_attained, Some(0.5));
        // Unarmed tenants serialize without the SLO pair at all.
        let bare = TenantStats::new().report("bare");
        assert!(bare.slo_us.is_none());
        let json = serde_json::to_string(&bare).unwrap();
        assert!(!json.contains("slo"), "{json}");
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("\"slo_attained\""), "{json}");
    }

    #[test]
    fn empty_stats_report_zeroes() {
        let st = TenantStats::new();
        let r = st.report("idle");
        assert_eq!(r.completed, 0);
        assert_eq!(r.p99_us, 0.0);
        assert_eq!(r.mean_us, 0.0);
        assert_eq!(r.goodput_gbps, 0.0);
    }
}
