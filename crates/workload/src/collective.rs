//! Collective-shaped jobs: MPI worlds driven inside a scenario.
//!
//! A [`CollectiveJob`] embeds a `cord-mpi` world in a scenario run: the
//! runner builds the world during the establishment phase (so setup never
//! pollutes the traffic clock), arms the scenario's congestion-control and
//! retransmission knobs on every collective QP via
//! [`cord_mpi::Comm::endpoints`], and launches one driver task per rank at
//! t0 alongside the tenant RPC traffic. Each driver repeats the job's
//! operation for `iters` iterations, timestamping every rank's iteration
//! span, so the report can state the three numbers every collective
//! benchmark states:
//!
//! * **completion time** per iteration — last rank out minus first rank in,
//! * **bus bandwidth** — algorithm bandwidth (`bytes_per_rank / mean
//!   completion`) scaled by the NCCL convention factor (`2(P-1)/P` for
//!   allreduce, `(P-1)/P` for all-to-all), which normalizes out the
//!   algorithm so the number is comparable to link speed,
//! * **straggler skew** — the worst ratio of slowest to mean per-rank
//!   iteration duration, the metric that exposes a gray-failure host.
//!
//! Same-node ranks still talk through the NIC loopback (the paper bars MPI
//! from shared memory, §5), so every byte of a collective crosses the
//! simulated fabric and contends with tenant traffic.

use std::cell::RefCell;
use std::rc::Rc;

use cord_mpi::{AllreduceAlgo, Comm, ReduceOp};
use cord_sim::{DetRng, Sim, SimTime};
use cord_verbs::Dataplane;
use serde::Serialize;

use crate::stats::TenantStats;

/// Bytes of `(src_rank, token_idx)` header at the front of every
/// expert-shuffle token (two little-endian `u32`s).
pub const TOKEN_HEADER: usize = 8;

/// What one collective job runs per iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CollectiveOp {
    /// An `elems`-element f64 allreduce (sum) under an explicit algorithm.
    Allreduce {
        /// Schedule to run — `auto` selection is deliberate *not* an
        /// option here: a scenario names its algorithm so reports and
        /// digests never shift when the crossover heuristic moves.
        algo: AllreduceAlgo,
        /// f64 elements reduced per rank per iteration.
        elems: usize,
    },
    /// An MoE-style expert shuffle: every rank holds `tokens_per_rank`
    /// tokens of `token_bytes` each, assigns every token to a
    /// deterministically-drawn destination rank (its "expert"), and
    /// exchanges them with one `alltoallv`.
    ExpertShuffle {
        /// Tokens each rank contributes per iteration.
        tokens_per_rank: usize,
        /// Bytes per token, including the [`TOKEN_HEADER`].
        token_bytes: usize,
    },
}

impl CollectiveOp {
    /// Payload bytes one rank contributes per iteration — the `S` in the
    /// bandwidth formulas.
    pub fn bytes_per_rank(&self) -> u64 {
        match *self {
            CollectiveOp::Allreduce { elems, .. } => elems as u64 * 8,
            CollectiveOp::ExpertShuffle {
                tokens_per_rank,
                token_bytes,
            } => tokens_per_rank as u64 * token_bytes as u64,
        }
    }

    /// NCCL bus-bandwidth convention factor: `busbw = algbw * factor`.
    /// Allreduce moves every byte twice minus the local share
    /// (`2(P-1)/P`); all-to-all moves each byte once, minus what stays
    /// local (`(P-1)/P`).
    pub fn busbw_factor(&self, ranks: usize) -> f64 {
        let p = ranks as f64;
        match self {
            CollectiveOp::Allreduce { .. } => 2.0 * (p - 1.0) / p,
            CollectiveOp::ExpertShuffle { .. } => (p - 1.0) / p,
        }
    }

    /// Short label for the report (`allreduce/ring`, `expert-shuffle`).
    pub fn label(&self) -> String {
        match self {
            CollectiveOp::Allreduce { algo, .. } => format!("allreduce/{algo}"),
            CollectiveOp::ExpertShuffle { .. } => "expert-shuffle".to_string(),
        }
    }
}

/// One collective job inside a scenario: an MPI world of `ranks` ranks
/// (spread block-wise over the scenario's nodes, exactly as
/// `cord_mpi::create_world` places them) running `op` for `iters`
/// iterations.
#[derive(Debug, Clone)]
pub struct CollectiveJob {
    /// Display name; keys the job's RNG stream and its report rows, so it
    /// must be unique among tenants *and* jobs.
    pub name: String,
    /// The operation each iteration runs.
    pub op: CollectiveOp,
    /// World size. May exceed the node count — extra ranks share nodes
    /// and talk through the NIC loopback.
    pub ranks: usize,
    /// Iterations to run back-to-back (no barrier in between, like a
    /// pipelined training step).
    pub iters: usize,
    /// Dataplane the world's QPs ride (CoRD policies only bind on
    /// [`Dataplane::Cord`]).
    pub dataplane: Dataplane,
}

impl CollectiveJob {
    /// A job with the default 4 iterations on the CoRD dataplane.
    pub fn new(name: impl Into<String>, op: CollectiveOp, ranks: usize) -> CollectiveJob {
        CollectiveJob {
            name: name.into(),
            op,
            ranks,
            iters: 4,
            dataplane: Dataplane::Cord,
        }
    }

    /// Reject degenerate shapes before any fabric is built.
    pub fn validate(&self) -> Result<(), String> {
        if self.ranks < 2 {
            return Err(format!("{}: collective needs at least 2 ranks", self.name));
        }
        if self.iters == 0 {
            return Err(format!("{}: iters must be nonzero", self.name));
        }
        match self.op {
            CollectiveOp::Allreduce { elems: 0, .. } => {
                Err(format!("{}: allreduce elems must be nonzero", self.name))
            }
            CollectiveOp::ExpertShuffle {
                tokens_per_rank,
                token_bytes,
            } if tokens_per_rank == 0 || token_bytes < TOKEN_HEADER => Err(format!(
                "{}: shuffle needs tokens and token_bytes >= {TOKEN_HEADER}",
                self.name
            )),
            _ => Ok(()),
        }
    }
}

/// Destination rank ("expert") of each of `tokens_per_rank` tokens, drawn
/// from the caller's deterministic stream. Self-destinations are allowed —
/// a token routed to its own rank stays local in the `alltoallv`, exactly
/// like a token whose expert happens to live on the same GPU.
pub fn expert_assignments(rng: &DetRng, ranks: usize, tokens_per_rank: usize) -> Vec<usize> {
    (0..tokens_per_rank)
        .map(|_| rng.uniform_range(0, ranks as u64) as usize)
        .collect()
}

/// The bytes of one token: a [`TOKEN_HEADER`] naming `(src_rank,
/// token_idx)` followed by a fill pattern derived from the same pair, so a
/// receiver can verify every byte against its header alone.
pub fn token_payload(src_rank: usize, token_idx: usize, token_bytes: usize) -> Vec<u8> {
    assert!(token_bytes >= TOKEN_HEADER);
    let mut t = Vec::with_capacity(token_bytes);
    t.extend_from_slice(&(src_rank as u32).to_le_bytes());
    t.extend_from_slice(&(token_idx as u32).to_le_bytes());
    let fill = (src_rank as u32)
        .wrapping_mul(0x9E37_79B9)
        .wrapping_add(token_idx as u32);
    t.resize(token_bytes, (fill >> 16) as u8);
    t
}

/// Concatenate `rank`'s tokens into per-destination send buffers for one
/// `alltoallv`: `out[d]` holds every token whose assignment is `d`, in
/// token-index order.
pub fn shuffle_payloads(
    rank: usize,
    ranks: usize,
    token_bytes: usize,
    assignments: &[usize],
) -> Vec<Vec<u8>> {
    let mut out = vec![Vec::new(); ranks];
    for (idx, &dst) in assignments.iter().enumerate() {
        out[dst].extend_from_slice(&token_payload(rank, idx, token_bytes));
    }
    out
}

/// One rank's `(start, end)` wall span for one iteration, if it finished.
type RankSpan = Option<(SimTime, SimTime)>;

/// Per-rank, per-iteration spans of one job, shared between the rank
/// drivers and the post-run summarizer.
pub(crate) struct JobTiming {
    /// `[iter][rank] -> (start, end)`.
    spans: RefCell<Vec<Vec<RankSpan>>>,
}

impl JobTiming {
    pub(crate) fn new(iters: usize, ranks: usize) -> Rc<JobTiming> {
        Rc::new(JobTiming {
            spans: RefCell::new(vec![vec![None; ranks]; iters]),
        })
    }

    fn record(&self, iter: usize, rank: usize, start: SimTime, end: SimTime) {
        self.spans.borrow_mut()[iter][rank] = Some((start, end));
    }

    /// Freeze into the report row. Iterations no rank finished are
    /// skipped (they cannot happen on a completed run).
    pub(crate) fn summarize(&self, job: &CollectiveJob) -> CollectiveReport {
        let spans = self.spans.borrow();
        let mut completion_us = Vec::with_capacity(spans.len());
        let mut skew: f64 = 0.0;
        for iter in spans.iter() {
            let done: Vec<(SimTime, SimTime)> = iter.iter().flatten().copied().collect();
            if done.len() != job.ranks {
                continue;
            }
            let first_in = done.iter().map(|s| s.0).min().expect("nonempty");
            let last_out = done.iter().map(|s| s.1).max().expect("nonempty");
            completion_us.push(last_out.since(first_in).as_us_f64());
            let durs: Vec<f64> = done.iter().map(|(s, e)| e.since(*s).as_us_f64()).collect();
            let mean = durs.iter().sum::<f64>() / durs.len() as f64;
            let max = durs.iter().cloned().fold(0.0, f64::max);
            if mean > 0.0 {
                skew = skew.max(max / mean);
            }
        }
        let mean_completion_us = if completion_us.is_empty() {
            0.0
        } else {
            completion_us.iter().sum::<f64>() / completion_us.len() as f64
        };
        let max_completion_us = completion_us.iter().cloned().fold(0.0, f64::max);
        let bytes_per_rank = job.op.bytes_per_rank();
        let algbw_gbps = if mean_completion_us > 0.0 {
            bytes_per_rank as f64 * 8.0 / (mean_completion_us * 1e-6) / 1e9
        } else {
            0.0
        };
        CollectiveReport {
            collective: job.name.clone(),
            op: job.op.label(),
            ranks: job.ranks,
            iters: job.iters,
            bytes_per_rank,
            completion_us,
            mean_completion_us,
            max_completion_us,
            algbw_gbps,
            busbw_gbps: algbw_gbps * job.op.busbw_factor(job.ranks),
            straggler_skew: skew,
        }
    }
}

/// One collective job's scoreboard: completion time, NCCL-convention
/// bandwidths, and straggler skew.
#[derive(Debug, Clone, Serialize)]
pub struct CollectiveReport {
    /// Job name from the spec.
    pub collective: String,
    /// Operation label (`allreduce/ring`, `expert-shuffle`).
    pub op: String,
    /// World size.
    pub ranks: usize,
    /// Iterations the spec asked for.
    pub iters: usize,
    /// Payload bytes contributed per rank per iteration (the `S` in the
    /// bandwidth formulas).
    pub bytes_per_rank: u64,
    /// Per-iteration completion time (last rank out minus first rank in),
    /// µs.
    pub completion_us: Vec<f64>,
    /// Mean of `completion_us`.
    pub mean_completion_us: f64,
    /// Worst iteration.
    pub max_completion_us: f64,
    /// Algorithm bandwidth `S / mean completion`, Gbit/s.
    pub algbw_gbps: f64,
    /// `algbw` scaled by the NCCL convention factor — comparable across
    /// algorithms and to link speed.
    pub busbw_gbps: f64,
    /// Worst (over iterations) ratio of slowest to mean per-rank
    /// duration; 1.0 is perfectly balanced, a gray-failure host drives it
    /// up.
    pub straggler_skew: f64,
}

/// One rank's driver: run the job's op `iters` times, recording this
/// rank's span of every iteration and feeding the job's shared
/// [`TenantStats`] (bytes from the rank's own traffic counter deltas, so
/// windowed-goodput telemetry and recovery verdicts work unchanged).
pub(crate) async fn drive_rank(
    comm: Comm,
    op: CollectiveOp,
    iters: usize,
    stats: Rc<TenantStats>,
    timing: Rc<JobTiming>,
    rng: DetRng,
    sim: Sim,
) {
    let rank = comm.rank();
    for iter in 0..iters {
        let start = sim.now();
        stats.on_issue(start);
        let (bytes0, _) = comm.traffic();
        match op {
            CollectiveOp::Allreduce { algo, elems } => {
                // Integer-valued draws so every summation order is exact:
                // differential tests can demand bit-identical buffers.
                let vals: Vec<f64> = (0..elems)
                    .map(|_| rng.uniform_range(0, 1 << 20) as f64)
                    .collect();
                let out = comm
                    .allreduce_algo(algo, iter as u32, &vals, ReduceOp::Sum)
                    .await;
                debug_assert_eq!(out.len(), elems);
            }
            CollectiveOp::ExpertShuffle {
                tokens_per_rank,
                token_bytes,
            } => {
                let assign = expert_assignments(&rng, comm.size(), tokens_per_rank);
                let sends = shuffle_payloads(rank, comm.size(), token_bytes, &assign);
                // `alltoallv` burns `size()` tags past its epoch, so space
                // iterations a tag-block apart.
                let got = comm.alltoallv(iter as u32 * 0x40, sends).await;
                debug_assert_eq!(got.len(), comm.size());
            }
        }
        let end = sim.now();
        let (bytes1, _) = comm.traffic();
        timing.record(iter, rank, start, end);
        stats.on_complete(end, end.since(start), (bytes1 - bytes0) as usize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busbw_factors_follow_the_nccl_convention() {
        let ar = CollectiveOp::Allreduce {
            algo: AllreduceAlgo::Ring,
            elems: 1024,
        };
        let a2a = CollectiveOp::ExpertShuffle {
            tokens_per_rank: 4,
            token_bytes: 64,
        };
        assert!((ar.busbw_factor(8) - 2.0 * 7.0 / 8.0).abs() < 1e-12);
        assert!((a2a.busbw_factor(8) - 7.0 / 8.0).abs() < 1e-12);
        assert_eq!(ar.bytes_per_rank(), 8192);
        assert_eq!(a2a.bytes_per_rank(), 256);
        assert_eq!(ar.label(), "allreduce/ring");
        assert_eq!(a2a.label(), "expert-shuffle");
    }

    #[test]
    fn job_validation_rejects_degenerate_shapes() {
        let op = CollectiveOp::Allreduce {
            algo: AllreduceAlgo::Ring,
            elems: 16,
        };
        assert!(CollectiveJob::new("j", op, 1).validate().is_err());
        let mut j = CollectiveJob::new("j", op, 4);
        j.iters = 0;
        assert!(j.validate().is_err());
        let zero = CollectiveOp::Allreduce {
            algo: AllreduceAlgo::Tree,
            elems: 0,
        };
        assert!(CollectiveJob::new("j", zero, 4).validate().is_err());
        let thin = CollectiveOp::ExpertShuffle {
            tokens_per_rank: 4,
            token_bytes: TOKEN_HEADER - 1,
        };
        assert!(CollectiveJob::new("j", thin, 4).validate().is_err());
        assert!(CollectiveJob::new("j", op, 4).validate().is_ok());
    }

    #[test]
    fn token_payloads_verify_against_their_headers() {
        let t = token_payload(3, 41, 64);
        assert_eq!(t.len(), 64);
        assert_eq!(u32::from_le_bytes(t[0..4].try_into().unwrap()), 3);
        assert_eq!(u32::from_le_bytes(t[4..8].try_into().unwrap()), 41);
        assert_eq!(t, token_payload(3, 41, 64));
        assert_ne!(t[8..], token_payload(4, 41, 64)[8..]);
    }

    #[test]
    fn timing_summary_computes_skew_and_busbw() {
        let job = CollectiveJob::new(
            "j",
            CollectiveOp::Allreduce {
                algo: AllreduceAlgo::Ring,
                elems: 125_000, // 1 MB
            },
            2,
        );
        let t = JobTiming::new(1, 2);
        // Rank 0 runs 0→100 µs, rank 1 runs 20→120 µs: completion 120 µs,
        // durations (100, 100) → skew 1.0.
        t.record(0, 0, SimTime(0), SimTime(100_000_000));
        t.record(0, 1, SimTime(20_000_000), SimTime(120_000_000));
        let r = t.summarize(&job);
        assert_eq!(r.completion_us, vec![120.0]);
        assert!((r.straggler_skew - 1.0).abs() < 1e-12);
        // 1 MB in 120 µs = 66.67 Gbit/s; busbw = algbw * 2(P-1)/P = algbw.
        assert!((r.algbw_gbps - 8.0 / 120e-6 / 1e3).abs() < 1e-9);
        assert!((r.busbw_gbps - r.algbw_gbps).abs() < 1e-12);
    }
}
