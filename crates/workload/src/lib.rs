//! # cord-workload — multi-tenant cluster-scale traffic generation
//!
//! The seed reproduction measures CoRD with two-node ping-pongs; this crate
//! turns it into a platform for scenario-diverse, cluster-scale
//! experiments. It runs **many tenants concurrently** over a simulated
//! fabric of N nodes, each tenant an independent RPC traffic source with
//! its own arrival process, message-size mix, transport, dataplane, and
//! kernel-enforced service controls — finally exercising the CoRD policy
//! chains (`QosPolicy`, `RateLimitPolicy`, `QuotaPolicy`) under real
//! contention instead of trickle traffic.
//!
//! ## Layers
//!
//! * [`spec`] — [`TenantSpec`]/[`ScenarioSpec`]: arrival process (open
//!   Poisson or closed with think time), size distributions, RC/UD,
//!   Bypass/CoRD, per-tenant QoS class, rate limit, and quota.
//! * [`rpc`] — the request/response service model over
//!   `SendWqe`/`RecvWqe` with per-request sojourn accounting (open-loop
//!   queueing delay counts, like a production SLO dashboard).
//! * [`policy`] — [`ScopedPolicy`], which binds any kernel policy to one
//!   tenant's QPs so tenants sharing a node keep independent budgets.
//! * [`stats`] — per-tenant p50/p99/p999 latency, goodput, and
//!   policy-drop counts on `cord_sim::stats` histograms.
//! * [`collective`] — [`CollectiveJob`]: embed `cord-mpi` worlds (ring /
//!   tree / halving-doubling allreduce, MoE expert shuffle) in a
//!   scenario, with per-collective completion-time, bus-bandwidth, and
//!   straggler-skew reporting.
//! * [`scenarios`] — built-ins: `kv-fanout`, `incast`, `shuffle`,
//!   `broadcast`, `mixed` (bulk scan vs latency-sensitive foreground),
//!   the fabric pathology set (`pfc-hol-blocking`, `pause-storm`,
//!   `lossy-incast-rc`), the chaos set with built-in fault schedules
//!   (`link-flap-recovery`, `switch-death-reroute`, `straggler-nic`,
//!   `pfc-deadlock`), and the ML set (`allreduce-ring`/`-tree`/`-hd`,
//!   `expert-shuffle`, `prefill-decode`, `straggler-allreduce`).
//! * [`runner`] — [`run_scenario`]: fabric bring-up, policy installation,
//!   connection wiring, concurrent execution, scoreboard.
//!
//! ## Quick start
//!
//! ```
//! use cord_workload::{run_scenario, scenarios};
//!
//! let scale = scenarios::Scale { nodes: 4, tenants: 4, requests: 10, seed: 1, ..Default::default() };
//! let spec = scenarios::by_name("kv-fanout", scale).unwrap();
//! let report = run_scenario(&spec).unwrap();
//! assert_eq!(report.tenants.len(), 4);
//! assert!(report.total_completed > 0);
//! ```
//!
//! Runs are deterministic: the same spec and seed yield identical reports.

#![deny(missing_docs)]

pub mod collective;
pub mod policy;
pub mod rpc;
pub mod runner;
pub mod scenarios;
pub mod spec;
pub mod stats;
mod telemetry;

pub use collective::{
    expert_assignments, shuffle_payloads, token_payload, CollectiveJob, CollectiveOp,
    CollectiveReport,
};
pub use policy::ScopedPolicy;
pub use runner::{
    run_scenario, run_scenario_full, run_scenario_instrumented, CoreStats, RunOptions, RunOutput,
};
pub use scenarios::Scale;
pub use spec::{Arrival, ScenarioSpec, SizeDist, TenantSpec};
pub use stats::{
    ChaosCounters, FabricCounters, ScenarioReport, TelemetryReport, TenantRecovery, TenantReport,
    TenantSeries, TenantStats,
};

#[cfg(test)]
mod tests {
    use super::*;
    use cord_hw::system_l;
    use cord_kern::QosClass;
    use cord_nic::Transport;
    use cord_sim::SimDuration;
    use cord_verbs::Dataplane;

    fn tiny(name: &str) -> ScenarioSpec {
        scenarios::by_name(
            name,
            Scale {
                nodes: 4,
                tenants: 4,
                requests: 12,
                seed: 11,
                ..Scale::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn every_builtin_scenario_completes() {
        for &name in scenarios::NAMES {
            let r = run_scenario(&tiny(name)).unwrap();
            // The HoL scenario rides one extra probe tenant (the victim);
            // collective builtins report a single job row instead of
            // tenant rows.
            let expected = match name {
                "pfc-hol-blocking" => 5,
                "allreduce-ring"
                | "allreduce-tree"
                | "allreduce-hd"
                | "expert-shuffle"
                | "straggler-allreduce" => 1,
                _ => 4,
            };
            assert_eq!(r.tenants.len(), expected, "{name}");
            assert!(r.total_completed > 0, "{name}: no traffic");
            for t in &r.tenants {
                assert_eq!(
                    t.issued,
                    t.completed + t.dropped,
                    "{name}/{}: conservation",
                    t.tenant
                );
            }
        }
    }

    #[test]
    fn scenarios_are_deterministic() {
        for &name in ["kv-fanout", "mixed"].iter() {
            let a = run_scenario(&tiny(name)).unwrap();
            let b = run_scenario(&tiny(name)).unwrap();
            assert_eq!(a.elapsed_ms, b.elapsed_ms, "{name}");
            for (x, y) in a.tenants.iter().zip(&b.tenants) {
                assert_eq!(x.p50_us, y.p50_us, "{name}/{}", x.tenant);
                assert_eq!(x.p999_us, y.p999_us, "{name}/{}", x.tenant);
                assert_eq!(x.goodput_gbps, y.goodput_gbps, "{name}/{}", x.tenant);
                assert_eq!(x.dropped, y.dropped, "{name}/{}", x.tenant);
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        // Same scenario as tiny("kv-fanout"), different seed only.
        let spec_a = tiny("kv-fanout");
        let scale = Scale {
            nodes: 4,
            tenants: 4,
            requests: 12,
            seed: 99,
            ..Scale::default()
        };
        let spec_b = scenarios::by_name("kv-fanout", scale).unwrap();
        let a = run_scenario(&spec_a).unwrap();
        let b = run_scenario(&spec_b).unwrap();
        // Think times and size draws differ, so the clock disagrees.
        assert_ne!(a.elapsed_ms, b.elapsed_ms);
    }

    #[test]
    fn quota_exhaustion_drops_are_counted() {
        let mut t = TenantSpec::new("greedy", 0, vec![1]);
        t.arrival = Arrival::Open {
            rate_per_s: 10_000_000.0, // far beyond service capacity
        };
        t.window = 16;
        t.quota = Some(2); // window > quota → denials
        t.requests = 200;
        let spec = ScenarioSpec::new("quota-test", system_l(), 2)
            .seed(5)
            .tenant(t);
        let r = run_scenario(&spec).unwrap();
        let g = &r.tenants[0];
        assert!(g.dropped > 0, "quota never bound: {g:?}");
        assert_eq!(g.issued, g.completed + g.dropped);
    }

    #[test]
    fn rate_limit_caps_goodput() {
        let mk = |limit: Option<f64>| {
            let mut t = TenantSpec::new("bulk", 0, vec![1]);
            t.arrival = Arrival::Closed {
                think: SimDuration::ZERO,
            };
            t.req_size = SizeDist::Fixed(64 * 1024);
            t.resp_size = SizeDist::Fixed(32);
            t.requests = 150;
            t.rate_limit_gbps = limit;
            let spec = ScenarioSpec::new("rl-test", system_l(), 2)
                .seed(5)
                .tenant(t);
            run_scenario(&spec).unwrap().tenants[0].goodput_gbps
        };
        let unlimited = mk(None);
        let limited = mk(Some(2.0));
        assert!(
            limited < 2.5,
            "rate limit must bind: {limited} Gbit/s (unlimited {unlimited})"
        );
        assert!(
            unlimited > 2.0 * limited,
            "unlimited should run much faster"
        );
    }

    #[test]
    fn bypass_tenants_ignore_rate_limits() {
        let mk = |dp: Dataplane| {
            let mut t = TenantSpec::new("evader", 0, vec![1]);
            t.dataplane = dp;
            t.req_size = SizeDist::Fixed(64 * 1024);
            t.resp_size = SizeDist::Fixed(32);
            t.requests = 100;
            t.rate_limit_gbps = Some(1.0);
            let spec = ScenarioSpec::new("evade", system_l(), 2).seed(5).tenant(t);
            run_scenario(&spec).unwrap().tenants[0].goodput_gbps
        };
        let cord = mk(Dataplane::Cord);
        let bypass = mk(Dataplane::Bypass);
        // The same limit binds the CoRD tenant but is invisible to bypass —
        // the paper's core motivation, visible at the workload layer.
        assert!(bypass > 3.0 * cord, "bypass {bypass} vs cord {cord}");
    }

    #[test]
    fn qos_protects_foreground_tail() {
        let run = |with_qos: bool| {
            let mut fg = TenantSpec::new("fg", 0, vec![1]);
            fg.req_size = SizeDist::Fixed(128);
            fg.resp_size = SizeDist::Fixed(128);
            fg.requests = 120;
            fg.arrival = Arrival::Closed {
                think: SimDuration::from_us(1),
            };
            let mut bg = TenantSpec::new("bg", 0, vec![1]);
            bg.req_size = SizeDist::Fixed(32 * 1024);
            bg.resp_size = SizeDist::Fixed(32);
            bg.requests = 120;
            if with_qos {
                fg.qos = Some(QosClass::High);
                bg.qos = Some(QosClass::Low);
            }
            let spec = ScenarioSpec::new("qos-test", system_l(), 2)
                .seed(5)
                .tenant(fg)
                .tenant(bg);
            let r = run_scenario(&spec).unwrap();
            r.tenants[0].p99_us
        };
        let without = run(false);
        let with = run(true);
        assert!(
            with <= without,
            "QoS must not worsen the foreground tail: with={with} without={without}"
        );
    }

    #[test]
    fn ud_broadcast_roundtrips() {
        let mut t = TenantSpec::new("gossip", 0, vec![1, 2]);
        t.transport = Transport::Ud;
        t.req_size = SizeDist::Fixed(512);
        t.resp_size = SizeDist::Fixed(64);
        t.requests = 40;
        let spec = ScenarioSpec::new("ud-test", system_l(), 3)
            .seed(5)
            .tenant(t);
        let r = run_scenario(&spec).unwrap();
        assert_eq!(r.tenants[0].completed, 40);
    }
}
