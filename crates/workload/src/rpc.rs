//! The RPC service model: request/response traffic over `SendWqe`/`RecvWqe`
//! with per-request latency accounting.
//!
//! Each tenant connection is one client QP on the tenant's home node paired
//! with one server QP on a server node (RC) or two activated UD QPs. The
//! server runs a worker loop (recv → service compute → respond); the client
//! drives the tenant's arrival process and records sojourn time — scheduled
//! arrival to response — so open-loop queueing delay counts against the SLO,
//! exactly like a production latency dashboard would.

use std::collections::VecDeque;
use std::rc::Rc;

use cord_core::Fabric;
use cord_hw::MemRegion;
use cord_nic::{CqeStatus, QpNum, RecvWqe, SendWqe, Sge, Transport, UdDest, VerbsError, WrId};
use cord_sim::{DetRng, SimDuration};
use cord_verbs::qp::{activate_ud, connect_rc_pair};
use cord_verbs::{Access, Context, Mr, UserQp};

use crate::spec::{Arrival, SizeDist, TenantSpec};
use crate::stats::TenantStats;

/// One side of an established connection.
pub struct Endpoint {
    /// The verbs context this endpoint's resources live in.
    pub ctx: Context,
    /// The endpoint's queue pair.
    pub qp: UserQp,
    /// Outbound payload buffer (requests / responses are read from here).
    pub tx: MemRegion,
    /// Memory registration covering [`tx`](Endpoint::tx).
    pub tx_mr: Mr,
    /// Inbound landing buffer.
    pub rx: MemRegion,
    /// Memory registration covering [`rx`](Endpoint::rx).
    pub rx_mr: Mr,
}

impl Endpoint {
    fn tx_sge(&self, len: usize) -> Sge {
        Sge {
            addr: self.tx.addr,
            len,
            lkey: self.tx_mr.lkey,
        }
    }

    fn rx_sge(&self) -> Sge {
        Sge {
            addr: self.rx.addr,
            len: self.rx.len,
            lkey: self.rx_mr.lkey,
        }
    }
}

/// An established client/server connection, with the server's receive
/// window already preposted (so a client may fire immediately).
pub struct Connection {
    /// The tenant-side endpoint (lives on the tenant's home node).
    pub client: Endpoint,
    /// The server-side endpoint.
    pub server: Endpoint,
    /// RC or UD, as requested by the tenant spec.
    pub transport: Transport,
    /// Max requests in flight (the server preposts this many + 1 recvs).
    pub window: usize,
}

/// Wire one connection for `tenant` to `server_node`.
pub async fn establish(fabric: &Fabric, tenant: &TenantSpec, server_node: usize) -> Connection {
    let window = match tenant.arrival {
        Arrival::Closed { .. } => 1,
        Arrival::Open { .. } => tenant.window,
    };
    let cctx = fabric.new_context(tenant.home, tenant.dataplane);
    let sctx = fabric.new_context(server_node, tenant.dataplane);

    async fn mk_ep(ctx: Context, transport: Transport, tx_len: usize, rx_len: usize) -> Endpoint {
        let tx = ctx.alloc(tx_len, 0xA5);
        let rx = ctx.alloc(rx_len, 0x00);
        let tx_mr = ctx.reg_mr(tx, Access::all()).await;
        let rx_mr = ctx.reg_mr(rx, Access::all()).await;
        let scq = ctx.create_cq(4096).await;
        let rcq = ctx.create_cq(4096).await;
        let qp = ctx.create_qp(transport, &scq, &rcq).await;
        Endpoint {
            ctx,
            qp,
            tx,
            tx_mr,
            rx,
            rx_mr,
        }
    }

    let req_max = tenant.req_size.max();
    let resp_max = tenant.resp_size.max();
    let client = mk_ep(cctx, tenant.transport, req_max, resp_max).await;
    let server = mk_ep(sctx, tenant.transport, resp_max, req_max).await;

    match tenant.transport {
        Transport::Rc => connect_rc_pair(&client.qp, &server.qp).await.unwrap(),
        Transport::Ud => {
            activate_ud(&client.qp).await.unwrap();
            activate_ud(&server.qp).await.unwrap();
        }
    }

    // Prepost the server's receive window before any client traffic exists,
    // so a full client window can never hit an RNR.
    for i in 0..window + 1 {
        server
            .qp
            .post_recv(RecvWqe::new(WrId(i as u64), server.rx_sge()))
            .await
            .expect("server prepost fits RQ depth");
    }

    Connection {
        client,
        server,
        transport: tenant.transport,
        window,
    }
}

/// Server worker loop: recv → service compute → respond, forever. The task
/// parks on its CQ when the scenario drains; it is dropped with the sim.
pub async fn serve(
    ep: Endpoint,
    transport: Transport,
    resp_size: SizeDist,
    service_ns: f64,
    rng: DetRng,
) {
    loop {
        let cqe = ep.qp.recv_cq().wait_one().await;
        if cqe.status != CqeStatus::Success {
            continue;
        }
        // Replenish the receive credit before anything slow.
        let _ = ep.qp.post_recv(RecvWqe::new(cqe.wr_id, ep.rx_sge())).await;
        if service_ns > 0.0 {
            ep.ctx.core().compute_ns(service_ns).await;
        }
        let len = resp_size.sample(&rng);
        let mut wqe = SendWqe::send(WrId(u64::MAX), ep.tx_sge(len));
        if transport == Transport::Ud {
            let (Some(node), Some(qpn)) = (cqe.src_node, cqe.src_qp) else {
                continue;
            };
            wqe = wqe.with_ud_dest(UdDest { node, qpn });
        }
        if ep.qp.post_send(wqe).await.is_ok() {
            ep.qp.send_cq().wait_one().await;
        }
    }
}

/// Per-connection client parameters, cut from a tenant's spec.
pub struct ClientCfg {
    /// Server-side (node, QPN), the UD destination.
    pub peer: (usize, QpNum),
    /// RC or UD.
    pub transport: Transport,
    /// The tenant's arrival process.
    pub arrival: Arrival,
    /// Request-size distribution.
    pub req_size: SizeDist,
    /// Max requests in flight (open loop).
    pub window: usize,
    /// Requests this connection issues.
    pub nreq: usize,
}

/// Drive one client connection through `cfg.nreq` requests of the tenant's
/// arrival process, recording into `stats`.
pub async fn drive_client(ep: Endpoint, cfg: ClientCfg, stats: Rc<TenantStats>, rng: DetRng) {
    let ClientCfg {
        peer,
        transport,
        arrival,
        req_size,
        window,
        nreq,
    } = cfg;
    let sim = ep.ctx.core().sim().clone();
    // FIFO of (scheduled arrival, request bytes) for in-flight requests;
    // RC responses return in order, and closed-loop keeps one in flight.
    let mut pending: VecDeque<(cord_sim::SimTime, usize)> = VecDeque::new();
    // A receive posted for a request that was then denied can be reused.
    let mut recv_credit = false;
    let mut next_arrival = sim.now();

    for seq in 0..nreq as u64 {
        match arrival {
            Arrival::Open { rate_per_s } => {
                let gap_s = rng.exponential(1.0 / rate_per_s.max(1e-9));
                next_arrival += SimDuration::from_ns_f64(gap_s * 1e9);
                if sim.now() < next_arrival {
                    sim.sleep_until(next_arrival).await;
                }
            }
            Arrival::Closed { think } => {
                if !think.is_zero() {
                    let t = rng.exponential(think.as_secs_f64());
                    sim.sleep(SimDuration::from_ns_f64(t * 1e9)).await;
                }
                next_arrival = sim.now();
            }
        }
        let arrival_t = next_arrival;
        stats.on_issue(sim.now());

        // Open loop: admit at most `window` in flight.
        while pending.len() >= window {
            complete_one(&ep, &mut pending, &stats).await;
        }

        if !recv_credit {
            let posted = ep
                .qp
                .post_recv(RecvWqe::new(WrId((1u64 << 32) | seq), ep.rx_sge()))
                .await;
            if posted.is_err() {
                // The QP died (e.g. retransmission retries exhausted on a
                // lossy fabric): this request and everything still queued
                // behind it are lost, not a harness crash.
                stats.on_drop();
                break;
            }
        }
        let req_len = req_size.sample(&rng);
        let mut wqe = SendWqe::send(WrId(seq), ep.tx_sge(req_len));
        if transport == Transport::Ud {
            wqe = wqe.with_ud_dest(UdDest {
                node: peer.0,
                qpn: peer.1,
            });
        }
        match ep.qp.post_send(wqe).await {
            Ok(()) => {
                pending.push_back((arrival_t, req_len));
                recv_credit = false;
            }
            Err(VerbsError::PolicyDenied(_)) => {
                stats.on_drop();
                recv_credit = true;
            }
            Err(VerbsError::InvalidState { .. }) => {
                stats.on_drop();
                break; // dead QP, see above
            }
            Err(e) => panic!("client post_send failed: {e}"),
        }
        // Reap send completions as we go: frees CQ space and lets CoRD
        // policies (quota release) observe completions.
        let _ = ep.qp.send_cq().poll(16).await;
    }

    while !pending.is_empty() {
        complete_one(&ep, &mut pending, &stats).await;
    }
    // Final send-CQ drain (all sends completed before the last response).
    loop {
        let got = ep.qp.send_cq().poll(64).await;
        if got.is_empty() {
            break;
        }
    }
}

async fn complete_one(
    ep: &Endpoint,
    pending: &mut VecDeque<(cord_sim::SimTime, usize)>,
    stats: &TenantStats,
) {
    let cqe = ep.qp.recv_cq().wait_one().await;
    let (arrival, req_len) = pending.pop_front().expect("completion without request");
    if cqe.status == CqeStatus::Success {
        let sim = ep.ctx.core().sim();
        stats.on_complete(
            sim.now(),
            sim.now().saturating_since(arrival),
            req_len + cqe.byte_len,
        );
    } else {
        stats.on_drop();
    }
}
