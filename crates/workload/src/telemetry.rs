//! Deterministic time-series telemetry: fixed-cadence samplers on the
//! sim clock.
//!
//! When a scenario arms [`crate::ScenarioSpec::telemetry`], a sampler
//! chain is scheduled at traffic launch (t0) and re-arms itself every
//! cadence of *virtual* time — never ambient time, so the series is as
//! reproducible as the run itself. Each tick reads:
//!
//! * per-port queue depth and PFC pause state (switched fabrics),
//! * the slowest DCQCN rate across tenant client QPs,
//! * per-tenant in-flight requests and windowed goodput.
//!
//! Every read is observation-only (lazy port settlement merely
//! materializes drain that already happened in virtual time), so arming
//! the samplers never changes what the workload does — only
//! `polls`/`timer_fires` style executor counters move, and those are
//! perf-class, not part of any byte-stable report.

use std::cell::RefCell;
use std::rc::Rc;

use cord_net::Network;
use cord_nic::{Nic, Packet, QpNum};
use cord_sim::{Sim, SimDuration, SimTime};

use crate::stats::{TelemetryReport, TenantRecovery, TenantSeries, TenantStats};

/// Hard cap on collected samples: a runaway scenario stops sampling (and
/// re-arming) rather than growing without bound. 4096 samples cover any
/// built-in scenario at the default cadence with two orders of margin.
const MAX_SAMPLES: usize = 4096;

/// Goodput-restoration threshold: a tenant has recovered once its
/// windowed goodput is back within 10% of the pre-fault rate.
const RECOVERY_FRACTION: f64 = 0.9;

struct SamplerState {
    sim: Sim,
    cadence: SimDuration,
    t0: SimTime,
    net: Rc<Network<Packet>>,
    /// Tenant client QPs running DCQCN, with the NIC that owns each.
    dcqcn: Vec<(Nic, QpNum)>,
    tenants: Vec<Rc<TenantStats>>,
    /// `bytes_moved` at the previous sample, per tenant (windowed-goodput
    /// numerator).
    prev_bytes: RefCell<Vec<u64>>,
    samples: RefCell<RawSamples>,
}

#[derive(Default)]
struct RawSamples {
    t: Vec<SimTime>,
    max_port_queued: Vec<u64>,
    paused_ports: Vec<u64>,
    min_dcqcn_gbps: Vec<f64>,
    /// Indexed `[tenant][sample]`.
    inflight: Vec<Vec<u64>>,
    goodput: Vec<Vec<f64>>,
}

/// A live sampler chain; hold it across the run, then freeze with
/// [`Telemetry::report`].
pub(crate) struct Telemetry {
    state: Rc<SamplerState>,
}

impl Telemetry {
    /// Arm the sampler chain: first tick one cadence after now (the t0
    /// sample would be all zeros), re-arming until [`MAX_SAMPLES`].
    pub(crate) fn install(
        sim: &Sim,
        net: Rc<Network<Packet>>,
        dcqcn: Vec<(Nic, QpNum)>,
        tenants: Vec<Rc<TenantStats>>,
        cadence: SimDuration,
    ) -> Telemetry {
        let n = tenants.len();
        let state = Rc::new(SamplerState {
            sim: sim.clone(),
            cadence,
            t0: sim.now(),
            net,
            dcqcn,
            tenants,
            prev_bytes: RefCell::new(vec![0; n]),
            samples: RefCell::new(RawSamples {
                inflight: vec![Vec::new(); n],
                goodput: vec![Vec::new(); n],
                ..RawSamples::default()
            }),
        });
        let s2 = Rc::clone(&state);
        sim.schedule_at(state.t0 + cadence, move |_| tick(&s2));
        Telemetry { state }
    }

    /// Traffic-launch instant the series is measured from.
    pub(crate) fn t0(&self) -> SimTime {
        self.state.t0
    }

    /// Freeze the collected series into report form. `names` is the
    /// scenario's tenant list, in spec order.
    pub(crate) fn report(&self, names: &[String]) -> TelemetryReport {
        let s = self.state.samples.borrow();
        let t0 = self.state.t0;
        TelemetryReport {
            cadence_us: self.state.cadence.as_us_f64(),
            t_us: s.t.iter().map(|&t| t.since(t0).as_us_f64()).collect(),
            max_port_queued: s.max_port_queued.clone(),
            paused_ports: s.paused_ports.clone(),
            min_dcqcn_gbps: (!self.state.dcqcn.is_empty()).then(|| s.min_dcqcn_gbps.clone()),
            tenants: names
                .iter()
                .enumerate()
                .map(|(i, name)| TenantSeries {
                    tenant: name.clone(),
                    inflight: s.inflight[i].clone(),
                    goodput_gbps: s.goodput[i].clone(),
                })
                .collect(),
        }
    }
}

/// One sampler tick: read everything, then re-arm.
fn tick(state: &Rc<SamplerState>) {
    let now = state.sim.now();
    {
        let mut s = state.samples.borrow_mut();
        if s.t.len() >= MAX_SAMPLES {
            return;
        }
        let (mut maxq, mut paused) = (0u64, 0u64);
        if state.net.plan().is_some() {
            let ports = state.net.plan().map_or(0, |p| p.num_ports());
            for port in 0..ports {
                maxq = maxq.max(state.net.port_queued_bytes(port) as u64);
                paused += u64::from(state.net.port_paused(port));
            }
        }
        let min_rate = state
            .dcqcn
            .iter()
            .filter_map(|(nic, qpn)| {
                nic.dcqcn_snapshot(*qpn)
                    .ok()
                    .flatten()
                    .map(|(rate, _, _)| rate)
            })
            .fold(f64::INFINITY, f64::min);
        let window_s = state.cadence.as_secs_f64();
        let mut prev = state.prev_bytes.borrow_mut();
        for (i, t) in state.tenants.iter().enumerate() {
            let (issued, done, bytes) = t.progress();
            s.inflight[i].push(issued - done);
            s.goodput[i].push((bytes - prev[i]) as f64 * 8.0 / window_s / 1e9);
            prev[i] = bytes;
        }
        s.t.push(now);
        s.max_port_queued.push(maxq);
        s.paused_ports.push(paused);
        s.min_dcqcn_gbps
            .push(if min_rate.is_finite() { min_rate } else { 0.0 });
    }
    let at = now + state.cadence;
    let s2 = Rc::clone(state);
    state.sim.schedule_at(at, move |_| tick(&s2));
}

/// Per-tenant recovery verdicts from a fault's last clearance.
///
/// A tenant's pre-fault rate is its mean windowed goodput over the
/// samples taken before the first fault onset. It has *recovered* at the
/// first post-clearance sample whose windowed goodput is back to
/// [`RECOVERY_FRACTION`] of that rate — or, failing that, at its final
/// issue/completion if it finished every request it issued (a tenant
/// with nothing left to send has trivially recovered). Tenants that
/// never again reach the threshold and never finish are reported
/// unrecovered.
pub(crate) fn compute_recovery(
    telemetry: &TelemetryReport,
    t0: SimTime,
    onset: SimTime,
    clearance: SimTime,
    tenants: &[Rc<TenantStats>],
) -> Vec<TenantRecovery> {
    let onset_us = onset.saturating_since(t0).as_us_f64();
    let clearance_us = clearance.saturating_since(t0).as_us_f64();
    telemetry
        .tenants
        .iter()
        .zip(tenants)
        .map(|(series, stats)| {
            let pre: Vec<f64> = telemetry
                .t_us
                .iter()
                .zip(&series.goodput_gbps)
                .filter(|(t, _)| **t <= onset_us)
                .map(|(_, g)| *g)
                .collect();
            let pre_rate = if pre.is_empty() {
                0.0
            } else {
                pre.iter().sum::<f64>() / pre.len() as f64
            };
            let threshold = RECOVERY_FRACTION * pre_rate;
            let by_goodput = telemetry
                .t_us
                .iter()
                .zip(&series.goodput_gbps)
                .find(|(t, g)| **t > clearance_us && **g >= threshold)
                .map(|(t, _)| t - clearance_us);
            let (issued, done, _) = stats.progress();
            let recovery_us = by_goodput.or_else(|| {
                // Finished tenants recovered at their last event (which
                // may predate the clearance: clamp to zero).
                (issued == done && issued > 0)
                    .then(|| stats.last_event().saturating_since(clearance).as_us_f64())
            });
            TenantRecovery {
                tenant: series.tenant.clone(),
                recovered: recovery_us.is_some(),
                recovery_us,
            }
        })
        .collect()
}
