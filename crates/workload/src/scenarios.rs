//! Built-in cluster-scale scenarios.
//!
//! Every builder takes the same shape knobs — node count, tenant count,
//! requests per tenant — so the `loadgen` binary and tests can scale one
//! scenario from a smoke test to a full cluster storm without code changes.
//! All of them mix CoRD and Bypass tenants (3:1) so policy interposition
//! runs under contention while bypass traffic shares the same fabric.

use cord_hw::{system_l, MachineSpec};
use cord_kern::QosClass;
use cord_net::Topology;
use cord_nic::{CcAlgorithm, Transport};
use cord_sim::SimDuration;
use cord_verbs::Dataplane;

use crate::spec::{Arrival, ScenarioSpec, SizeDist, TenantSpec};

/// Names accepted by [`by_name`], in display order.
pub const NAMES: &[&str] = &[
    "kv-fanout",
    "incast",
    "shuffle",
    "broadcast",
    "mixed",
    "dumbbell-incast",
];

/// Shared scale knobs for the built-in scenarios.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    pub nodes: usize,
    pub tenants: usize,
    /// Requests issued per tenant.
    pub requests: usize,
    pub seed: u64,
    /// Override the scenario's default topology (`None` keeps it: a
    /// fat tree for `incast`/`shuffle`, a dumbbell for `dumbbell-incast`,
    /// the full mesh elsewhere).
    pub topology: Option<Topology>,
    /// Congestion control for every tenant QP.
    pub cc: CcAlgorithm,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            nodes: 16,
            tenants: 32,
            requests: 150,
            seed: 0xC0BD,
            topology: None,
            cc: CcAlgorithm::None,
        }
    }
}

fn machine() -> MachineSpec {
    system_l()
}

/// Congestion-prone scenarios default to a switched fabric; the rest keep
/// the seed-comparable full mesh.
fn shape(spec: ScenarioSpec, scale: Scale, default: Topology) -> ScenarioSpec {
    spec.topology(scale.topology.unwrap_or(default))
        .cc(scale.cc)
}

/// Dumbbell with the bottleneck at a quarter of the host line rate — the
/// shape `dumbbell-incast` and loadgen's `--topology dumbbell` share.
pub const DUMBBELL: Topology = Topology::Dumbbell {
    bottleneck_gbps: 25.0,
};

/// Every 4th tenant bypasses the kernel — the paper's mixed-dataplane
/// matrix at cluster scale.
fn dataplane_for(i: usize) -> Dataplane {
    if i % 4 == 3 {
        Dataplane::Bypass
    } else {
        Dataplane::Cord
    }
}

/// Look up a built-in scenario by name.
pub fn by_name(name: &str, scale: Scale) -> Option<ScenarioSpec> {
    match name {
        "kv-fanout" => Some(kv_fanout(scale)),
        "incast" => Some(incast(scale)),
        "shuffle" => Some(shuffle(scale)),
        "broadcast" => Some(broadcast(scale)),
        "mixed" => Some(mixed(scale)),
        "dumbbell-incast" => Some(dumbbell_incast(scale)),
        _ => None,
    }
}

/// KV-store RPC fan-out: every tenant is a front-end issuing small GETs to
/// four backend shards, closed loop with think time; responses are mostly
/// small with an occasional large value (the classic bimodal KV mix).
pub fn kv_fanout(scale: Scale) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new("kv-fanout", machine(), scale.nodes).seed(scale.seed);
    for i in 0..scale.tenants {
        let home = i % scale.nodes;
        let shards = 4.min(scale.nodes - 1);
        let servers: Vec<usize> = (1..=shards).map(|k| (home + k) % scale.nodes).collect();
        let mut t = TenantSpec::new(format!("kv{i:02}"), home, servers);
        t.dataplane = dataplane_for(i);
        t.arrival = Arrival::Closed {
            think: SimDuration::from_us(2),
        };
        t.req_size = SizeDist::Fixed(64);
        t.resp_size = SizeDist::Bimodal {
            small: 256,
            large: 8192,
            large_frac: 0.05,
        };
        t.requests = scale.requests;
        t.service_ns = 200.0;
        spec = spec.tenant(t);
    }
    shape(spec, scale, Topology::FullMesh)
}

/// Incast: every tenant funnels large PUTs from its own home node into one
/// hot aggregator node (node 0), open loop — the classic fan-in burst that
/// melts switch buffers and tail latency in real clusters. Runs on a fat
/// tree by default so the fan-in actually shares the aggregator's
/// downlink queue.
pub fn incast(scale: Scale) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new("incast", machine(), scale.nodes).seed(scale.seed);
    for i in 0..scale.tenants {
        let home = 1 + i % (scale.nodes - 1);
        let mut t = TenantSpec::new(format!("in{i:02}"), home, vec![0]);
        t.dataplane = dataplane_for(i);
        t.conns_per_server = 2;
        t.arrival = Arrival::Open {
            rate_per_s: 40_000.0,
        };
        t.window = 4;
        t.req_size = SizeDist::Fixed(32 * 1024);
        t.resp_size = SizeDist::Fixed(16);
        t.requests = scale.requests;
        t.service_ns = 100.0;
        spec = spec.tenant(t);
    }
    shape(spec, scale, Topology::fat_tree_for(scale.nodes))
}

/// All-to-all shuffle: every tenant moves fixed-size blocks from its home
/// node to every other node (map→reduce exchange), closed loop at full
/// tilt. With 32 tenants on 16 nodes this drives ~960 QPs concurrently —
/// on a fat tree by default, so the exchange contends across the spines.
pub fn shuffle(scale: Scale) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new("shuffle", machine(), scale.nodes).seed(scale.seed);
    for i in 0..scale.tenants {
        let home = i % scale.nodes;
        let servers: Vec<usize> = (0..scale.nodes).filter(|&n| n != home).collect();
        let mut t = TenantSpec::new(format!("sh{i:02}"), home, servers);
        t.dataplane = dataplane_for(i);
        t.arrival = Arrival::Closed {
            think: SimDuration::ZERO,
        };
        t.req_size = SizeDist::Fixed(16 * 1024);
        t.resp_size = SizeDist::Fixed(64);
        t.requests = scale.requests;
        t.service_ns = 120.0;
        spec = spec.tenant(t);
    }
    shape(spec, scale, Topology::fat_tree_for(scale.nodes))
}

/// Broadcast storm: chatty UD control-plane gossip from every tenant to
/// every other node at a high open-loop rate — lots of tiny datagrams, a
/// message-rate stress rather than a byte stress.
pub fn broadcast(scale: Scale) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new("broadcast", machine(), scale.nodes).seed(scale.seed);
    for i in 0..scale.tenants {
        let home = i % scale.nodes;
        let servers: Vec<usize> = (0..scale.nodes).filter(|&n| n != home).collect();
        let mut t = TenantSpec::new(format!("bc{i:02}"), home, servers);
        t.dataplane = dataplane_for(i);
        t.transport = Transport::Ud;
        t.arrival = Arrival::Open {
            rate_per_s: 200_000.0,
        };
        t.window = 8;
        t.req_size = SizeDist::Fixed(512);
        t.resp_size = SizeDist::Fixed(64);
        t.requests = scale.requests;
        t.service_ns = 50.0;
        spec = spec.tenant(t);
    }
    shape(spec, scale, Topology::FullMesh)
}

/// Background bulk scan + latency-sensitive foreground mix: even tenants
/// are high-QoS small-RPC services, odd tenants are low-QoS bulk scanners
/// held to a 10 Gbit/s rate limit and an outstanding-op quota. The
/// scoreboard shows whether the kernel kept the foreground's tail intact.
pub fn mixed(scale: Scale) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new("mixed", machine(), scale.nodes).seed(scale.seed);
    for i in 0..scale.tenants {
        let home = i % scale.nodes;
        let servers: Vec<usize> = (1..=3.min(scale.nodes - 1))
            .map(|k| (home + k) % scale.nodes)
            .collect();
        let mut t = TenantSpec::new(
            format!("{}{i:02}", if i % 2 == 0 { "fg" } else { "bg" }),
            home,
            servers,
        );
        if i % 2 == 0 {
            // Foreground: latency-sensitive RPC, high priority.
            t.arrival = Arrival::Closed {
                think: SimDuration::from_us(1),
            };
            t.req_size = SizeDist::Fixed(128);
            t.resp_size = SizeDist::Fixed(512);
            t.requests = scale.requests;
            t.service_ns = 150.0;
            t.qos = Some(QosClass::High);
        } else {
            // Background: bulk scanner, low priority, rate-limited, capped
            // outstanding ops. Must use CoRD for the controls to bind.
            t.arrival = Arrival::Open {
                rate_per_s: 30_000.0,
            };
            t.window = 8;
            t.req_size = SizeDist::Fixed(64 * 1024);
            t.resp_size = SizeDist::Fixed(32);
            t.requests = scale.requests / 2;
            t.service_ns = 300.0;
            t.qos = Some(QosClass::Low);
            t.rate_limit_gbps = Some(10.0);
            t.quota = Some(64);
        }
        spec = spec.tenant(t);
    }
    shape(spec, scale, Topology::FullMesh)
}

/// Dumbbell incast: every tenant lives on the right half of a dumbbell and
/// funnels large PUTs across the shared bottleneck into one aggregator on
/// the left (node 0) — 8→1 at the default scale. The scenario the
/// CC-vs-no-CC comparison is built around: with `cc = none` the bottleneck
/// and aggregator downlink queues blow up the tail; with `dcqcn` senders
/// back off and recover the goodput.
pub fn dumbbell_incast(scale: Scale) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new("dumbbell-incast", machine(), scale.nodes).seed(scale.seed);
    // Right half of the dumbbell: nodes [split, nodes).
    let split = scale.nodes.div_ceil(2);
    let right = scale.nodes - split;
    for i in 0..scale.tenants {
        let home = split + i % right.max(1);
        let mut t = TenantSpec::new(format!("db{i:02}"), home, vec![0]);
        t.dataplane = dataplane_for(i);
        t.arrival = Arrival::Open {
            rate_per_s: 40_000.0,
        };
        t.window = 4;
        t.req_size = SizeDist::Fixed(32 * 1024);
        t.resp_size = SizeDist::Fixed(16);
        t.requests = scale.requests;
        t.service_ns = 100.0;
        spec = spec.tenant(t);
    }
    shape(spec, scale, DUMBBELL)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Scale {
        Scale {
            nodes: 4,
            tenants: 4,
            requests: 8,
            seed: 7,
            ..Scale::default()
        }
    }

    #[test]
    fn all_builtins_validate_at_default_and_small_scale() {
        for &name in NAMES {
            let s = by_name(name, Scale::default()).unwrap();
            s.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(s.tenants.len(), 32, "{name}");
            let s = by_name(name, small()).unwrap();
            s.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        }
        assert!(by_name("nope", small()).is_none());
    }

    #[test]
    fn congestion_prone_builtins_default_to_switched_fabrics() {
        assert_eq!(
            incast(Scale::default()).topology,
            Topology::FatTree { radix: 8 }
        );
        assert_eq!(
            shuffle(Scale::default()).topology,
            Topology::FatTree { radix: 8 }
        );
        assert_eq!(dumbbell_incast(Scale::default()).topology, DUMBBELL);
        assert_eq!(kv_fanout(Scale::default()).topology, Topology::FullMesh);
        // Scale overrides both knobs.
        let over = Scale {
            topology: Some(Topology::FullMesh),
            cc: CcAlgorithm::Dcqcn,
            ..Scale::default()
        };
        let s = incast(over);
        assert_eq!(s.topology, Topology::FullMesh);
        assert_eq!(s.cc, CcAlgorithm::Dcqcn);
    }

    #[test]
    fn dumbbell_incast_keeps_senders_on_the_right() {
        let s = dumbbell_incast(Scale::default());
        let split = Scale::default().nodes.div_ceil(2);
        assert!(s.tenants.iter().all(|t| t.home >= split));
        assert!(s.tenants.iter().all(|t| t.servers == vec![0]));
        s.validate().unwrap();
    }

    #[test]
    fn shuffle_reaches_cluster_scale_qp_counts() {
        let s = shuffle(Scale::default());
        // 32 tenants × 15 peers × 2 QPs per connection.
        assert_eq!(s.total_connections() * 2, 960);
    }

    #[test]
    fn mixed_splits_roles() {
        let s = mixed(Scale::default());
        assert!(s
            .tenants
            .iter()
            .step_by(2)
            .all(|t| t.qos == Some(QosClass::High)));
        assert!(s
            .tenants
            .iter()
            .skip(1)
            .step_by(2)
            .all(|t| t.rate_limit_gbps.is_some() && t.quota.is_some()));
    }
}
