//! Built-in cluster-scale scenarios.
//!
//! Every builder takes the same shape knobs — node count, tenant count,
//! requests per tenant — so the `loadgen` binary and tests can scale one
//! scenario from a smoke test to a full cluster storm without code changes.
//! All of them mix CoRD and Bypass tenants (3:1) so policy interposition
//! runs under contention while bypass traffic shares the same fabric.

use cord_chaos::{FaultEvent, FaultSchedule};
use cord_hw::{system_l, MachineSpec};
use cord_kern::QosClass;
use cord_mpi::AllreduceAlgo;
use cord_net::{Routing, Topology};
use cord_nic::{CcAlgorithm, RetxMode, Transport};
use cord_sim::SimDuration;
use cord_verbs::Dataplane;

use crate::collective::{CollectiveJob, CollectiveOp};
use crate::spec::{Arrival, ScenarioSpec, SizeDist, TenantSpec};

/// Names accepted by [`by_name`], in display order.
pub const NAMES: &[&str] = &[
    "kv-fanout",
    "incast",
    "shuffle",
    "broadcast",
    "mixed",
    "dumbbell-incast",
    "pfc-hol-blocking",
    "pause-storm",
    "lossy-incast-rc",
    "spray-incast",
    "link-flap-recovery",
    "switch-death-reroute",
    "straggler-nic",
    "pfc-deadlock",
    "allreduce-ring",
    "allreduce-tree",
    "allreduce-hd",
    "expert-shuffle",
    "prefill-decode",
    "straggler-allreduce",
];

/// Shared scale knobs for the built-in scenarios.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Fabric size in nodes.
    pub nodes: usize,
    /// Tenant count (collective-only builtins ignore it).
    pub tenants: usize,
    /// Requests issued per tenant. Collective builtins derive their
    /// iteration count from it (`requests / 25`, at least 2) so one knob
    /// scales both planes.
    pub requests: usize,
    /// Root RNG seed.
    pub seed: u64,
    /// Override the scenario's default topology (`None` keeps it: a
    /// fat tree for `incast`/`shuffle`, a dumbbell for `dumbbell-incast`,
    /// the full mesh elsewhere).
    pub topology: Option<Topology>,
    /// Override the scenario's default congestion control (`None` keeps
    /// it: DCQCN for the collective and `prefill-decode` builtins, none
    /// elsewhere).
    pub cc: Option<CcAlgorithm>,
    /// Override the per-rank element count of the allreduce builtins
    /// (`None` keeps the 64 Ki-element / 512 KiB default).
    pub elems: Option<usize>,
    /// Override the scenario's default PFC setting (`None` keeps it: on
    /// for `pfc-hol-blocking`/`pause-storm`, off elsewhere). Inert on the
    /// full mesh.
    pub pfc: Option<bool>,
    /// Override the scenario's default RC-retransmission setting (`None`
    /// keeps it: on for `lossy-incast-rc`, off elsewhere).
    pub rc_retx: Option<bool>,
    /// Override the scenario's default routing policy (`None` keeps it:
    /// spray for `spray-incast`, ECMP elsewhere). Spray demands
    /// `rc_retx` with selective repeat — validation rejects the torn
    /// combinations.
    pub routing: Option<Routing>,
    /// Override the scenario's default retransmission flavor (`None`
    /// keeps it: selective repeat for `spray-incast`, go-back-N
    /// elsewhere).
    pub retx_mode: Option<RetxMode>,
    /// Fault-schedule override. `Some(false)` strips the scenario's
    /// built-in schedule (running the chaos scenarios fault-free for
    /// baseline comparison); `None`/`Some(true)` keep it. Scenarios
    /// without a built-in schedule have nothing to enable, so `Some(true)`
    /// is inert there.
    pub faults: Option<bool>,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            nodes: 16,
            tenants: 32,
            requests: 150,
            seed: 0xC0BD,
            topology: None,
            cc: None,
            elems: None,
            pfc: None,
            rc_retx: None,
            routing: None,
            retx_mode: None,
            faults: None,
        }
    }
}

fn machine() -> MachineSpec {
    system_l()
}

/// Congestion-prone scenarios default to a switched fabric; the rest keep
/// the seed-comparable full mesh. Scale overrides win over the scenario's
/// own topology/cc/pfc/retx defaults.
fn shape(spec: ScenarioSpec, scale: Scale, default: Topology) -> ScenarioSpec {
    let cc = scale.cc.unwrap_or(spec.cc);
    let pfc = scale.pfc.unwrap_or(spec.pfc);
    let rc_retx = scale.rc_retx.unwrap_or(spec.rc_retx);
    let routing = scale.routing.unwrap_or(spec.routing);
    let retx_mode = scale.retx_mode.unwrap_or(spec.retx_mode);
    let spec = if scale.faults == Some(false) {
        spec.faults(FaultSchedule::default())
    } else {
        spec
    };
    spec.topology(scale.topology.unwrap_or(default))
        .cc(cc)
        .pfc(pfc)
        .rc_retx(rc_retx)
        .routing(routing)
        .retx_mode(retx_mode)
}

/// Dumbbell with the bottleneck at a quarter of the host line rate — the
/// shape `dumbbell-incast` and loadgen's `--topology dumbbell` share.
pub const DUMBBELL: Topology = Topology::Dumbbell {
    bottleneck_gbps: 25.0,
};

/// Every 4th tenant bypasses the kernel — the paper's mixed-dataplane
/// matrix at cluster scale.
fn dataplane_for(i: usize) -> Dataplane {
    if i % 4 == 3 {
        Dataplane::Bypass
    } else {
        Dataplane::Cord
    }
}

/// Look up a built-in scenario by name.
pub fn by_name(name: &str, scale: Scale) -> Option<ScenarioSpec> {
    match name {
        "kv-fanout" => Some(kv_fanout(scale)),
        "incast" => Some(incast(scale)),
        "shuffle" => Some(shuffle(scale)),
        "broadcast" => Some(broadcast(scale)),
        "mixed" => Some(mixed(scale)),
        "dumbbell-incast" => Some(dumbbell_incast(scale)),
        "pfc-hol-blocking" => Some(pfc_hol_blocking(scale)),
        "pause-storm" => Some(pause_storm(scale)),
        "lossy-incast-rc" => Some(lossy_incast_rc(scale)),
        "spray-incast" => Some(spray_incast(scale)),
        "link-flap-recovery" => Some(link_flap_recovery(scale)),
        "switch-death-reroute" => Some(switch_death_reroute(scale)),
        "straggler-nic" => Some(straggler_nic(scale)),
        "pfc-deadlock" => Some(pfc_deadlock(scale)),
        "allreduce-ring" => Some(allreduce_ring(scale)),
        "allreduce-tree" => Some(allreduce_tree(scale)),
        "allreduce-hd" => Some(allreduce_hd(scale)),
        "expert-shuffle" => Some(expert_shuffle(scale)),
        "prefill-decode" => Some(prefill_decode(scale)),
        "straggler-allreduce" => Some(straggler_allreduce(scale)),
        _ => None,
    }
}

/// KV-store RPC fan-out: every tenant is a front-end issuing small GETs to
/// four backend shards, closed loop with think time; responses are mostly
/// small with an occasional large value (the classic bimodal KV mix).
pub fn kv_fanout(scale: Scale) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new("kv-fanout", machine(), scale.nodes).seed(scale.seed);
    for i in 0..scale.tenants {
        let home = i % scale.nodes;
        let shards = 4.min(scale.nodes - 1);
        let servers: Vec<usize> = (1..=shards).map(|k| (home + k) % scale.nodes).collect();
        let mut t = TenantSpec::new(format!("kv{i:02}"), home, servers);
        t.dataplane = dataplane_for(i);
        t.arrival = Arrival::Closed {
            think: SimDuration::from_us(2),
        };
        t.req_size = SizeDist::Fixed(64);
        t.resp_size = SizeDist::Bimodal {
            small: 256,
            large: 8192,
            large_frac: 0.05,
        };
        t.requests = scale.requests;
        t.service_ns = 200.0;
        spec = spec.tenant(t);
    }
    shape(spec, scale, Topology::FullMesh)
}

/// Incast: every tenant funnels large PUTs from its own home node into one
/// hot aggregator node (node 0), open loop — the classic fan-in burst that
/// melts switch buffers and tail latency in real clusters. Runs on a fat
/// tree by default so the fan-in actually shares the aggregator's
/// downlink queue.
pub fn incast(scale: Scale) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new("incast", machine(), scale.nodes).seed(scale.seed);
    for i in 0..scale.tenants {
        let home = 1 + i % (scale.nodes - 1);
        let mut t = TenantSpec::new(format!("in{i:02}"), home, vec![0]);
        t.dataplane = dataplane_for(i);
        t.conns_per_server = 2;
        t.arrival = Arrival::Open {
            rate_per_s: 40_000.0,
        };
        t.window = 4;
        t.req_size = SizeDist::Fixed(32 * 1024);
        t.resp_size = SizeDist::Fixed(16);
        t.requests = scale.requests;
        t.service_ns = 100.0;
        spec = spec.tenant(t);
    }
    shape(spec, scale, Topology::fat_tree_for(scale.nodes))
}

/// All-to-all shuffle: every tenant moves fixed-size blocks from its home
/// node to every other node (map→reduce exchange), closed loop at full
/// tilt. With 32 tenants on 16 nodes this drives ~960 QPs concurrently —
/// on a fat tree by default, so the exchange contends across the spines.
pub fn shuffle(scale: Scale) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new("shuffle", machine(), scale.nodes).seed(scale.seed);
    for i in 0..scale.tenants {
        let home = i % scale.nodes;
        let servers: Vec<usize> = (0..scale.nodes).filter(|&n| n != home).collect();
        let mut t = TenantSpec::new(format!("sh{i:02}"), home, servers);
        t.dataplane = dataplane_for(i);
        t.arrival = Arrival::Closed {
            think: SimDuration::ZERO,
        };
        t.req_size = SizeDist::Fixed(16 * 1024);
        t.resp_size = SizeDist::Fixed(64);
        t.requests = scale.requests;
        t.service_ns = 120.0;
        spec = spec.tenant(t);
    }
    shape(spec, scale, Topology::fat_tree_for(scale.nodes))
}

/// Broadcast storm: chatty UD control-plane gossip from every tenant to
/// every other node at a high open-loop rate — lots of tiny datagrams, a
/// message-rate stress rather than a byte stress.
pub fn broadcast(scale: Scale) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new("broadcast", machine(), scale.nodes).seed(scale.seed);
    for i in 0..scale.tenants {
        let home = i % scale.nodes;
        let servers: Vec<usize> = (0..scale.nodes).filter(|&n| n != home).collect();
        let mut t = TenantSpec::new(format!("bc{i:02}"), home, servers);
        t.dataplane = dataplane_for(i);
        t.transport = Transport::Ud;
        t.arrival = Arrival::Open {
            rate_per_s: 200_000.0,
        };
        t.window = 8;
        t.req_size = SizeDist::Fixed(512);
        t.resp_size = SizeDist::Fixed(64);
        t.requests = scale.requests;
        t.service_ns = 50.0;
        spec = spec.tenant(t);
    }
    shape(spec, scale, Topology::FullMesh)
}

/// Background bulk scan + latency-sensitive foreground mix: even tenants
/// are high-QoS small-RPC services, odd tenants are low-QoS bulk scanners
/// held to a 10 Gbit/s rate limit and an outstanding-op quota. The
/// scoreboard shows whether the kernel kept the foreground's tail intact.
pub fn mixed(scale: Scale) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new("mixed", machine(), scale.nodes).seed(scale.seed);
    for i in 0..scale.tenants {
        let home = i % scale.nodes;
        let servers: Vec<usize> = (1..=3.min(scale.nodes - 1))
            .map(|k| (home + k) % scale.nodes)
            .collect();
        let mut t = TenantSpec::new(
            format!("{}{i:02}", if i % 2 == 0 { "fg" } else { "bg" }),
            home,
            servers,
        );
        if i % 2 == 0 {
            // Foreground: latency-sensitive RPC, high priority.
            t.arrival = Arrival::Closed {
                think: SimDuration::from_us(1),
            };
            t.req_size = SizeDist::Fixed(128);
            t.resp_size = SizeDist::Fixed(512);
            t.requests = scale.requests;
            t.service_ns = 150.0;
            t.qos = Some(QosClass::High);
        } else {
            // Background: bulk scanner, low priority, rate-limited, capped
            // outstanding ops. Must use CoRD for the controls to bind.
            t.arrival = Arrival::Open {
                rate_per_s: 30_000.0,
            };
            t.window = 8;
            t.req_size = SizeDist::Fixed(64 * 1024);
            t.resp_size = SizeDist::Fixed(32);
            t.requests = scale.requests / 2;
            t.service_ns = 300.0;
            t.qos = Some(QosClass::Low);
            t.rate_limit_gbps = Some(10.0);
            t.quota = Some(64);
        }
        spec = spec.tenant(t);
    }
    shape(spec, scale, Topology::FullMesh)
}

/// Dumbbell incast: every tenant lives on the right half of a dumbbell and
/// funnels large PUTs across the shared bottleneck into one aggregator on
/// the left (node 0) — 8→1 at the default scale. The scenario the
/// CC-vs-no-CC comparison is built around: with `cc = none` the bottleneck
/// and aggregator downlink queues blow up the tail; with `dcqcn` senders
/// back off and recover the goodput.
pub fn dumbbell_incast(scale: Scale) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new("dumbbell-incast", machine(), scale.nodes).seed(scale.seed);
    // Right half of the dumbbell: nodes [split, nodes).
    let split = scale.nodes.div_ceil(2);
    let right = scale.nodes - split;
    for i in 0..scale.tenants {
        let home = split + i % right.max(1);
        let mut t = TenantSpec::new(format!("db{i:02}"), home, vec![0]);
        t.dataplane = dataplane_for(i);
        t.arrival = Arrival::Open {
            rate_per_s: 40_000.0,
        };
        t.window = 4;
        t.req_size = SizeDist::Fixed(32 * 1024);
        t.resp_size = SizeDist::Fixed(16);
        t.requests = scale.requests;
        t.service_ns = 100.0;
        spec = spec.tenant(t);
    }
    shape(spec, scale, DUMBBELL)
}

/// Sampling cadence the chaos builtins arm by default: fine enough to
/// catch a 160 µs fault window with several samples on either side, while
/// keeping the report's telemetry block small.
const CHAOS_TELEMETRY: SimDuration = SimDuration::from_us(20);

/// Switch-port buffer small enough that an incast actually pressures it,
/// yet holding several 32 KiB messages — the go-back-N progress headroom
/// (a replay round must fit the oldest message in full).
const SMALL_BUFFER: usize = 256 << 10;

/// One latency-sensitive probe tenant between two *idle* hosts, used by
/// the PFC scenarios to expose head-of-line blocking: its path shares
/// upstream ports with the incast but its destination downlink is cold.
fn victim_tenant(scale: Scale, requests: usize) -> TenantSpec {
    // Victim home on the second leaf (node 5 at radix 8), destination on
    // the aggregator's leaf but a different host (node 1): the flow rides
    // leaf-1 uplinks and leaf-0 spine-down ports that also carry parked
    // incast frames, then exits through an uncongested downlink.
    let home = 5.min(scale.nodes - 1).max(1);
    let dst = usize::from(home != 1);
    let mut v = TenantSpec::new("victim", home, vec![dst]);
    v.arrival = Arrival::Closed {
        think: SimDuration::from_us(2),
    };
    v.req_size = SizeDist::Fixed(512);
    v.resp_size = SizeDist::Fixed(512);
    v.requests = requests;
    v.service_ns = 100.0;
    v
}

/// Incast tenants: open-loop 32 KiB PUTs from every non-aggregator node
/// into node 0 (the shape `incast` uses, parameterized for reuse).
fn incast_tenants(spec: &mut ScenarioSpec, scale: Scale, rate_per_s: f64, window: usize) {
    for i in 0..scale.tenants {
        let home = 1 + i % (scale.nodes - 1);
        let mut t = TenantSpec::new(format!("in{i:02}"), home, vec![0]);
        t.dataplane = dataplane_for(i);
        t.conns_per_server = 2;
        t.arrival = Arrival::Open { rate_per_s };
        t.window = window;
        t.req_size = SizeDist::Fixed(32 * 1024);
        t.resp_size = SizeDist::Fixed(16);
        t.requests = scale.requests;
        t.service_ns = 100.0;
        spec.tenants.push(t);
    }
}

/// PFC head-of-line blocking: an incast into node 0 on a lossless
/// small-buffer fat tree, plus a `victim` probe between two idle hosts
/// whose path shares upstream ports with the incast. With PFC on
/// (default) the fabric drops nothing but the victim's p99 explodes —
/// parked incast frames block its frames on the shared spine-down port.
/// Re-run with `pfc: Some(false)`, `cc: Dcqcn`, `rc_retx: Some(true)` for
/// the DCQCN counterfactual where the blowup disappears.
pub fn pfc_hol_blocking(scale: Scale) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new("pfc-hol-blocking", machine(), scale.nodes)
        .seed(scale.seed)
        .pfc(true)
        .buffer_bytes(SMALL_BUFFER);
    incast_tenants(&mut spec, scale, 40_000.0, 4);
    spec = spec.tenant(victim_tenant(scale, scale.requests));
    shape(spec, scale, Topology::fat_tree_for(scale.nodes))
}

/// Pause storm: a deliberately oversubscribed incast (double connections,
/// deep windows, high arrival rate) on a lossless small-buffer fat tree
/// with DCQCN off. XOFF cascades from the aggregator downlink through the
/// spine layer into every host uplink — the fabric-wide pathology DCQCN
/// exists to avoid; the report's `net_pauses`/`net_pause_ms` quantify it.
pub fn pause_storm(scale: Scale) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new("pause-storm", machine(), scale.nodes)
        .seed(scale.seed)
        .pfc(true)
        .buffer_bytes(SMALL_BUFFER);
    incast_tenants(&mut spec, scale, 120_000.0, 8);
    shape(spec, scale, Topology::fat_tree_for(scale.nodes))
}

/// Lossy incast recovered by RC retransmission: the same incast on a
/// small-buffer fat tree with PFC *off*, so the aggregator downlink
/// tail-drops — which deadlocked every RC workload before go-back-N
/// existed. With `rc_retx` on (default) the scenario completes and keeps
/// most of its goodput; the report's `net_drops`/`retx_replays` show the
/// recovery working.
pub fn lossy_incast_rc(scale: Scale) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new("lossy-incast-rc", machine(), scale.nodes)
        .seed(scale.seed)
        .rc_retx(true)
        .buffer_bytes(SMALL_BUFFER);
    incast_tenants(&mut spec, scale, 30_000.0, 4);
    shape(spec, scale, Topology::fat_tree_for(scale.nodes))
}

/// The lossy incast under per-packet spray: same small-buffer PFC-off
/// fat tree as `lossy-incast-rc`, but every cross-leaf packet picks the
/// least-congested live spine instead of riding its flow's ECMP hash.
/// Spray reorders fragments by design, so the scenario arms selective
/// repeat — the receiver installs fragments out of order, SACKs the
/// holes, and the sender replays only what is actually missing. Compare
/// `retx_replays` against `lossy-incast-rc` to see both effects: spray
/// spreads the fan-in over all spines, and SACK replays fewer messages
/// for the drops that remain.
pub fn spray_incast(scale: Scale) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new("spray-incast", machine(), scale.nodes)
        .seed(scale.seed)
        .rc_retx(true)
        .retx_mode(RetxMode::Sr)
        .routing(Routing::Spray)
        .buffer_bytes(SMALL_BUFFER);
    incast_tenants(&mut spec, scale, 30_000.0, 4);
    shape(spec, scale, Topology::fat_tree_for(scale.nodes))
}

/// Link-flap recovery: the incast with RC retransmission armed, plus
/// sender node 1's host link administratively downed for a 160 µs window
/// mid-run. Frames crossing the dead link are lost
/// (`chaos_dead_frames`); go-back-N replays them once the link returns,
/// so every flow still completes with zero retry exhaustion — the
/// recovery the scenario exists to assert.
pub fn link_flap_recovery(scale: Scale) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new("link-flap-recovery", machine(), scale.nodes)
        .seed(scale.seed)
        .rc_retx(true)
        .telemetry(CHAOS_TELEMETRY)
        .faults(FaultSchedule::new().event(FaultEvent::LinkFlap {
            node: 1,
            down_at: SimDuration::from_us(80),
            up_at: SimDuration::from_us(240),
        }));
    incast_tenants(&mut spec, scale, 30_000.0, 4);
    shape(spec, scale, Topology::fat_tree_for(scale.nodes))
}

/// Switch-death reroute: the incast with RC retransmission armed, plus
/// spine 1 dying 60 µs into the run. In-flight frames committed to the
/// corpse are lost (`chaos_dead_frames`) and recovered by go-back-N;
/// every later cross-leaf frame that hashed onto the dead spine takes the
/// deterministic detour (`chaos_reroutes`), so the run completes on the
/// surviving spines.
pub fn switch_death_reroute(scale: Scale) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new("switch-death-reroute", machine(), scale.nodes)
        .seed(scale.seed)
        .rc_retx(true)
        .telemetry(CHAOS_TELEMETRY)
        .faults(FaultSchedule::new().event(FaultEvent::SwitchDeath {
            spine: 1,
            at: SimDuration::from_us(60),
        }));
    incast_tenants(&mut spec, scale, 30_000.0, 4);
    shape(spec, scale, Topology::fat_tree_for(scale.nodes))
}

/// Straggler NIC: the incast with the aggregator's NIC pipeline slowed
/// 20× over a 40–400 µs window — the gray-failure host that drags a
/// whole fan-in without dropping a single frame. At 20× the receive
/// pipeline (not the downlink) becomes the bottleneck, so backlog
/// accumulates for the whole window. Nothing is lost and the run
/// completes; the damage shows up purely in the latency distribution
/// versus a fault-free run.
pub fn straggler_nic(scale: Scale) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new("straggler-nic", machine(), scale.nodes)
        .seed(scale.seed)
        .telemetry(CHAOS_TELEMETRY)
        .faults(FaultSchedule::new().event(FaultEvent::StragglerNic {
            node: 0,
            slowdown: 20.0,
            from: SimDuration::from_us(40),
            until: SimDuration::from_us(400),
        }));
    incast_tenants(&mut spec, scale, 30_000.0, 4);
    shape(spec, scale, Topology::fat_tree_for(scale.nodes))
}

/// PFC deadlock: the lossless small-buffer incast, wedged 60 µs in by a
/// cyclic-buffer-dependency injection that force-pauses every port on
/// the aggregator's leaf loop. Without the watchdog the fabric would
/// hang forever (lossless fabrics don't drop their way out); the
/// no-progress watchdog detects the stuck ports and breaks them —
/// `chaos_pfc_deadlocks` pins the pathology while the run still
/// completes.
pub fn pfc_deadlock(scale: Scale) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new("pfc-deadlock", machine(), scale.nodes)
        .seed(scale.seed)
        .pfc(true)
        .buffer_bytes(SMALL_BUFFER)
        .telemetry(CHAOS_TELEMETRY)
        .faults(
            FaultSchedule::new().event(FaultEvent::CyclicBufferDependency {
                at: SimDuration::from_us(60),
            }),
        );
    incast_tenants(&mut spec, scale, 40_000.0, 4);
    shape(spec, scale, Topology::fat_tree_for(scale.nodes))
}

/// Default per-rank allreduce payload: 64 Ki f64 elements (512 KiB). At
/// the default 16 ranks a ring step moves 32 KiB chunks — deep in the
/// rendezvous regime, so the collective saturates the fabric instead of
/// trickling eager copies.
const ALLREDUCE_ELEMS: usize = 64 * 1024;

/// Expert-shuffle token shape: 256 tokens of 1 KiB per rank per
/// iteration (256 KiB contributed per rank).
const SHUFFLE_TOKENS: usize = 256;
const SHUFFLE_TOKEN_BYTES: usize = 1024;

/// Collective iteration count derived from the shared `requests` knob, so
/// one flag scales tenant and collective builtins alike.
fn iters_for(scale: Scale) -> usize {
    (scale.requests / 25).max(2)
}

/// One allreduce world spanning every node (one rank per node), explicit
/// algorithm, DCQCN armed — the common core of the allreduce builtins.
fn allreduce_spec(name: &'static str, algo: AllreduceAlgo, scale: Scale) -> ScenarioSpec {
    let elems = scale.elems.unwrap_or(ALLREDUCE_ELEMS);
    let mut job = CollectiveJob::new(
        format!("{algo}"),
        CollectiveOp::Allreduce { algo, elems },
        scale.nodes,
    );
    job.iters = iters_for(scale);
    let spec = ScenarioSpec::new(name, machine(), scale.nodes)
        .seed(scale.seed)
        .cc(CcAlgorithm::Dcqcn)
        .collective(job);
    shape(spec, scale, Topology::fat_tree_for(scale.nodes))
}

/// Ring allreduce sized to saturate the fabric: one rank per node on a
/// fat tree, DCQCN armed, 512 KiB per rank per iteration. The
/// bandwidth-optimal schedule — every link carries `2(P-1)/P` of the
/// payload, so `busbw` approaches line rate on an uncongested fabric.
pub fn allreduce_ring(scale: Scale) -> ScenarioSpec {
    allreduce_spec("allreduce-ring", AllreduceAlgo::Ring, scale)
}

/// The same job under the binomial-tree schedule — latency-optimal but
/// bandwidth-poor (rank 0's links carry everything). Compare `busbw`
/// against `allreduce-ring` to see the crossover the `auto` heuristic
/// encodes.
pub fn allreduce_tree(scale: Scale) -> ScenarioSpec {
    allreduce_spec("allreduce-tree", AllreduceAlgo::Tree, scale)
}

/// Rabenseifner halving-doubling allreduce on a *lossless* fabric: PFC on,
/// DCQCN armed — the classic HPC configuration. Requires a power-of-two
/// node count to actually run halving-doubling (it falls back to the tree
/// schedule otherwise).
pub fn allreduce_hd(scale: Scale) -> ScenarioSpec {
    let elems = scale.elems.unwrap_or(ALLREDUCE_ELEMS);
    let algo = AllreduceAlgo::HalvingDoubling;
    let mut job = CollectiveJob::new(
        format!("{algo}"),
        CollectiveOp::Allreduce { algo, elems },
        scale.nodes,
    );
    job.iters = iters_for(scale);
    let spec = ScenarioSpec::new("allreduce-hd", machine(), scale.nodes)
        .seed(scale.seed)
        .cc(CcAlgorithm::Dcqcn)
        .pfc(true)
        .collective(job);
    shape(spec, scale, Topology::fat_tree_for(scale.nodes))
}

/// MoE expert shuffle under the full modern-fabric stack: per-packet
/// spray + selective repeat + DCQCN. Every rank assigns each of its 256
/// 1 KiB tokens to a deterministically-drawn expert rank and exchanges
/// them with one `alltoallv` per iteration — the fine-grained all-to-all
/// that motivates packet spraying in ML fabrics.
pub fn expert_shuffle(scale: Scale) -> ScenarioSpec {
    let mut job = CollectiveJob::new(
        "moe",
        CollectiveOp::ExpertShuffle {
            tokens_per_rank: SHUFFLE_TOKENS,
            token_bytes: SHUFFLE_TOKEN_BYTES,
        },
        scale.nodes,
    );
    job.iters = iters_for(scale);
    let spec = ScenarioSpec::new("expert-shuffle", machine(), scale.nodes)
        .seed(scale.seed)
        .cc(CcAlgorithm::Dcqcn)
        .rc_retx(true)
        .retx_mode(RetxMode::Sr)
        .routing(Routing::Spray)
        .collective(job);
    shape(spec, scale, Topology::fat_tree_for(scale.nodes))
}

/// Disaggregated prefill/decode serving: prefill nodes (the left half)
/// push KV-cache chunks to decode nodes (the right half) as large one-way
/// RDMA writes with tiny acks, open-loop arrivals, and a tight 250 µs
/// latency SLO per transfer. DCQCN armed — inference fabrics run it. The
/// report's per-tenant `slo_attained` is the serving metric: the fraction
/// of transfers that met the objective.
pub fn prefill_decode(scale: Scale) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new("prefill-decode", machine(), scale.nodes)
        .seed(scale.seed)
        .cc(CcAlgorithm::Dcqcn);
    let split = scale.nodes.div_ceil(2);
    let decode_nodes = scale.nodes - split;
    for i in 0..scale.tenants {
        let home = i % split;
        let decode = split + i % decode_nodes.max(1);
        let mut t = TenantSpec::new(format!("pd{i:02}"), home, vec![decode]);
        t.dataplane = dataplane_for(i);
        t.arrival = Arrival::Open {
            rate_per_s: 20_000.0,
        };
        t.window = 4;
        // One KV-cache chunk per request; the response is a bare ack.
        t.req_size = SizeDist::Fixed(128 * 1024);
        t.resp_size = SizeDist::Fixed(16);
        t.requests = scale.requests;
        t.service_ns = 100.0;
        t.slo = Some(SimDuration::from_us(250));
        spec = spec.tenant(t);
    }
    shape(spec, scale, Topology::fat_tree_for(scale.nodes))
}

/// The ring allreduce dragged by a gray-failure host: node 0's NIC
/// pipeline runs 20× slow over a 40–600 µs window. Rank 0 straggles,
/// every ring neighbor stalls behind it, and the report quantifies the
/// damage three ways: `straggler_skew` on the collective row, the
/// completion-time blowup versus a `faults: Some(false)` baseline, and —
/// with telemetry armed — a per-job recovery verdict after the window
/// clears.
pub fn straggler_allreduce(scale: Scale) -> ScenarioSpec {
    let elems = scale.elems.unwrap_or(ALLREDUCE_ELEMS);
    let algo = AllreduceAlgo::Ring;
    let mut job = CollectiveJob::new(
        format!("{algo}"),
        CollectiveOp::Allreduce { algo, elems },
        scale.nodes,
    );
    job.iters = iters_for(scale);
    let spec = ScenarioSpec::new("straggler-allreduce", machine(), scale.nodes)
        .seed(scale.seed)
        .cc(CcAlgorithm::Dcqcn)
        .telemetry(CHAOS_TELEMETRY)
        .faults(FaultSchedule::new().event(FaultEvent::StragglerNic {
            node: 0,
            slowdown: 20.0,
            from: SimDuration::from_us(40),
            until: SimDuration::from_us(600),
        }))
        .collective(job);
    shape(spec, scale, Topology::fat_tree_for(scale.nodes))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Scale {
        Scale {
            nodes: 4,
            tenants: 4,
            requests: 8,
            seed: 7,
            ..Scale::default()
        }
    }

    #[test]
    fn all_builtins_validate_at_default_and_small_scale() {
        for &name in NAMES {
            let s = by_name(name, Scale::default()).unwrap();
            s.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            // The HoL scenario rides one extra probe tenant (the victim);
            // the collective builtins run a single MPI world, no tenants.
            let expected = match name {
                "pfc-hol-blocking" => 33,
                "allreduce-ring"
                | "allreduce-tree"
                | "allreduce-hd"
                | "expert-shuffle"
                | "straggler-allreduce" => 0,
                _ => 32,
            };
            assert_eq!(s.tenants.len(), expected, "{name}");
            let s = by_name(name, small()).unwrap();
            s.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        }
        assert!(by_name("nope", small()).is_none());
    }

    #[test]
    fn fabric_scenarios_set_their_defaults_and_scale_overrides_win() {
        let hol = pfc_hol_blocking(Scale::default());
        assert!(hol.pfc && !hol.rc_retx);
        assert_eq!(hol.buffer_bytes, Some(SMALL_BUFFER));
        assert_eq!(hol.topology, Topology::FatTree { radix: 8 });
        assert!(hol.tenants.iter().any(|t| t.name == "victim"));

        let storm = pause_storm(Scale::default());
        assert!(storm.pfc && !storm.rc_retx);

        let lossy = lossy_incast_rc(Scale::default());
        assert!(!lossy.pfc && lossy.rc_retx);
        assert_eq!(lossy.routing, Routing::Ecmp);
        assert_eq!(lossy.retx_mode, RetxMode::Gbn);

        // The DCQCN counterfactual: PFC forced off, retx forced on.
        let over = Scale {
            pfc: Some(false),
            rc_retx: Some(true),
            cc: Some(CcAlgorithm::Dcqcn),
            ..Scale::default()
        };
        let s = pfc_hol_blocking(over);
        assert!(!s.pfc && s.rc_retx);
        assert_eq!(s.cc, CcAlgorithm::Dcqcn);
        // Pre-existing scenarios keep the fabric knobs off by default.
        let inc = incast(Scale::default());
        assert!(!inc.pfc && !inc.rc_retx && inc.buffer_bytes.is_none());
    }

    #[test]
    fn chaos_builtins_carry_schedules_and_scale_can_strip_them() {
        // Each chaos builtin ships exactly one fault event; everything
        // else stays fault-free.
        for &name in NAMES {
            let s = by_name(name, Scale::default()).unwrap();
            let chaos = matches!(
                name,
                "link-flap-recovery"
                    | "switch-death-reroute"
                    | "straggler-nic"
                    | "pfc-deadlock"
                    | "straggler-allreduce"
            );
            assert_eq!(s.faults.events.len(), usize::from(chaos), "{name}");
        }
        // Recovery scenarios arm retransmission; the deadlock one is
        // lossless with the wedge-prone small buffer.
        assert!(link_flap_recovery(Scale::default()).rc_retx);
        assert!(switch_death_reroute(Scale::default()).rc_retx);
        let wedge = pfc_deadlock(Scale::default());
        assert!(wedge.pfc);
        assert_eq!(wedge.buffer_bytes, Some(SMALL_BUFFER));
        // `faults: Some(false)` strips the schedule for baseline runs.
        let off = Scale {
            faults: Some(false),
            ..Scale::default()
        };
        assert!(switch_death_reroute(off).faults.is_empty());
    }

    #[test]
    fn congestion_prone_builtins_default_to_switched_fabrics() {
        assert_eq!(
            incast(Scale::default()).topology,
            Topology::FatTree { radix: 8 }
        );
        assert_eq!(
            shuffle(Scale::default()).topology,
            Topology::FatTree { radix: 8 }
        );
        assert_eq!(dumbbell_incast(Scale::default()).topology, DUMBBELL);
        assert_eq!(kv_fanout(Scale::default()).topology, Topology::FullMesh);
        // Scale overrides both knobs.
        let over = Scale {
            topology: Some(Topology::FullMesh),
            cc: Some(CcAlgorithm::Dcqcn),
            ..Scale::default()
        };
        let s = incast(over);
        assert_eq!(s.topology, Topology::FullMesh);
        assert_eq!(s.cc, CcAlgorithm::Dcqcn);
    }

    #[test]
    fn spray_incast_arms_spray_and_selective_repeat() {
        let s = spray_incast(Scale::default());
        assert_eq!(s.routing, Routing::Spray);
        assert_eq!(s.retx_mode, RetxMode::Sr);
        assert!(s.rc_retx && !s.pfc);
        assert_eq!(s.buffer_bytes, Some(SMALL_BUFFER));
        assert_eq!(s.topology, Topology::FatTree { radix: 8 });
        s.validate().unwrap();
        // Scale can retarget any scenario onto spray + selective repeat
        // (the loadgen `--routing spray --retx-mode sr` path)...
        let over = Scale {
            routing: Some(Routing::Spray),
            rc_retx: Some(true),
            retx_mode: Some(RetxMode::Sr),
            ..Scale::default()
        };
        let s = lossy_incast_rc(over);
        assert_eq!(s.routing, Routing::Spray);
        assert_eq!(s.retx_mode, RetxMode::Sr);
        s.validate().unwrap();
        // ...while a torn override (spray over go-back-N) fails closed.
        let torn = Scale {
            routing: Some(Routing::Spray),
            ..Scale::default()
        };
        assert!(lossy_incast_rc(torn).validate().is_err());
        // Everything else keeps the pre-spray defaults.
        let inc = incast(Scale::default());
        assert_eq!(inc.routing, Routing::Ecmp);
        assert_eq!(inc.retx_mode, RetxMode::Gbn);
    }

    #[test]
    fn collective_builtins_arm_the_modern_fabric_stack() {
        // The allreduce builtins run one world spanning every node, with
        // DCQCN on by default and the algorithm named explicitly.
        let ring = allreduce_ring(Scale::default());
        assert_eq!(ring.collectives.len(), 1);
        assert_eq!(ring.collectives[0].ranks, 16);
        assert_eq!(ring.cc, CcAlgorithm::Dcqcn);
        assert!(matches!(
            ring.collectives[0].op,
            CollectiveOp::Allreduce {
                algo: AllreduceAlgo::Ring,
                elems: ALLREDUCE_ELEMS,
            }
        ));
        // requests=150 → 6 iterations; the `elems` knob overrides sizing.
        assert_eq!(ring.collectives[0].iters, 6);
        let sized = allreduce_ring(Scale {
            elems: Some(1024),
            ..Scale::default()
        });
        assert!(matches!(
            sized.collectives[0].op,
            CollectiveOp::Allreduce { elems: 1024, .. }
        ));
        // HD runs lossless; expert shuffle arms spray + SR + retx.
        assert!(allreduce_hd(Scale::default()).pfc);
        let moe = expert_shuffle(Scale::default());
        assert_eq!(moe.routing, Routing::Spray);
        assert_eq!(moe.retx_mode, RetxMode::Sr);
        assert!(moe.rc_retx);
        moe.validate().unwrap();
        // The straggler variant carries its schedule and telemetry.
        let st = straggler_allreduce(Scale::default());
        assert_eq!(st.faults.events.len(), 1);
        assert!(st.telemetry.is_some());
        // `cc` override still wins over the collective default.
        let off = allreduce_ring(Scale {
            cc: Some(CcAlgorithm::None),
            ..Scale::default()
        });
        assert_eq!(off.cc, CcAlgorithm::None);
    }

    #[test]
    fn prefill_decode_splits_the_cluster_and_sets_slos() {
        let s = prefill_decode(Scale::default());
        let split = Scale::default().nodes.div_ceil(2);
        for t in &s.tenants {
            assert!(t.home < split, "{}: prefill side", t.name);
            assert!(t.servers.iter().all(|&d| d >= split), "{}", t.name);
            assert_eq!(t.slo, Some(SimDuration::from_us(250)), "{}", t.name);
            assert!(matches!(t.arrival, Arrival::Open { .. }), "{}", t.name);
        }
        assert_eq!(s.cc, CcAlgorithm::Dcqcn);
        s.validate().unwrap();
    }

    #[test]
    fn dumbbell_incast_keeps_senders_on_the_right() {
        let s = dumbbell_incast(Scale::default());
        let split = Scale::default().nodes.div_ceil(2);
        assert!(s.tenants.iter().all(|t| t.home >= split));
        assert!(s.tenants.iter().all(|t| t.servers == vec![0]));
        s.validate().unwrap();
    }

    #[test]
    fn shuffle_reaches_cluster_scale_qp_counts() {
        let s = shuffle(Scale::default());
        // 32 tenants × 15 peers × 2 QPs per connection.
        assert_eq!(s.total_connections() * 2, 960);
    }

    #[test]
    fn mixed_splits_roles() {
        let s = mixed(Scale::default());
        assert!(s
            .tenants
            .iter()
            .step_by(2)
            .all(|t| t.qos == Some(QosClass::High)));
        assert!(s
            .tenants
            .iter()
            .skip(1)
            .step_by(2)
            .all(|t| t.rate_limit_gbps.is_some() && t.quota.is_some()));
    }
}
