//! End-to-end lossless/lossy fabric scenarios: PFC head-of-line blocking
//! (and its disappearance under DCQCN), pause storms, and RC
//! retransmission recovering goodput on a tail-dropping fat tree.

use cord_nic::RetxMode;
use cord_workload::scenarios::{
    lossy_incast_rc, pause_storm, pfc_hol_blocking, spray_incast, Scale,
};
use cord_workload::{run_scenario, ScenarioReport};

fn scale() -> Scale {
    Scale {
        nodes: 16,
        tenants: 8,
        requests: 15,
        seed: 0xC0BD,
        ..Scale::default()
    }
}

fn victim_p99(r: &ScenarioReport) -> f64 {
    r.tenants
        .iter()
        .find(|t| t.tenant == "victim")
        .expect("victim tenant present")
        .p99_us
}

fn issued(r: &ScenarioReport) -> u64 {
    r.tenants.iter().map(|t| t.issued).sum()
}

/// The e2e regression the PFC tentpole is built around: the same incast,
/// lossless vs DCQCN. PFC drops nothing but head-of-line blocks the
/// victim flow (its p99 blows up); DCQCN throttles the incast at the
/// source and the blowup disappears.
#[test]
fn pfc_hol_blocking_vs_dcqcn() {
    let pfc = run_scenario(&pfc_hol_blocking(scale())).unwrap();
    let dcqcn = run_scenario(&pfc_hol_blocking(Scale {
        pfc: Some(false),
        rc_retx: Some(true), // lossy now: retransmission keeps it live
        cc: Some(cord_nic::CcAlgorithm::Dcqcn),
        ..scale()
    }))
    .unwrap();

    // Both complete every request.
    assert_eq!(pfc.total_completed, issued(&pfc));
    assert_eq!(dcqcn.total_completed, issued(&dcqcn));

    // Lossless means lossless — and the pauses that buy it are real.
    let fp = pfc.fabric.expect("fabric counters when PFC on");
    assert!(fp.pfc);
    assert_eq!(fp.net_drops, 0, "PFC must not drop");
    assert!(fp.net_pauses > 0, "the incast must assert pauses");
    assert!(fp.net_pause_ms > 0.0);

    // The DCQCN run is lossy (small buffers, no pauses) but recovers.
    let fd = dcqcn.fabric.expect("fabric counters when retx on");
    assert!(!fd.pfc && fd.rc_retx);
    assert_eq!(fd.net_pauses, 0);

    // The victim pins the pathology: head-of-line blocked behind paused
    // incast frames under PFC, unharmed when DCQCN throttles the incast
    // at the source instead.
    let (vp, vd) = (victim_p99(&pfc), victim_p99(&dcqcn));
    assert!(
        vp > 3.0 * vd,
        "HoL blowup must appear under PFC and vanish under DCQCN: \
         victim p99 {vp} µs (PFC) vs {vd} µs (DCQCN)"
    );
}

/// Oversubscribed lossless fat tree: pauses cascade beyond the hot
/// downlink (a pause storm), yet nothing drops and the run completes.
#[test]
fn pause_storm_is_lossless_and_pause_heavy() {
    let r = run_scenario(&pause_storm(scale())).unwrap();
    assert_eq!(r.total_completed, issued(&r));
    let f = r.fabric.expect("fabric counters when PFC on");
    assert_eq!(f.net_drops, 0);
    // A storm, not a blip: more pause episodes than tenants, with
    // meaningful cumulative pause time.
    assert!(f.net_pauses > 8, "pauses: {}", f.net_pauses);
    assert!(f.net_pause_ms > 0.1, "pause_ms: {}", f.net_pause_ms);
}

/// The lossy counterpart: the same incast on the tail-dropping fat tree.
/// Before RC retransmission existed this configuration deadlocked (a
/// dropped fragment stalled its QP forever); now it completes and keeps
/// >= 70% of the goodput of the deep-buffer (lossless) equivalent.
#[test]
fn lossy_incast_rc_recovers_goodput() {
    let lossy = run_scenario(&lossy_incast_rc(scale())).unwrap();
    let mut reference = lossy_incast_rc(scale());
    reference.buffer_bytes = None; // cord-net's deep default: no drops
    let reference = run_scenario(&reference).unwrap();

    assert_eq!(lossy.total_completed, issued(&lossy), "must not stall");
    let f = lossy.fabric.expect("fabric counters when retx on");
    assert!(f.net_drops > 0, "the small buffer must actually drop");
    assert!(f.retx_replays > 0, "retransmission must actually replay");
    assert_eq!(f.retx_exhausted, 0, "no QP may exhaust its retries");

    let fr = reference.fabric.expect("reference records counters too");
    assert_eq!(fr.net_drops, 0, "deep-buffer reference must be loss-free");
    assert!(
        lossy.total_goodput_gbps >= 0.7 * reference.total_goodput_gbps,
        "retransmission must recover >= 70% goodput: {:.2} vs {:.2} Gb/s",
        lossy.total_goodput_gbps,
        reference.total_goodput_gbps
    );
}

/// The cluster-scale differential between the two retransmission
/// flavors: the same lossy incast, once under go-back-N and once under
/// selective repeat. Both must complete everything; selective repeat
/// must replay strictly less (it never throws away delivered-but-
/// out-of-order messages) at comparable goodput.
#[test]
fn selective_repeat_replays_strictly_less_than_gbn() {
    let gbn = run_scenario(&lossy_incast_rc(scale())).unwrap();
    let sr = run_scenario(&lossy_incast_rc(Scale {
        retx_mode: Some(RetxMode::Sr),
        ..scale()
    }))
    .unwrap();

    assert_eq!(gbn.total_completed, issued(&gbn));
    assert_eq!(sr.total_completed, issued(&sr));
    let fg = gbn.fabric.expect("fabric counters when retx on");
    let fs = sr.fabric.expect("fabric counters when retx on");
    assert!(fg.net_drops > 0 && fs.net_drops > 0, "both runs must drop");
    assert_eq!(fs.retx_exhausted, 0, "selective repeat must not exhaust");
    assert!(
        fs.retx_replays < fg.retx_replays,
        "sr must replay strictly less: {} vs {}",
        fs.retx_replays,
        fg.retx_replays
    );
    assert!(
        sr.total_goodput_gbps >= 0.9 * gbn.total_goodput_gbps,
        "sr goodput must not collapse: {:.2} vs {:.2} Gb/s",
        sr.total_goodput_gbps,
        gbn.total_goodput_gbps
    );
}

/// Per-packet spray on the lossy fat tree: reordering is constant (every
/// packet re-picks a spine), yet the selective-repeat receiver delivers
/// everything with zero retry exhaustion.
#[test]
fn spray_incast_completes_under_constant_reordering() {
    let r = run_scenario(&spray_incast(scale())).unwrap();
    assert_eq!(r.total_completed, issued(&r), "must not stall");
    let f = r.fabric.expect("fabric counters when retx on");
    assert_eq!(f.retx_exhausted, 0, "no QP may exhaust its retries");
    assert_eq!(f.routing, cord_net::Routing::Spray);
    assert_eq!(f.retx_mode, RetxMode::Sr);
}

/// PFC pausing, go-back-N recovery, and per-packet spray with selective
/// repeat are all bit-deterministic: same spec + seed serialize to
/// byte-identical reports.
#[test]
fn fabric_scenarios_are_seed_deterministic() {
    for spec in [
        pfc_hol_blocking(scale()),
        lossy_incast_rc(scale()),
        pause_storm(scale()),
        spray_incast(scale()),
    ] {
        let a = serde_json::to_string_pretty(&run_scenario(&spec).unwrap()).unwrap();
        let b = serde_json::to_string_pretty(&run_scenario(&spec).unwrap()).unwrap();
        assert_eq!(a, b, "{}", spec.name);
    }
}
