//! End-to-end collective scenarios: the ML builtins produce finite
//! fabric-level metrics, differential runs agree across allreduce
//! algorithms, the expert-shuffle permutation conserves every byte,
//! and everything stays bit-deterministic.

use std::collections::BTreeSet;

use cord_sim::RngFactory;
use cord_workload::scenarios::{
    allreduce_hd, allreduce_ring, allreduce_tree, expert_shuffle, prefill_decode, Scale,
};
use cord_workload::{expert_assignments, run_scenario, token_payload, CollectiveReport};
use cord_workload::{shuffle_payloads, ScenarioReport};

fn scale() -> Scale {
    Scale {
        nodes: 8,
        tenants: 0,
        requests: 50,
        seed: 0x00C0_11EC,
        ..Scale::default()
    }
}

fn only_collective(r: &ScenarioReport) -> &CollectiveReport {
    assert_eq!(r.collectives.len(), 1);
    &r.collectives[0]
}

/// The headline metrics of a saturating ring allreduce: per-iteration
/// completion times, NCCL-convention bus bandwidth, and straggler skew
/// are all present, finite, and self-consistent.
#[test]
fn ring_allreduce_reports_finite_fabric_metrics() {
    let r = run_scenario(&allreduce_ring(scale())).unwrap();
    let c = only_collective(&r);
    assert_eq!(c.op, "allreduce/ring");
    assert_eq!(c.ranks, 8);
    assert_eq!(c.completion_us.len(), c.iters);
    for &us in &c.completion_us {
        assert!(us.is_finite() && us > 0.0, "completion {us} µs");
    }
    assert!(c.mean_completion_us <= c.max_completion_us);
    assert!(c.algbw_gbps > 0.0 && c.algbw_gbps.is_finite());
    // busbw = algbw × 2(P−1)/P for allreduce.
    let factor = 2.0 * 7.0 / 8.0;
    assert!((c.busbw_gbps - c.algbw_gbps * factor).abs() < 1e-9);
    assert!(c.straggler_skew >= 1.0, "skew is max/mean ≥ 1");
    // The collective also rides the tenant scoreboard: one row, with the
    // fabric bytes it actually moved.
    assert_eq!(r.tenants.len(), 1);
    assert!(r.tenants[0].bytes_moved > 0);
    assert_eq!(r.tenants[0].issued, r.tenants[0].completed);
}

/// Differential test: ring and halving-doubling are different schedules
/// over the same fabric, but the reduction is exact (integer-valued
/// doubles), so both must move the same per-rank byte count and agree
/// with the tree variant on shape. The reduced values themselves are
/// checked rank-by-rank inside `cord-mpi`; here we pin the workload-level
/// contract: same input size, same seed, consistent reports.
#[test]
fn ring_and_halving_doubling_agree_on_the_collective_contract() {
    let ring = run_scenario(&allreduce_ring(scale())).unwrap();
    let hd = run_scenario(&allreduce_hd(scale())).unwrap();
    let tree = run_scenario(&allreduce_tree(scale())).unwrap();
    let (cr, ch, ct) = (
        only_collective(&ring),
        only_collective(&hd),
        only_collective(&tree),
    );
    assert_eq!(cr.bytes_per_rank, ch.bytes_per_rank);
    assert_eq!(cr.bytes_per_rank, ct.bytes_per_rank);
    assert_eq!(cr.iters, ch.iters);
    // Every algorithm completes every iteration on the same fabric.
    for c in [cr, ch, ct] {
        assert!(c.completion_us.iter().all(|us| us.is_finite() && *us > 0.0));
    }
}

/// The expert-shuffle permutation, checked as a pure function the way the
/// fabric would see it: across every (ranks, tokens, bytes) shape, gather
/// what each destination receives, parse each token's header, and verify
/// the multiset of (src, idx) pairs is exactly {every token, once} with
/// payload bytes matching the generator — every byte lands exactly once.
#[test]
fn expert_shuffle_permutation_lands_every_byte_exactly_once() {
    for (ranks, tokens_per_rank, token_bytes) in
        [(2, 1, 8), (4, 7, 32), (8, 64, 96), (16, 33, 1024)]
    {
        for seed in [1u64, 0xDEAD_BEEF, 42] {
            let rng = RngFactory::new(seed);
            let assignments: Vec<Vec<usize>> = (0..ranks)
                .map(|r| {
                    expert_assignments(
                        &rng.stream_indexed("rank", r as u64),
                        ranks,
                        tokens_per_rank,
                    )
                })
                .collect();
            // What destination `d` receives from every source rank.
            let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
            let mut received = 0usize;
            for d in 0..ranks {
                for (src, asg) in assignments.iter().enumerate() {
                    let sends = shuffle_payloads(src, ranks, token_bytes, asg);
                    let buf = &sends[d];
                    assert_eq!(buf.len() % token_bytes, 0);
                    for tok in buf.chunks(token_bytes) {
                        let s = u32::from_le_bytes(tok[0..4].try_into().unwrap()) as usize;
                        let i = u32::from_le_bytes(tok[4..8].try_into().unwrap()) as usize;
                        assert_eq!(s, src, "token src header");
                        assert_eq!(asg[i], d, "token routed to its expert");
                        assert_eq!(tok, token_payload(s, i, token_bytes), "payload bytes");
                        assert!(seen.insert((s, i)), "token ({s},{i}) delivered twice");
                        received += 1;
                    }
                }
            }
            assert_eq!(
                received,
                ranks * tokens_per_rank,
                "ranks={ranks} tokens={tokens_per_rank}: every token exactly once"
            );
        }
    }
}

/// The MoE builtin end to end: spray + selective-repeat + DCQCN armed,
/// all-to-all completes, and the report carries the (P−1)/P bus-bandwidth
/// convention.
#[test]
fn expert_shuffle_builtin_completes_with_the_modern_stack_armed() {
    let r = run_scenario(&expert_shuffle(scale())).unwrap();
    let c = only_collective(&r);
    assert_eq!(c.op, "expert-shuffle");
    let factor = 7.0 / 8.0;
    assert!((c.busbw_gbps - c.algbw_gbps * factor).abs() < 1e-9);
    assert!(c.completion_us.iter().all(|us| us.is_finite() && *us > 0.0));
    let f = r.fabric.expect("retx armed implies fabric counters");
    assert_eq!(f.retx_exhausted, 0, "no QP may die on a healthy fabric");
}

/// Disaggregated serving: the prefill→decode KV-cache push is open-loop
/// with a 250 µs SLO; the report must carry SLO attainment for every
/// decode stream and total attainment must be meaningful (not all-zero).
#[test]
fn prefill_decode_reports_slo_attainment() {
    let r = run_scenario(&prefill_decode(Scale {
        tenants: 6,
        ..scale()
    }))
    .unwrap();
    assert_eq!(r.tenants.len(), 6);
    let mut attained_any = false;
    for t in &r.tenants {
        let slo = t.slo_us.expect("prefill-decode sets an SLO");
        assert!((slo - 250.0).abs() < 1e-9);
        let att = t.slo_attained.expect("attainment reported with an SLO");
        assert!((0.0..=1.0).contains(&att), "{}: {att}", t.tenant);
        attained_any |= att > 0.0;
    }
    assert!(attained_any, "at least one stream must meet the SLO");
    let json = serde_json::to_string_pretty(&r).unwrap();
    assert!(json.contains("\"slo_attained\""));
}

/// SLO keys are chaos-style opt-in: builtins without an SLO serialize
/// byte-identically to the pre-SLO world.
#[test]
fn unarmed_scenarios_carry_no_slo_keys() {
    let json =
        serde_json::to_string_pretty(&run_scenario(&allreduce_ring(scale())).unwrap()).unwrap();
    assert!(!json.contains("\"slo_us\""));
    assert!(!json.contains("\"slo_attained\""));
}

/// The determinism property, extended to the ML plane: collective and
/// serving builtins run twice serialize to byte-identical report JSON.
#[test]
fn ml_builtins_are_bit_deterministic() {
    for spec in [
        allreduce_ring(scale()),
        expert_shuffle(scale()),
        prefill_decode(Scale {
            tenants: 6,
            ..scale()
        }),
    ] {
        let a = serde_json::to_string_pretty(&run_scenario(&spec).unwrap()).unwrap();
        let b = serde_json::to_string_pretty(&run_scenario(&spec).unwrap()).unwrap();
        assert_eq!(a, b, "{}", spec.name);
    }
}
