//! End-to-end chaos scenarios: every builtin either asserts recovery
//! (the run completes despite the fault, retransmission absorbing the
//! loss) or pins the pathology via the chaos detection counters — and
//! fault injection stays bit-deterministic.

use cord_workload::scenarios::{
    link_flap_recovery, pfc_deadlock, straggler_allreduce, straggler_nic, switch_death_reroute,
    Scale,
};
use cord_workload::{run_scenario, ScenarioReport};

fn scale() -> Scale {
    Scale {
        nodes: 16,
        tenants: 8,
        requests: 15,
        seed: 0xC0BD,
        ..Scale::default()
    }
}

fn issued(r: &ScenarioReport) -> u64 {
    r.tenants.iter().map(|t| t.issued).sum()
}

/// A host link dies for 160 µs mid-incast: frames crossing it are lost
/// to dead hardware, go-back-N replays them once the link returns, and
/// every flow still completes — recovery, asserted end to end.
#[test]
fn link_flap_recovery_replays_the_lost_frames_and_completes() {
    let r = run_scenario(&link_flap_recovery(scale())).unwrap();
    assert_eq!(r.total_completed, issued(&r), "must recover, not stall");

    let c = r.chaos.expect("chaos counters with a non-empty schedule");
    assert_eq!(c.faults, 1, "the flap fires exactly once");
    assert_eq!(c.faults_skipped, 0);
    assert!(
        c.chaos_dead_frames > 0,
        "the flap must actually lose frames"
    );
    assert_eq!(c.chaos_pfc_deadlocks, 0, "no PFC in play");

    let f = r.fabric.expect("fabric counters when retx on");
    assert!(f.retx_replays > 0, "retransmission must do the recovering");
    assert_eq!(f.retx_exhausted, 0, "no QP may exhaust its retries");

    // The telemetry samplers witnessed the fault window, so the report
    // carries a per-tenant recovery verdict — and every tenant must have
    // finite clearance-to-recovery time (it completed, after all).
    let rec = r.recovery.as_ref().expect("recovery block with telemetry");
    assert_eq!(rec.len(), r.tenants.len());
    for t in rec {
        assert!(t.recovered, "{} never recovered", t.tenant);
        let us = t.recovery_us.expect("recovered implies a time");
        assert!(us.is_finite() && us >= 0.0, "{}: {us}", t.tenant);
    }
    let tel = r.telemetry.as_ref().expect("chaos builtins arm telemetry");
    assert!(!tel.t_us.is_empty(), "samplers must have fired");
    assert_eq!(tel.tenants.len(), r.tenants.len());
}

/// A spine dies mid-incast: in-flight frames on the corpse are lost and
/// replayed, and every later cross-leaf frame that hashed onto it takes
/// the deterministic detour — the run completes on the survivors.
#[test]
fn switch_death_reroutes_around_the_corpse_and_completes() {
    let r = run_scenario(&switch_death_reroute(scale())).unwrap();
    assert_eq!(r.total_completed, issued(&r), "must recover, not stall");

    let c = r.chaos.expect("chaos counters with a non-empty schedule");
    assert_eq!(c.faults, 1);
    assert!(c.chaos_reroutes > 0, "traffic must detour the dead spine");
    assert!(
        c.chaos_dead_frames > 0,
        "the death strands in-flight frames"
    );

    let f = r.fabric.expect("fabric counters when retx on");
    assert!(f.retx_replays > 0);
    assert_eq!(f.retx_exhausted, 0);

    // A switch death never "clears" — recovery is measured from the
    // death itself, and rerouting must still bring every tenant back.
    let rec = r.recovery.as_ref().expect("recovery block with telemetry");
    assert!(rec.iter().all(|t| t.recovered), "reroute must recover all");
}

/// A gray-failure NIC: the aggregator's pipeline runs 8× slow for 360 µs.
/// Nothing is lost — the damage is pure slowdown, visible across the
/// latency distribution of every tenant funneling into the straggler.
#[test]
fn straggler_nic_drags_the_run_without_losing_anything() {
    let slow = run_scenario(&straggler_nic(scale())).unwrap();
    let healthy = run_scenario(&straggler_nic(Scale {
        faults: Some(false),
        ..scale()
    }))
    .unwrap();

    assert_eq!(slow.total_completed, issued(&slow));
    let c = slow
        .chaos
        .expect("chaos counters with a non-empty schedule");
    assert_eq!(c.faults, 1);
    assert_eq!(c.chaos_dead_frames, 0, "stragglers drop nothing");

    // The baseline run carries no chaos plane at all.
    assert!(healthy.chaos.is_none());
    // The slow window covers most of the run, so mean sojourn rises for
    // the fan-in as a whole (elapsed can stay flat: the last completions
    // land after the window closes).
    let mean = |r: &ScenarioReport| {
        r.tenants.iter().map(|t| t.mean_us).sum::<f64>() / r.tenants.len() as f64
    };
    let (ms, mh) = (mean(&slow), mean(&healthy));
    assert!(
        ms > 1.2 * mh,
        "an 8× straggler must drag the fan-in's mean latency: {ms} vs {mh} µs"
    );
}

/// A gray-failure NIC under a ring allreduce: the collective is a
/// synchronous pipeline, so one slow rank gates every rank. The run must
/// still finish (nothing is lost, only delayed), the recovery block must
/// report finite clearance-to-recovery for the job, and completion time
/// must blow up against a fault-free baseline — the straggler tax,
/// measured at the collective level.
#[test]
fn straggler_under_ring_allreduce_gates_the_whole_ring() {
    let slow = run_scenario(&straggler_allreduce(scale())).unwrap();
    let healthy = run_scenario(&straggler_allreduce(Scale {
        faults: Some(false),
        ..scale()
    }))
    .unwrap();

    assert_eq!(slow.total_completed, issued(&slow), "nothing may be lost");
    let c = slow
        .chaos
        .expect("chaos counters with a non-empty schedule");
    assert_eq!(c.faults, 1);
    assert_eq!(c.chaos_dead_frames, 0, "stragglers drop nothing");
    assert!(healthy.chaos.is_none());

    // PR-7 recovery metrics apply to the collective's scoreboard row:
    // the fault clears mid-run and the job must come back.
    let rec = slow.recovery.as_ref().expect("telemetry armed + fault");
    assert!(!rec.is_empty());
    for t in rec {
        assert!(t.recovered, "{} never recovered", t.tenant);
        let us = t.recovery_us.expect("recovered implies a time");
        assert!(us.is_finite() && us >= 0.0, "{}: {us}", t.tenant);
    }

    // The collective-level damage: a 20× slow NIC inside the ring window
    // must stretch the worst iteration well past the healthy baseline.
    let (cs, ch) = (&slow.collectives[0], &healthy.collectives[0]);
    assert!(
        cs.max_completion_us > 1.2 * ch.max_completion_us,
        "straggler must gate the ring: {} vs {} µs",
        cs.max_completion_us,
        ch.max_completion_us
    );
    assert!(
        cs.straggler_skew >= ch.straggler_skew,
        "skew must not shrink under a straggler: {} vs {}",
        cs.straggler_skew,
        ch.straggler_skew
    );
}

/// A cyclic buffer dependency wedges the lossless fabric: without the
/// watchdog the run would hang forever. The no-progress watchdog detects
/// the stuck ports and breaks them — pathology pinned by the counter,
/// while the fabric stays lossless and the run completes.
#[test]
fn pfc_deadlock_is_detected_broken_and_survived() {
    let r = run_scenario(&pfc_deadlock(scale())).unwrap();
    assert_eq!(r.total_completed, issued(&r), "watchdog must unwedge");

    let c = r.chaos.expect("chaos counters with a non-empty schedule");
    assert_eq!(c.faults, 1);
    assert!(c.chaos_pfc_deadlocks > 0, "the wedge must be detected");

    let f = r.fabric.expect("fabric counters when PFC on");
    assert!(f.pfc);
    assert_eq!(f.net_drops, 0, "lossless even through the deadlock");
}

/// The determinism property the whole plane is built on: any fault
/// schedule, run twice with the same seed, serializes to byte-identical
/// report JSON.
#[test]
fn fault_injection_is_bit_deterministic() {
    for spec in [
        link_flap_recovery(scale()),
        switch_death_reroute(scale()),
        straggler_nic(scale()),
        pfc_deadlock(scale()),
    ] {
        let a = serde_json::to_string_pretty(&run_scenario(&spec).unwrap()).unwrap();
        let b = serde_json::to_string_pretty(&run_scenario(&spec).unwrap()).unwrap();
        assert_eq!(a, b, "{}", spec.name);
        assert!(
            a.contains("\"chaos_pfc_deadlocks\""),
            "{}: chaos block must be reported",
            spec.name
        );
    }
}

/// An empty schedule is not a quieter chaos run — it is no chaos run:
/// the report carries no chaos block, byte-identical to a world where
/// the plane never existed.
#[test]
fn empty_schedules_leave_reports_untouched() {
    let spec = switch_death_reroute(Scale {
        faults: Some(false),
        ..scale()
    });
    assert!(spec.faults.is_empty());
    let json = serde_json::to_string_pretty(&run_scenario(&spec).unwrap()).unwrap();
    assert!(!json.contains("\"faults\""), "no chaos keys without faults");
    assert!(!json.contains("\"chaos_reroutes\""));
}

/// Recovery is a chaos metric: a fault-free run (schedule stripped) keeps
/// its telemetry series but must not report recovery verdicts — there is
/// no clearance to measure from.
#[test]
fn fault_free_runs_carry_no_recovery_block() {
    let spec = link_flap_recovery(Scale {
        faults: Some(false),
        ..scale()
    });
    let r = run_scenario(&spec).unwrap();
    assert!(r.telemetry.is_some(), "telemetry stays armed");
    assert!(r.recovery.is_none(), "no recovery without a fault");
    let json = serde_json::to_string_pretty(&r).unwrap();
    assert!(!json.contains("\"recovery\""));
    assert!(json.contains("\"telemetry\""));
}
