//! End-to-end congestion scenarios: an 8→1 incast across a dumbbell
//! bottleneck, under both dataplanes, with and without DCQCN.
//!
//! The acceptance contract for the cord-net subsystem:
//! * congestion is real — with `cc = none`, fan-in makes p99 measurably
//!   worse than an uncongested single-sender baseline;
//! * DCQCN is safe — throttled senders still deliver ≥ 80 % of the
//!   uncontrolled aggregate goodput;
//! * everything stays deterministic — same spec + seed ⇒ byte-identical
//!   serialized reports.

use cord_nic::CcAlgorithm;
use cord_verbs::Dataplane;
use cord_workload::scenarios::{dumbbell_incast, Scale};
use cord_workload::{run_scenario, ScenarioReport};

/// 16-node dumbbell, `senders` tenants on the right half, all using one
/// dataplane, 8→1 into node 0 at the default scale.
fn incast_report(senders: usize, cc: CcAlgorithm, dataplane: Dataplane) -> ScenarioReport {
    let scale = Scale {
        nodes: 16,
        tenants: senders,
        requests: 20,
        seed: 42,
        cc: Some(cc),
        ..Scale::default()
    };
    let mut spec = dumbbell_incast(scale);
    for t in &mut spec.tenants {
        t.dataplane = dataplane;
    }
    run_scenario(&spec).unwrap()
}

fn worst_p99_us(r: &ScenarioReport) -> f64 {
    r.tenants.iter().map(|t| t.p99_us).fold(0.0, f64::max)
}

#[test]
fn incast_tail_blows_up_without_cc_and_dcqcn_keeps_goodput() {
    for dataplane in [Dataplane::Cord, Dataplane::Bypass] {
        let baseline = incast_report(1, CcAlgorithm::None, dataplane);
        let none = incast_report(8, CcAlgorithm::None, dataplane);
        let dcqcn = incast_report(8, CcAlgorithm::Dcqcn, dataplane);

        // Every request completes in all three configurations.
        for r in [&baseline, &none, &dcqcn] {
            assert_eq!(r.total_completed, r.tenants.len() as u64 * 20);
            assert_eq!(r.total_dropped, 0);
        }

        // 8→1 through the shared bottleneck must hurt the tail vs the
        // uncongested single sender.
        assert!(
            worst_p99_us(&none) > 2.0 * worst_p99_us(&baseline),
            "{dataplane:?}: incast p99 {} vs baseline p99 {}",
            worst_p99_us(&none),
            worst_p99_us(&baseline),
        );

        // DCQCN throttles senders yet recovers ≥ 80 % of the uncontrolled
        // aggregate goodput.
        assert!(
            dcqcn.total_goodput_gbps >= 0.8 * none.total_goodput_gbps,
            "{dataplane:?}: dcqcn {} Gb/s vs uncontrolled {} Gb/s",
            dcqcn.total_goodput_gbps,
            none.total_goodput_gbps,
        );

        // The knobs are recorded for the results JSON.
        assert_eq!(none.topology, "dumbbell/25g");
        assert_eq!(none.cc, "none");
        assert_eq!(dcqcn.cc, "dcqcn");
    }
}

#[test]
fn congested_runs_remain_seed_deterministic() {
    let a = incast_report(8, CcAlgorithm::Dcqcn, Dataplane::Cord);
    let b = incast_report(8, CcAlgorithm::Dcqcn, Dataplane::Cord);
    assert_eq!(
        serde_json::to_string_pretty(&a).unwrap(),
        serde_json::to_string_pretty(&b).unwrap()
    );
}

#[test]
fn fat_tree_incast_also_congests() {
    // The built-in `incast` scenario now defaults to a fat tree; its
    // aggregator downlink is the shared queue.
    let tiny = |tenants| {
        let scale = Scale {
            nodes: 16,
            tenants,
            requests: 15,
            seed: 7,
            ..Scale::default()
        };
        run_scenario(&cord_workload::scenarios::incast(scale)).unwrap()
    };
    let one = tiny(1);
    let many = tiny(8);
    assert_eq!(many.topology, "fat-tree/8");
    assert!(
        worst_p99_us(&many) > worst_p99_us(&one),
        "fan-in must queue: {} vs {}",
        worst_p99_us(&many),
        worst_p99_us(&one)
    );
}
