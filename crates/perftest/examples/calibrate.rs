use cord_hw::{system_a, system_l};
use cord_perftest::{run_test, EmuKnobs, TestOp, TestSpec};
use cord_verbs::{Dataplane, Transport};

fn main() {
    println!("== Fig 1a: send_lat RC, system L ==");
    for (name, knobs) in [
        ("baseline", EmuKnobs::BASELINE),
        ("no-kb", EmuKnobs::no_kernel_bypass()),
        ("no-poll", EmuKnobs::no_busy_polling()),
        ("no-zc", EmuKnobs::no_zero_copy()),
    ] {
        let mut row = vec![name.to_string()];
        for size in [16usize, 4096, 1 << 20] {
            let m = run_test(
                system_l(),
                TestSpec::new(TestOp::SendLat)
                    .size(size)
                    .iters(60)
                    .warmup(10)
                    .knobs(knobs),
                1,
            );
            row.push(format!("{:.2}", m.lat_avg_us));
        }
        println!("{:10} {:>8} {:>8} {:>8}", row[0], row[1], row[2], row[3]);
    }

    println!("== Fig 3: lat overhead at 4KiB (us), modes ==");
    for (op, tr, label) in [
        (TestOp::ReadLat, Transport::Rc, "Read/RC"),
        (TestOp::WriteLat, Transport::Rc, "Write/RC"),
        (TestOp::SendLat, Transport::Rc, "Send/RC"),
        (TestOp::SendLat, Transport::Ud, "Send/UD"),
    ] {
        let base = run_test(
            system_l(),
            TestSpec::new(op).transport(tr).iters(60).warmup(10),
            1,
        )
        .lat_avg_us;
        let mut row = vec![format!("{label} base={base:.2}")];
        for (cm, sm, l2) in [
            (Dataplane::Bypass, Dataplane::Cord, "BP->CD"),
            (Dataplane::Cord, Dataplane::Bypass, "CD->BP"),
            (Dataplane::Cord, Dataplane::Cord, "CD->CD"),
        ] {
            let m = run_test(
                system_l(),
                TestSpec::new(op)
                    .transport(tr)
                    .iters(60)
                    .warmup(10)
                    .modes(cm, sm),
                1,
            );
            row.push(format!("{l2}:{:+.2}", m.lat_avg_us - base));
        }
        println!("{}", row.join("  "));
    }

    println!("== Fig 4: send_bw RC relative throughput / message rate ==");
    for size in [8usize, 64, 512, 1024, 4096, 32768, 262144] {
        let iters = (200_000_000 / size).clamp(200, 3000);
        let b = run_test(
            system_l(),
            TestSpec::new(TestOp::SendBw).size(size).iters(iters),
            1,
        );
        let c = run_test(
            system_l(),
            TestSpec::new(TestOp::SendBw)
                .size(size)
                .iters(iters)
                .modes(Dataplane::Cord, Dataplane::Cord),
            1,
        );
        println!(
            "size {:>7}: bypass {:>8.3} Gb/s {:>6.2} M/s | cord rel {:.3}",
            size,
            b.bw_gbps,
            b.mrate_mps,
            c.bw_gbps / b.bw_gbps
        );
    }

    println!("== System A sanity: send_lat 4KiB overhead ==");
    let ba = run_test(
        system_a(),
        TestSpec::new(TestOp::SendLat).iters(60).warmup(10),
        1,
    )
    .lat_avg_us;
    let ca = run_test(
        system_a(),
        TestSpec::new(TestOp::SendLat)
            .iters(60)
            .warmup(10)
            .modes(Dataplane::Cord, Dataplane::Cord),
        1,
    )
    .lat_avg_us;
    println!("A base {ba:.2} cord {ca:.2} overhead {:+.2}", ca - ba);
}
