//! Calibration tests: the perftest reproduction must match the *shapes*
//! (and, where the paper gives them, the numbers) of Figures 1, 3, 4.
//!
//! Iteration counts are kept small; the simulator is deterministic, so a
//! handful of warmed-up iterations give exact repeatable statistics.

use cord_hw::{system_a, system_l};
use cord_perftest::{run_test, EmuKnobs, TestOp, TestSpec};
use cord_verbs::{Dataplane, Transport};

fn lat(machine: cord_hw::MachineSpec, spec: TestSpec) -> f64 {
    run_test(machine, spec.iters(40).warmup(8), 7).lat_avg_us
}

/// Fig. 1a baseline row: 0.99 µs @16 B, 1.95 µs @4 KiB, 86 µs @1 MiB.
#[test]
fn fig1a_baseline_latencies() {
    let l16 = lat(system_l(), TestSpec::new(TestOp::SendLat).size(16));
    let l4k = lat(system_l(), TestSpec::new(TestOp::SendLat).size(4096));
    let l1m = lat(system_l(), TestSpec::new(TestOp::SendLat).size(1 << 20));
    assert!((0.85..1.15).contains(&l16), "16 B: {l16} µs (paper 0.99)");
    assert!((1.7..2.5).contains(&l4k), "4 KiB: {l4k} µs (paper 1.95)");
    assert!((80.0..95.0).contains(&l1m), "1 MiB: {l1m} µs (paper 86)");
}

/// Fig. 1a: removing kernel bypass adds a *small constant* (~70 ns at 16 B,
/// invisible at 1 MiB) — the paper's headline observation.
#[test]
fn fig1a_no_kernel_bypass_is_cheap() {
    for (size, tol_us) in [(16usize, 0.12), (1 << 20, 1.0)] {
        let base = lat(system_l(), TestSpec::new(TestOp::SendLat).size(size));
        let nokb = lat(
            system_l(),
            TestSpec::new(TestOp::SendLat)
                .size(size)
                .knobs(EmuKnobs::no_kernel_bypass()),
        );
        let delta = nokb - base;
        assert!(
            delta > 0.0 && delta < tol_us,
            "size {size}: +{delta} µs (paper: +0.07 µs at 16 B)"
        );
    }
}

/// Fig. 1a: removing busy-polling costs microseconds — far more than
/// removing kernel bypass ("polling is more important than kernel-bypass").
#[test]
fn fig1a_no_busy_polling_dominates_no_kernel_bypass() {
    let base = lat(system_l(), TestSpec::new(TestOp::SendLat).size(16));
    let nokb = lat(
        system_l(),
        TestSpec::new(TestOp::SendLat)
            .size(16)
            .knobs(EmuKnobs::no_kernel_bypass()),
    );
    let nopoll = lat(
        system_l(),
        TestSpec::new(TestOp::SendLat)
            .size(16)
            .knobs(EmuKnobs::no_busy_polling()),
    );
    let kb_cost = nokb - base;
    let poll_cost = nopoll - base;
    assert!(
        poll_cost > 10.0 * kb_cost,
        "interrupts (+{poll_cost} µs) must dwarf syscalls (+{kb_cost} µs)"
    );
    assert!(
        (2.0..6.0).contains(&poll_cost),
        "paper: +3.7 µs, got +{poll_cost}"
    );
}

/// Fig. 1a: removing zero-copy adds latency proportional to size
/// (~140 µs/MiB; 229 µs total at 1 MiB).
#[test]
fn fig1a_no_zero_copy_scales_with_size() {
    let base16 = lat(system_l(), TestSpec::new(TestOp::SendLat).size(16));
    let nozc16 = lat(
        system_l(),
        TestSpec::new(TestOp::SendLat)
            .size(16)
            .knobs(EmuKnobs::no_zero_copy()),
    );
    assert!(nozc16 - base16 < 0.2, "tiny messages barely affected");
    let nozc1m = lat(
        system_l(),
        TestSpec::new(TestOp::SendLat)
            .size(1 << 20)
            .knobs(EmuKnobs::no_zero_copy()),
    );
    assert!(
        (210.0..260.0).contains(&nozc1m),
        "1 MiB no-ZC: {nozc1m} µs (paper 229)"
    );
}

/// Fig. 3: per-op latency overheads at 4 KiB by mode matrix.
#[test]
fn fig3_overhead_matrix() {
    let spec = |op: TestOp, t: Transport| TestSpec::new(op).transport(t).size(4096);
    let over = |op: TestOp, t: Transport, c: Dataplane, s: Dataplane| {
        let base = lat(system_l(), spec(op, t));
        let m = lat(system_l(), spec(op, t).modes(c, s));
        m - base
    };
    use Dataplane::{Bypass as BP, Cord as CD};

    // RDMA read with CoRD only on the server: zero overhead — the server
    // CPU does not participate (the paper's cleanest data point).
    let read_bp_cd = over(TestOp::ReadLat, Transport::Rc, BP, CD);
    assert!(
        read_bp_cd.abs() < 0.05,
        "Read BP→CoRD: {read_bp_cd} µs (paper ~0)"
    );

    // Read with CoRD on the client costs the client's syscalls, and the
    // server side adds nothing on top.
    let read_cd_bp = over(TestOp::ReadLat, Transport::Rc, CD, BP);
    let read_cd_cd = over(TestOp::ReadLat, Transport::Rc, CD, CD);
    assert!(
        (0.2..1.25).contains(&read_cd_bp),
        "Read CoRD→BP: {read_cd_bp}"
    );
    assert!(
        (read_cd_cd - read_cd_bp).abs() < 0.05,
        "server-side CoRD adds nothing to reads: {read_cd_cd} vs {read_cd_bp}"
    );

    // Two-sided send: each side contributes ~equally; both ≤1.25 µs.
    let s_bp_cd = over(TestOp::SendLat, Transport::Rc, BP, CD);
    let s_cd_bp = over(TestOp::SendLat, Transport::Rc, CD, BP);
    let s_cd_cd = over(TestOp::SendLat, Transport::Rc, CD, CD);
    assert!(
        (s_bp_cd - s_cd_bp).abs() < 0.1,
        "equal contribution per side"
    );
    assert!(
        (s_cd_cd - (s_bp_cd + s_cd_bp)).abs() < 0.15,
        "sides compose additively: {s_cd_cd} vs {}",
        s_bp_cd + s_cd_bp
    );
    assert!((0.2..1.25).contains(&s_cd_cd), "Send CoRD→CoRD: {s_cd_cd}");

    // Write: both sides contribute (perftest write_lat keeps both CPUs on
    // the data path).
    let w_bp_cd = over(TestOp::WriteLat, Transport::Rc, BP, CD);
    let w_cd_cd = over(TestOp::WriteLat, Transport::Rc, CD, CD);
    assert!(
        w_bp_cd > 0.03,
        "server-side write overhead visible: {w_bp_cd}"
    );
    assert!((0.1..1.25).contains(&w_cd_cd), "Write CoRD→CoRD: {w_cd_cd}");

    // UD sends behave like RC sends.
    let u_cd_cd = over(TestOp::SendLat, Transport::Ud, CD, CD);
    assert!(
        (s_cd_cd - u_cd_cd).abs() < 0.2,
        "UD ≈ RC: {u_cd_cd} vs {s_cd_cd}"
    );
}

/// Fig. 3 caption: "We observed the same numbers for other message sizes"
/// — the CoRD overhead is size-independent above the inline-send cap.
/// (Below it, bypass additionally benefits from inline WQEs that the CoRD
/// prototype lacks — that delta is deliberate and drives Fig. 5a.)
#[test]
fn fig3_overhead_is_size_independent() {
    let mut overheads = Vec::new();
    for size in [1024usize, 4096, 65536] {
        let base = lat(system_l(), TestSpec::new(TestOp::SendLat).size(size));
        let cord = lat(
            system_l(),
            TestSpec::new(TestOp::SendLat)
                .size(size)
                .modes(Dataplane::Cord, Dataplane::Cord),
        );
        overheads.push(cord - base);
    }
    let spread = overheads.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - overheads.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        spread < 0.2,
        "constant overhead across sizes: {overheads:?}"
    );
}

/// Fig. 4: bypass small-message rate ~12 M/s; CoRD degrades small messages
/// ~3×; by 32 KiB CoRD is within 1–2% with ~370 k msg/s.
#[test]
fn fig4_throughput_shape() {
    let bw = |size: usize, c: Dataplane, s: Dataplane| {
        let iters = (100_000_000 / size).clamp(150, 1500);
        run_test(
            system_l(),
            TestSpec::new(TestOp::SendBw)
                .size(size)
                .iters(iters)
                .modes(c, s),
            3,
        )
    };
    use Dataplane::{Bypass as BP, Cord as CD};
    let small_bp = bw(64, BP, BP);
    let small_cd = bw(64, CD, CD);
    assert!(
        (8.0..14.0).contains(&small_bp.mrate_mps),
        "bypass small-message rate: {} M/s (paper ~12.5)",
        small_bp.mrate_mps
    );
    let rel_small = small_cd.bw_gbps / small_bp.bw_gbps;
    assert!(
        (0.2..0.55).contains(&rel_small),
        "CoRD small-message relative throughput: {rel_small} (paper ~0.35)"
    );

    let big_bp = bw(32768, BP, BP);
    let big_cd = bw(32768, CD, CD);
    let rel_big = big_cd.bw_gbps / big_bp.bw_gbps;
    assert!(
        rel_big > 0.97,
        "32 KiB degradation ≤ a few %: rel {rel_big} (paper: 1%)"
    );
    assert!(
        (0.3..0.45).contains(&big_bp.mrate_mps),
        "32 KiB message rate: {} M/s (paper ~0.37)",
        big_bp.mrate_mps
    );
}

/// Fig. 4: UD caps at the path MTU (4 KiB).
#[test]
fn fig4_ud_respects_mtu() {
    let m = run_test(
        system_l(),
        TestSpec::new(TestOp::SendBw)
            .transport(Transport::Ud)
            .size(4096)
            .iters(200),
        3,
    );
    assert!(m.bw_gbps > 50.0, "UD at MTU saturates most of the link");
}

/// Fig. 5: system A has larger, noisier overhead than system L, and the
/// missing-inline effect makes small messages worse than large ones.
#[test]
fn fig5_system_a_overheads() {
    let over = |size: usize| {
        let base = lat(system_a(), TestSpec::new(TestOp::SendLat).size(size));
        let cord = lat(
            system_a(),
            TestSpec::new(TestOp::SendLat)
                .size(size)
                .modes(Dataplane::Cord, Dataplane::Cord),
        );
        cord - base
    };
    let small = over(256); // below bypass inline cap (1 KiB on A)
    let large = over(8192); // above it
    assert!(
        small > large,
        "missing inline hurts small messages: {small} vs {large}"
    );
    assert!(
        (0.3..2.5).contains(&large) && (0.3..2.8).contains(&small),
        "overheads in Fig. 5a's 0–2 µs band: small {small}, large {large}"
    );

    // Larger than system L's overhead at the same size.
    let l_over = {
        let base = lat(system_l(), TestSpec::new(TestOp::SendLat).size(4096));
        let cord = lat(
            system_l(),
            TestSpec::new(TestOp::SendLat)
                .size(4096)
                .modes(Dataplane::Cord, Dataplane::Cord),
        );
        cord - base
    };
    assert!(over(4096) > l_over, "system A overhead exceeds system L");
}

/// Latency measurements on system A vary (virtualization jitter), while
/// system L is tight.
#[test]
fn fig5_system_a_is_noisy_system_l_is_not() {
    let spread = |machine: cord_hw::MachineSpec| {
        let m = run_test(
            machine,
            TestSpec::new(TestOp::SendLat)
                .size(4096)
                .iters(60)
                .warmup(8)
                .modes(Dataplane::Cord, Dataplane::Cord),
            11,
        );
        m.lat_max_us - m.lat_min_us
    };
    let l = spread(system_l());
    let a = spread(system_a());
    assert!(a > 4.0 * l.max(0.001), "A spread {a} µs ≫ L spread {l} µs");
}
