//! # cord-perftest — the perftest 4.5 benchmark suite, reproduced
//!
//! The paper measures CoRD with the `linux-rdma/perftest` suite (§5). This
//! crate reimplements the tests it uses over the simulated fabric:
//!
//! * [`spec::TestOp::SendLat`] / `WriteLat` / `ReadLat` — ping-pong
//!   latency, reported as half round trip (full op for reads),
//! * [`spec::TestOp::SendBw`] / `WriteBw` / `ReadBw` — windowed bandwidth
//!   and message rate,
//! * all over RC or UD, with the client and server dataplane chosen
//!   independently (Fig. 3's BP/CoRD matrix), and
//! * the Fig. 1 "technique removal" knobs ([`spec::EmuKnobs`]): extra
//!   copy (no zero-copy), dummy syscall (no kernel bypass), event-driven
//!   completions (no busy-polling).

pub mod bw;
pub mod harness;
pub mod lat;
pub mod runner;
pub mod spec;

pub use runner::{run_on, run_test};
pub use spec::{EmuKnobs, Measurement, TestOp, TestSpec};
