//! Bandwidth tests: windowed pipelines of sends, writes, or reads
//! (perftest's `--tx-depth` model).

use cord_core::prelude::*;

use crate::harness::{setup_pair, Ep};
use crate::spec::{Measurement, TestOp, TestSpec};

/// Server-side receive repost batch (perftest reposts in chunks; the
/// `ibv_post_recv` list API amortizes one doorbell/syscall over the batch).
const RECV_BATCH: usize = 32;

/// Two-sided bandwidth. Throughput is measured at the *receiver* (the
/// number perftest reports), which keeps UD honest: a UD sender's local
/// completions outrun the wire.
pub async fn send_bw(fabric: &Fabric, spec: TestSpec) -> Measurement {
    let (client, server) = setup_pair(fabric, &spec).await;
    let total = spec.iters;
    let size = spec.size;
    let wait = Ep::wait_mode(&spec);
    let sim = fabric.sim().clone();

    // The UD client addresses the server QP explicitly.
    let ud_dest = match spec.transport {
        Transport::Rc => None,
        Transport::Ud => Some((server.qp.node(), server.qp.qpn())),
    };

    // Server preposts a full ring of receives.
    let prepost = server
        .qp
        .ctx()
        .nic()
        .spec()
        .nic
        .rq_depth
        .min(total + spec.window);
    let wqes: Vec<RecvWqe> = (0..prepost)
        .map(|i| RecvWqe::new(WrId(i as u64), server.rx_sge(size.max(1))))
        .collect();
    server.qp.post_recv_batch(wqes).await.unwrap();

    // Server: consume receives, repost in batches, report elapsed time.
    let server_spec = spec.clone();
    let server_task = fabric.spawn({
        let sim = sim.clone();
        async move {
            let spec = server_spec;
            let mut done = 0usize;
            let mut consumed_since_repost = 0usize;
            let t0 = sim.now();
            while done < total {
                let cqes = server.qp.recv_cq().wait_cqes(1, Ep::wait_mode(&spec)).await;
                let mut got = cqes.len();
                // Drain whatever else is ready without extra waits.
                got += server.qp.recv_cq().poll(RECV_BATCH).await.len();
                done += got;
                consumed_since_repost += got;
                if spec.knobs.extra_copy {
                    for _ in 0..got {
                        server.ctx.core().memcpy(spec.size).await;
                    }
                }
                if consumed_since_repost >= RECV_BATCH && done < total {
                    let wqes: Vec<RecvWqe> = (0..consumed_since_repost)
                        .map(|i| RecvWqe::new(WrId(i as u64), server.rx_sge(spec.size.max(1))))
                        .collect();
                    server.qp.post_recv_batch(wqes).await.unwrap();
                    consumed_since_repost = 0;
                }
            }
            sim.now().since(t0).as_us_f64()
        }
    });

    // Client: keep `window` sends outstanding.
    let client_task = fabric.spawn({
        let spec = spec.clone();
        let server_qp = ud_dest;
        async move {
            let mut posted = 0usize;
            let mut completed = 0usize;
            let mut outstanding = 0usize;
            while completed < total {
                while outstanding < spec.window && posted < total {
                    if spec.knobs.dummy_syscall {
                        client.ctx.core().syscall_roundtrip().await;
                    }
                    if spec.knobs.extra_copy {
                        client.ctx.core().memcpy(spec.size).await;
                    }
                    let wqe = SendWqe::send(WrId(posted as u64), client.tx_sge(spec.size));
                    let wqe = match &server_qp {
                        Some((node, qpn)) => wqe.with_ud_dest(UdDest {
                            node: *node,
                            qpn: *qpn,
                        }),
                        None => wqe,
                    };
                    client.qp.post_send(wqe).await.unwrap();
                    posted += 1;
                    outstanding += 1;
                }
                let got = client
                    .qp
                    .send_cq()
                    .wait_cqes(1, Ep::wait_mode(&spec))
                    .await
                    .len()
                    + client.qp.send_cq().poll(spec.window).await.len();
                completed += got;
                outstanding -= got;
            }
        }
    });

    let elapsed_us = server_task.await;
    client_task.await;
    let _ = wait;
    Measurement::from_bandwidth(spec.op, size, total, elapsed_us)
}

/// One-sided bandwidth (writes or reads): client-driven, server passive.
pub async fn onesided_bw(fabric: &Fabric, spec: TestSpec) -> Measurement {
    assert!(matches!(spec.op, TestOp::WriteBw | TestOp::ReadBw));
    let (client, server) = setup_pair(fabric, &spec).await;
    let total = spec.iters;
    let size = spec.size.max(1);
    let sim = fabric.sim().clone();
    let remote_rx = (server.rx.addr, server.rx_mr.rkey);
    let remote_tx = (server.tx.addr, server.tx_mr.rkey);

    let t0 = sim.now();
    let mut posted = 0usize;
    let mut completed = 0usize;
    let mut outstanding = 0usize;
    while completed < total {
        while outstanding < spec.window && posted < total {
            if spec.knobs.dummy_syscall {
                client.ctx.core().syscall_roundtrip().await;
            }
            if spec.knobs.extra_copy {
                client.ctx.core().memcpy(size).await;
            }
            let wqe = match spec.op {
                TestOp::WriteBw => SendWqe::write(
                    WrId(posted as u64),
                    client.tx_sge(size),
                    remote_rx.0,
                    remote_rx.1,
                ),
                TestOp::ReadBw => SendWqe::read(
                    WrId(posted as u64),
                    Sge {
                        addr: client.rx.addr,
                        len: size,
                        lkey: client.rx_mr.lkey,
                    },
                    remote_tx.0,
                    remote_tx.1,
                ),
                _ => unreachable!(),
            };
            client.qp.post_send(wqe).await.unwrap();
            posted += 1;
            outstanding += 1;
        }
        let got = client
            .qp
            .send_cq()
            .wait_cqes(1, Ep::wait_mode(&spec))
            .await
            .len()
            + client.qp.send_cq().poll(spec.window).await.len();
        completed += got;
        outstanding -= got;
        if spec.knobs.extra_copy && spec.op == TestOp::ReadBw {
            for _ in 0..got {
                client.ctx.core().memcpy(size).await;
            }
        }
    }
    let elapsed_us = sim.now().since(t0).as_us_f64();
    drop(server);
    Measurement::from_bandwidth(spec.op, size, total, elapsed_us)
}
