//! Latency tests: `send_lat` (ping-pong), `write_lat` (memory polling),
//! `read_lat` (server CPU idle). Mirrors perftest 4.5 semantics (§5).

use cord_core::prelude::*;
use cord_sim::{Sim, SimDuration};

use crate::harness::{route, setup_pair, Ep};
use crate::spec::{Measurement, TestSpec};

/// Memory-polling granularity for `write_lat` (a cached load loop).
const MEM_POLL_NS: u64 = 25;

/// Spin on a guest-memory byte until it equals `expect`; spin time is
/// accounted to the core for DVFS purposes.
async fn poll_memory(sim: &Sim, core: &Core, mem: &GuestMem, addr: u64, expect: u8) {
    let start = sim.now();
    loop {
        let v = mem.read(addr, 1).expect("registered buffer")[0];
        if v == expect {
            break;
        }
        sim.sleep(SimDuration::from_ns(MEM_POLL_NS)).await;
    }
    let spun = sim.now().since(start);
    if !spun.is_zero() {
        core.account_spin(spun, 0.0);
    }
}

/// Apply the per-operation emulation knobs on the posting side.
async fn apply_post_knobs(spec: &TestSpec, ep: &Ep) {
    if spec.knobs.dummy_syscall {
        ep.ctx.core().syscall_roundtrip().await;
    }
    if spec.knobs.extra_copy {
        ep.ctx.core().memcpy(spec.size).await;
    }
}

/// Two-sided send/receive ping-pong; reports half round-trip per iteration.
pub async fn send_lat(fabric: &Fabric, spec: TestSpec) -> Measurement {
    let (client, server) = setup_pair(fabric, &spec).await;
    let total = spec.iters + spec.warmup;
    let wait = Ep::wait_mode(&spec);
    let size = spec.size;

    // Both sides prepost one receive.
    client
        .qp
        .post_recv(RecvWqe::new(WrId(0), client.rx_sge(size.max(1))))
        .await
        .unwrap();
    server
        .qp
        .post_recv(RecvWqe::new(WrId(0), server.rx_sge(size.max(1))))
        .await
        .unwrap();

    // Server: echo loop.
    let server_spec = spec.clone();
    let client_qp_for_server = client.qp.clone();
    let server_qp = server.qp.clone();
    let server_task = fabric.spawn(async move {
        let spec = server_spec;
        for i in 0..total {
            let _cqe = server.qp.recv_cq().wait_cqes(1, Ep::wait_mode(&spec)).await;
            if spec.knobs.extra_copy {
                server.ctx.core().memcpy(spec.size).await;
            }
            // Repost before answering so the next ping always finds a WQE.
            server
                .qp
                .post_recv(RecvWqe::new(
                    WrId(i as u64),
                    server.rx_sge(spec.size.max(1)),
                ))
                .await
                .unwrap();
            apply_post_knobs(&spec, &server).await;
            let wqe = SendWqe::send(WrId(i as u64), server.tx_sge(spec.size)).unsignaled();
            let wqe = route(&spec, wqe, &client_qp_for_server);
            server.qp.post_send(wqe).await.unwrap();
        }
    });

    // Client: ping, await pong, sample.
    let sim = fabric.sim().clone();
    let mut samples = Vec::with_capacity(spec.iters);
    for i in 0..total {
        let t0 = sim.now();
        apply_post_knobs(&spec, &client).await;
        let wqe = SendWqe::send(WrId(i as u64), client.tx_sge(size)).unsignaled();
        let wqe = route(&spec, wqe, &server_qp);
        client.qp.post_send(wqe).await.unwrap();
        let _pong = client.qp.recv_cq().wait_cqes(1, wait).await;
        if spec.knobs.extra_copy {
            client.ctx.core().memcpy(size).await;
        }
        client
            .qp
            .post_recv(RecvWqe::new(WrId(i as u64), client.rx_sge(size.max(1))))
            .await
            .unwrap();
        if i >= spec.warmup {
            // Half round trip, as perftest reports.
            samples.push(sim.now().since(t0).as_us_f64() / 2.0);
        }
    }
    server_task.await;
    Measurement::from_latency_samples(spec.op, size, samples)
}

/// RDMA-write ping-pong: each side writes a tagged byte into the peer's
/// buffer and memory-polls its own buffer for the answer (perftest's
/// `write_lat` protocol — both CPUs are active, which is why CoRD costs
/// show up on both sides in Fig. 3).
pub async fn write_lat(fabric: &Fabric, spec: TestSpec) -> Measurement {
    let (client, server) = setup_pair(fabric, &spec).await;
    let total = spec.iters + spec.warmup;
    let size = spec.size.max(1);
    let tag_off = (size - 1) as u64;

    // Server side: poll for tag, echo it back.
    let server_spec = spec.clone();
    let sim_s = fabric.sim().clone();
    let client_rx = (client.rx.addr, client.rx_mr.rkey);
    let server_rx = (server.rx.addr, server.rx_mr.rkey);
    let server_task = fabric.spawn(async move {
        let spec = server_spec;
        let size = spec.size.max(1);
        for i in 0..total {
            let tag = (i % 255 + 1) as u8;
            poll_memory(
                &sim_s,
                server.ctx.core(),
                server.ctx.mem(),
                server.rx.addr + tag_off,
                tag,
            )
            .await;
            // Stamp our own buffer and write it back.
            server
                .ctx
                .mem()
                .write(server.tx.addr + tag_off, &[tag])
                .unwrap();
            apply_post_knobs(&spec, &server).await;
            server
                .qp
                .post_send(SendWqe::write(
                    WrId(i as u64),
                    server.tx_sge(size),
                    client_rx.0,
                    client_rx.1,
                ))
                .await
                .unwrap();
            // Reap our own write completion (perftest drains the send CQ
            // each iteration — under CoRD this is a poll system call).
            let _ = server.qp.send_cq().poll(4).await;
        }
    });

    let sim = fabric.sim().clone();
    let mut samples = Vec::with_capacity(spec.iters);
    for i in 0..total {
        let tag = (i % 255 + 1) as u8;
        let t0 = sim.now();
        client
            .ctx
            .mem()
            .write(client.tx.addr + tag_off, &[tag])
            .unwrap();
        apply_post_knobs(&spec, &client).await;
        client
            .qp
            .post_send(SendWqe::write(
                WrId(i as u64),
                client.tx_sge(size),
                server_rx.0,
                server_rx.1,
            ))
            .await
            .unwrap();
        poll_memory(
            &sim,
            client.ctx.core(),
            client.ctx.mem(),
            client.rx.addr + tag_off,
            tag,
        )
        .await;
        let _ = client.qp.send_cq().poll(4).await;
        if i >= spec.warmup {
            samples.push(sim.now().since(t0).as_us_f64() / 2.0);
        }
    }
    server_task.await;
    Measurement::from_latency_samples(spec.op, spec.size, samples)
}

/// RDMA-read loop: the client pulls from the server; the server CPU never
/// participates (the Fig. 3 case where server-side CoRD adds zero cost).
pub async fn read_lat(fabric: &Fabric, spec: TestSpec) -> Measurement {
    let (client, server) = setup_pair(fabric, &spec).await;
    let total = spec.iters + spec.warmup;
    let size = spec.size.max(1);
    let wait = Ep::wait_mode(&spec);
    let sim = fabric.sim().clone();
    let remote = (server.tx.addr, server.tx_mr.rkey);
    let mut samples = Vec::with_capacity(spec.iters);
    for i in 0..total {
        let t0 = sim.now();
        apply_post_knobs(&spec, &client).await;
        client
            .qp
            .post_send(SendWqe::read(
                WrId(i as u64),
                // Reads land in the client's RX buffer.
                Sge {
                    addr: client.rx.addr,
                    len: size,
                    lkey: client.rx_mr.lkey,
                },
                remote.0,
                remote.1,
            ))
            .await
            .unwrap();
        let cqe = client.qp.send_cq().wait_cqes(1, wait).await;
        debug_assert_eq!(cqe[0].status, CqeStatus::Success);
        if spec.knobs.extra_copy {
            client.ctx.core().memcpy(size).await;
        }
        if i >= spec.warmup {
            // Reads are inherently round trips; perftest reports the full
            // op latency.
            samples.push(sim.now().since(t0).as_us_f64());
        }
    }
    drop(server);
    Measurement::from_latency_samples(spec.op, spec.size, samples)
}
