//! Test specifications and measurement results.

use cord_verbs::{Dataplane, Transport};
use serde::Serialize;

/// Which perftest binary this models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum TestOp {
    /// `ib_send_lat`: two-sided ping-pong.
    SendLat,
    /// `ib_write_lat`: RDMA-write ping-pong with memory polling.
    WriteLat,
    /// `ib_read_lat`: RDMA-read loop (server CPU idle).
    ReadLat,
    /// `ib_send_bw`: windowed two-sided bandwidth.
    SendBw,
    /// `ib_write_bw`: windowed one-sided write bandwidth.
    WriteBw,
    /// `ib_read_bw`: windowed one-sided read bandwidth.
    ReadBw,
}

impl TestOp {
    pub fn is_latency(self) -> bool {
        matches!(self, TestOp::SendLat | TestOp::WriteLat | TestOp::ReadLat)
    }

    pub fn label(self) -> &'static str {
        match self {
            TestOp::SendLat => "send_lat",
            TestOp::WriteLat => "write_lat",
            TestOp::ReadLat => "read_lat",
            TestOp::SendBw => "send_bw",
            TestOp::WriteBw => "write_bw",
            TestOp::ReadBw => "read_bw",
        }
    }
}

/// The paper's Fig. 1 "technique removal" knobs (§2): each emulates taking
/// one performance-enabling technique away from classical RDMA.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct EmuKnobs {
    /// "No zero-copy": an extra memcpy when sending / after receiving.
    pub extra_copy: bool,
    /// "No kernel bypass": a `getppid`-style syscall per posted operation.
    pub dummy_syscall: bool,
    /// "No busy-polling": event-driven completion waits (interrupts).
    pub event_driven: bool,
}

impl EmuKnobs {
    pub const BASELINE: EmuKnobs = EmuKnobs {
        extra_copy: false,
        dummy_syscall: false,
        event_driven: false,
    };

    pub fn no_zero_copy() -> Self {
        EmuKnobs {
            extra_copy: true,
            ..Default::default()
        }
    }

    pub fn no_kernel_bypass() -> Self {
        EmuKnobs {
            dummy_syscall: true,
            ..Default::default()
        }
    }

    pub fn no_busy_polling() -> Self {
        EmuKnobs {
            event_driven: true,
            ..Default::default()
        }
    }
}

/// A complete test configuration.
#[derive(Debug, Clone)]
pub struct TestSpec {
    pub op: TestOp,
    pub transport: Transport,
    /// Message size in bytes.
    pub size: usize,
    /// Measured iterations (after warmup).
    pub iters: usize,
    /// Warmup iterations (not recorded).
    pub warmup: usize,
    /// Outstanding operations for bandwidth tests (perftest `--tx-depth`).
    pub window: usize,
    pub client_mode: Dataplane,
    pub server_mode: Dataplane,
    pub knobs: EmuKnobs,
}

impl TestSpec {
    /// perftest-like defaults: RC send latency, 4 KiB, bypass both sides.
    pub fn new(op: TestOp) -> Self {
        TestSpec {
            op,
            transport: Transport::Rc,
            size: 4096,
            iters: if op.is_latency() { 200 } else { 400 },
            warmup: 20,
            window: 128,
            client_mode: Dataplane::Bypass,
            server_mode: Dataplane::Bypass,
            knobs: EmuKnobs::BASELINE,
        }
    }

    pub fn transport(mut self, t: Transport) -> Self {
        self.transport = t;
        self
    }

    pub fn size(mut self, s: usize) -> Self {
        self.size = s;
        self
    }

    pub fn iters(mut self, n: usize) -> Self {
        self.iters = n;
        self
    }

    pub fn warmup(mut self, n: usize) -> Self {
        self.warmup = n;
        self
    }

    pub fn window(mut self, w: usize) -> Self {
        self.window = w;
        self
    }

    pub fn modes(mut self, client: Dataplane, server: Dataplane) -> Self {
        self.client_mode = client;
        self.server_mode = server;
        self
    }

    pub fn knobs(mut self, k: EmuKnobs) -> Self {
        self.knobs = k;
        self
    }
}

/// Result of one test run. Latency tests fill the latency fields;
/// bandwidth tests fill throughput fields.
#[derive(Debug, Clone, Serialize)]
pub struct Measurement {
    pub op: TestOp,
    pub size: usize,
    pub iters: usize,
    /// Mean one-way latency (send) / op latency (read/write), µs.
    pub lat_avg_us: f64,
    pub lat_median_us: f64,
    pub lat_p99_us: f64,
    pub lat_min_us: f64,
    pub lat_max_us: f64,
    /// Raw per-iteration samples, µs (for bimodality analysis, Fig. 5a).
    pub samples_us: Vec<f64>,
    /// Payload throughput, Gbit/s.
    pub bw_gbps: f64,
    /// Message rate, million messages per second.
    pub mrate_mps: f64,
    /// Total measured virtual time, µs.
    pub elapsed_us: f64,
}

impl Measurement {
    pub(crate) fn from_latency_samples(op: TestOp, size: usize, samples_us: Vec<f64>) -> Self {
        assert!(!samples_us.is_empty());
        let mut sorted = samples_us.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = sorted.len();
        let avg = sorted.iter().sum::<f64>() / n as f64;
        let pick = |q: f64| sorted[((q * n as f64).ceil() as usize).clamp(1, n) - 1];
        Measurement {
            op,
            size,
            iters: n,
            lat_avg_us: avg,
            lat_median_us: pick(0.5),
            lat_p99_us: pick(0.99),
            lat_min_us: sorted[0],
            lat_max_us: sorted[n - 1],
            samples_us,
            bw_gbps: 0.0,
            mrate_mps: 0.0,
            elapsed_us: 0.0,
        }
    }

    pub(crate) fn from_bandwidth(op: TestOp, size: usize, iters: usize, elapsed_us: f64) -> Self {
        let secs = elapsed_us / 1e6;
        let bytes = (size as f64) * (iters as f64);
        Measurement {
            op,
            size,
            iters,
            lat_avg_us: 0.0,
            lat_median_us: 0.0,
            lat_p99_us: 0.0,
            lat_min_us: 0.0,
            lat_max_us: 0.0,
            samples_us: Vec::new(),
            bw_gbps: bytes * 8.0 / secs / 1e9,
            mrate_mps: (iters as f64) / secs / 1e6,
            elapsed_us,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let s = TestSpec::new(TestOp::SendBw)
            .transport(Transport::Ud)
            .size(64)
            .iters(1000)
            .window(32)
            .modes(Dataplane::Cord, Dataplane::Bypass)
            .knobs(EmuKnobs::no_zero_copy());
        assert_eq!(s.transport, Transport::Ud);
        assert_eq!(s.size, 64);
        assert_eq!(s.window, 32);
        assert_eq!(s.client_mode, Dataplane::Cord);
        assert!(s.knobs.extra_copy);
    }

    #[test]
    fn latency_stats_from_samples() {
        let samples = vec![1.0, 2.0, 3.0, 4.0, 100.0];
        let m = Measurement::from_latency_samples(TestOp::SendLat, 16, samples);
        assert_eq!(m.lat_avg_us, 22.0);
        assert_eq!(m.lat_median_us, 3.0);
        assert_eq!(m.lat_min_us, 1.0);
        assert_eq!(m.lat_max_us, 100.0);
        assert_eq!(m.lat_p99_us, 100.0);
    }

    #[test]
    fn bandwidth_math() {
        // 1000 msgs of 1 MiB in 1 s => 8.39 Gbit/s, 0.001 M msg/s.
        let m = Measurement::from_bandwidth(TestOp::SendBw, 1 << 20, 1000, 1e6);
        assert!((m.bw_gbps - 8.388608).abs() < 1e-6);
        assert!((m.mrate_mps - 0.001).abs() < 1e-9);
    }

    #[test]
    fn knob_constructors() {
        assert!(EmuKnobs::no_zero_copy().extra_copy);
        assert!(EmuKnobs::no_kernel_bypass().dummy_syscall);
        assert!(EmuKnobs::no_busy_polling().event_driven);
        assert_eq!(EmuKnobs::BASELINE, EmuKnobs::default());
    }
}
