//! Endpoint setup shared by the latency and bandwidth tests.

use cord_core::prelude::*;

use crate::spec::TestSpec;

/// One side of a perftest run: context, QP, and registered TX/RX buffers.
pub struct Ep {
    pub ctx: Context,
    pub qp: UserQp,
    /// Source buffer (sends/writes read from here; reads land here).
    pub tx: MemRegion,
    pub tx_mr: cord_verbs::Mr,
    /// Sink buffer (receives land here; peers write here).
    pub rx: MemRegion,
    pub rx_mr: cord_verbs::Mr,
}

impl Ep {
    pub fn tx_sge(&self, len: usize) -> Sge {
        Sge {
            addr: self.tx.addr,
            len,
            lkey: self.tx_mr.lkey,
        }
    }

    pub fn rx_sge(&self, len: usize) -> Sge {
        Sge {
            addr: self.rx.addr,
            len,
            lkey: self.rx_mr.lkey,
        }
    }

    /// Completion wait strategy per the spec's knobs.
    pub fn wait_mode(spec: &TestSpec) -> CompletionWait {
        if spec.knobs.event_driven {
            CompletionWait::Event
        } else {
            CompletionWait::BusyPoll
        }
    }
}

/// Build a connected client/server pair per the spec. The client lives on
/// node 0, the server on node 1 (back-to-back, like system L).
pub async fn setup_pair(fabric: &Fabric, spec: &TestSpec) -> (Ep, Ep) {
    let client_ctx = fabric.new_context(0, spec.client_mode);
    let server_ctx = fabric.new_context(1, spec.server_mode);
    let mk = |ctx: Context, spec: &TestSpec| {
        let size = spec.size.max(1);
        let tx = ctx.alloc(size, 0xA5);
        let rx = ctx.alloc(size, 0x00);
        (ctx, tx, rx)
    };
    let (cc, ctx_tx, ctx_rx) = mk(client_ctx, spec);
    let (sc, srv_tx, srv_rx) = mk(server_ctx, spec);

    let c_tx_mr = cc.reg_mr(ctx_tx, Access::all()).await;
    let c_rx_mr = cc.reg_mr(ctx_rx, Access::all()).await;
    let s_tx_mr = sc.reg_mr(srv_tx, Access::all()).await;
    let s_rx_mr = sc.reg_mr(srv_rx, Access::all()).await;

    let c_scq = cc.create_cq(4096).await;
    let c_rcq = cc.create_cq(4096).await;
    let s_scq = sc.create_cq(4096).await;
    let s_rcq = sc.create_cq(4096).await;

    let qc = cc.create_qp(spec.transport, &c_scq, &c_rcq).await;
    let qs = sc.create_qp(spec.transport, &s_scq, &s_rcq).await;
    match spec.transport {
        Transport::Rc => {
            connect_rc_pair(&qc, &qs).await.unwrap();
        }
        Transport::Ud => {
            activate_ud(&qc).await.unwrap();
            activate_ud(&qs).await.unwrap();
        }
    }

    (
        Ep {
            ctx: cc,
            qp: qc,
            tx: ctx_tx,
            tx_mr: c_tx_mr,
            rx: ctx_rx,
            rx_mr: c_rx_mr,
        },
        Ep {
            ctx: sc,
            qp: qs,
            tx: srv_tx,
            tx_mr: s_tx_mr,
            rx: srv_rx,
            rx_mr: s_rx_mr,
        },
    )
}

/// Attach the UD destination (peer node + QPN) to a send WQE when needed.
pub fn route(spec: &TestSpec, wqe: SendWqe, peer: &UserQp) -> SendWqe {
    match spec.transport {
        Transport::Rc => wqe,
        Transport::Ud => wqe.with_ud_dest(UdDest {
            node: peer.node(),
            qpn: peer.qpn(),
        }),
    }
}
