//! Test dispatch: build a fabric, run one test, return its measurement.

use cord_core::prelude::*;
use cord_hw::MachineSpec;

use crate::bw::{onesided_bw, send_bw};
use crate::lat::{read_lat, send_lat, write_lat};
use crate::spec::{Measurement, TestOp, TestSpec};

/// Run one test on a fresh fabric built from `machine` with `seed`.
pub fn run_test(machine: MachineSpec, spec: TestSpec, seed: u64) -> Measurement {
    let fabric = Fabric::builder(machine).seed(seed).build();
    run_on(&fabric, spec)
}

/// Run one test on an existing fabric (lets callers pre-install policies).
pub fn run_on(fabric: &Fabric, spec: TestSpec) -> Measurement {
    // Safety-net against accidental busy loops in benchmark logic.
    fabric.sim().set_max_polls(2_000_000_000);
    let f = fabric.clone();
    fabric.block_on(async move {
        match spec.op {
            TestOp::SendLat => send_lat(&f, spec).await,
            TestOp::WriteLat => write_lat(&f, spec).await,
            TestOp::ReadLat => read_lat(&f, spec).await,
            TestOp::SendBw => send_bw(&f, spec).await,
            TestOp::WriteBw | TestOp::ReadBw => onesided_bw(&f, spec).await,
        }
    })
}
