//! Property tests for `cord_sim::stats` against naive reference models.
//!
//! The histogram, the online moments, and the bimodality splitter all
//! trade exactness for O(1) memory; these tests pin *how much* they
//! trade. Each property draws randomized sample sets from [`DetRng`]
//! streams (seeded, so failures replay exactly) and compares against
//! the obvious store-everything model: a sorted `Vec` for quantiles, a
//! two-pass loop for moments.

use cord_sim::stats::{split_modes, Histogram, OnlineStats};
use cord_sim::DetRng;

/// The reference quantile: the same definition the histogram uses
/// (`ceil(q·n)`-th order statistic), computed on the sorted samples.
fn naive_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    if q <= 0.0 {
        return sorted[0];
    }
    if q >= 1.0 {
        return *sorted.last().unwrap();
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// One randomized sample set per distribution shape the simulator
/// actually records: uniform (bytes), lognormal (latency), exponential
/// (inter-arrivals), and a bimodal small/large message mix.
fn sample_sets(seed: u64, n: usize) -> Vec<(&'static str, Vec<u64>)> {
    let rng = DetRng::from_seed(seed);
    let uniform = (0..n).map(|_| rng.uniform_range(1, 1 << 20)).collect();
    let lognormal = (0..n).map(|_| rng.lognormal(10.0, 1.5) as u64).collect();
    let exponential = (0..n).map(|_| rng.exponential(50_000.0) as u64).collect();
    let bimodal = (0..n)
        .map(|_| {
            if rng.uniform() < 0.5 {
                rng.uniform_range(100, 200)
            } else {
                rng.uniform_range(1_000_000, 2_000_000)
            }
        })
        .collect();
    vec![
        ("uniform", uniform),
        ("lognormal", lognormal),
        ("exponential", exponential),
        ("bimodal", bimodal),
    ]
}

#[test]
fn histogram_quantiles_track_the_sorted_model() {
    for seed in [1, 42, 0xC0BD, 7_777_777] {
        for (name, xs) in sample_sets(seed, 2000) {
            let mut h = Histogram::new();
            let mut sorted = xs.clone();
            for &x in &xs {
                h.record(x);
            }
            sorted.sort_unstable();
            for q in [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0] {
                let exact = naive_quantile(&sorted, q);
                let approx = h.quantile(q);
                let err = (approx as f64 - exact as f64).abs();
                assert!(
                    err <= exact as f64 * 0.04 + 1.0,
                    "{name}/seed={seed} q={q}: approx={approx} exact={exact}"
                );
            }
        }
    }
}

#[test]
fn histogram_count_min_max_mean_are_exact() {
    for seed in [3, 99] {
        for (name, xs) in sample_sets(seed, 1500) {
            let mut h = Histogram::new();
            for &x in &xs {
                h.record(x);
            }
            let naive_mean = xs.iter().map(|&x| x as f64).sum::<f64>() / xs.len() as f64;
            assert_eq!(h.count(), xs.len() as u64, "{name}");
            assert_eq!(h.min(), *xs.iter().min().unwrap(), "{name}");
            assert_eq!(h.max(), *xs.iter().max().unwrap(), "{name}");
            // The sum is tracked exactly (u128), so the mean is exact up
            // to the final division.
            assert!(
                (h.mean() - naive_mean).abs() <= naive_mean.abs() * 1e-12,
                "{name}: {} vs {naive_mean}",
                h.mean()
            );
        }
    }
}

/// Merging shards must be indistinguishable from recording everything
/// into one histogram — the property the parallel sweeps rely on.
#[test]
fn histogram_merge_equals_single_stream() {
    let rng = DetRng::from_seed(0xFEED);
    let xs: Vec<u64> = (0..3000).map(|_| rng.uniform_range(1, 1 << 40)).collect();
    let mut whole = Histogram::new();
    let mut shards = vec![Histogram::new(), Histogram::new(), Histogram::new()];
    for &x in &xs {
        whole.record(x);
        shards[rng.uniform_range(0, 3) as usize].record(x);
    }
    let mut merged = Histogram::new();
    for s in &shards {
        merged.merge(s);
    }
    assert_eq!(merged.count(), whole.count());
    assert_eq!(merged.min(), whole.min());
    assert_eq!(merged.max(), whole.max());
    for q in [0.1, 0.5, 0.9, 0.99] {
        assert_eq!(merged.quantile(q), whole.quantile(q), "q={q}");
    }
}

#[test]
fn online_moments_match_the_two_pass_model() {
    for seed in [11, 0xBEEF] {
        for (name, xs) in sample_sets(seed, 2000) {
            let xs: Vec<f64> = xs.iter().map(|&x| x as f64).collect();
            let mut o = OnlineStats::new();
            for &x in &xs {
                o.record(x);
            }
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
            // Welford is numerically *better* than the naive two-pass sum,
            // so agreement to a few ulps-worth of relative error is the
            // right bar — not exactness.
            assert!(
                (o.mean() - mean).abs() <= mean.abs() * 1e-9,
                "{name}: mean {} vs {mean}",
                o.mean()
            );
            assert!(
                (o.variance() - var).abs() <= var.abs() * 1e-6,
                "{name}: var {} vs {var}",
                o.variance()
            );
            assert_eq!(o.count(), xs.len() as u64, "{name}");
            assert_eq!(o.min(), xs.iter().cloned().fold(f64::INFINITY, f64::min));
            assert_eq!(
                o.max(),
                xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            );
        }
    }
}

/// Chan's parallel merge must agree with the sequential fold no matter
/// where the stream is split.
#[test]
fn online_merge_is_split_invariant() {
    let rng = DetRng::from_seed(0xAB);
    let xs: Vec<f64> = (0..1000).map(|_| rng.lognormal(5.0, 2.0)).collect();
    let mut whole = OnlineStats::new();
    for &x in &xs {
        whole.record(x);
    }
    for split in [1, 17, 500, 999] {
        let (a, b) = xs.split_at(split);
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in a {
            left.record(x);
        }
        for &x in b {
            right.record(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count(), "split={split}");
        assert!(
            (left.mean() - whole.mean()).abs() <= whole.mean().abs() * 1e-9,
            "split={split}"
        );
        assert!(
            (left.variance() - whole.variance()).abs() <= whole.variance() * 1e-6,
            "split={split}"
        );
    }
}

/// 2-means invariants on arbitrary randomized input: the split conserves
/// samples, orders its centroids, and brackets them by the data range.
#[test]
fn mode_split_invariants_hold_on_random_input() {
    for seed in [5, 23, 0xD00D] {
        for (name, xs) in sample_sets(seed, 800) {
            let xs: Vec<f64> = xs.iter().map(|&x| x as f64).collect();
            let m = split_modes(&xs).unwrap();
            assert_eq!(m.low_count + m.high_count, xs.len(), "{name}");
            assert!(m.low_mean <= m.high_mean, "{name}");
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert!(m.low_mean >= lo && m.high_mean <= hi, "{name}");
            assert!(m.separation >= 0.0, "{name}");
        }
    }
}

/// The detector's judgment calls, on randomized draws: a well-separated
/// mixture reads bimodal, a single lognormal mode does not.
#[test]
fn mode_detection_separates_mixtures_from_single_modes() {
    for seed in [2, 77, 0x5EED] {
        let rng = DetRng::from_seed(seed);
        let mixture: Vec<f64> = (0..600)
            .map(|_| {
                if rng.uniform() < 0.4 {
                    1.0 + rng.normal() * 0.05
                } else {
                    9.0 + rng.normal() * 0.2
                }
            })
            .collect();
        let m = split_modes(&mixture).unwrap();
        assert!(m.is_bimodal(), "seed={seed}: separation {}", m.separation);
        assert!((m.low_mean - 1.0).abs() < 0.1, "seed={seed}");
        assert!((m.high_mean - 9.0).abs() < 0.3, "seed={seed}");

        let single: Vec<f64> = (0..600).map(|_| rng.lognormal(3.0, 0.3)).collect();
        let s = split_modes(&single).unwrap();
        assert!(!s.is_bimodal(), "seed={seed}: separation {}", s.separation);
    }
}
