//! Property test: the hierarchical timer wheel fires an arbitrary
//! schedule of inserts and cancels in exactly the order a reference
//! `BinaryHeap` model does — including same-instant `seq` tiebreaks,
//! cancel-while-pending, and deadlines across every level of the wheel
//! (and the overflow heap).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use cord_sim::rng::DetRng;
use cord_sim::timer::{TimerHandle, TimerWheel};

/// Reference model: a sorted heap of `(at, seq)` plus an alive set — the
/// executor's pre-wheel data structure, with cancellation as tombstones.
#[derive(Default)]
struct HeapModel {
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    alive: std::collections::HashMap<u64, u32>, // seq -> payload
}

impl HeapModel {
    fn insert(&mut self, at: u64, seq: u64, payload: u32) {
        self.heap.push(Reverse((at, seq)));
        self.alive.insert(seq, payload);
    }

    fn cancel(&mut self, seq: u64) -> bool {
        self.alive.remove(&seq).is_some()
    }

    fn pop(&mut self) -> Option<(u64, u64, u32)> {
        while let Some(Reverse((at, seq))) = self.heap.pop() {
            if let Some(p) = self.alive.remove(&seq) {
                return Some((at, seq, p));
            }
        }
        None
    }
}

/// Deadline magnitudes spanning every wheel level: same-tick, level 0,
/// level 1, level 2, and far past the horizon (overflow heap).
const MAGNITUDES: &[u64] = &[
    1_000,              // sub-tick
    200_000,            // ~2 ticks
    5_000_000,          // level 0 (5 µs)
    1_000_000_000,      // level 1 (1 ms)
    10_000_000_000,     // level 2 (10 ms)
    30_000_000_000_000, // past the horizon (30 s → overflow heap)
];

fn run_schedule(seed: u64, ops: usize) {
    let rng = DetRng::from_seed(seed);
    let mut wheel: TimerWheel<u32> = TimerWheel::new();
    let mut model = HeapModel::default();
    let mut handles: Vec<(u64, TimerHandle)> = Vec::new(); // (seq, handle)
    let mut seq = 0u64;
    let mut now = 0u64;
    let mut fired = 0u64;

    for _ in 0..ops {
        match rng.uniform_range(0, 10) {
            // ~50%: insert at a deadline of random magnitude (ties are
            // common because offsets are coarse multiples).
            0..=4 => {
                let mag = MAGNITUDES[rng.uniform_range(0, MAGNITUDES.len() as u64) as usize];
                let at = now + (rng.uniform_range(0, 8)) * mag;
                let payload = seq as u32;
                let h = wheel.insert(at, seq, payload);
                model.insert(at, seq, payload);
                handles.push((seq, h));
                seq += 1;
            }
            // ~20%: cancel a random still-known handle (possibly stale).
            5..=6 => {
                if !handles.is_empty() {
                    let i = rng.uniform_range(0, handles.len() as u64) as usize;
                    let (s, h) = handles.swap_remove(i);
                    assert_eq!(
                        wheel.cancel(h),
                        model.cancel(s),
                        "cancel liveness diverged for seq {s}"
                    );
                }
            }
            // ~30%: fire the next timer; both structures must agree.
            _ => {
                let got = wheel.pop();
                let want = model.pop();
                assert_eq!(got, want, "firing order diverged after {fired} fires");
                if let Some((at, _, _)) = got {
                    now = at;
                    fired += 1;
                }
            }
        }
        assert_eq!(wheel.len(), model.alive.len(), "live count diverged");
    }
    // Drain: the full remaining order must match.
    loop {
        let got = wheel.pop();
        let want = model.pop();
        assert_eq!(got, want, "drain order diverged");
        if got.is_none() {
            break;
        }
    }
    assert!(wheel.is_empty());
}

#[test]
fn wheel_matches_heap_model_across_seeds() {
    for seed in 0..16u64 {
        run_schedule(0xC02D ^ seed, 4_000);
    }
}

#[test]
fn wheel_matches_heap_model_long_run() {
    run_schedule(42, 40_000);
}

/// The public cancellable-schedule API: `schedule_cancellable_at` returns
/// a handle whose `cancel_scheduled` is an O(1) tombstone — the closure
/// never runs, stale handles are no-ops, and a cancelled timer neither
/// fires nor keeps the simulation alive.
#[test]
fn cancellable_schedules_tombstone_cleanly() {
    use std::cell::Cell;
    use std::rc::Rc;

    use cord_sim::{Sim, SimDuration, SimTime};

    let sim = Sim::new();
    let fired = Rc::new(Cell::new(0u32));
    let kept = Rc::new(Cell::new(false));

    let f = Rc::clone(&fired);
    let h1 = sim.schedule_cancellable_at(SimTime::ZERO + SimDuration::from_us(5), move |_| {
        f.set(f.get() + 1);
    });
    let k = Rc::clone(&kept);
    let _h2 = sim.schedule_cancellable_at(SimTime::ZERO + SimDuration::from_us(7), move |_| {
        k.set(true);
    });

    assert!(sim.cancel_scheduled(h1), "pending timer cancels");
    assert!(!sim.cancel_scheduled(h1), "stale handle is a no-op");

    let s = sim.clone();
    sim.block_on(async move {
        s.sleep(SimDuration::from_us(10)).await;
    });
    assert_eq!(fired.get(), 0, "cancelled closure must never run");
    assert!(kept.get(), "uncancelled timer still fires");
    // Re-arm/cancel churn in a *running* simulation reuses slab entries:
    // tombstones are reclaimed as virtual time passes their deadlines, so
    // sustained arm-on-send / cancel-on-ACK cycles (the RC retransmit
    // pattern) hold the slab at its high-water mark instead of growing
    // per cycle.
    let before = sim.stats().timer_slab_allocs;
    let s = sim.clone();
    sim.block_on(async move {
        for _round in 0..10 {
            for i in 0..100u64 {
                let at = s.now() + SimDuration::from_ns(500 + i);
                let h = s.schedule_cancellable_at(at, move |_| {});
                s.cancel_scheduled(h);
            }
            // Advance past the cancelled deadlines: the wheel sweeps the
            // tombstones and their slab entries return to the free list.
            s.sleep(SimDuration::from_us(2)).await;
        }
    });
    let grown = sim.stats().timer_slab_allocs - before;
    assert!(
        grown <= 110,
        "arm/cancel churn allocated {grown} slab entries for 1000 cycles"
    );
}
