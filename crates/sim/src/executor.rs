//! A deterministic, single-threaded, virtual-time async executor.
//!
//! Every simulated entity — CPU cores, NIC pipelines, kernel threads,
//! benchmark processes — is an async task. Time only advances when no task is
//! runnable, by jumping the virtual clock to the next pending timer. The
//! executor is fully deterministic: with the same seed and task structure,
//! two runs produce identical event interleavings and identical virtual-time
//! results.

use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

use std::sync::Mutex;

use crate::time::{SimDuration, SimTime};

/// Identifies a spawned task within one [`Sim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskId(pub u64);

/// Wakers push runnable task ids here. It lives behind an `Arc` because the
/// `Waker` contract requires `Send + Sync`, even though this executor never
/// leaves its thread; the `std` mutex is always uncontended here.
struct ReadyQueue {
    queue: Mutex<VecDeque<TaskId>>,
}

impl ReadyQueue {
    fn push(&self, id: TaskId) {
        self.queue
            .lock()
            .expect("ready queue poisoned")
            .push_back(id);
    }

    fn pop(&self) -> Option<TaskId> {
        self.queue.lock().expect("ready queue poisoned").pop_front()
    }
}

struct TaskWaker {
    id: TaskId,
    ready: Arc<ReadyQueue>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.ready.push(self.id);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.ready.push(self.id);
    }
}

type LocalFuture = Pin<Box<dyn Future<Output = ()> + 'static>>;

enum TimerAction {
    /// Wake a parked future (e.g. `sleep`).
    Wake(Waker),
    /// Run an arbitrary callback at the scheduled instant.
    Call(Box<dyn FnOnce(&Sim)>),
}

struct TimerEntry {
    at: SimTime,
    seq: u64,
    cancelled: Option<Rc<Cell<bool>>>,
    action: TimerAction,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

struct Inner {
    now: Cell<SimTime>,
    timer_seq: Cell<u64>,
    next_task: Cell<u64>,
    timers: RefCell<BinaryHeap<Reverse<TimerEntry>>>,
    tasks: RefCell<HashMap<TaskId, Rc<RefCell<Option<LocalFuture>>>>>,
    ready: Arc<ReadyQueue>,
    /// Total number of task polls executed; a cheap progress metric.
    polls: Cell<u64>,
    /// Fired timer count.
    timer_fires: Cell<u64>,
    /// Safety valve against runaway simulations (0 = unlimited).
    max_polls: Cell<u64>,
}

/// Handle to the simulation. Cheap to clone; all clones share the same
/// virtual clock, timer wheel, and task set.
#[derive(Clone)]
pub struct Sim {
    inner: Rc<Inner>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    pub fn new() -> Self {
        Sim {
            inner: Rc::new(Inner {
                now: Cell::new(SimTime::ZERO),
                timer_seq: Cell::new(0),
                next_task: Cell::new(0),
                timers: RefCell::new(BinaryHeap::new()),
                tasks: RefCell::new(HashMap::new()),
                ready: Arc::new(ReadyQueue {
                    queue: Mutex::new(VecDeque::new()),
                }),
                polls: Cell::new(0),
                timer_fires: Cell::new(0),
                max_polls: Cell::new(0),
            }),
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.inner.now.get()
    }

    /// Number of task polls executed so far (progress/diagnostics).
    pub fn polls(&self) -> u64 {
        self.inner.polls.get()
    }

    /// Number of timers fired so far.
    pub fn timer_fires(&self) -> u64 {
        self.inner.timer_fires.get()
    }

    /// Abort the run with a panic after this many task polls (0 = unlimited).
    /// Used by tests to catch accidental busy loops.
    pub fn set_max_polls(&self, max: u64) {
        self.inner.max_polls.set(max);
    }

    /// Spawn a task. The future starts running at the next executor step.
    pub fn spawn<F, T>(&self, fut: F) -> JoinHandle<T>
    where
        F: Future<Output = T> + 'static,
        T: 'static,
    {
        let id = TaskId(self.inner.next_task.get());
        self.inner.next_task.set(id.0 + 1);

        let join = Rc::new(RefCell::new(JoinState {
            result: None,
            waker: None,
            finished: false,
        }));
        let join2 = Rc::clone(&join);
        let wrapped: LocalFuture = Box::pin(async move {
            let out = fut.await;
            let mut st = join2.borrow_mut();
            st.result = Some(out);
            st.finished = true;
            if let Some(w) = st.waker.take() {
                w.wake();
            }
        });
        self.inner
            .tasks
            .borrow_mut()
            .insert(id, Rc::new(RefCell::new(Some(wrapped))));
        self.inner.ready.push(id);
        JoinHandle { id, state: join }
    }

    /// Register a timer that wakes `waker` at instant `at`.
    /// Returns a cancellation flag shared with the timer wheel.
    pub(crate) fn register_timer(&self, at: SimTime, waker: Waker) -> Rc<Cell<bool>> {
        let cancelled = Rc::new(Cell::new(false));
        let seq = self.inner.timer_seq.get();
        self.inner.timer_seq.set(seq + 1);
        self.inner.timers.borrow_mut().push(Reverse(TimerEntry {
            at,
            seq,
            cancelled: Some(Rc::clone(&cancelled)),
            action: TimerAction::Wake(waker),
        }));
        cancelled
    }

    /// Run `f` at virtual instant `at`.
    pub fn schedule_at<F: FnOnce(&Sim) + 'static>(&self, at: SimTime, f: F) {
        assert!(at >= self.now(), "scheduling into the past");
        let seq = self.inner.timer_seq.get();
        self.inner.timer_seq.set(seq + 1);
        self.inner.timers.borrow_mut().push(Reverse(TimerEntry {
            at,
            seq,
            cancelled: None,
            action: TimerAction::Call(Box::new(f)),
        }));
    }

    /// Run `f` after virtual delay `d`.
    pub fn schedule_after<F: FnOnce(&Sim) + 'static>(&self, d: SimDuration, f: F) {
        self.schedule_at(self.now() + d, f);
    }

    fn poll_task(&self, id: TaskId) {
        let slot = match self.inner.tasks.borrow().get(&id) {
            Some(s) => Rc::clone(s),
            None => return, // already completed
        };
        // Take the future out of the slot so the task can spawn/wake others
        // (including itself) while being polled.
        let fut = slot.borrow_mut().take();
        let mut fut = match fut {
            Some(f) => f,
            None => return, // concurrently polled (duplicate ready entry)
        };
        let n = self.inner.polls.get() + 1;
        self.inner.polls.set(n);
        let max = self.inner.max_polls.get();
        if max != 0 && n > max {
            panic!("sim: exceeded max_polls={max} — runaway simulation?");
        }
        let waker = Waker::from(Arc::new(TaskWaker {
            id,
            ready: Arc::clone(&self.inner.ready),
        }));
        let mut cx = Context::from_waker(&waker);
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {
                self.inner.tasks.borrow_mut().remove(&id);
            }
            Poll::Pending => {
                *slot.borrow_mut() = Some(fut);
            }
        }
    }

    /// Execute one scheduler step: drain runnable tasks, then fire the next
    /// timer (advancing the clock). Returns `false` when nothing remains.
    fn step(&self) -> bool {
        let mut progressed = false;
        while let Some(id) = self.inner.ready.pop() {
            progressed = true;
            self.poll_task(id);
        }
        // Fire due timers.
        loop {
            let entry = {
                let mut timers = self.inner.timers.borrow_mut();
                match timers.peek() {
                    None => break,
                    Some(Reverse(e)) => {
                        if let Some(c) = &e.cancelled {
                            if c.get() {
                                timers.pop();
                                continue;
                            }
                        }
                        // Fire one timer then go back to draining tasks, so
                        // same-instant wakeups interleave deterministically.
                        if progressed && e.at > self.now() {
                            break;
                        }
                        timers.pop().map(|Reverse(e)| e)
                    }
                }
            };
            let Some(entry) = entry else { break };
            debug_assert!(entry.at >= self.now(), "timer in the past");
            self.inner.now.set(entry.at);
            self.inner.timer_fires.set(self.inner.timer_fires.get() + 1);
            match entry.action {
                TimerAction::Wake(w) => w.wake(),
                TimerAction::Call(f) => f(self),
            }
            return true;
        }
        progressed
    }

    /// Run until no runnable tasks and no timers remain.
    pub fn run(&self) {
        while self.step() {}
    }

    /// Drive the simulation until `handle` completes and return its output.
    ///
    /// Panics if the simulation runs out of events first (deadlock) — that is
    /// always a bug in the model, and an early loud failure beats a hang.
    pub fn run_until<T: 'static>(&self, handle: JoinHandle<T>) -> T {
        loop {
            if handle.state.borrow().finished {
                return handle
                    .state
                    .borrow_mut()
                    .result
                    .take()
                    .expect("join result already taken");
            }
            if !self.step() {
                panic!(
                    "sim deadlock: root task pending, {} tasks alive, no timers (t={})",
                    self.inner.tasks.borrow().len(),
                    self.now()
                );
            }
        }
    }

    /// Convenience: spawn `fut` and run the simulation to its completion.
    pub fn block_on<F, T>(&self, fut: F) -> T
    where
        F: Future<Output = T> + 'static,
        T: 'static,
    {
        let h = self.spawn(fut);
        self.run_until(h)
    }

    /// Number of live (spawned, not yet finished) tasks.
    pub fn live_tasks(&self) -> usize {
        self.inner.tasks.borrow().len()
    }
}

struct JoinState<T> {
    result: Option<T>,
    waker: Option<Waker>,
    finished: bool,
}

/// Awaitable handle to a spawned task's result.
pub struct JoinHandle<T> {
    id: TaskId,
    state: Rc<RefCell<JoinState<T>>>,
}

impl<T> JoinHandle<T> {
    pub fn id(&self) -> TaskId {
        self.id
    }

    pub fn is_finished(&self) -> bool {
        self.state.borrow().finished
    }
}

impl<T: 'static> Future for JoinHandle<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut st = self.state.borrow_mut();
        if st.finished {
            Poll::Ready(
                st.result
                    .take()
                    .expect("JoinHandle polled after completion"),
            )
        } else {
            st.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// Future returned by [`Sim::sleep`] / [`Sim::sleep_until`].
pub struct Sleep {
    sim: Sim,
    at: SimTime,
    registered: Option<Rc<Cell<bool>>>,
}

impl Future for Sleep {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.sim.now() >= self.at {
            // Mark any registered timer dead so the wheel can skip it.
            if let Some(c) = self.registered.take() {
                c.set(true);
            }
            return Poll::Ready(());
        }
        if self.registered.is_none() {
            let c = self.sim.register_timer(self.at, cx.waker().clone());
            self.registered = Some(c);
        }
        Poll::Pending
    }
}

impl Drop for Sleep {
    fn drop(&mut self) {
        if let Some(c) = self.registered.take() {
            c.set(true);
        }
    }
}

impl Sim {
    /// Sleep for `d` of virtual time.
    pub fn sleep(&self, d: SimDuration) -> Sleep {
        self.sleep_until(self.now() + d)
    }

    /// Sleep until virtual instant `at` (returns immediately if past).
    pub fn sleep_until(&self, at: SimTime) -> Sleep {
        Sleep {
            sim: self.clone(),
            at,
            registered: None,
        }
    }

    /// Yield to other runnable tasks without advancing time.
    pub fn yield_now(&self) -> YieldNow {
        YieldNow { yielded: false }
    }
}

/// Future that yields once, then completes.
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration as D;

    #[test]
    fn clock_starts_at_zero() {
        let sim = Sim::new();
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn sleep_advances_virtual_time() {
        let sim = Sim::new();
        let s = sim.clone();
        let t = sim.block_on(async move {
            s.sleep(D::from_us(5)).await;
            s.now()
        });
        assert_eq!(t, SimTime::ZERO + D::from_us(5));
    }

    #[test]
    fn sequential_sleeps_accumulate() {
        let sim = Sim::new();
        let s = sim.clone();
        let t = sim.block_on(async move {
            for _ in 0..10 {
                s.sleep(D::from_ns(100)).await;
            }
            s.now()
        });
        assert_eq!(t.as_ps(), 10 * 100_000);
    }

    #[test]
    fn parallel_tasks_overlap_in_time() {
        let sim = Sim::new();
        let s = sim.clone();
        let total = sim.block_on(async move {
            let a = s.spawn({
                let s = s.clone();
                async move {
                    s.sleep(D::from_us(10)).await;
                    s.now()
                }
            });
            let b = s.spawn({
                let s = s.clone();
                async move {
                    s.sleep(D::from_us(7)).await;
                    s.now()
                }
            });
            (a.await, b.await)
        });
        // Both slept concurrently: the run finishes at max, not sum.
        assert_eq!(total.0.as_ps(), 10_000_000);
        assert_eq!(total.1.as_ps(), 7_000_000);
    }

    #[test]
    fn timers_fire_in_order_with_fifo_tiebreak() {
        let sim = Sim::new();
        let log: Rc<RefCell<Vec<u32>>> = Rc::default();
        for (i, d) in [(0u32, 5u64), (1, 3), (2, 5), (3, 1)] {
            let log = Rc::clone(&log);
            sim.schedule_at(SimTime(d * 1000), move |_| log.borrow_mut().push(i));
        }
        sim.run();
        // Sorted by time; equal instants keep registration order (0 before 2).
        assert_eq!(*log.borrow(), vec![3, 1, 0, 2]);
    }

    #[test]
    fn schedule_after_uses_current_now() {
        let sim = Sim::new();
        let s = sim.clone();
        let hit = Rc::new(Cell::new(SimTime::ZERO));
        let hit2 = Rc::clone(&hit);
        sim.block_on(async move {
            s.sleep(D::from_us(1)).await;
            let h = Rc::clone(&hit2);
            s.schedule_after(D::from_us(2), move |sim| h.set(sim.now()));
            s.sleep(D::from_us(5)).await;
        });
        assert_eq!(hit.get().as_ps(), 3_000_000);
    }

    #[test]
    fn join_handle_returns_value() {
        let sim = Sim::new();
        let s = sim.clone();
        let v = sim.block_on(async move {
            let h = s.spawn(async { 41 + 1 });
            h.await
        });
        assert_eq!(v, 42);
    }

    #[test]
    fn yield_now_interleaves_tasks() {
        let sim = Sim::new();
        let s = sim.clone();
        let log: Rc<RefCell<Vec<&'static str>>> = Rc::default();
        let l1 = Rc::clone(&log);
        let l2 = Rc::clone(&log);
        sim.block_on(async move {
            let s2 = s.clone();
            let a = s.spawn({
                let s = s.clone();
                async move {
                    l1.borrow_mut().push("a1");
                    s.yield_now().await;
                    l1.borrow_mut().push("a2");
                }
            });
            let b = s2.spawn(async move {
                l2.borrow_mut().push("b1");
            });
            a.await;
            b.await;
        });
        assert_eq!(*log.borrow(), vec!["a1", "b1", "a2"]);
    }

    #[test]
    #[should_panic(expected = "sim deadlock")]
    fn deadlock_detected() {
        let sim = Sim::new();
        sim.block_on(std::future::pending::<()>());
    }

    #[test]
    fn dropped_sleep_cancels_timer() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.block_on(async move {
            let long = s.sleep(D::from_secs(100));
            drop(long);
            s.sleep(D::from_ns(1)).await;
        });
        // The cancelled 100 s timer must not hold the clock hostage.
        sim.run();
        assert!(sim.now() < SimTime::ZERO + D::from_secs(1));
    }

    #[test]
    fn determinism_same_structure_same_trace() {
        fn run_once() -> Vec<u64> {
            let sim = Sim::new();
            let s = sim.clone();
            let log: Rc<RefCell<Vec<u64>>> = Rc::default();
            let l = Rc::clone(&log);
            sim.block_on(async move {
                let mut handles = Vec::new();
                for i in 0..8u64 {
                    let s2 = s.clone();
                    let l2 = Rc::clone(&l);
                    handles.push(s.spawn(async move {
                        s2.sleep(D::from_ns(100 * (8 - i))).await;
                        l2.borrow_mut().push(i);
                    }));
                }
                for h in handles {
                    h.await;
                }
            });
            let v = log.borrow().clone();
            v
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    #[should_panic(expected = "max_polls")]
    fn max_polls_guards_against_busy_loops() {
        let sim = Sim::new();
        sim.set_max_polls(1000);
        let s = sim.clone();
        sim.block_on(async move {
            loop {
                s.yield_now().await;
            }
        });
    }
}
