//! A deterministic, single-threaded, virtual-time async executor.
//!
//! Every simulated entity — CPU cores, NIC pipelines, kernel threads,
//! benchmark processes — is an async task. Time only advances when no task is
//! runnable, by jumping the virtual clock to the next pending timer. The
//! executor is fully deterministic: with the same seed and task structure,
//! two runs produce identical event interleavings and identical virtual-time
//! results.
//!
//! ## Hot-path design
//!
//! The executor is the inner loop of every experiment, so the steady state
//! allocates nothing:
//!
//! * **Tasks** live in a generational slab (`Vec` + free list). Each task
//!   gets one reference-counted wake hook and one [`Waker`] built over it
//!   at spawn; both are cached for the task's whole lifetime, so polling
//!   and waking never allocate. The `Waker` is hand-rolled over `Rc`
//!   (sound here: the simulation is strictly single-threaded, nothing can
//!   move a waker across threads), which also removes the `Arc`/`Mutex`
//!   the `Wake` trait would force onto a ready queue that is never
//!   contended.
//! * **Wakes deduplicate.** Each task has a `queued` flag; waking an
//!   already-queued task is a no-op, so N wakes before a drain cause
//!   exactly one poll. A ready entry whose task slot holds no future is a
//!   bug, not a tolerated duplicate (debug assertion).
//! * **Timers** live in a hierarchical timer wheel ([`crate::timer`]):
//!   O(1) insert, O(1) cancel through slot handles (no per-sleep
//!   tombstone allocation), entries recycled through the wheel's slab,
//!   and exact `(deadline, registration-seq)` firing order — bit-identical
//!   to the binary heap it replaced.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::future::Future;
use std::mem::ManuallyDrop;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, RawWaker, RawWakerVTable, Waker};

use crate::time::{SimDuration, SimTime};
use crate::timer::{TimerHandle, TimerWheel};

/// Coarse attribution bucket for executor work. Each task and each timer
/// carries the bucket that was current when it was spawned/registered, so
/// [`SimStats::polls_by`] and [`SimStats::timer_fires_by`] break the
/// aggregate counters down by subsystem — the measured input the
/// hybrid-fidelity and sharding work needs. Tags ride alongside the
/// payload and never influence ordering, so tagged and untagged runs are
/// bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u8)]
pub enum Subsystem {
    /// Untagged work: workload tasks, tests, glue.
    #[default]
    Other = 0,
    /// NIC engine pipelines: tx/rx loops, DMA completions, congestion
    /// control, retransmit/RNR timers.
    NicEngine = 1,
    /// Switched-fabric ports: serialization, per-hop arrivals, PFC.
    SwitchPort = 2,
    /// CPU time billing: core compute sleeps, DVFS accounting.
    CpuBilling = 3,
}

impl Subsystem {
    /// Number of buckets (the per-subsystem counter array length).
    pub const COUNT: usize = 4;

    /// All buckets, in counter-array index order.
    pub const ALL: [Subsystem; Subsystem::COUNT] = [
        Subsystem::Other,
        Subsystem::NicEngine,
        Subsystem::SwitchPort,
        Subsystem::CpuBilling,
    ];

    /// Stable short label for reports and digests.
    pub fn label(self) -> &'static str {
        match self {
            Subsystem::Other => "other",
            Subsystem::NicEngine => "nic",
            Subsystem::SwitchPort => "switch",
            Subsystem::CpuBilling => "cpu",
        }
    }

    #[inline]
    fn idx(self) -> usize {
        self as usize
    }
}

/// Identifies a spawned task within one [`Sim`]: slab index in the low
/// 32 bits, slot generation in the high 32 (stale wakes of a reused slot
/// are ignored by the generation check).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskId(pub u64);

impl TaskId {
    #[inline]
    fn new(idx: u32, gen: u32) -> TaskId {
        TaskId((u64::from(gen) << 32) | u64::from(idx))
    }

    #[inline]
    fn idx(self) -> u32 {
        self.0 as u32
    }

    #[inline]
    fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

type ReadyQueue = Rc<RefCell<VecDeque<TaskId>>>;

/// Per-task wake state, shared between the slab slot and every waker
/// clone handed to futures. Allocated once per task.
struct TaskHook {
    id: TaskId,
    /// True while the task sits in the ready queue; suppresses duplicate
    /// ready entries so N wakes cause one poll.
    queued: Cell<bool>,
    ready: ReadyQueue,
}

impl TaskHook {
    #[inline]
    fn wake(&self) {
        if !self.queued.replace(true) {
            self.ready.borrow_mut().push_back(self.id);
        }
    }
}

/// Waker vtable over `Rc<TaskHook>`. The standard `Wake` trait demands
/// `Arc` (Send + Sync); this executor is single-threaded by construction,
/// so wakers never cross threads and plain `Rc` reference counting is
/// sufficient — and allocation-free on clone.
const HOOK_VTABLE: RawWakerVTable = RawWakerVTable::new(
    |p| {
        let hook = unsafe { ManuallyDrop::new(Rc::from_raw(p as *const TaskHook)) };
        RawWaker::new(Rc::into_raw(Rc::clone(&hook)) as *const (), &HOOK_VTABLE)
    },
    |p| unsafe { Rc::from_raw(p as *const TaskHook) }.wake(),
    |p| unsafe { ManuallyDrop::new(Rc::from_raw(p as *const TaskHook)) }.wake(),
    |p| drop(unsafe { Rc::from_raw(p as *const TaskHook) }),
);

fn hook_waker(hook: Rc<TaskHook>) -> Waker {
    unsafe { Waker::from_raw(RawWaker::new(Rc::into_raw(hook) as *const (), &HOOK_VTABLE)) }
}

type LocalFuture = Pin<Box<dyn Future<Output = ()> + 'static>>;

/// Inline storage for a small `FnOnce(&Sim)` closure — the common shape of
/// scheduled callbacks (an `Rc` to a component plus a scalar or a boxed
/// frame). Storing them inline in the timer wheel avoids one heap
/// allocation per scheduled event on the simulator's hottest path, and
/// 16 bytes keeps a whole wheel entry within one cache line.
pub(crate) const SMALL_CALL_BYTES: usize = 16;
/// Inline words backing [`SMALL_CALL_BYTES`]; `u64` elements guarantee
/// the 8-byte alignment the admitted closure types require.
const SMALL_CALL_WORDS: usize = SMALL_CALL_BYTES / 8;

pub(crate) struct SmallCall {
    data: std::mem::MaybeUninit<[u64; SMALL_CALL_WORDS]>,
    /// With `Some(sim)`: moves the closure out of `data` and runs it.
    /// With `None`: drops it in place (timer discarded at teardown).
    /// One pointer instead of two keeps the timer-wheel entries compact.
    driver: unsafe fn(*mut u8, Option<&Sim>),
}

impl SmallCall {
    /// Erase `f` into inline storage. Caller guarantees the size/align
    /// bounds (checked at the call site against the concrete type).
    fn new<F: FnOnce(&Sim) + 'static>(f: F) -> SmallCall {
        debug_assert!(std::mem::size_of::<F>() <= SMALL_CALL_BYTES);
        debug_assert!(std::mem::align_of::<F>() <= std::mem::align_of::<u64>());
        let mut data = std::mem::MaybeUninit::<[u64; SMALL_CALL_WORDS]>::uninit();
        unsafe {
            std::ptr::write(data.as_mut_ptr() as *mut F, f);
        }
        SmallCall {
            data,
            driver: |p, sim| match sim {
                Some(sim) => unsafe { (std::ptr::read(p as *const F))(sim) },
                None => unsafe { std::ptr::drop_in_place(p as *mut F) },
            },
        }
    }

    fn invoke(self, sim: &Sim) {
        let mut this = std::mem::ManuallyDrop::new(self);
        unsafe { (this.driver)(this.data.as_mut_ptr() as *mut u8, Some(sim)) }
    }
}

impl Drop for SmallCall {
    fn drop(&mut self) {
        unsafe { (self.driver)(self.data.as_mut_ptr() as *mut u8, None) }
    }
}

pub(crate) enum TimerAction {
    /// Wake a parked future (e.g. `sleep`).
    Wake(Waker),
    /// Run a small callback stored inline (no allocation).
    CallSmall(SmallCall),
    /// Run an arbitrary (large) callback at the scheduled instant.
    Call(Box<dyn FnOnce(&Sim)>),
}

/// A live task: its future (taken while being polled), its wake hook, and
/// its cached lifetime waker.
struct TaskCell {
    fut: Option<LocalFuture>,
    hook: Rc<TaskHook>,
    waker: Waker,
    /// Attribution bucket captured at spawn; every poll of this task
    /// re-installs it as the current tag.
    tag: Subsystem,
}

struct TaskSlot {
    gen: u32,
    /// `None` = vacant (member of the free list through `next_free`).
    cell: Option<TaskCell>,
    next_free: u32,
}

const NO_FREE: u32 = u32::MAX;

/// Snapshot of the executor's internal counters. Progress metrics
/// (`polls`, `timer_fires`) plus the allocation-behavior counters the
/// zero-alloc hot-path tests pin down.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Task polls executed.
    pub polls: u64,
    /// Timers fired.
    pub timer_fires: u64,
    /// Tasks spawned.
    pub spawns: u64,
    /// Wakers constructed — exactly one per spawn; polling allocates none.
    pub wakers_created: u64,
    /// Timers registered (sleeps + scheduled callbacks).
    pub timer_inserts: u64,
    /// Timer-wheel slab growth events; flat in steady state because
    /// fired/cancelled entries are recycled.
    pub timer_slab_allocs: u64,
    /// Timer-wheel entries examined during min-extraction scans.
    pub timer_scan_steps: u64,
    /// `polls` broken down by [`Subsystem`] (indexed by the enum's
    /// discriminant; sums to `polls`).
    pub polls_by: [u64; Subsystem::COUNT],
    /// `timer_fires` broken down by [`Subsystem`] (sums to `timer_fires`).
    pub timer_fires_by: [u64; Subsystem::COUNT],
}

struct Inner {
    now: Cell<SimTime>,
    timer_seq: Cell<u64>,
    timers: RefCell<TimerWheel<(TimerAction, Subsystem)>>,
    tasks: RefCell<Vec<TaskSlot>>,
    free_head: Cell<u32>,
    live: Cell<usize>,
    ready: ReadyQueue,
    /// Total number of task polls executed; a cheap progress metric.
    polls: Cell<u64>,
    /// Fired timer count.
    timer_fires: Cell<u64>,
    /// Safety valve against runaway simulations (0 = unlimited).
    max_polls: Cell<u64>,
    spawns: Cell<u64>,
    wakers_created: Cell<u64>,
    /// Attribution bucket applied to work created right now: captured by
    /// every spawn, timer registration, and sleep creation. Set by
    /// [`Sim::with_tag`], and restored to the owning task's/timer's tag
    /// at every poll and fire so tags propagate through chains of
    /// reschedules without any per-call plumbing.
    current_tag: Cell<Subsystem>,
    polls_by: [Cell<u64>; Subsystem::COUNT],
    timer_fires_by: [Cell<u64>; Subsystem::COUNT],
}

/// Handle to the simulation. Cheap to clone; all clones share the same
/// virtual clock, timer wheel, and task set.
#[derive(Clone)]
pub struct Sim {
    inner: Rc<Inner>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// A fresh simulation: clock at zero, no tasks, no timers.
    pub fn new() -> Self {
        Sim {
            inner: Rc::new(Inner {
                now: Cell::new(SimTime::ZERO),
                timer_seq: Cell::new(0),
                timers: RefCell::new(TimerWheel::new()),
                tasks: RefCell::new(Vec::new()),
                free_head: Cell::new(NO_FREE),
                live: Cell::new(0),
                ready: Rc::new(RefCell::new(VecDeque::new())),
                polls: Cell::new(0),
                timer_fires: Cell::new(0),
                max_polls: Cell::new(0),
                spawns: Cell::new(0),
                wakers_created: Cell::new(0),
                current_tag: Cell::new(Subsystem::Other),
                polls_by: Default::default(),
                timer_fires_by: Default::default(),
            }),
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.inner.now.get()
    }

    /// Number of task polls executed so far (progress/diagnostics).
    pub fn polls(&self) -> u64 {
        self.inner.polls.get()
    }

    /// Number of timers fired so far.
    pub fn timer_fires(&self) -> u64 {
        self.inner.timer_fires.get()
    }

    /// Snapshot of all core counters (perf harnesses, alloc-path tests).
    ///
    /// # Examples
    ///
    /// ```
    /// use cord_sim::{Sim, SimDuration};
    ///
    /// let sim = Sim::new();
    /// let s = sim.clone();
    /// sim.block_on(async move {
    ///     for _ in 0..10 {
    ///         s.sleep(SimDuration::from_ns(100)).await;
    ///     }
    /// });
    /// let stats = sim.stats();
    /// assert_eq!(stats.spawns, 1);
    /// assert_eq!(stats.wakers_created, stats.spawns, "one waker per task");
    /// assert!(stats.timer_inserts >= 10);
    /// assert!(stats.polls > 0);
    /// ```
    pub fn stats(&self) -> SimStats {
        let timers = self.inner.timers.borrow();
        SimStats {
            polls: self.inner.polls.get(),
            timer_fires: self.inner.timer_fires.get(),
            spawns: self.inner.spawns.get(),
            wakers_created: self.inner.wakers_created.get(),
            timer_inserts: timers.inserts(),
            timer_slab_allocs: timers.slab_allocs(),
            timer_scan_steps: timers.scan_steps(),
            polls_by: std::array::from_fn(|i| self.inner.polls_by[i].get()),
            timer_fires_by: std::array::from_fn(|i| self.inner.timer_fires_by[i].get()),
        }
    }

    /// Run `f` with [`Subsystem`] `tag` as the current attribution
    /// bucket. Tasks spawned, timers scheduled, and sleeps created inside
    /// `f` carry the tag; the bucket then propagates automatically
    /// through everything those tasks/timers themselves create. Restores
    /// the previous tag on return. Pure accounting — the tag never
    /// affects scheduling order, so results are bit-identical with or
    /// without tagging.
    ///
    /// # Examples
    ///
    /// ```
    /// use cord_sim::{Sim, SimDuration, Subsystem};
    ///
    /// let sim = Sim::new();
    /// let s = sim.clone();
    /// sim.with_tag(Subsystem::NicEngine, || {
    ///     let s2 = s.clone();
    ///     s.spawn(async move { s2.sleep(SimDuration::from_ns(5)).await });
    /// });
    /// sim.run();
    /// let stats = sim.stats();
    /// assert_eq!(stats.timer_fires_by[Subsystem::NicEngine as usize], 1);
    /// assert_eq!(stats.polls_by[Subsystem::NicEngine as usize], 2);
    /// ```
    pub fn with_tag<R>(&self, tag: Subsystem, f: impl FnOnce() -> R) -> R {
        let prev = self.inner.current_tag.replace(tag);
        let r = f();
        self.inner.current_tag.set(prev);
        r
    }

    /// The attribution bucket work created right now would carry.
    pub fn current_tag(&self) -> Subsystem {
        self.inner.current_tag.get()
    }

    /// Abort the run with a panic after this many task polls (0 = unlimited).
    /// Used by tests to catch accidental busy loops.
    pub fn set_max_polls(&self, max: u64) {
        self.inner.max_polls.set(max);
    }

    /// Spawn a task. The future starts running at the next executor step.
    pub fn spawn<F, T>(&self, fut: F) -> JoinHandle<T>
    where
        F: Future<Output = T> + 'static,
        T: 'static,
    {
        let join = Rc::new(RefCell::new(JoinState {
            result: None,
            waker: None,
            finished: false,
        }));
        let join2 = Rc::clone(&join);
        let wrapped: LocalFuture = Box::pin(async move {
            let out = fut.await;
            let mut st = join2.borrow_mut();
            st.result = Some(out);
            st.finished = true;
            if let Some(w) = st.waker.take() {
                w.wake();
            }
        });

        let mut tasks = self.inner.tasks.borrow_mut();
        let idx = self.inner.free_head.get();
        let (idx, gen) = if idx != NO_FREE {
            let slot = &mut tasks[idx as usize];
            self.inner.free_head.set(slot.next_free);
            (idx, slot.gen)
        } else {
            tasks.push(TaskSlot {
                gen: 0,
                cell: None,
                next_free: NO_FREE,
            });
            ((tasks.len() - 1) as u32, 0)
        };
        let id = TaskId::new(idx, gen);
        let hook = Rc::new(TaskHook {
            id,
            queued: Cell::new(false),
            ready: Rc::clone(&self.inner.ready),
        });
        let waker = hook_waker(Rc::clone(&hook));
        tasks[idx as usize].cell = Some(TaskCell {
            fut: Some(wrapped),
            hook: Rc::clone(&hook),
            waker,
            tag: self.inner.current_tag.get(),
        });
        drop(tasks);
        self.inner.live.set(self.inner.live.get() + 1);
        self.inner.spawns.set(self.inner.spawns.get() + 1);
        self.inner
            .wakers_created
            .set(self.inner.wakers_created.get() + 1);
        hook.wake();
        JoinHandle { id, state: join }
    }

    /// Register a timer that wakes `waker` at instant `at`, attributed to
    /// `tag`. Returns a slot handle for O(1) cancellation.
    pub(crate) fn register_timer(&self, at: SimTime, waker: Waker, tag: Subsystem) -> TimerHandle {
        let seq = self.inner.timer_seq.get();
        self.inner.timer_seq.set(seq + 1);
        self.inner
            .timers
            .borrow_mut()
            .insert(at.0, seq, (TimerAction::Wake(waker), tag))
    }

    /// Cancel a registered timer (no-op on stale handles).
    pub(crate) fn cancel_timer(&self, h: TimerHandle) {
        self.inner.timers.borrow_mut().cancel(h);
    }

    /// Run `f` at virtual instant `at`.
    pub fn schedule_at<F: FnOnce(&Sim) + 'static>(&self, at: SimTime, f: F) {
        let _ = self.schedule_cancellable_at(at, f);
    }

    /// [`Sim::schedule_at`], returning a [`TimerHandle`] that
    /// [`Sim::cancel_scheduled`] accepts. Cancellation is an O(1)
    /// tombstone in the timer wheel: the slab entry's payload is dropped
    /// immediately and the wheel slot is reclaimed lazily when it
    /// surfaces, so an arm/cancel/re-arm cycle (e.g. an RC retransmit
    /// timer reset by every ACK) allocates nothing in steady state.
    pub fn schedule_cancellable_at<F: FnOnce(&Sim) + 'static>(
        &self,
        at: SimTime,
        f: F,
    ) -> TimerHandle {
        assert!(at >= self.now(), "scheduling into the past");
        let seq = self.inner.timer_seq.get();
        self.inner.timer_seq.set(seq + 1);
        let action =
            if std::mem::size_of::<F>() <= SMALL_CALL_BYTES && std::mem::align_of::<F>() <= 8 {
                TimerAction::CallSmall(SmallCall::new(f))
            } else {
                TimerAction::Call(Box::new(f))
            };
        let tag = self.inner.current_tag.get();
        self.inner
            .timers
            .borrow_mut()
            .insert(at.0, seq, (action, tag))
    }

    /// Cancel a timer scheduled with [`Sim::schedule_cancellable_at`].
    /// Returns `true` if the timer was still pending; stale handles
    /// (fired or already-cancelled timers) are a no-op returning `false`.
    pub fn cancel_scheduled(&self, h: TimerHandle) -> bool {
        self.inner.timers.borrow_mut().cancel(h)
    }

    /// Run `f` after virtual delay `d`.
    pub fn schedule_after<F: FnOnce(&Sim) + 'static>(&self, d: SimDuration, f: F) {
        self.schedule_at(self.now() + d, f);
    }

    fn poll_task(&self, id: TaskId) {
        let (mut fut, waker, tag) = {
            let mut tasks = self.inner.tasks.borrow_mut();
            let Some(slot) = tasks.get_mut(id.idx() as usize) else {
                return;
            };
            if slot.gen != id.gen() {
                return; // stale wake of a completed (possibly reused) slot
            }
            let cell = slot
                .cell
                .as_mut()
                .expect("ready entry for a vacant slot with a live generation");
            cell.hook.queued.set(false);
            // Take the future out of the slot so the task can spawn/wake
            // others (including itself) while being polled. With wake
            // dedup, an empty slot here means a duplicate ready entry
            // slipped in — a bug in the queued-flag protocol.
            let fut = cell.fut.take();
            debug_assert!(
                fut.is_some(),
                "duplicate ready entry: task {id:?} polled while already being polled"
            );
            let Some(fut) = fut else { return };
            (fut, cell.waker.clone(), cell.tag)
        };
        // The task's tag becomes current for the whole poll, so timers and
        // spawns it creates inherit its attribution bucket.
        self.inner.current_tag.set(tag);
        let by = &self.inner.polls_by[tag.idx()];
        by.set(by.get() + 1);
        let n = self.inner.polls.get() + 1;
        self.inner.polls.set(n);
        let max = self.inner.max_polls.get();
        if max != 0 && n > max {
            panic!("sim: exceeded max_polls={max} — runaway simulation?");
        }
        let mut cx = Context::from_waker(&waker);
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {
                let mut tasks = self.inner.tasks.borrow_mut();
                let slot = &mut tasks[id.idx() as usize];
                slot.cell = None;
                slot.gen = slot.gen.wrapping_add(1);
                slot.next_free = self.inner.free_head.get();
                self.inner.free_head.set(id.idx());
                self.inner.live.set(self.inner.live.get() - 1);
            }
            Poll::Pending => {
                let mut tasks = self.inner.tasks.borrow_mut();
                if let Some(cell) = tasks[id.idx() as usize].cell.as_mut() {
                    cell.fut = Some(fut);
                }
            }
        }
    }

    /// Execute one scheduler step: drain runnable tasks, then fire the next
    /// timer (advancing the clock). Returns `false` when nothing remains.
    fn step(&self) -> bool {
        let mut progressed = false;
        loop {
            let id = self.inner.ready.borrow_mut().pop_front();
            let Some(id) = id else { break };
            progressed = true;
            self.poll_task(id);
        }
        // Fire one due timer then go back to draining tasks, so
        // same-instant wakeups interleave deterministically.
        let (at, _, action) = {
            let mut timers = self.inner.timers.borrow_mut();
            let Some((at, _)) = timers.peek() else {
                return progressed;
            };
            if progressed && SimTime(at) > self.now() {
                return true;
            }
            timers.pop().expect("peeked timer vanished")
        };
        debug_assert!(SimTime(at) >= self.now(), "timer in the past");
        self.inner.now.set(SimTime(at));
        self.inner.timer_fires.set(self.inner.timer_fires.get() + 1);
        let (action, tag) = action;
        let by = &self.inner.timer_fires_by[tag.idx()];
        by.set(by.get() + 1);
        // The timer's tag becomes current for the callback, so chained
        // reschedules keep their originating subsystem's attribution.
        self.inner.current_tag.set(tag);
        match action {
            TimerAction::Wake(w) => w.wake(),
            TimerAction::CallSmall(f) => f.invoke(self),
            TimerAction::Call(f) => f(self),
        }
        true
    }

    /// Run until no runnable tasks and no timers remain.
    pub fn run(&self) {
        while self.step() {}
    }

    /// Drive the simulation until `handle` completes and return its output.
    ///
    /// Panics if the simulation runs out of events first (deadlock) — that is
    /// always a bug in the model, and an early loud failure beats a hang.
    pub fn run_until<T: 'static>(&self, handle: JoinHandle<T>) -> T {
        loop {
            if handle.state.borrow().finished {
                return handle
                    .state
                    .borrow_mut()
                    .result
                    .take()
                    .expect("join result already taken");
            }
            if !self.step() {
                panic!(
                    "sim deadlock: root task pending, {} tasks alive, no timers (t={})",
                    self.live_tasks(),
                    self.now()
                );
            }
        }
    }

    /// Convenience: spawn `fut` and run the simulation to its completion.
    pub fn block_on<F, T>(&self, fut: F) -> T
    where
        F: Future<Output = T> + 'static,
        T: 'static,
    {
        let h = self.spawn(fut);
        self.run_until(h)
    }

    /// Number of live (spawned, not yet finished) tasks.
    pub fn live_tasks(&self) -> usize {
        self.inner.live.get()
    }
}

struct JoinState<T> {
    result: Option<T>,
    waker: Option<Waker>,
    finished: bool,
}

/// Awaitable handle to a spawned task's result.
pub struct JoinHandle<T> {
    id: TaskId,
    state: Rc<RefCell<JoinState<T>>>,
}

impl<T> JoinHandle<T> {
    /// The spawned task's identifier.
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// Whether the task has run to completion.
    pub fn is_finished(&self) -> bool {
        self.state.borrow().finished
    }
}

impl<T: 'static> Future for JoinHandle<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut st = self.state.borrow_mut();
        if st.finished {
            Poll::Ready(
                st.result
                    .take()
                    .expect("JoinHandle polled after completion"),
            )
        } else {
            st.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// Future returned by [`Sim::sleep`] / [`Sim::sleep_until`].
pub struct Sleep {
    sim: Sim,
    at: SimTime,
    registered: Option<TimerHandle>,
    /// Attribution bucket captured at creation (not first poll): a sleep
    /// built inside [`Sim::with_tag`] keeps that tag even though its
    /// timer only registers when the owning task first polls it.
    tag: Subsystem,
}

impl Future for Sleep {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.sim.now() >= self.at {
            // Cancel any still-pending registration (stale handles are
            // ignored, so this is safe after the timer fired).
            if let Some(h) = self.registered.take() {
                self.sim.cancel_timer(h);
            }
            return Poll::Ready(());
        }
        if self.registered.is_none() {
            let tag = self.tag;
            let h = self.sim.register_timer(self.at, cx.waker().clone(), tag);
            self.registered = Some(h);
        }
        Poll::Pending
    }
}

impl Drop for Sleep {
    fn drop(&mut self) {
        if let Some(h) = self.registered.take() {
            self.sim.cancel_timer(h);
        }
    }
}

impl Sim {
    /// Sleep for `d` of virtual time.
    pub fn sleep(&self, d: SimDuration) -> Sleep {
        self.sleep_until(self.now() + d)
    }

    /// Sleep until virtual instant `at` (returns immediately if past).
    pub fn sleep_until(&self, at: SimTime) -> Sleep {
        Sleep {
            sim: self.clone(),
            at,
            registered: None,
            tag: self.inner.current_tag.get(),
        }
    }

    /// Yield to other runnable tasks without advancing time.
    pub fn yield_now(&self) -> YieldNow {
        YieldNow { yielded: false }
    }
}

/// Future that yields once, then completes.
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration as D;

    #[test]
    fn clock_starts_at_zero() {
        let sim = Sim::new();
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn sleep_advances_virtual_time() {
        let sim = Sim::new();
        let s = sim.clone();
        let t = sim.block_on(async move {
            s.sleep(D::from_us(5)).await;
            s.now()
        });
        assert_eq!(t, SimTime::ZERO + D::from_us(5));
    }

    #[test]
    fn sequential_sleeps_accumulate() {
        let sim = Sim::new();
        let s = sim.clone();
        let t = sim.block_on(async move {
            for _ in 0..10 {
                s.sleep(D::from_ns(100)).await;
            }
            s.now()
        });
        assert_eq!(t.as_ps(), 10 * 100_000);
    }

    #[test]
    fn parallel_tasks_overlap_in_time() {
        let sim = Sim::new();
        let s = sim.clone();
        let total = sim.block_on(async move {
            let a = s.spawn({
                let s = s.clone();
                async move {
                    s.sleep(D::from_us(10)).await;
                    s.now()
                }
            });
            let b = s.spawn({
                let s = s.clone();
                async move {
                    s.sleep(D::from_us(7)).await;
                    s.now()
                }
            });
            (a.await, b.await)
        });
        // Both slept concurrently: the run finishes at max, not sum.
        assert_eq!(total.0.as_ps(), 10_000_000);
        assert_eq!(total.1.as_ps(), 7_000_000);
    }

    #[test]
    fn timers_fire_in_order_with_fifo_tiebreak() {
        let sim = Sim::new();
        let log: Rc<RefCell<Vec<u32>>> = Rc::default();
        for (i, d) in [(0u32, 5u64), (1, 3), (2, 5), (3, 1)] {
            let log = Rc::clone(&log);
            sim.schedule_at(SimTime(d * 1000), move |_| log.borrow_mut().push(i));
        }
        sim.run();
        // Sorted by time; equal instants keep registration order (0 before 2).
        assert_eq!(*log.borrow(), vec![3, 1, 0, 2]);
    }

    #[test]
    fn schedule_after_uses_current_now() {
        let sim = Sim::new();
        let s = sim.clone();
        let hit = Rc::new(Cell::new(SimTime::ZERO));
        let hit2 = Rc::clone(&hit);
        sim.block_on(async move {
            s.sleep(D::from_us(1)).await;
            let h = Rc::clone(&hit2);
            s.schedule_after(D::from_us(2), move |sim| h.set(sim.now()));
            s.sleep(D::from_us(5)).await;
        });
        assert_eq!(hit.get().as_ps(), 3_000_000);
    }

    #[test]
    fn join_handle_returns_value() {
        let sim = Sim::new();
        let s = sim.clone();
        let v = sim.block_on(async move {
            let h = s.spawn(async { 41 + 1 });
            h.await
        });
        assert_eq!(v, 42);
    }

    #[test]
    fn yield_now_interleaves_tasks() {
        let sim = Sim::new();
        let s = sim.clone();
        let log: Rc<RefCell<Vec<&'static str>>> = Rc::default();
        let l1 = Rc::clone(&log);
        let l2 = Rc::clone(&log);
        sim.block_on(async move {
            let s2 = s.clone();
            let a = s.spawn({
                let s = s.clone();
                async move {
                    l1.borrow_mut().push("a1");
                    s.yield_now().await;
                    l1.borrow_mut().push("a2");
                }
            });
            let b = s2.spawn(async move {
                l2.borrow_mut().push("b1");
            });
            a.await;
            b.await;
        });
        assert_eq!(*log.borrow(), vec!["a1", "b1", "a2"]);
    }

    #[test]
    #[should_panic(expected = "sim deadlock")]
    fn deadlock_detected() {
        let sim = Sim::new();
        sim.block_on(std::future::pending::<()>());
    }

    #[test]
    fn dropped_sleep_cancels_timer() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.block_on(async move {
            let long = s.sleep(D::from_secs(100));
            drop(long);
            s.sleep(D::from_ns(1)).await;
        });
        // The cancelled 100 s timer must not hold the clock hostage.
        sim.run();
        assert!(sim.now() < SimTime::ZERO + D::from_secs(1));
    }

    #[test]
    fn determinism_same_structure_same_trace() {
        fn run_once() -> Vec<u64> {
            let sim = Sim::new();
            let s = sim.clone();
            let log: Rc<RefCell<Vec<u64>>> = Rc::default();
            let l = Rc::clone(&log);
            sim.block_on(async move {
                let mut handles = Vec::new();
                for i in 0..8u64 {
                    let s2 = s.clone();
                    let l2 = Rc::clone(&l);
                    handles.push(s.spawn(async move {
                        s2.sleep(D::from_ns(100 * (8 - i))).await;
                        l2.borrow_mut().push(i);
                    }));
                }
                for h in handles {
                    h.await;
                }
            });
            let v = log.borrow().clone();
            v
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    #[should_panic(expected = "max_polls")]
    fn max_polls_guards_against_busy_loops() {
        let sim = Sim::new();
        sim.set_max_polls(1000);
        let s = sim.clone();
        sim.block_on(async move {
            loop {
                s.yield_now().await;
            }
        });
    }

    /// A future that parks forever and exposes its waker for external,
    /// repeated wakes (to exercise wake dedup).
    struct Parked {
        waker_out: Rc<RefCell<Option<Waker>>>,
        release: Rc<Cell<bool>>,
    }

    impl Future for Parked {
        type Output = ();
        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            if self.release.get() {
                return Poll::Ready(());
            }
            *self.waker_out.borrow_mut() = Some(cx.waker().clone());
            Poll::Pending
        }
    }

    #[test]
    fn n_wakes_cause_exactly_one_poll_per_drain() {
        let sim = Sim::new();
        let s = sim.clone();
        let waker_out: Rc<RefCell<Option<Waker>>> = Rc::default();
        let release = Rc::new(Cell::new(false));
        let h = sim.spawn(Parked {
            waker_out: Rc::clone(&waker_out),
            release: Rc::clone(&release),
        });
        // First step polls the parked task once and captures its waker.
        sim.block_on(async {});
        let baseline = s.polls();
        let waker = waker_out.borrow().clone().expect("task parked");

        // Five wakes before the next drain: exactly one poll must result.
        for _ in 0..5 {
            waker.wake_by_ref();
        }
        sim.block_on(async {});
        assert_eq!(
            s.polls() - baseline,
            1 + 1, // one poll of the parked task + one for the empty block_on task
            "duplicate wakes must coalesce into a single poll"
        );

        // And the task is still live and responsive.
        release.set(true);
        waker.wake_by_ref();
        sim.run_until(h);
    }

    #[test]
    fn wakes_after_completion_are_ignored() {
        let sim = Sim::new();
        let waker_out: Rc<RefCell<Option<Waker>>> = Rc::default();
        let release = Rc::new(Cell::new(true)); // completes on first poll
        let h = sim.spawn(Parked {
            waker_out: Rc::clone(&waker_out),
            release,
        });
        sim.run_until(h);
        // A stale waker from a pre-completion clone must be a no-op, even
        // after the slot is reused by a new task.
        let h2 = sim.spawn(async {});
        sim.run_until(h2);
        if let Some(w) = waker_out.borrow().clone() {
            w.wake();
        }
        sim.run();
        assert_eq!(sim.live_tasks(), 0);
    }

    #[test]
    fn zero_alloc_hot_path_stats() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.block_on(async move {
            // Warm up: a burst of concurrent sleepers sizes the timer slab.
            let mut hs = Vec::new();
            for i in 0..32u64 {
                let s2 = s.clone();
                hs.push(s.spawn(async move {
                    for _ in 0..4 {
                        s2.sleep(D::from_ns(50 + i)).await;
                    }
                }));
            }
            for h in hs {
                h.await;
            }
            let warm = s.stats();
            // One waker per spawn, none per poll (polls >> spawns here).
            assert_eq!(warm.wakers_created, warm.spawns);
            assert!(warm.polls > warm.spawns);

            // Steady state: thousands more sleeps at the same concurrency
            // must not grow the timer slab (entries are recycled) …
            for _ in 0..2000 {
                s.sleep(D::from_ns(50)).await;
            }
            let steady = s.stats();
            assert!(steady.timer_inserts >= warm.timer_inserts + 2000);
            assert_eq!(
                steady.timer_slab_allocs, warm.timer_slab_allocs,
                "steady-state sleeps must reuse timer-wheel entries"
            );
            // … and must not create any wakers at all.
            assert_eq!(steady.wakers_created, warm.wakers_created);
        });
    }

    #[test]
    fn subsystem_tags_attribute_polls_and_fires() {
        let sim = Sim::new();
        let s = sim.clone();
        // A NIC-tagged task: its polls, sleeps, and everything it
        // schedules downstream carry the NicEngine bucket.
        sim.with_tag(Subsystem::NicEngine, || {
            let s2 = s.clone();
            s.spawn(async move {
                s2.sleep(D::from_ns(10)).await;
                // A reschedule from inside tagged context inherits.
                s2.schedule_after(D::from_ns(10), |_| {});
            });
        });
        // An untagged task with a CPU-billed sleep created inside
        // with_tag: the sleep's timer is attributed at creation.
        let s3 = s.clone();
        sim.spawn(async move {
            let nap = s3.with_tag(Subsystem::CpuBilling, || s3.sleep(D::from_ns(25)));
            nap.await;
        });
        sim.run();
        let st = sim.stats();
        let nic = Subsystem::NicEngine as usize;
        let cpu = Subsystem::CpuBilling as usize;
        assert_eq!(st.timer_fires_by[nic], 2, "sleep + chained reschedule");
        assert_eq!(st.timer_fires_by[cpu], 1, "tag captured at sleep creation");
        assert!(
            st.polls_by[nic] >= 2,
            "tagged task polls land in its bucket"
        );
        assert_eq!(
            st.polls_by.iter().sum::<u64>(),
            st.polls,
            "buckets partition polls"
        );
        assert_eq!(
            st.timer_fires_by.iter().sum::<u64>(),
            st.timer_fires,
            "buckets partition timer fires"
        );
    }

    #[test]
    fn tagging_never_perturbs_execution_order() {
        fn run(tagged: bool) -> Vec<u64> {
            let sim = Sim::new();
            let s = sim.clone();
            let log: Rc<RefCell<Vec<u64>>> = Rc::default();
            let l = Rc::clone(&log);
            let spawn_all = {
                let s = s.clone();
                move || {
                    for i in 0..6u64 {
                        let s2 = s.clone();
                        let l2 = Rc::clone(&l);
                        s.spawn(async move {
                            s2.sleep(D::from_ns(100 * ((i * 7) % 5 + 1))).await;
                            l2.borrow_mut().push(i);
                        });
                    }
                }
            };
            if tagged {
                sim.with_tag(Subsystem::SwitchPort, spawn_all);
            } else {
                spawn_all();
            }
            sim.run();
            let v = log.borrow().clone();
            v
        }
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn task_slots_are_recycled_across_generations() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.block_on(async move {
            for round in 0..50u32 {
                let h = s.spawn(async move { round });
                assert_eq!(h.await, round);
            }
        });
        // One root task + one short-lived task recycled 50 times: the slab
        // never needs more than a handful of slots.
        assert!(sim.inner.tasks.borrow().len() <= 4);
        assert_eq!(sim.live_tasks(), 0);
    }
}
