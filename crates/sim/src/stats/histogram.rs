//! Log-linear (HDR-style) histogram over `u64` values.
//!
//! Buckets are base-2 with 32 linear sub-buckets per octave, giving a
//! worst-case quantile error of ~3% over the full u64 range with a small
//! fixed footprint. Values are picoseconds in latency use, bytes elsewhere.

const SUB_BITS: u32 = 5; // 32 sub-buckets per power of two
const SUB: u64 = 1 << SUB_BITS;

/// HDR-style histogram with ~3% relative quantile error.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros() as u64; // floor(log2 v) >= SUB_BITS
    let sub = (v >> (exp - SUB_BITS as u64)) - SUB; // top SUB_BITS+1 bits minus leading 1
    ((exp + 1 - SUB_BITS as u64) * SUB + SUB + sub) as usize - SUB as usize
}

/// Representative (midpoint) value for a bucket index.
fn bucket_value(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB {
        return idx;
    }
    let octave = (idx - SUB) / SUB;
    let sub = (idx - SUB) % SUB;
    let base = SUB << octave; // 2^(SUB_BITS+octave)
    let width = 1u64 << octave;
    base + sub * width + width / 2
}

impl Histogram {
    /// An empty histogram covering the full `u64` range.
    pub fn new() -> Self {
        // 64 octaves * 32 sub-buckets is a safe upper bound.
        Histogram {
            counts: vec![0; (SUB as usize) * 66],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        let idx = bucket_index(v);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Record `n` samples of the same value.
    pub fn record_n(&mut self, v: u64, n: u64) {
        let idx = bucket_index(v);
        self.counts[idx] += n;
        self.total += n;
        self.sum += (v as u128) * (n as u128);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact arithmetic mean of the recorded samples (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            f64::NAN
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Value at quantile `q` in [0, 1]. Exact min/max at the extremes.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.total == 0 {
            return 0;
        }
        if q <= 0.0 {
            return self.min();
        }
        if q >= 1.0 {
            return self.max;
        }
        let target = (q * self.total as f64).ceil() as u64;
        let mut acc = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return bucket_value(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The 50th-percentile value.
    pub fn median(&self) -> u64 {
        self.quantile(0.5)
    }

    /// Fold another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Iterate non-empty buckets as (representative value, count).
    pub fn iter_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_value(i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        for v in 0..32u64 {
            // Quantiles over uniform 0..32 hit each value exactly.
            let q = (v as f64 + 1.0) / 32.0;
            assert_eq!(h.quantile(q), v);
        }
    }

    #[test]
    fn quantile_relative_error_bounded() {
        let mut h = Histogram::new();
        // Log-spaced values across 6 decades.
        let mut v: f64 = 1.0;
        let mut values = Vec::new();
        while v < 1e12 {
            h.record(v as u64);
            values.push(v as u64);
            v *= 1.07;
        }
        values.sort_unstable();
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let exact =
                values[((q * values.len() as f64).ceil() as usize - 1).min(values.len() - 1)];
            let approx = h.quantile(q);
            let rel = (approx as f64 - exact as f64).abs() / exact as f64;
            assert!(rel < 0.04, "q={q} exact={exact} approx={approx} rel={rel}");
        }
    }

    #[test]
    fn extremes_are_exact() {
        let mut h = Histogram::new();
        h.record(17);
        h.record(123_456_789);
        assert_eq!(h.quantile(0.0), 17);
        assert_eq!(h.quantile(1.0), 123_456_789);
        assert_eq!(h.min(), 17);
        assert_eq!(h.max(), 123_456_789);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        h.record(10);
        h.record(20);
        h.record(30);
        assert!((h.mean() - 20.0).abs() < 1e-12);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn merge_matches_combined() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut c = Histogram::new();
        for i in 0..1000u64 {
            let v = i * i + 1;
            c.record(v);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        assert_eq!(a.quantile(0.5), c.quantile(0.5));
        assert_eq!(a.min(), c.min());
        assert_eq!(a.max(), c.max());
    }

    #[test]
    fn record_n_equals_repeated_record() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record_n(555, 10);
        for _ in 0..10 {
            b.record(555);
        }
        assert_eq!(a.count(), b.count());
        assert_eq!(a.quantile(0.5), b.quantile(0.5));
        assert_eq!(a.mean(), b.mean());
    }

    #[test]
    fn bucket_roundtrip_error_bounded() {
        let mut v = 1u64;
        while v < u64::MAX / 4 {
            let idx = bucket_index(v);
            let rep = bucket_value(idx);
            let err = (rep as i128 - v as i128).unsigned_abs() as f64;
            assert!(err <= (v as f64) * 0.033 + 1.0, "v={v} rep={rep} idx={idx}");
            v = v.wrapping_mul(3) / 2 + 1;
        }
    }
}
