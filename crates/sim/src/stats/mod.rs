//! Measurement collection: online moments, HDR-style histograms,
//! bimodality detection (for the paper's Fig. 5a), and labelled series.

mod histogram;
mod modes;
mod online;
mod series;

pub use histogram::Histogram;
pub use modes::{split_modes, ModeSplit};
pub use online::OnlineStats;
pub use series::{Series, SeriesPoint};
