//! 1-D bimodality detection via 2-means.
//!
//! The paper observes (Fig. 5a) that CoRD's latency overhead on the Azure
//! system has *two statistical modes* — small messages (no inline support in
//! CoRD) and large messages. This module splits a sample set into two
//! clusters and reports both centroids plus a separation score, which the
//! fig5 harness prints alongside the overhead series.

/// Result of a two-cluster split.
#[derive(Debug, Clone, PartialEq)]
pub struct ModeSplit {
    /// Centroid of the lower cluster.
    pub low_mean: f64,
    /// Centroid of the upper cluster.
    pub high_mean: f64,
    /// Samples assigned to the lower cluster.
    pub low_count: usize,
    /// Samples assigned to the upper cluster.
    pub high_count: usize,
    /// Centroid separation in units of the pooled within-cluster standard
    /// deviation. A 2-means split of *any* distribution produces nonzero
    /// separation (a Gaussian yields ~2.7, a uniform ~3.5), so only values
    /// clearly above that baseline indicate genuine bimodality.
    pub separation: f64,
}

impl ModeSplit {
    /// Whether the split indicates genuine bimodality (both clusters
    /// populated and separation well above the unimodal baseline).
    pub fn is_bimodal(&self) -> bool {
        self.low_count > 0 && self.high_count > 0 && self.separation > 4.0
    }
}

/// Split `samples` into two modes with Lloyd's algorithm (k=2, 1-D).
/// Returns `None` for fewer than 2 samples.
pub fn split_modes(samples: &[f64]) -> Option<ModeSplit> {
    if samples.len() < 2 {
        return None;
    }
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if min == max {
        return Some(ModeSplit {
            low_mean: min,
            high_mean: max,
            low_count: samples.len(),
            high_count: 0,
            separation: 0.0,
        });
    }
    let mut c_low = min;
    let mut c_high = max;
    for _ in 0..64 {
        let mid = (c_low + c_high) / 2.0;
        let (mut s_low, mut n_low, mut s_high, mut n_high) = (0.0, 0usize, 0.0, 0usize);
        for &x in samples {
            if x <= mid {
                s_low += x;
                n_low += 1;
            } else {
                s_high += x;
                n_high += 1;
            }
        }
        if n_low == 0 || n_high == 0 {
            break;
        }
        let new_low = s_low / n_low as f64;
        let new_high = s_high / n_high as f64;
        if (new_low - c_low).abs() < 1e-12 && (new_high - c_high).abs() < 1e-12 {
            break;
        }
        c_low = new_low;
        c_high = new_high;
    }
    let mid = (c_low + c_high) / 2.0;
    let (mut n_low, mut n_high) = (0usize, 0usize);
    let (mut var_acc, mut mean_low, mut mean_high) = (0.0, 0.0, 0.0);
    for &x in samples {
        if x <= mid {
            mean_low += x;
            n_low += 1;
        } else {
            mean_high += x;
            n_high += 1;
        }
    }
    if n_low > 0 {
        mean_low /= n_low as f64;
    }
    if n_high > 0 {
        mean_high /= n_high as f64;
    }
    for &x in samples {
        let c = if x <= mid { mean_low } else { mean_high };
        var_acc += (x - c) * (x - c);
    }
    let pooled_sd = (var_acc / samples.len() as f64).sqrt();
    let separation = if pooled_sd > 0.0 {
        (mean_high - mean_low) / pooled_sd
    } else {
        f64::INFINITY
    };
    Some(ModeSplit {
        low_mean: mean_low,
        high_mean: mean_high,
        low_count: n_low,
        high_count: n_high,
        separation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clearly_bimodal_is_detected() {
        let mut xs = Vec::new();
        for i in 0..100 {
            xs.push(1.0 + (i % 10) as f64 * 0.01); // mode near 1
            xs.push(5.0 + (i % 10) as f64 * 0.01); // mode near 5
        }
        let m = split_modes(&xs).unwrap();
        assert!(m.is_bimodal(), "separation {}", m.separation);
        assert!((m.low_mean - 1.045).abs() < 0.01);
        assert!((m.high_mean - 5.045).abs() < 0.01);
        assert_eq!(m.low_count, 100);
        assert_eq!(m.high_count, 100);
    }

    #[test]
    fn unimodal_gaussian_is_not_bimodal() {
        // Deterministic Gaussian-ish sample via Box–Muller on a grid.
        let mut xs = Vec::new();
        for i in 1..200 {
            let u1 = i as f64 / 200.0;
            for j in 0..4 {
                let u2 = (j as f64 + 0.5) / 4.0;
                xs.push(10.0 + (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos());
            }
        }
        let m = split_modes(&xs).unwrap();
        assert!(!m.is_bimodal(), "separation {}", m.separation);
    }

    #[test]
    fn constant_samples() {
        let xs = vec![3.0; 50];
        let m = split_modes(&xs).unwrap();
        assert_eq!(m.low_mean, 3.0);
        assert!(!m.is_bimodal());
    }

    #[test]
    fn too_few_samples() {
        assert!(split_modes(&[]).is_none());
        assert!(split_modes(&[1.0]).is_none());
    }
}
