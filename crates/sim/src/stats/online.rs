//! Streaming moments (Welford's algorithm) — numerically stable mean and
//! variance without storing samples.

/// Online mean/variance/min/max accumulator.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold one sample into the running moments.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Population variance.
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest recorded sample (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest recorded sample (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another accumulator (parallel sweep aggregation).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let d = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += d * n2 / n;
        self.m2 += other.m2 + d * d * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut st = OnlineStats::new();
        for &x in &xs {
            st.record(x);
        }
        assert_eq!(st.count(), 8);
        assert!((st.mean() - 5.0).abs() < 1e-12);
        assert!((st.variance() - 4.0).abs() < 1e-12);
        assert!((st.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(st.min(), 2.0);
        assert_eq!(st.max(), 9.0);
    }

    #[test]
    fn empty_is_nan() {
        let st = OnlineStats::new();
        assert!(st.mean().is_nan());
        assert!(st.variance().is_nan());
        assert_eq!(st.count(), 0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.record(x);
        }
        for &x in &xs[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.record(1.0);
        a.record(3.0);
        let before = (a.count(), a.mean());
        a.merge(&OnlineStats::new());
        assert_eq!((a.count(), a.mean()), before);
    }
}
