//! Labelled (x, y) series used by the figure harnesses to accumulate and
//! print sweep results in the same rows/columns the paper reports.

/// One point of a sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// The sweep parameter (e.g. message size).
    pub x: f64,
    /// The measured value at `x`.
    pub y: f64,
}

/// A named series of sweep points (e.g. "Send/RC relative throughput").
#[derive(Debug, Clone, Default)]
pub struct Series {
    /// Display name, matching the paper's legend where applicable.
    pub name: String,
    /// Points in push order (harnesses push in increasing x).
    pub points: Vec<SeriesPoint>,
}

impl Series {
    /// An empty series with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Append one point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push(SeriesPoint { x, y });
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Linear interpolation of y at `x`; clamps outside the domain.
    /// Points must be pushed in increasing x order.
    pub fn interpolate(&self, x: f64) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        if x <= self.points[0].x {
            return Some(self.points[0].y);
        }
        if x >= self.points[self.points.len() - 1].x {
            return Some(self.points[self.points.len() - 1].y);
        }
        for w in self.points.windows(2) {
            let (a, b) = (w[0], w[1]);
            if x >= a.x && x <= b.x {
                let t = (x - a.x) / (b.x - a.x);
                return Some(a.y + t * (b.y - a.y));
            }
        }
        None
    }

    /// Smallest x at which y first crosses `level` (linear interpolation),
    /// scanning left to right. Used to locate crossover points
    /// (e.g. "message size at which CoRD reaches 99% of bypass").
    pub fn crossing(&self, level: f64) -> Option<f64> {
        for w in self.points.windows(2) {
            let (a, b) = (w[0], w[1]);
            if (a.y < level && b.y >= level) || (a.y > level && b.y <= level) {
                if (b.y - a.y).abs() < f64::EPSILON {
                    return Some(a.x);
                }
                let t = (level - a.y) / (b.y - a.y);
                return Some(a.x + t * (b.x - a.x));
            }
        }
        None
    }

    /// Largest y value, if any points exist.
    pub fn max_y(&self) -> Option<f64> {
        self.points.iter().map(|p| p.y).fold(None, |acc, y| {
            Some(match acc {
                None => y,
                Some(m) => m.max(y),
            })
        })
    }

    /// Smallest y value, if any points exist.
    pub fn min_y(&self) -> Option<f64> {
        self.points.iter().map(|p| p.y).fold(None, |acc, y| {
            Some(match acc {
                None => y,
                Some(m) => m.min(y),
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> Series {
        let mut s = Series::new("ramp");
        for i in 0..=10 {
            s.push(i as f64, (i * 2) as f64);
        }
        s
    }

    #[test]
    fn interpolate_inside_and_outside() {
        let s = ramp();
        assert_eq!(s.interpolate(2.5), Some(5.0));
        assert_eq!(s.interpolate(-4.0), Some(0.0));
        assert_eq!(s.interpolate(100.0), Some(20.0));
        assert_eq!(Series::new("e").interpolate(1.0), None);
    }

    #[test]
    fn crossing_finds_level() {
        let s = ramp();
        assert_eq!(s.crossing(7.0), Some(3.5));
        assert_eq!(s.crossing(100.0), None);
    }

    #[test]
    fn crossing_descending() {
        let mut s = Series::new("down");
        s.push(0.0, 10.0);
        s.push(10.0, 0.0);
        assert_eq!(s.crossing(5.0), Some(5.0));
    }

    #[test]
    fn min_max() {
        let s = ramp();
        assert_eq!(s.max_y(), Some(20.0));
        assert_eq!(s.min_y(), Some(0.0));
        assert_eq!(Series::new("e").max_y(), None);
    }
}
