//! Deterministic random-number streams.
//!
//! Every stochastic component (virtualization jitter, workload generators)
//! draws from its own stream derived from a master seed and a stream label,
//! so adding a component never perturbs the draws of the others.

use std::cell::RefCell;
use std::rc::Rc;

/// xoshiro256++ core — small, fast, and plenty for simulation jitter.
/// Implemented locally (the build has no crates.io access for `rand`);
/// the output stream is fixed by this code and stable across platforms.
struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Expand a 64-bit seed into the full state with SplitMix64, like
    /// `rand::SeedableRng::seed_from_u64` does.
    fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = splitmix64_inc(x);
            splitmix64_mix(x)
        };
        SmallRng {
            s: [next(), next(), next(), next()],
        }
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in [0, 1) with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

fn splitmix64_inc(x: u64) -> u64 {
    x.wrapping_add(0x9E37_79B9_7F4A_7C15)
}

fn splitmix64_mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// SplitMix64 step; good avalanche for deriving per-stream seeds.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn hash_label(label: &str) -> u64 {
    // FNV-1a, stable across runs/platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Factory for deterministic per-component RNG streams.
#[derive(Clone)]
pub struct RngFactory {
    master: u64,
}

impl RngFactory {
    /// A factory whose streams are all derived from `master_seed`.
    pub fn new(master_seed: u64) -> Self {
        RngFactory {
            master: master_seed,
        }
    }

    /// The master seed this factory derives every stream from.
    pub fn master_seed(&self) -> u64 {
        self.master
    }

    /// Derive the stream named `label`.
    pub fn stream(&self, label: &str) -> DetRng {
        let seed = splitmix64(self.master ^ hash_label(label));
        DetRng {
            rng: Rc::new(RefCell::new(SmallRng::seed_from_u64(seed))),
        }
    }

    /// Derive an indexed stream (e.g. one per rank).
    pub fn stream_indexed(&self, label: &str, index: u64) -> DetRng {
        let seed = splitmix64(splitmix64(self.master ^ hash_label(label)) ^ index);
        DetRng {
            rng: Rc::new(RefCell::new(SmallRng::seed_from_u64(seed))),
        }
    }
}

/// A clonable handle to one deterministic stream.
#[derive(Clone)]
pub struct DetRng {
    rng: Rc<RefCell<SmallRng>>,
}

impl DetRng {
    /// A stream seeded directly (bypassing a [`RngFactory`]); used by
    /// tests and property harnesses.
    pub fn from_seed(seed: u64) -> Self {
        DetRng {
            rng: Rc::new(RefCell::new(SmallRng::seed_from_u64(seed))),
        }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&self) -> u64 {
        self.rng.borrow_mut().next_u64()
    }

    /// Uniform in [0, 1).
    pub fn uniform(&self) -> f64 {
        self.rng.borrow_mut().next_f64()
    }

    /// Uniform integer in [lo, hi).
    pub fn uniform_range(&self, lo: u64, hi: u64) -> u64 {
        assert!(hi > lo);
        // Rejection-free modulo; the tiny bias is irrelevant for jitter and
        // workload draws, and determinism is what actually matters here.
        lo + self.rng.borrow_mut().next_u64() % (hi - lo)
    }

    /// Standard normal via Box–Muller.
    pub fn normal(&self) -> f64 {
        let mut rng = self.rng.borrow_mut();
        loop {
            let u1: f64 = rng.next_f64();
            if u1 <= f64::EPSILON {
                continue;
            }
            let u2: f64 = rng.next_f64();
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }

    /// Lognormal with the given location/scale of the underlying normal.
    pub fn lognormal(&self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.normal()).exp()
    }

    /// Exponential with the given mean.
    pub fn exponential(&self, mean: f64) -> f64 {
        let u: f64 = self.uniform();
        -mean * (1.0 - u).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let f1 = RngFactory::new(42);
        let f2 = RngFactory::new(42);
        let a = f1.stream("jitter");
        let b = f2.stream("jitter");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_labels_decorrelate() {
        let f = RngFactory::new(42);
        let a = f.stream("alpha");
        let b = f.stream("beta");
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn indexed_streams_are_distinct() {
        let f = RngFactory::new(7);
        let a = f.stream_indexed("rank", 0);
        let b = f.stream_indexed("rank", 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn normal_moments_are_sane() {
        let r = DetRng::from_seed(123);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn exponential_mean_is_sane() {
        let r = DetRng::from_seed(5);
        let n = 20_000;
        let mean = (0..n).map(|_| r.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn uniform_range_bounds() {
        let r = DetRng::from_seed(9);
        for _ in 0..1000 {
            let v = r.uniform_range(10, 20);
            assert!((10..20).contains(&v));
        }
    }
}
