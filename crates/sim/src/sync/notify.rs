//! Edge/level notification primitive, modelled on `tokio::sync::Notify`.
//!
//! Used for completion-queue doorbells and interrupt delivery: a
//! `notify_one` issued while nobody waits is stored as a permit, so the
//! wakeup is never lost (matching how a CQE written before the consumer
//! blocks must still unblock it).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

#[derive(Default)]
struct Inner {
    /// Stored wakeup for the next waiter when none is registered.
    permit: bool,
    waiters: VecDeque<(u64, Waker)>,
    next_id: u64,
}

/// A notification cell; clone to share.
#[derive(Clone, Default)]
pub struct Notify {
    inner: Rc<RefCell<Inner>>,
}

impl Notify {
    /// A fresh cell with no stored permit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wake one waiter, or store a single permit if none is waiting.
    pub fn notify_one(&self) {
        let mut inner = self.inner.borrow_mut();
        if let Some((_, w)) = inner.waiters.pop_front() {
            w.wake();
        } else {
            inner.permit = true;
        }
    }

    /// Wake all currently registered waiters (does not store a permit).
    pub fn notify_all(&self) {
        let mut inner = self.inner.borrow_mut();
        for (_, w) in inner.waiters.drain(..) {
            w.wake();
        }
    }

    /// Wait for a notification.
    pub fn notified(&self) -> Notified {
        Notified {
            notify: self.clone(),
            id: None,
        }
    }

    /// Number of currently parked waiters (diagnostics).
    pub fn waiter_count(&self) -> usize {
        self.inner.borrow().waiters.len()
    }
}

/// Future returned by [`Notify::notified`].
pub struct Notified {
    notify: Notify,
    id: Option<u64>,
}

impl Future for Notified {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut inner = self.notify.inner.borrow_mut();
        if let Some(id) = self.id {
            // If our waker is no longer queued we were woken.
            if inner.waiters.iter().all(|(wid, _)| *wid != id) {
                drop(inner);
                self.id = None;
                return Poll::Ready(());
            }
            // Refresh the waker in place (spurious poll).
            for (wid, w) in inner.waiters.iter_mut() {
                if *wid == id {
                    *w = cx.waker().clone();
                }
            }
            return Poll::Pending;
        }
        if inner.permit {
            inner.permit = false;
            return Poll::Ready(());
        }
        let id = inner.next_id;
        inner.next_id += 1;
        inner.waiters.push_back((id, cx.waker().clone()));
        drop(inner);
        self.id = Some(id);
        Poll::Pending
    }
}

impl Drop for Notified {
    fn drop(&mut self) {
        if let Some(id) = self.id {
            let mut inner = self.notify.inner.borrow_mut();
            let before = inner.waiters.len();
            inner.waiters.retain(|(wid, _)| *wid != id);
            // If we were already woken (removed from the queue) but never
            // polled to completion, hand the wakeup to the next waiter so
            // the notification is not lost.
            if inner.waiters.len() == before {
                if let Some((_, w)) = inner.waiters.pop_front() {
                    w.wake();
                } else {
                    inner.permit = true;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use crate::time::SimDuration as D;

    #[test]
    fn permit_prevents_lost_wakeup() {
        let sim = Sim::new();
        let n = Notify::new();
        n.notify_one();
        sim.block_on(async move {
            n.notified().await; // completes immediately via stored permit
        });
    }

    #[test]
    fn notify_wakes_waiter_in_virtual_time() {
        let sim = Sim::new();
        let s = sim.clone();
        let n = Notify::new();
        let n2 = n.clone();
        let t = sim.block_on(async move {
            let s2 = s.clone();
            s.spawn(async move {
                s2.sleep(D::from_us(2)).await;
                n2.notify_one();
            });
            n.notified().await;
            s.now()
        });
        assert_eq!(t.as_ps(), 2_000_000);
    }

    #[test]
    fn notify_one_wakes_single_waiter_fifo() {
        let sim = Sim::new();
        let s = sim.clone();
        let n = Notify::new();
        let order: Rc<RefCell<Vec<u32>>> = Rc::default();
        sim.block_on({
            let n = n.clone();
            let order = Rc::clone(&order);
            async move {
                let mut handles = Vec::new();
                for i in 0..3u32 {
                    let n = n.clone();
                    let order = Rc::clone(&order);
                    let s2 = s.clone();
                    handles.push(s.spawn(async move {
                        n.notified().await;
                        order.borrow_mut().push(i);
                        s2.yield_now().await;
                    }));
                }
                s.yield_now().await;
                assert_eq!(n.waiter_count(), 3);
                n.notify_one();
                n.notify_one();
                n.notify_one();
                for h in handles {
                    h.await;
                }
            }
        });
        assert_eq!(*order.borrow(), vec![0, 1, 2]);
    }

    #[test]
    fn notify_all_wakes_everyone() {
        let sim = Sim::new();
        let s = sim.clone();
        let n = Notify::new();
        let count = Rc::new(RefCell::new(0));
        sim.block_on({
            let n = n.clone();
            let count = Rc::clone(&count);
            async move {
                let mut handles = Vec::new();
                for _ in 0..5 {
                    let n = n.clone();
                    let count = Rc::clone(&count);
                    handles.push(s.spawn(async move {
                        n.notified().await;
                        *count.borrow_mut() += 1;
                    }));
                }
                s.yield_now().await;
                n.notify_all();
                for h in handles {
                    h.await;
                }
            }
        });
        assert_eq!(*count.borrow(), 5);
    }

    #[test]
    fn dropped_waiter_does_not_swallow_notification() {
        let sim = Sim::new();
        let s = sim.clone();
        let n = Notify::new();
        sim.block_on({
            let n = n.clone();
            async move {
                // Register a waiter, then drop it after it was notified.
                let mut fut = Box::pin(n.notified());
                // poll once by racing it against a yield
                let s2 = s.clone();
                let poller = s.spawn(async move {
                    futures_poll_once(&mut fut).await;
                    drop(fut);
                });
                poller.await;
                n.notify_one();
                s2.yield_now().await;
                // The permit must survive the drop of the woken waiter.
                n.notified().await;
            }
        });
    }

    /// Poll a future exactly once, ignoring the result.
    async fn futures_poll_once<F: Future + Unpin>(f: &mut F) {
        use std::task::Poll;
        std::future::poll_fn(|cx| {
            let _ = Pin::new(&mut *f).poll(cx);
            Poll::Ready(())
        })
        .await;
    }
}
