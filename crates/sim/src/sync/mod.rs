//! Task synchronization primitives for the virtual-time executor.

mod channel;
mod notify;
mod semaphore;

pub use channel::{bounded, channel, Receiver, RecvError, SendError, Sender};
pub use notify::Notify;
pub use semaphore::Semaphore;
