//! Counting semaphore with FIFO fairness.
//!
//! Models bounded hardware resources: send-queue depth, outstanding RDMA
//! reads per QP, NIC processing slots.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

struct Inner {
    permits: usize,
    waiters: VecDeque<(u64, usize, Waker)>,
    next_id: u64,
}

/// Clonable counting semaphore.
#[derive(Clone)]
pub struct Semaphore {
    inner: Rc<RefCell<Inner>>,
}

impl Semaphore {
    /// A semaphore with `permits` initial permits.
    pub fn new(permits: usize) -> Self {
        Semaphore {
            inner: Rc::new(RefCell::new(Inner {
                permits,
                waiters: VecDeque::new(),
                next_id: 0,
            })),
        }
    }

    /// Permits currently available (not held and not reserved).
    pub fn available(&self) -> usize {
        self.inner.borrow().permits
    }

    /// Acquire `n` permits, suspending until available. FIFO: a large request
    /// at the queue head blocks later small ones (no starvation).
    pub fn acquire(&self, n: usize) -> Acquire {
        Acquire {
            sem: self.clone(),
            n,
            id: None,
        }
    }

    /// Try to acquire without waiting.
    pub fn try_acquire(&self, n: usize) -> bool {
        let mut inner = self.inner.borrow_mut();
        if inner.waiters.is_empty() && inner.permits >= n {
            inner.permits -= n;
            true
        } else {
            false
        }
    }

    /// Return `n` permits and wake eligible waiters in order.
    pub fn release(&self, n: usize) {
        let mut inner = self.inner.borrow_mut();
        inner.permits += n;
        // Wake the head waiter(s) that can now proceed.
        while let Some((_, want, _)) = inner.waiters.front() {
            if *want <= inner.permits {
                let (_, want, w) = inner.waiters.pop_front().unwrap();
                inner.permits -= want;
                w.wake();
            } else {
                break;
            }
        }
    }
}

/// Future returned by [`Semaphore::acquire`].
pub struct Acquire {
    sem: Semaphore,
    n: usize,
    id: Option<u64>,
}

impl Future for Acquire {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut inner = self.sem.inner.borrow_mut();
        match self.id {
            None => {
                if inner.waiters.is_empty() && inner.permits >= self.n {
                    inner.permits -= self.n;
                    Poll::Ready(())
                } else {
                    let id = inner.next_id;
                    inner.next_id += 1;
                    inner.waiters.push_back((id, self.n, cx.waker().clone()));
                    drop(inner);
                    self.id = Some(id);
                    Poll::Pending
                }
            }
            Some(id) => {
                // Removed from the queue means permits were transferred to us.
                if inner.waiters.iter().all(|(wid, _, _)| *wid != id) {
                    drop(inner);
                    self.id = None;
                    Poll::Ready(())
                } else {
                    for (wid, _, w) in inner.waiters.iter_mut() {
                        if *wid == id {
                            *w = cx.waker().clone();
                        }
                    }
                    Poll::Pending
                }
            }
        }
    }
}

impl Drop for Acquire {
    fn drop(&mut self) {
        if let Some(id) = self.id {
            let mut inner = self.sem.inner.borrow_mut();
            let before = inner.waiters.len();
            inner.waiters.retain(|(wid, _, _)| *wid != id);
            if inner.waiters.len() == before {
                // We were already granted permits but dropped before
                // observing them; give them back.
                drop(inner);
                self.sem.release(self.n);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use crate::time::SimDuration as D;

    #[test]
    fn permits_limit_concurrency() {
        let sim = Sim::new();
        let s = sim.clone();
        let sem = Semaphore::new(2);
        let peak = Rc::new(RefCell::new((0usize, 0usize))); // (current, max)
        sim.block_on({
            let sem = sem.clone();
            let peak = Rc::clone(&peak);
            async move {
                let mut handles = Vec::new();
                for _ in 0..6 {
                    let sem = sem.clone();
                    let peak = Rc::clone(&peak);
                    let s2 = s.clone();
                    handles.push(s.spawn(async move {
                        sem.acquire(1).await;
                        {
                            let mut p = peak.borrow_mut();
                            p.0 += 1;
                            p.1 = p.1.max(p.0);
                        }
                        s2.sleep(D::from_us(1)).await;
                        peak.borrow_mut().0 -= 1;
                        sem.release(1);
                    }));
                }
                for h in handles {
                    h.await;
                }
            }
        });
        assert_eq!(peak.borrow().1, 2);
        assert_eq!(sem.available(), 2);
    }

    #[test]
    fn fifo_no_starvation_of_large_request() {
        let sim = Sim::new();
        let s = sim.clone();
        let sem = Semaphore::new(2);
        let order: Rc<RefCell<Vec<&'static str>>> = Rc::default();
        sim.block_on({
            let sem = sem.clone();
            let order = Rc::clone(&order);
            async move {
                sem.acquire(2).await; // drain
                let big = s.spawn({
                    let sem = sem.clone();
                    let order = Rc::clone(&order);
                    async move {
                        sem.acquire(2).await;
                        order.borrow_mut().push("big");
                        sem.release(2);
                    }
                });
                s.yield_now().await;
                let small = s.spawn({
                    let sem = sem.clone();
                    let order = Rc::clone(&order);
                    async move {
                        sem.acquire(1).await;
                        order.borrow_mut().push("small");
                        sem.release(1);
                    }
                });
                // Release one permit: big (head) still can't run, and small
                // must NOT overtake it.
                sem.release(1);
                s.yield_now().await;
                assert!(order.borrow().is_empty());
                sem.release(1);
                big.await;
                small.await;
            }
        });
        assert_eq!(*order.borrow(), vec!["big", "small"]);
    }

    #[test]
    fn try_acquire_fails_when_drained_or_queued() {
        let sem = Semaphore::new(1);
        assert!(sem.try_acquire(1));
        assert!(!sem.try_acquire(1));
        sem.release(1);
        assert!(sem.try_acquire(1));
    }

    #[test]
    fn dropped_acquire_returns_granted_permits() {
        let sim = Sim::new();
        let s = sim.clone();
        let sem = Semaphore::new(0);
        sim.block_on({
            let sem = sem.clone();
            async move {
                let h = s.spawn({
                    let sem = sem.clone();
                    async move {
                        let acq = sem.acquire(1);
                        // Poll once to enqueue, then drop.
                        let mut acq = Box::pin(acq);
                        std::future::poll_fn(|cx| {
                            let _ = acq.as_mut().poll(cx);
                            std::task::Poll::Ready(())
                        })
                        .await;
                        drop(acq);
                    }
                });
                h.await;
                sem.release(1);
                // The permit granted to the dropped waiter must be recovered.
                s.yield_now().await;
                assert_eq!(sem.available(), 1);
            }
        });
    }
}
