//! Multi-producer, multi-consumer FIFO channels (unbounded and bounded).
//!
//! These are the message-passing backbone between simulated components
//! (CPU→NIC doorbells, NIC RX queues, MPI mailboxes). All waiters are woken
//! in FIFO order, which keeps the simulation deterministic.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

/// Error returned by `send` when all receivers are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError;

/// Error returned by `recv` when the channel is empty and all senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

struct Chan<T> {
    queue: VecDeque<T>,
    cap: Option<usize>,
    recv_wakers: VecDeque<Waker>,
    send_wakers: VecDeque<Waker>,
    senders: usize,
    receivers: usize,
}

impl<T> Chan<T> {
    fn wake_one_recv(&mut self) {
        if let Some(w) = self.recv_wakers.pop_front() {
            w.wake();
        }
    }

    fn wake_one_send(&mut self) {
        if let Some(w) = self.send_wakers.pop_front() {
            w.wake();
        }
    }

    fn wake_all(&mut self) {
        for w in self.recv_wakers.drain(..) {
            w.wake();
        }
        for w in self.send_wakers.drain(..) {
            w.wake();
        }
    }
}

/// Create an unbounded channel.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    with_cap(None)
}

/// Create a bounded channel with capacity `cap` (> 0); `send` suspends while
/// the queue is full, modelling back-pressure (queue depths, ring buffers).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap > 0, "bounded channel capacity must be > 0");
    with_cap(Some(cap))
}

fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let chan = Rc::new(RefCell::new(Chan {
        queue: VecDeque::new(),
        cap,
        recv_wakers: VecDeque::new(),
        send_wakers: VecDeque::new(),
        senders: 1,
        receivers: 1,
    }));
    (
        Sender {
            chan: Rc::clone(&chan),
        },
        Receiver { chan },
    )
}

/// Sending half of a channel; clone to add producers.
pub struct Sender<T> {
    chan: Rc<RefCell<Chan<T>>>,
}

/// Receiving half of a channel; clone to add consumers.
pub struct Receiver<T> {
    chan: Rc<RefCell<Chan<T>>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.borrow_mut().senders += 1;
        Sender {
            chan: Rc::clone(&self.chan),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan.borrow_mut().receivers += 1;
        Receiver {
            chan: Rc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut c = self.chan.borrow_mut();
        c.senders -= 1;
        if c.senders == 0 {
            c.wake_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut c = self.chan.borrow_mut();
        c.receivers -= 1;
        if c.receivers == 0 {
            c.wake_all();
        }
    }
}

impl<T> Sender<T> {
    /// Non-blocking send. For bounded channels, fails with `Err` if full;
    /// returns the value so the caller can retry or drop it.
    pub fn try_send(&self, v: T) -> Result<(), T> {
        let mut c = self.chan.borrow_mut();
        if c.receivers == 0 {
            return Err(v);
        }
        if let Some(cap) = c.cap {
            if c.queue.len() >= cap {
                return Err(v);
            }
        }
        c.queue.push_back(v);
        c.wake_one_recv();
        Ok(())
    }

    /// Send, suspending while a bounded channel is full.
    pub fn send(&self, v: T) -> Send<'_, T> {
        Send {
            sender: self,
            value: Some(v),
        }
    }

    /// Current queue length (diagnostics).
    pub fn len(&self) -> usize {
        self.chan.borrow().queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether every receiver has been dropped.
    pub fn is_closed(&self) -> bool {
        self.chan.borrow().receivers == 0
    }
}

/// Future returned by [`Sender::send`].
pub struct Send<'a, T> {
    sender: &'a Sender<T>,
    value: Option<T>,
}

impl<T> Future for Send<'_, T> {
    type Output = Result<(), SendError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // Safety: we never move out of `self` structurally; T: Unpin not
        // required because we only use Option::take on a field.
        let this = unsafe { self.get_unchecked_mut() };
        let v = match this.value.take() {
            Some(v) => v,
            None => return Poll::Ready(Ok(())), // polled after completion
        };
        let mut c = this.sender.chan.borrow_mut();
        if c.receivers == 0 {
            return Poll::Ready(Err(SendError));
        }
        if let Some(cap) = c.cap {
            if c.queue.len() >= cap {
                this.value = Some(v);
                c.send_wakers.push_back(cx.waker().clone());
                return Poll::Pending;
            }
        }
        c.queue.push_back(v);
        c.wake_one_recv();
        Poll::Ready(Ok(()))
    }
}

impl<T> Receiver<T> {
    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<T> {
        let mut c = self.chan.borrow_mut();
        let v = c.queue.pop_front();
        if v.is_some() {
            c.wake_one_send();
        }
        v
    }

    /// Receive, suspending until a value or all senders are dropped.
    pub fn recv(&self) -> Recv<'_, T> {
        Recv { receiver: self }
    }

    /// Current queue length (diagnostics).
    pub fn len(&self) -> usize {
        self.chan.borrow().queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Future returned by [`Receiver::recv`].
pub struct Recv<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Future for Recv<'_, T> {
    type Output = Result<T, RecvError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut c = self.receiver.chan.borrow_mut();
        if let Some(v) = c.queue.pop_front() {
            c.wake_one_send();
            return Poll::Ready(Ok(v));
        }
        if c.senders == 0 {
            return Poll::Ready(Err(RecvError));
        }
        c.recv_wakers.push_back(cx.waker().clone());
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use crate::time::SimDuration as D;

    #[test]
    fn unbounded_fifo_order() {
        let sim = Sim::new();
        let (tx, rx) = channel::<u32>();
        let got = sim.block_on(async move {
            for i in 0..10 {
                tx.try_send(i).unwrap();
            }
            let mut out = Vec::new();
            for _ in 0..10 {
                out.push(rx.recv().await.unwrap());
            }
            out
        });
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn recv_waits_for_sender() {
        let sim = Sim::new();
        let s = sim.clone();
        let (tx, rx) = channel::<&'static str>();
        let v = sim.block_on(async move {
            let s2 = s.clone();
            s.spawn(async move {
                s2.sleep(D::from_us(3)).await;
                tx.try_send("hello").unwrap();
            });
            let v = rx.recv().await.unwrap();
            (v, s.now())
        });
        assert_eq!(v.0, "hello");
        assert_eq!(v.1.as_ps(), 3_000_000);
    }

    #[test]
    fn bounded_backpressure_blocks_sender() {
        let sim = Sim::new();
        let s = sim.clone();
        let (tx, rx) = bounded::<u32>(2);
        let t = sim.block_on(async move {
            let s2 = s.clone();
            let producer = s.spawn(async move {
                for i in 0..4 {
                    tx.send(i).await.unwrap();
                }
                s2.now()
            });
            s.sleep(D::from_us(10)).await;
            // Two sends fit, two block until we drain.
            assert_eq!(rx.len(), 2);
            for _ in 0..4 {
                rx.recv().await.unwrap();
                s.sleep(D::from_us(1)).await;
            }
            producer.await
        });
        assert!(t.as_ps() > 10_000_000);
    }

    #[test]
    fn recv_errs_when_senders_dropped() {
        let sim = Sim::new();
        let (tx, rx) = channel::<u32>();
        tx.try_send(7).unwrap();
        drop(tx);
        let out = sim.block_on(async move {
            let a = rx.recv().await;
            let b = rx.recv().await;
            (a, b)
        });
        assert_eq!(out.0, Ok(7));
        assert_eq!(out.1, Err(RecvError));
    }

    #[test]
    fn send_errs_when_receiver_dropped() {
        let sim = Sim::new();
        let (tx, rx) = channel::<u32>();
        drop(rx);
        sim.block_on(async move {
            assert_eq!(tx.send(1).await, Err(SendError));
            assert!(tx.try_send(2).is_err());
        });
    }

    #[test]
    fn try_send_respects_capacity() {
        let (tx, _rx) = bounded::<u32>(1);
        assert!(tx.try_send(1).is_ok());
        assert_eq!(tx.try_send(2), Err(2));
    }

    #[test]
    fn multiple_receivers_each_get_distinct_values() {
        let sim = Sim::new();
        let (tx, rx1) = channel::<u32>();
        let rx2 = rx1.clone();
        let sum = sim.block_on(async move {
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            rx1.recv().await.unwrap() + rx2.recv().await.unwrap()
        });
        assert_eq!(sum, 3);
    }
}
