//! Analytic FIFO service resources.
//!
//! A [`FifoResource`] models a store-and-forward server (a link direction, a
//! DMA engine, a NIC processing pipeline): requests are served one at a
//! time, in arrival order, each occupying the server for its service time.
//! Instead of running a server task, the resource tracks the next-free
//! instant — O(1) per request and exactly equivalent to an M/G/1-style FIFO
//! queue in virtual time.

use std::cell::Cell;
use std::rc::Rc;

use crate::executor::Sim;
use crate::time::{SimDuration, SimTime};

struct Inner {
    next_free: Cell<SimTime>,
    busy_total: Cell<SimDuration>,
    served: Cell<u64>,
}

/// An analytic FIFO server; clone to share (clones serve one queue).
#[derive(Clone)]
pub struct FifoResource {
    sim: Sim,
    // One shared allocation (not one per counter): resources are cloned on
    // hot paths, and a clone must be a single reference-count bump.
    inner: Rc<Inner>,
}

/// The service interval granted to one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// When service began (>= arrival instant).
    pub start: SimTime,
    /// When service completes.
    pub end: SimTime,
}

impl FifoResource {
    /// An idle server on `sim`'s clock.
    pub fn new(sim: &Sim) -> Self {
        FifoResource {
            sim: sim.clone(),
            inner: Rc::new(Inner {
                next_free: Cell::new(SimTime::ZERO),
                busy_total: Cell::new(SimDuration::ZERO),
                served: Cell::new(0),
            }),
        }
    }

    /// Reserve the server for `service` starting no earlier than now.
    /// Returns the grant immediately without waiting — callers that need
    /// store-and-forward semantics should `sleep_until(grant.end)`.
    pub fn enqueue(&self, service: SimDuration) -> Grant {
        let now = self.sim.now();
        let start = self.inner.next_free.get().max(now);
        let end = start + service;
        self.inner.next_free.set(end);
        self.inner
            .busy_total
            .set(self.inner.busy_total.get() + service);
        self.inner.served.set(self.inner.served.get() + 1);
        Grant { start, end }
    }

    /// Reserve and wait until service completes (store-and-forward).
    pub async fn use_for(&self, service: SimDuration) -> Grant {
        let g = self.enqueue(service);
        self.sim.sleep_until(g.end).await;
        g
    }

    /// Reserve and wait until service *starts* (cut-through).
    pub async fn wait_start(&self, service: SimDuration) -> Grant {
        let g = self.enqueue(service);
        self.sim.sleep_until(g.start).await;
        g
    }

    /// Instant at which the server next becomes free.
    pub fn next_free(&self) -> SimTime {
        self.inner.next_free.get().max(self.sim.now())
    }

    /// Total busy time accumulated (utilization numerator).
    pub fn busy_total(&self) -> SimDuration {
        self.inner.busy_total.get()
    }

    /// Number of requests served.
    pub fn served(&self) -> u64 {
        self.inner.served.get()
    }

    /// Utilization over the interval [0, now].
    pub fn utilization(&self) -> f64 {
        let now = self.sim.now();
        if now == SimTime::ZERO {
            return 0.0;
        }
        self.inner.busy_total.get().as_ps() as f64 / now.as_ps() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration as D;

    #[test]
    fn serial_requests_do_not_overlap() {
        let sim = Sim::new();
        let r = FifoResource::new(&sim);
        let g1 = r.enqueue(D::from_ns(100));
        let g2 = r.enqueue(D::from_ns(50));
        assert_eq!(g1.start, SimTime::ZERO);
        assert_eq!(g1.end.as_ps(), 100_000);
        assert_eq!(g2.start, g1.end);
        assert_eq!(g2.end.as_ps(), 150_000);
    }

    #[test]
    fn idle_gap_resets_start_to_now() {
        let sim = Sim::new();
        let s = sim.clone();
        let r = FifoResource::new(&sim);
        sim.block_on(async move {
            r.use_for(D::from_ns(10)).await;
            s.sleep(D::from_ns(90)).await;
            let g = r.enqueue(D::from_ns(10));
            assert_eq!(g.start, s.now());
        });
    }

    #[test]
    fn use_for_waits_for_completion() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.block_on(async move {
            let r = FifoResource::new(&s);
            let _ = r.enqueue(D::from_us(1)); // queue ahead of us
            let g = r.use_for(D::from_us(2)).await;
            assert_eq!(s.now(), g.end);
            assert_eq!(s.now().as_ps(), 3_000_000);
        });
    }

    #[test]
    fn pipelined_throughput_is_bottleneck_bound() {
        // Two stages in a pipeline: items flow through stage A then stage B.
        // Completion rate must equal the slower stage's rate.
        let sim = Sim::new();
        let s = sim.clone();
        let done = sim.block_on(async move {
            let a = FifoResource::new(&s);
            let b = FifoResource::new(&s);
            let mut last_end = SimTime::ZERO;
            for _ in 0..100 {
                let ga = a.enqueue(D::from_ns(10));
                // Stage B can only begin after A finishes this item.
                let start_b = ga.end.max(b.next_free());
                let gb = Grant {
                    start: start_b,
                    end: start_b + D::from_ns(30),
                };
                // emulate via explicit enqueue ordering
                let real = b.enqueue(D::from_ns(30));
                // In FIFO order with A faster, B is the bottleneck.
                let _ = gb;
                last_end = real.end;
            }
            last_end
        });
        // First item: 10 + 30; remaining 99 gated by B at 30 ns each.
        assert_eq!(done.as_ps(), (30 * 100) * 1000);
    }

    #[test]
    fn utilization_accounting() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.block_on(async move {
            let r = FifoResource::new(&s);
            r.use_for(D::from_ns(500)).await;
            s.sleep(D::from_ns(500)).await;
            assert!((r.utilization() - 0.5).abs() < 1e-9);
            assert_eq!(r.served(), 1);
            assert_eq!(r.busy_total(), D::from_ns(500));
        });
    }
}
