//! # cord-sim — deterministic discrete-event simulation engine
//!
//! The substrate for the CoRD reproduction: a single-threaded, virtual-time
//! async executor plus the queueing/measurement toolkit the hardware and OS
//! models are built from.
//!
//! Everything in the fabric — CPU cores, NIC pipelines, kernel drivers,
//! benchmark processes — runs as an async task on [`Sim`]. Time is virtual
//! ([`SimTime`], picosecond resolution) and only advances when all runnable
//! tasks are blocked, by jumping to the next timer. Runs are deterministic:
//! the same seed and task structure yield identical event interleavings,
//! which the test suite asserts.
//!
//! ## Quick tour
//!
//! ```
//! use cord_sim::{Sim, SimDuration};
//!
//! let sim = Sim::new();
//! let s = sim.clone();
//! let elapsed = sim.block_on(async move {
//!     s.sleep(SimDuration::from_us(5)).await;
//!     s.now()
//! });
//! assert_eq!(elapsed.as_us_f64(), 5.0);
//! ```
//!
//! Modules:
//! - [`executor`]: the virtual-time executor ([`Sim`], [`JoinHandle`]).
//! - [`sync`]: channels, [`sync::Notify`], [`sync::Semaphore`].
//! - [`resource`]: analytic FIFO servers for links/DMA/pipelines.
//! - [`stats`]: histograms, online moments, bimodality detection, series.
//! - [`rng`]: deterministic per-component random streams.
//! - [`trace`]: typed lifecycle tracing (the observability plane's spine).

#![deny(missing_docs)]

pub mod executor;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod sync;
pub mod time;
pub mod timer;
pub mod trace;

pub use executor::{JoinHandle, Sim, SimStats, Subsystem, TaskId};
pub use resource::{FifoResource, Grant};
pub use rng::{DetRng, RngFactory};
pub use time::{copy_time, transmission_time, SimDuration, SimTime};
pub use timer::TimerHandle;
pub use trace::{Trace, TraceCategory, TraceEvent, TraceKind};
