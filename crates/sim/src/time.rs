//! Virtual time.
//!
//! The simulation clock counts **picoseconds** in a `u64`. Picosecond
//! resolution lets bandwidths be expressed as exact integer costs per byte
//! (100 Gbit/s = 80 ps/B) while still covering ~213 days of virtual time,
//! far beyond any experiment in this repository.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time, in picoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, in picoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// The instant as integer picoseconds since simulation start.
    #[inline]
    pub fn as_ps(self) -> u64 {
        self.0
    }

    /// The instant in (fractional) nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The instant in (fractional) microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The instant in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Duration elapsed since `earlier`. Panics in debug builds if
    /// `earlier` is in the future.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(self >= earlier, "since() across negative span");
        SimDuration(self.0 - earlier.0)
    }

    /// Like [`SimTime::since`], but clamps negative spans to zero instead
    /// of panicking (used where `earlier` may legitimately be ahead, e.g.
    /// open-loop arrival schedules).
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// A span of `ps` picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimDuration(ps)
    }

    /// A span of `ns` nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns * 1_000)
    }

    /// A span of `us` microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * 1_000_000)
    }

    /// A span of `ms` milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * 1_000_000_000)
    }

    /// A span of `s` seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000_000)
    }

    /// Build a duration from a fractional nanosecond count (rounds to ps).
    #[inline]
    pub fn from_ns_f64(ns: f64) -> Self {
        debug_assert!(ns >= 0.0, "negative duration");
        SimDuration((ns * 1e3).round() as u64)
    }

    /// The span as integer picoseconds.
    #[inline]
    pub fn as_ps(self) -> u64 {
        self.0
    }

    /// The span in (fractional) nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The span in (fractional) microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Whether the span is empty.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// `self - other`, clamped to zero on underflow.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Scale by a non-negative float (used by DVFS frequency factors).
    #[inline]
    pub fn mul_f64(self, k: f64) -> SimDuration {
        debug_assert!(k >= 0.0, "negative scale");
        SimDuration((self.0 as f64 * k).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps >= 1_000_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ps >= 1_000_000_000 {
            write!(f, "{:.3}ms", ps as f64 / 1e9)
        } else if ps >= 1_000_000 {
            write!(f, "{:.3}us", self.as_us_f64())
        } else if ps >= 1_000 {
            write!(f, "{:.3}ns", self.as_ns_f64())
        } else {
            write!(f, "{ps}ps")
        }
    }
}

/// Convert a byte count and a bandwidth in Gbit/s into a serialization delay.
#[inline]
pub fn transmission_time(bytes: u64, gbps: f64) -> SimDuration {
    // ps per byte = 8 bits / (gbps * 1e9 bit/s) * 1e12 ps/s = 8000 / gbps
    SimDuration(((bytes as f64) * 8000.0 / gbps).round() as u64)
}

/// Convert a byte count and a bandwidth in GB/s into a duration.
#[inline]
pub fn copy_time(bytes: u64, gb_per_s: f64) -> SimDuration {
    // ps per byte = 1e12 / (gb_per_s * 1e9) = 1000 / gb_per_s
    SimDuration(((bytes as f64) * 1000.0 / gb_per_s).round() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::ZERO + SimDuration::from_us(3);
        assert_eq!(t.as_ps(), 3_000_000);
        assert_eq!((t - SimTime::ZERO).as_us_f64(), 3.0);
        assert_eq!(t.since(SimTime::ZERO), SimDuration::from_us(3));
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_ns(1_000), SimDuration::from_us(1));
        assert_eq!(SimDuration::from_us(1_000), SimDuration::from_ms(1));
        assert_eq!(SimDuration::from_ms(1_000), SimDuration::from_secs(1));
        assert_eq!(SimDuration::from_ns_f64(0.5), SimDuration::from_ps(500));
    }

    #[test]
    fn bandwidth_conversions() {
        // 100 Gbit/s => 80 ps per byte.
        assert_eq!(transmission_time(1, 100.0), SimDuration::from_ps(80));
        assert_eq!(
            transmission_time(4096, 100.0),
            SimDuration::from_ps(327_680)
        );
        // 10 GB/s => 100 ps per byte.
        assert_eq!(copy_time(10, 10.0), SimDuration::from_ps(1000));
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(format!("{}", SimDuration::from_ps(5)), "5ps");
        assert_eq!(format!("{}", SimDuration::from_ns(5)), "5.000ns");
        assert_eq!(format!("{}", SimDuration::from_us(5)), "5.000us");
        assert_eq!(format!("{}", SimDuration::from_ms(5)), "5.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(5)), "5.000s");
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_ns(100);
        assert_eq!(d.mul_f64(1.5), SimDuration::from_ns(150));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn saturating_ops() {
        let a = SimDuration::from_ns(1);
        let b = SimDuration::from_ns(2);
        assert_eq!(a.saturating_sub(b), SimDuration::ZERO);
        assert_eq!(
            SimTime::ZERO.saturating_since(SimTime(5)),
            SimDuration::ZERO
        );
    }
}
