//! Hierarchical timer wheel.
//!
//! The executor's timer store: O(1) insert, O(1) cancellation via slot
//! handles, and exact `(deadline, seq)` min-extraction so firing order is
//! bit-identical to a sorted heap (same-instant timers fire in
//! registration order).
//!
//! ## Layout
//!
//! Deadlines are bucketed by *tick* (`deadline >> GRANULARITY_SHIFT`)
//! into [`LEVELS`] wheel levels of [`SLOTS_PER_LEVEL`] slots each; level
//! `l` slots span `SLOTS_PER_LEVEL^l` ticks. Deadlines beyond the last
//! level wait in an overflow heap and migrate into the wheel as the
//! cursor approaches. Each slot keeps its members as a small binary
//! min-heap of `(deadline, seq, entry)` tuples stored inline, so the slot
//! minimum is its top — O(log k) maintenance with purely contiguous
//! memory, robust against both sparse slots (k ≈ 1) and dense ones
//! (hundreds of events per tick in throughput-bound phases).
//!
//! Timer state itself lives in a generational slab: inserting reuses
//! freed entries (steady-state insert/cancel/fire cycles allocate
//! nothing), and handles to freed entries are detected stale by their
//! generation, so cancelling an already-fired timer is a no-op.
//! Cancellation marks the slab entry dead in O(1); the corresponding
//! heap tuple is dropped lazily when it surfaces, so a cancelled timer
//! can never "rot" ahead of live ones.
//!
//! ## Exactness
//!
//! A classic hashed wheel only guarantees "not early"; this one must
//! reproduce the executor's old `BinaryHeap` order *exactly*. Three
//! properties make that work:
//!
//! 1. An entry's level is the group of the *highest bit in which its tick
//!    differs from the cursor's* (`tick ^ base`), so every entry at level
//!    `l` shares all bits above the level with the cursor. Its slot index
//!    is therefore strictly comparable to the cursor's — no "one rotation
//!    ahead" aliasing — and scanning the level's occupancy bitmap from
//!    the cursor finds the slot holding that level's earliest tick.
//! 2. A slot at level ≥ 1 can straddle the finer levels' windows, so the
//!    minimum is taken across *all* levels' first-occupied slot tops
//!    (plus the overflow head) by `(deadline, seq)` — never by slot index
//!    alone.
//! 3. When the cursor enters a new slot at a coarse level, that slot's
//!    entries re-file at strictly finer levels (their remaining
//!    difference from the cursor is below the level's span).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Picoseconds per level-0 tick, as a shift (2^17 ps ≈ 131 ns).
///
/// The geometry is tuned to discrete-event workloads: nearly every
/// deadline in a NIC/network simulation is within ~100 µs of "now"
/// (pipeline occupancies, DMA completions, link hops, 50–55 µs
/// congestion-control periods), so level 0 — 512 slots × 131 ns ≈ 67 µs
/// — absorbs most inserts with O(1) work, level 1 (× 512 ≈ 34 ms) takes
/// the rest, and the whole three-level structure stays small enough
/// (~40 KiB plus members) to be cache-resident.
const GRANULARITY_SHIFT: u32 = 17;
/// log2(slots per level).
const SLOT_BITS: u32 = 9;
/// Slots per wheel level.
pub const SLOTS_PER_LEVEL: usize = 1 << SLOT_BITS;
/// Wheel depth (512³ ticks ≈ 17.6 virtual seconds before overflow).
pub const LEVELS: usize = 3;

const SLOT_MASK: u64 = (SLOTS_PER_LEVEL as u64) - 1;
/// First tick delta past the last level's span.
const HORIZON_TICKS: u64 = 1 << (SLOT_BITS * LEVELS as u32);
/// u64 words in a level's occupancy bitmap.
const BITMAP_WORDS: usize = SLOTS_PER_LEVEL / 64;

#[inline]
fn tick_of(at_ps: u64) -> u64 {
    at_ps >> GRANULARITY_SHIFT
}

/// Handle to a pending timer; `cancel` through it is O(1). Stale handles
/// (fired or already-cancelled timers) are detected by generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerHandle {
    idx: u32,
    gen: u32,
}

/// Where an entry currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    /// In `levels[level].slots[slot]`'s member heap.
    Wheel { level: u8, slot: u16 },
    /// In the overflow heap.
    Overflow,
    /// On the free list.
    Free { next: u32 },
}

struct Entry<T> {
    at: u64,
    seq: u64,
    gen: u32,
    loc: Loc,
    /// `None` marks a cancelled entry awaiting lazy reclamation (its
    /// heap tuple still exists and is skipped when it surfaces).
    payload: Option<T>,
}

/// A slot member: `(deadline, seq, slab index)`.
type Member = (u64, u64, u32);

#[inline]
fn key(m: &Member) -> (u64, u64) {
    (m.0, m.1)
}

/// One wheel slot: its members as an inline binary min-heap ordered by
/// `(deadline, seq)`, top at index 0. Contiguous storage keeps rescans
/// and sifts cache-local whatever the slot's population.
#[derive(Default)]
struct Slot {
    h: Vec<Member>,
}

impl Slot {
    #[inline]
    fn push(&mut self, m: Member) {
        self.h.push(m);
        let mut i = self.h.len() - 1;
        while i > 0 {
            let p = (i - 1) / 2;
            if key(&self.h[i]) < key(&self.h[p]) {
                self.h.swap(i, p);
                i = p;
            } else {
                break;
            }
        }
    }

    #[inline]
    fn peek(&self) -> Option<&Member> {
        self.h.first()
    }

    fn pop_min(&mut self) -> Option<Member> {
        let len = self.h.len();
        if len == 0 {
            return None;
        }
        let top = self.h.swap_remove(0);
        let mut i = 0;
        loop {
            let l = 2 * i + 1;
            if l >= self.h.len() {
                break;
            }
            let c = if l + 1 < self.h.len() && key(&self.h[l + 1]) < key(&self.h[l]) {
                l + 1
            } else {
                l
            };
            if key(&self.h[c]) < key(&self.h[i]) {
                self.h.swap(i, c);
                i = c;
            } else {
                break;
            }
        }
        Some(top)
    }
}

struct Level {
    slots: Vec<Slot>,
    /// Two-tier occupancy bitmap: bit `s % 64` of `words[s / 64]` is set
    /// ⇔ `slots[s]` is non-empty; bit `w` of `summary` is set ⇔
    /// `words[w] != 0`. First-occupied queries cost two find-first-set
    /// operations regardless of slot count.
    words: [u64; BITMAP_WORDS],
    summary: u64,
    /// Total members across the level's slots (live + tombstoned).
    members: u32,
}

impl Level {
    fn new() -> Self {
        Level {
            slots: (0..SLOTS_PER_LEVEL).map(|_| Slot::default()).collect(),
            words: [0; BITMAP_WORDS],
            summary: 0,
            members: 0,
        }
    }

    #[inline]
    fn mark(&mut self, slot: usize) {
        self.words[slot / 64] |= 1 << (slot % 64);
        self.summary |= 1 << (slot / 64);
    }

    #[inline]
    fn clear(&mut self, slot: usize) {
        self.words[slot / 64] &= !(1 << (slot % 64));
        if self.words[slot / 64] == 0 {
            self.summary &= !(1 << (slot / 64));
        }
    }

    /// First occupied slot at or after `start`, in circular order.
    #[inline]
    fn first_occupied_from(&self, start: u64) -> Option<usize> {
        if self.summary == 0 {
            return None;
        }
        let start = start as usize;
        let (w0, b0) = (start / 64, start % 64);
        // Bits at or after `start` within the start word.
        let head = self.words[w0] & (!0u64 << b0);
        if head != 0 {
            return Some(w0 * 64 + head.trailing_zeros() as usize);
        }
        // Circular scan of the remaining words via the summary (rotation
        // of a non-zero word is non-zero, so this always finds one —
        // possibly wrapping back to bits of `w0` before `start`).
        let rot = self.summary.rotate_right(w0 as u32 + 1);
        let w = (w0 + 1 + rot.trailing_zeros() as usize) % BITMAP_WORDS;
        Some(w * 64 + self.words[w].trailing_zeros() as usize)
    }
}

/// The wheel. `T` is the per-timer payload (the executor stores its timer
/// action); keeping it generic lets the property tests model the wheel
/// against a reference heap with plain integers.
pub struct TimerWheel<T> {
    entries: Vec<Entry<T>>,
    free_head: u32,
    levels: Vec<Level>,
    overflow: BinaryHeap<Reverse<Member>>,
    /// Cursor tick: `tick_of` of the last popped deadline (never moves
    /// backwards). All wheel entries have `tick >= base`.
    base: u64,
    /// Live (non-cancelled) timers.
    len: usize,
    /// Times the entry slab grew (i.e. allocated), for alloc-free-path
    /// assertions; steady-state churn must reuse freed entries instead.
    slab_allocs: u64,
    inserts: u64,
    /// Members touched by min-extraction (dead prunes + pops); a cheap
    /// scan-cost diagnostic.
    scan_steps: u64,
    /// Memoized `find_min` result, so the executor's peek-then-pop pattern
    /// scans the levels once per fire. Invalidated by any mutation that
    /// could change the minimum.
    cached_min: Option<Member>,
}

const NO_FREE: u32 = u32::MAX;

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimerWheel<T> {
    /// An empty wheel based at tick 0.
    pub fn new() -> Self {
        TimerWheel {
            entries: Vec::new(),
            free_head: NO_FREE,
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            overflow: BinaryHeap::new(),
            base: 0,
            len: 0,
            slab_allocs: 0,
            inserts: 0,
            scan_steps: 0,
            cached_min: None,
        }
    }

    /// Number of live (armed, not cancelled) timers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no timers are armed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total inserts so far.
    pub fn inserts(&self) -> u64 {
        self.inserts
    }

    /// Times the entry slab had to allocate (perf diagnostics: a
    /// steady-state workload should stop growing this).
    pub fn slab_allocs(&self) -> u64 {
        self.slab_allocs
    }

    /// Members examined by min-extraction so far.
    pub fn scan_steps(&self) -> u64 {
        self.scan_steps
    }

    /// Level for a tick relative to the cursor: the group of the highest
    /// differing bit. The caller has ruled out the overflow range, so the
    /// entry shares all bits above the returned level with the cursor.
    #[inline]
    fn level_for(diff: u64) -> usize {
        debug_assert!(diff < HORIZON_TICKS);
        if diff == 0 {
            return 0;
        }
        ((63 - diff.leading_zeros()) / SLOT_BITS) as usize
    }

    fn alloc_entry(&mut self, at: u64, seq: u64, payload: T) -> u32 {
        if self.free_head != NO_FREE {
            let idx = self.free_head;
            let e = &mut self.entries[idx as usize];
            let Loc::Free { next } = e.loc else {
                unreachable!("free list points at a live entry");
            };
            self.free_head = next;
            e.at = at;
            e.seq = seq;
            e.payload = Some(payload);
            idx
        } else {
            self.slab_allocs += 1;
            self.entries.push(Entry {
                at,
                seq,
                gen: 0,
                loc: Loc::Free { next: NO_FREE },
                payload: Some(payload),
            });
            (self.entries.len() - 1) as u32
        }
    }

    fn free_entry(&mut self, idx: u32) {
        let e = &mut self.entries[idx as usize];
        e.gen = e.gen.wrapping_add(1);
        e.payload = None;
        e.loc = Loc::Free {
            next: self.free_head,
        };
        self.free_head = idx;
    }

    /// File entry `idx` (deadline already stored) into a wheel slot or the
    /// overflow heap.
    fn file(&mut self, idx: u32) {
        let e = &self.entries[idx as usize];
        let (at, seq) = (e.at, e.seq);
        let tick = tick_of(at);
        debug_assert!(tick >= self.base, "timer filed into the past");
        let diff = tick ^ self.base;
        if diff >= HORIZON_TICKS {
            self.entries[idx as usize].loc = Loc::Overflow;
            self.overflow.push(Reverse((at, seq, idx)));
            return;
        }
        let level = Self::level_for(diff);
        let slot = ((tick >> (SLOT_BITS * level as u32)) & SLOT_MASK) as usize;
        let lv = &mut self.levels[level];
        lv.slots[slot].push((at, seq, idx));
        if lv.slots[slot].h.len() == 1 {
            lv.mark(slot);
        }
        lv.members += 1;
        self.entries[idx as usize].loc = Loc::Wheel {
            level: level as u8,
            slot: slot as u16,
        };
    }

    /// Insert a timer at absolute picosecond deadline `at_ps` with global
    /// tiebreak sequence `seq`. `seq` must be unique and monotonically
    /// increasing across inserts (the executor's registration counter).
    pub fn insert(&mut self, at_ps: u64, seq: u64, payload: T) -> TimerHandle {
        self.inserts += 1;
        self.len += 1;
        let idx = self.alloc_entry(at_ps, seq, payload);
        self.file(idx);
        if let Some(m) = self.cached_min {
            if (at_ps, seq) < key(&m) {
                self.cached_min = Some((at_ps, seq, idx));
            }
        }
        TimerHandle {
            idx,
            gen: self.entries[idx as usize].gen,
        }
    }

    /// Cancel a pending timer in O(1). Returns `false` when the handle is
    /// stale (the timer already fired or was cancelled). The entry is
    /// tombstoned in place — no allocation, no structural work — and its
    /// heap tuple is discarded lazily when it surfaces, so it can never
    /// delay a live timer.
    pub fn cancel(&mut self, h: TimerHandle) -> bool {
        let Some(e) = self.entries.get_mut(h.idx as usize) else {
            return false;
        };
        if e.gen != h.gen || e.payload.is_none() || matches!(e.loc, Loc::Free { .. }) {
            return false;
        }
        e.payload = None;
        self.len -= 1;
        if self.cached_min.is_some_and(|(_, _, i)| i == h.idx) {
            self.cached_min = None;
        }
        true
    }

    /// Minimum `(at, seq, idx)` across all levels and the overflow head,
    /// pruning tombstoned members as they surface.
    fn find_min(&mut self) -> Option<Member> {
        let mut best: Option<Member> = None;
        for level in 0..LEVELS {
            if self.levels[level].members == 0 {
                continue;
            }
            let start = (self.base >> (SLOT_BITS * level as u32)) & SLOT_MASK;
            // A slot can turn out to be all tombstones; clearing it may
            // expose a later slot, so retry within the level.
            'level: while let Some(slot) = self.levels[level].first_occupied_from(start) {
                loop {
                    let lv = &mut self.levels[level];
                    let Some(&m) = lv.slots[slot].peek() else {
                        lv.clear(slot);
                        continue 'level;
                    };
                    if self.entries[m.2 as usize].payload.is_some() {
                        if best.is_none_or(|b| key(&m) < key(&b)) {
                            best = Some(m);
                        }
                        break 'level;
                    }
                    // Tombstone: discard and reclaim.
                    self.scan_steps += 1;
                    lv.slots[slot].pop_min();
                    lv.members -= 1;
                    self.free_entry(m.2);
                }
            }
        }
        // Same pruning on the overflow heap's top.
        while let Some(&Reverse(m)) = self.overflow.peek() {
            if self.entries[m.2 as usize].payload.is_none() {
                self.scan_steps += 1;
                self.overflow.pop();
                self.free_entry(m.2);
                continue;
            }
            if best.is_none_or(|b| key(&m) < key(&b)) {
                best = Some(m);
            }
            break;
        }
        best
    }

    /// Deadline and sequence of the next timer to fire, if any.
    pub fn peek(&mut self) -> Option<(u64, u64)> {
        if let Some((at, seq, _)) = self.cached_min {
            return Some((at, seq));
        }
        let m = self.find_min();
        self.cached_min = m;
        m.map(|(at, seq, _)| (at, seq))
    }

    /// Pop the next timer in `(deadline, seq)` order, advancing the
    /// cursor to its tick (cascading coarse slots the cursor enters down
    /// to finer levels, and migrating newly in-horizon overflow entries).
    pub fn pop(&mut self) -> Option<(u64, u64, T)> {
        let (at, seq, idx) = match self.cached_min.take() {
            Some(m) => m,
            None => self.find_min()?,
        };
        self.scan_steps += 1;
        match self.entries[idx as usize].loc {
            Loc::Wheel { level, slot } => {
                let lv = &mut self.levels[level as usize];
                let popped = lv.slots[slot as usize].pop_min();
                debug_assert_eq!(popped, Some((at, seq, idx)), "min not at its slot top");
                lv.members -= 1;
                if lv.slots[slot as usize].h.is_empty() {
                    lv.clear(slot as usize);
                }
            }
            Loc::Overflow => {
                let popped = self.overflow.pop();
                debug_assert_eq!(popped, Some(Reverse((at, seq, idx))));
            }
            Loc::Free { .. } => unreachable!("min points at a free entry"),
        }
        let payload = self.entries[idx as usize]
            .payload
            .take()
            .expect("live entry has a payload");
        self.free_entry(idx);
        self.len -= 1;
        self.advance(tick_of(at));
        Some((at, seq, payload))
    }

    /// Advance the cursor to `tick`, re-filing entries from each coarse
    /// slot the cursor lands in (and any overflow entries now inside the
    /// horizon) into finer levels so future scans stay cheap.
    fn advance(&mut self, tick: u64) {
        if tick == self.base {
            return;
        }
        debug_assert!(tick > self.base, "cursor moving backwards");
        let old = self.base;
        self.base = tick;
        // When the cursor enters a new slot at a coarse level, that
        // slot's entries re-file at finer levels (their highest differing
        // bit from the cursor is now below the level's group). The common
        // small advance stays within the old slots and skips the loop.
        let top = if (old ^ tick) < (1 << SLOT_BITS) {
            0
        } else {
            Self::level_for((old ^ tick).min(HORIZON_TICKS - 1))
        };
        for level in 1..=top.min(LEVELS - 1) {
            if self.levels[level].members == 0 {
                continue;
            }
            let slot = ((tick >> (SLOT_BITS * level as u32)) & SLOT_MASK) as usize;
            if self.levels[level].slots[slot].h.is_empty() {
                continue;
            }
            let drained = std::mem::take(&mut self.levels[level].slots[slot].h);
            self.levels[level].clear(slot);
            self.levels[level].members -= drained.len() as u32;
            for (_, _, idx) in drained {
                if self.entries[idx as usize].payload.is_none() {
                    self.free_entry(idx); // tombstone: reclaim instead of re-filing
                } else {
                    self.file(idx);
                }
            }
        }
        // Overflow entries whose ticks now share the cursor's high bits
        // migrate into the wheel. `msb(tick ^ base)` is monotone in `tick`
        // for ticks ≥ base, so stopping at the first non-migratable head
        // is exact.
        while let Some(&Reverse((at, _, idx))) = self.overflow.peek() {
            if tick_of(at) ^ self.base >= HORIZON_TICKS {
                break;
            }
            self.overflow.pop();
            let e = &self.entries[idx as usize];
            debug_assert_eq!(e.loc, Loc::Overflow);
            if e.payload.is_none() {
                self.free_entry(idx);
            } else {
                self.file(idx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drain the wheel fully, returning fired payloads in order.
    fn drain(w: &mut TimerWheel<u32>) -> Vec<(u64, u64, u32)> {
        let mut out = Vec::new();
        while let Some(x) = w.pop() {
            out.push(x);
        }
        out
    }

    #[test]
    fn fires_in_deadline_then_seq_order() {
        let mut w = TimerWheel::new();
        w.insert(5_000_000, 0, 0);
        w.insert(3_000_000, 1, 1);
        w.insert(5_000_000, 2, 2);
        w.insert(1_000_000, 3, 3);
        let fired: Vec<u32> = drain(&mut w).into_iter().map(|(_, _, p)| p).collect();
        assert_eq!(fired, vec![3, 1, 0, 2]);
    }

    #[test]
    fn same_tick_different_ps_fire_in_ps_order() {
        // 2^17 ps per tick: these three share a level-0 slot.
        let mut w = TimerWheel::new();
        w.insert(70_000, 0, 0);
        w.insert(10_000, 1, 1);
        w.insert(40_000, 2, 2);
        let fired: Vec<u64> = drain(&mut w).into_iter().map(|(at, _, _)| at).collect();
        assert_eq!(fired, vec![10_000, 40_000, 70_000]);
    }

    #[test]
    fn cancel_is_o1_and_entries_are_reclaimed() {
        let mut w = TimerWheel::new();
        let h: Vec<_> = (0..8u32)
            .map(|i| w.insert(1_000_000 * u64::from(i + 1), u64::from(i), i))
            .collect();
        assert!(w.cancel(h[3]));
        assert!(!w.cancel(h[3]), "double cancel is stale");
        assert_eq!(w.len(), 7);
        let fired: Vec<u32> = drain(&mut w).into_iter().map(|(_, _, p)| p).collect();
        assert_eq!(fired, vec![0, 1, 2, 4, 5, 6, 7]);
        // Every entry (including the tombstoned one) was reclaimed: a new
        // burst of the same size — past the drained cursor — must not
        // grow the slab.
        let before = w.slab_allocs();
        for i in 0..8u64 {
            w.insert(10_000_000 + 1_000_000 * (i + 1), 100 + i, i as u32);
        }
        assert_eq!(w.slab_allocs(), before);
    }

    #[test]
    fn stale_handle_after_fire_is_ignored() {
        let mut w = TimerWheel::new();
        let h = w.insert(1_000, 0, 7);
        assert_eq!(w.pop().map(|(_, _, p)| p), Some(7));
        assert!(!w.cancel(h));
    }

    #[test]
    fn far_future_goes_through_overflow() {
        let mut w = TimerWheel::new();
        let far = (HORIZON_TICKS + 12345) << GRANULARITY_SHIFT;
        w.insert(far, 0, 1);
        w.insert(1_000, 1, 0);
        assert_eq!(w.peek(), Some((1_000, 1)));
        let fired: Vec<u32> = drain(&mut w).into_iter().map(|(_, _, p)| p).collect();
        assert_eq!(fired, vec![0, 1]);
    }

    #[test]
    fn cancelled_overflow_entry_is_reclaimed_lazily() {
        let mut w = TimerWheel::new();
        let far = (HORIZON_TICKS * 2) << GRANULARITY_SHIFT;
        let h = w.insert(far, 0, 1);
        w.insert(500, 1, 0);
        assert!(w.cancel(h));
        assert_eq!(w.len(), 1);
        let fired: Vec<u32> = drain(&mut w).into_iter().map(|(_, _, p)| p).collect();
        assert_eq!(fired, vec![0]);
        assert!(w.is_empty());
    }

    #[test]
    fn cancelled_member_never_delays_live_timers() {
        let mut w = TimerWheel::new();
        // Tombstone at the very front of the wheel.
        let h = w.insert(1_000, 0, 99);
        w.insert(2_000, 1, 0);
        assert!(w.cancel(h));
        assert_eq!(w.peek(), Some((2_000, 1)));
        assert_eq!(w.pop().map(|(_, _, p)| p), Some(0));
        assert!(w.is_empty());
    }

    #[test]
    fn coarse_slots_cascade_without_losing_order() {
        // Entries spread across several levels, inserted far before they
        // are due, interleaved with near entries registered later.
        let mut w = TimerWheel::new();
        let mut seq = 0;
        let mut expect = Vec::new();
        for (i, &ticks) in [3u64, 700, 41_000, 2_630_000, 170_000_000]
            .iter()
            .enumerate()
        {
            let at = ticks << GRANULARITY_SHIFT;
            w.insert(at, seq, i as u32);
            expect.push((at, seq, i as u32));
            seq += 1;
        }
        // Same deadlines registered again later: must fire after their
        // earlier twins (seq tiebreak across levels).
        for (i, &ticks) in [700u64, 2_630_000].iter().enumerate() {
            let at = ticks << GRANULARITY_SHIFT;
            w.insert(at, seq, 100 + i as u32);
            expect.push((at, seq, 100 + i as u32));
            seq += 1;
        }
        expect.sort_by_key(|&(at, s, _)| (at, s));
        assert_eq!(drain(&mut w), expect);
    }

    #[test]
    fn dense_slot_drains_in_order() {
        // Hundreds of members in one level-0 slot (the throughput-bound
        // regime): the per-slot heap must extract them in exact order.
        let mut w = TimerWheel::new();
        let mut expect = Vec::new();
        for i in 0..500u64 {
            // All within one tick; deliberately scrambled sub-tick order.
            let at = ((i * 7919) % 1000) * 100;
            w.insert(at, i, i as u32);
            expect.push((at, i, i as u32));
        }
        expect.sort_by_key(|&(at, s, _)| (at, s));
        assert_eq!(drain(&mut w), expect);
    }
}
