//! Typed, deterministic event tracing — the observability plane's spine.
//!
//! Every layer of the stack emits compact [`TraceKind`] records into one
//! shared ring: WQE acceptance, per-fragment TX/RX, switch-port
//! occupancy and PFC pause transitions, retransmission windows, DCQCN
//! rate cuts, fault onsets/clearances. Records carry stable integer IDs
//! (node, QP, port, message sequence) instead of rendered strings, so
//! recording is allocation-free and a disabled trace costs exactly one
//! branch per call — the healthy path stays byte-identical whether or
//! not a trace object exists.
//!
//! Tracing must never perturb virtual time: [`Trace::emit`] only copies
//! a few words into the ring, never touches the sim clock, schedules
//! nothing, and allocates only when the ring grows toward its cap.
//! Consumers (the Perfetto exporter in `cord-bench`, tests) snapshot the
//! ring after the run.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::time::SimTime;

/// Coarse category of a trace record, for filtering in tests and tools.
/// Derived from the [`TraceKind`], never stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceCategory {
    /// System-call entries/exits (CoRD crossings, ioctls).
    Syscall,
    /// NIC engine events (WQE processing, CQEs, replays, rate cuts).
    Nic,
    /// DMA transactions between host memory and the NIC.
    Dma,
    /// Link/fabric transmissions (per-fragment TX/RX, mesh hops).
    Link,
    /// Switch-port events (occupancy, drops, PFC pause transitions).
    Port,
    /// CoRD policy decisions.
    Policy,
    /// Chaos-plane fault injection and detection.
    Fault,
    /// MPI layer events.
    Mpi,
    /// Application-level markers.
    App,
}

/// One typed lifecycle event. Variants are compact and `Copy`: stable
/// integer IDs only, no strings, so emitting never allocates.
///
/// The WQE→packet→switch-port→RX→CQE path maps to `WqeStart` →
/// `FragTx`* → `PortEnqueue`* → `FragRx`* → `CqeDone`; the loss regimes
/// add pause windows (`PauseOn`/`PauseOff`), drops (`PortDrop`), and
/// replay windows (`ReplayStart`/`ReplayEnd`); the chaos plane brackets
/// each fault with `FaultOn`/`FaultOff`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A send WQE was accepted by the NIC engine.
    WqeStart {
        /// Posting node.
        node: u32,
        /// Posting QP number.
        qpn: u32,
        /// Caller's work-request ID.
        wr_id: u64,
        /// Total message bytes.
        bytes: u32,
    },
    /// One fragment left the NIC serializer toward the fabric.
    FragTx {
        /// Source node.
        node: u32,
        /// Source QP number.
        qpn: u32,
        /// Destination node.
        dst: u32,
        /// Message sequence number on this QP.
        msg_seq: u32,
        /// Fragment index within the message.
        frag: u32,
        /// Fragment payload bytes.
        bytes: u32,
    },
    /// One fragment arrived at the destination NIC's receive pipeline.
    FragRx {
        /// Receiving node.
        node: u32,
        /// Receiving QP number.
        qpn: u32,
        /// Source node.
        src: u32,
        /// Message sequence number on the sending QP.
        msg_seq: u32,
        /// Fragment index within the message.
        frag: u32,
        /// Fragment payload bytes.
        bytes: u32,
    },
    /// A completion queue entry was delivered.
    CqeDone {
        /// Completing node.
        node: u32,
        /// Completing QP number.
        qpn: u32,
        /// Work-request ID being completed.
        wr_id: u64,
    },
    /// A QP entered the ERROR state and flushed its queues.
    QpFlush {
        /// Node owning the QP.
        node: u32,
        /// The flushed QP.
        qpn: u32,
    },
    /// A switch port accepted a frame; `queued_bytes` is the port's
    /// occupancy after the enqueue.
    PortEnqueue {
        /// Global port index in the topology's route plan.
        port: u32,
        /// Queue occupancy in bytes, post-enqueue.
        queued_bytes: u32,
    },
    /// A switch port dropped a frame (finite buffer, lossy regime).
    PortDrop {
        /// Global port index.
        port: u32,
        /// Bytes of the dropped frame.
        bytes: u32,
    },
    /// A port asserted PFC pause (XOFF) toward its feeder.
    PauseOn {
        /// Global port index.
        port: u32,
    },
    /// A port released PFC pause (XON).
    PauseOff {
        /// Global port index.
        port: u32,
    },
    /// Go-back-N replay began on a QP (retransmit window opens).
    ReplayStart {
        /// Replaying node.
        node: u32,
        /// Replaying QP.
        qpn: u32,
        /// First message sequence being replayed.
        msg_seq: u32,
    },
    /// The replay window closed: the QP caught back up to new traffic.
    ReplayEnd {
        /// Replaying node.
        node: u32,
        /// Replaying QP.
        qpn: u32,
    },
    /// A QP exhausted its retransmit retries (fatal).
    RetxExhausted {
        /// Node owning the QP.
        node: u32,
        /// The exhausted QP.
        qpn: u32,
    },
    /// A QP exhausted its RNR retries (fatal).
    RnrExhausted {
        /// Node owning the QP.
        node: u32,
        /// The exhausted QP.
        qpn: u32,
    },
    /// DCQCN cut a QP's sending rate in response to a CNP.
    RateCut {
        /// Node owning the QP.
        node: u32,
        /// The rate-limited QP.
        qpn: u32,
        /// New sending rate in megabits per second.
        rate_mbps: u32,
    },
    /// A frame crossed the ideal full-mesh fabric (no switched path).
    MeshTx {
        /// Source node.
        src: u32,
        /// Destination node.
        dst: u32,
        /// Frame payload bytes.
        bytes: u32,
    },
    /// A CoRD policy denied a post.
    PolicyDeny {
        /// Node whose kernel denied.
        node: u32,
        /// The denied QP.
        qpn: u32,
    },
    /// The chaos plane applied fault `idx` of its schedule.
    FaultOn {
        /// Index into the plane's applicable-event list.
        idx: u32,
    },
    /// The chaos plane cleared fault `idx`.
    FaultOff {
        /// Index into the plane's applicable-event list.
        idx: u32,
    },
    /// The PFC no-progress watchdog broke wedged ports.
    DeadlockBreak {
        /// Number of ports force-released in this scan.
        ports: u32,
    },
}

impl TraceKind {
    /// The coarse category this kind belongs to.
    pub fn category(&self) -> TraceCategory {
        match self {
            TraceKind::WqeStart { .. }
            | TraceKind::CqeDone { .. }
            | TraceKind::QpFlush { .. }
            | TraceKind::ReplayStart { .. }
            | TraceKind::ReplayEnd { .. }
            | TraceKind::RetxExhausted { .. }
            | TraceKind::RnrExhausted { .. }
            | TraceKind::RateCut { .. } => TraceCategory::Nic,
            TraceKind::FragTx { .. } | TraceKind::FragRx { .. } | TraceKind::MeshTx { .. } => {
                TraceCategory::Link
            }
            TraceKind::PortEnqueue { .. }
            | TraceKind::PortDrop { .. }
            | TraceKind::PauseOn { .. }
            | TraceKind::PauseOff { .. } => TraceCategory::Port,
            TraceKind::PolicyDeny { .. } => TraceCategory::Policy,
            TraceKind::FaultOn { .. }
            | TraceKind::FaultOff { .. }
            | TraceKind::DeadlockBreak { .. } => TraceCategory::Fault,
        }
    }
}

/// One trace record: a typed event stamped with its virtual instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual instant the event was recorded at.
    pub at: SimTime,
    /// The typed event.
    pub kind: TraceKind,
}

struct Inner {
    /// Immutable after construction: one branch decides everything.
    enabled: bool,
    buf: RefCell<VecDeque<TraceEvent>>,
    cap: usize,
}

/// Shared trace sink. Cheap to clone (all clones share the ring).
#[derive(Clone)]
pub struct Trace {
    inner: Rc<Inner>,
}

impl Default for Trace {
    fn default() -> Self {
        Self::disabled()
    }
}

impl Trace {
    /// A disabled trace; [`Trace::emit`] is a no-op costing one branch.
    pub fn disabled() -> Self {
        Trace {
            inner: Rc::new(Inner {
                enabled: false,
                buf: RefCell::new(VecDeque::new()),
                cap: 0,
            }),
        }
    }

    /// An enabled trace retaining up to `cap` records (FIFO eviction).
    pub fn enabled(cap: usize) -> Self {
        Trace {
            inner: Rc::new(Inner {
                enabled: true,
                buf: RefCell::new(VecDeque::new()),
                cap,
            }),
        }
    }

    /// Whether records are being retained.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled
    }

    /// Record a typed event. Disabled traces return after one branch;
    /// enabled ones copy a few words into the ring (no formatting, no
    /// per-event allocation once the ring is at capacity).
    #[inline]
    pub fn emit(&self, at: SimTime, kind: TraceKind) {
        if !self.inner.enabled {
            return;
        }
        let mut buf = self.inner.buf.borrow_mut();
        if buf.len() >= self.inner.cap {
            buf.pop_front();
        }
        buf.push_back(TraceEvent { at, kind });
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.inner.buf.borrow().len()
    }

    /// Whether no records are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all records in emission order.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.inner.buf.borrow().iter().copied().collect()
    }

    /// Count records in a category.
    pub fn count(&self, category: TraceCategory) -> usize {
        self.inner
            .buf
            .borrow()
            .iter()
            .filter(|e| e.kind.category() == category)
            .count()
    }

    /// Count records matching a predicate on the kind.
    pub fn count_kind(&self, mut pred: impl FnMut(&TraceKind) -> bool) -> usize {
        self.inner
            .buf
            .borrow()
            .iter()
            .filter(|e| pred(&e.kind))
            .count()
    }

    /// Drop all retained records.
    pub fn clear(&self) {
        self.inner.buf.borrow_mut().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let t = Trace::disabled();
        t.emit(SimTime::ZERO, TraceKind::PauseOn { port: 3 });
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_records_and_filters() {
        let t = Trace::enabled(16);
        t.emit(
            SimTime(1),
            TraceKind::WqeStart {
                node: 0,
                qpn: 8,
                wr_id: 42,
                bytes: 4096,
            },
        );
        t.emit(SimTime(2), TraceKind::PauseOn { port: 5 });
        t.emit(
            SimTime(3),
            TraceKind::CqeDone {
                node: 1,
                qpn: 9,
                wr_id: 42,
            },
        );
        assert_eq!(t.len(), 3);
        assert_eq!(t.count(TraceCategory::Nic), 2);
        assert_eq!(t.count(TraceCategory::Port), 1);
        assert_eq!(t.count(TraceCategory::Policy), 0);
        let snap = t.snapshot();
        assert_eq!(snap[1].at, SimTime(2));
        assert_eq!(snap[1].kind, TraceKind::PauseOn { port: 5 });
        assert_eq!(
            t.count_kind(|k| matches!(k, TraceKind::WqeStart { qpn: 8, .. })),
            1
        );
    }

    #[test]
    fn capacity_evicts_oldest() {
        let t = Trace::enabled(2);
        for i in 0..5u32 {
            t.emit(
                SimTime(u64::from(i)),
                TraceKind::PortDrop { port: i, bytes: 1 },
            );
        }
        let snap = t.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].kind, TraceKind::PortDrop { port: 3, bytes: 1 });
        assert_eq!(snap[1].kind, TraceKind::PortDrop { port: 4, bytes: 1 });
    }

    #[test]
    fn clear_empties() {
        let t = Trace::enabled(8);
        t.emit(SimTime::ZERO, TraceKind::PauseOff { port: 0 });
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn categories_are_derived_consistently() {
        // Every kind maps to exactly one category; pin a representative
        // of each arm so a refactor can't silently recategorize.
        assert_eq!(
            TraceKind::FragTx {
                node: 0,
                qpn: 0,
                dst: 1,
                msg_seq: 0,
                frag: 0,
                bytes: 0
            }
            .category(),
            TraceCategory::Link
        );
        assert_eq!(
            TraceKind::FaultOn { idx: 0 }.category(),
            TraceCategory::Fault
        );
        assert_eq!(
            TraceKind::PolicyDeny { node: 0, qpn: 0 }.category(),
            TraceCategory::Policy
        );
        assert_eq!(
            TraceKind::DeadlockBreak { ports: 2 }.category(),
            TraceCategory::Fault
        );
    }
}
