//! Lightweight event tracing.
//!
//! The observability CoRD policy and the test suite both consume this: a
//! shared, optionally-enabled ring of `(time, category, message)` records.
//! Disabled tracing costs one branch per call.

use std::cell::RefCell;
use std::rc::Rc;

use crate::time::SimTime;

/// Category of a trace record; coarse filters for tests/tools.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceCategory {
    /// System-call entries/exits (CoRD crossings, ioctls).
    Syscall,
    /// NIC engine events (WQE processing, CQEs, CNPs).
    Nic,
    /// DMA transactions between host memory and the NIC.
    Dma,
    /// Link/fabric transmissions.
    Link,
    /// CoRD policy decisions.
    Policy,
    /// MPI layer events.
    Mpi,
    /// Application-level markers.
    App,
}

/// One trace record.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Virtual instant the event was recorded at.
    pub at: SimTime,
    /// Coarse category, for filtering.
    pub category: TraceCategory,
    /// Human-readable description.
    pub message: String,
}

#[derive(Default)]
struct Inner {
    enabled: bool,
    events: Vec<TraceEvent>,
    cap: usize,
}

/// Shared trace sink.
#[derive(Clone, Default)]
pub struct Trace {
    inner: Rc<RefCell<Inner>>,
}

impl Trace {
    /// A disabled trace; `record` is a no-op.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An enabled trace retaining up to `cap` records (FIFO eviction).
    pub fn enabled(cap: usize) -> Self {
        Trace {
            inner: Rc::new(RefCell::new(Inner {
                enabled: true,
                events: Vec::new(),
                cap,
            })),
        }
    }

    /// Whether records are being retained.
    pub fn is_enabled(&self) -> bool {
        self.inner.borrow().enabled
    }

    /// Record an event; `message` is only rendered when tracing is
    /// enabled, so a disabled trace costs one branch per call.
    pub fn record(&self, at: SimTime, category: TraceCategory, message: impl FnOnce() -> String) {
        let mut inner = self.inner.borrow_mut();
        if !inner.enabled {
            return;
        }
        if inner.events.len() >= inner.cap {
            inner.events.remove(0);
        }
        let msg = message();
        inner.events.push(TraceEvent {
            at,
            category,
            message: msg,
        });
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.inner.borrow().events.len()
    }

    /// Whether no records are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all records (clones; intended for tests/tools).
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.inner.borrow().events.clone()
    }

    /// Count records in a category.
    pub fn count(&self, category: TraceCategory) -> usize {
        self.inner
            .borrow()
            .events
            .iter()
            .filter(|e| e.category == category)
            .count()
    }

    /// Drop all retained records.
    pub fn clear(&self) {
        self.inner.borrow_mut().events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let t = Trace::disabled();
        t.record(SimTime::ZERO, TraceCategory::Nic, || "x".into());
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_records_and_filters() {
        let t = Trace::enabled(16);
        t.record(SimTime(1), TraceCategory::Nic, || "a".into());
        t.record(SimTime(2), TraceCategory::Syscall, || "b".into());
        t.record(SimTime(3), TraceCategory::Nic, || "c".into());
        assert_eq!(t.len(), 3);
        assert_eq!(t.count(TraceCategory::Nic), 2);
        assert_eq!(t.count(TraceCategory::Policy), 0);
        let snap = t.snapshot();
        assert_eq!(snap[1].message, "b");
        assert_eq!(snap[1].at, SimTime(2));
    }

    #[test]
    fn capacity_evicts_oldest() {
        let t = Trace::enabled(2);
        for i in 0..5u64 {
            t.record(SimTime(i), TraceCategory::App, || format!("{i}"));
        }
        let snap = t.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].message, "3");
        assert_eq!(snap[1].message, "4");
    }

    #[test]
    fn clear_empties() {
        let t = Trace::enabled(8);
        t.record(SimTime::ZERO, TraceCategory::App, || "x".into());
        t.clear();
        assert!(t.is_empty());
    }
}
