//! # cord-core — the CoRD facade
//!
//! One import wires the full reproduction stack:
//!
//! ```
//! use cord_core::prelude::*;
//!
//! let fabric = Fabric::builder(system_l()).build();
//! let client = fabric.new_context(0, Dataplane::Cord);
//! let server = fabric.new_context(1, Dataplane::Bypass);
//! // ... create CQs/QPs, connect, post verbs — see `examples/quickstart.rs`.
//! # let _ = (client, server);
//! ```
//!
//! The [`Fabric`] owns the simulator, both nodes' NICs, kernels (with the
//! CoRD driver and policy chains), and optionally IPoIB stacks. Endpoints
//! pick their dataplane independently ([`cord_verbs::Dataplane`]), which is
//! how the paper's BP→CoRD / CoRD→BP / CoRD→CoRD matrix is expressed.

pub mod fabric;

pub use fabric::{Fabric, FabricBuilder};

/// Everything a typical experiment needs.
pub mod prelude {
    pub use crate::fabric::{Fabric, FabricBuilder};
    pub use cord_hw::{system_a, system_l, Core, GuestMem, MachineSpec, MemRegion};
    pub use cord_kern::{
        CordPolicy, FreezePolicy, IpoibStack, Kernel, ObservePolicy, PolicyDecision, QosClass,
        QosPolicy, QuotaPolicy, RateLimitPolicy, SecurityPolicy, Socket,
    };
    pub use cord_net::{EcnConfig, NetConfig, Topology};
    pub use cord_nic::CcAlgorithm;
    pub use cord_sim::{Sim, SimDuration, SimTime};
    pub use cord_verbs::qp::{activate_ud, connect_rc_pair};
    pub use cord_verbs::{
        Access, CompletionWait, Context, Cqe, CqeOpcode, CqeStatus, Dataplane, Opcode, QpNum,
        RecvWqe, SendWqe, Sge, Transport, UdDest, UserCq, UserQp, VerbsError, WrId,
    };
}
