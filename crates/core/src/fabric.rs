//! The fabric: a fully wired simulated cluster.
//!
//! One call builds everything the paper's testbeds provide: nodes with CPU
//! cores (DVFS + virtualization noise), NICs on a link, a kernel per node
//! (CoRD driver + policies), and an IPoIB stack per node with neighbor
//! entries installed. Processes are async tasks pinned to cores.

use std::cell::RefCell;
use std::future::Future;

use cord_hw::{Core, CoreId, Dvfs, MachineSpec, Noise};
use cord_kern::{IpoibStack, Kernel};
use cord_net::{NetConfig, Topology};
use cord_nic::Nic;
use cord_sim::{JoinHandle, RngFactory, Sim, Trace};
use cord_verbs::{Context, Dataplane};

/// Builder for [`Fabric`].
///
/// # Examples
///
/// Bring up a two-node system-L cluster and time one RC send end to end:
///
/// ```
/// use cord_core::Fabric;
/// use cord_hw::system_l;
/// use cord_verbs::qp::connect_rc_pair;
/// use cord_verbs::{Access, Dataplane, RecvWqe, SendWqe, Sge, Transport, WrId};
///
/// let fabric = Fabric::builder(system_l()).seed(7).build();
/// let ca = fabric.new_context(0, Dataplane::Cord);
/// let cb = fabric.new_context(1, Dataplane::Bypass);
/// fabric.block_on(async move {
///     let (scq_a, rcq_a) = (ca.create_cq(16).await, ca.create_cq(16).await);
///     let (scq_b, rcq_b) = (cb.create_cq(16).await, cb.create_cq(16).await);
///     let qa = ca.create_qp(Transport::Rc, &scq_a, &rcq_a).await;
///     let qb = cb.create_qp(Transport::Rc, &scq_b, &rcq_b).await;
///     connect_rc_pair(&qa, &qb).await.unwrap();
///
///     let src = ca.alloc_from(b"hello fabric");
///     let dst = cb.alloc(64, 0);
///     let mra = ca.reg_mr(src, Access::all()).await;
///     let mrb = cb.reg_mr(dst, Access::all()).await;
///     let sge = |r: cord_hw::MemRegion, lkey| Sge { addr: r.addr, len: r.len, lkey };
///     qb.post_recv(RecvWqe::new(WrId(1), sge(dst, mrb.lkey))).await.unwrap();
///     qa.post_send(SendWqe::send(WrId(2), sge(src, mra.lkey))).await.unwrap();
///
///     let cqe = qb.recv_cq().wait_one().await;
///     assert_eq!(cqe.byte_len, 12);
///     assert_eq!(&cb.mem().read(dst.addr, 12).unwrap()[..], b"hello fabric");
/// });
/// ```
pub struct FabricBuilder {
    spec: MachineSpec,
    seed: u64,
    trace: Trace,
    ipoib: bool,
    net: NetConfig,
}

impl FabricBuilder {
    pub fn new(spec: MachineSpec) -> Self {
        FabricBuilder {
            spec,
            seed: 0xC0BD,
            trace: Trace::disabled(),
            ipoib: false,
            net: NetConfig::default(),
        }
    }

    /// Master seed for all random streams (default: fixed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Network topology connecting the nodes (default: the ideal full
    /// mesh, the seed's behavior). Keeps the topology's default queue
    /// knobs; use [`FabricBuilder::net`] to set those too.
    pub fn topology(mut self, topology: Topology) -> Self {
        self.net = NetConfig::for_topology(topology);
        self
    }

    /// Full network configuration (topology + ECN threshold + buffers).
    pub fn net(mut self, net: NetConfig) -> Self {
        self.net = net;
        self
    }

    /// Enable event tracing with the given capacity.
    pub fn trace(mut self, capacity: usize) -> Self {
        self.trace = Trace::enabled(capacity);
        self
    }

    /// Also bring up an IPoIB stack on every node (off by default: it
    /// preposts hundreds of buffers).
    pub fn with_ipoib(mut self) -> Self {
        self.ipoib = true;
        self
    }

    pub fn build(self) -> Fabric {
        let sim = Sim::new();
        let rng = RngFactory::new(self.seed);
        let nics = cord_nic::build_cluster_with(&sim, &self.spec, self.net, self.trace.clone());
        let kernels: Vec<Kernel> = nics
            .iter()
            .map(|nic| Kernel::new(&sim, &self.spec, nic.clone(), self.trace.clone()))
            .collect();
        let ipoib: Vec<IpoibStack> = if self.ipoib {
            let stacks: Vec<IpoibStack> = nics
                .iter()
                .map(|nic| IpoibStack::new(&sim, &self.spec, nic.clone()))
                .collect();
            // Full-mesh neighbor table.
            for a in &stacks {
                for b in &stacks {
                    if a.node() != b.node() {
                        a.add_neighbor(b.node(), b.udqpn());
                    }
                }
            }
            stacks
        } else {
            Vec::new()
        };
        let nodes = self.spec.nodes;
        Fabric {
            inner: std::rc::Rc::new(FabricInner {
                sim,
                spec: self.spec,
                nics,
                kernels,
                ipoib,
                rng,
                trace: self.trace,
                cores_allocated: RefCell::new(vec![0; nodes]),
            }),
        }
    }
}

struct FabricInner {
    sim: Sim,
    spec: MachineSpec,
    nics: Vec<Nic>,
    kernels: Vec<Kernel>,
    ipoib: Vec<IpoibStack>,
    rng: RngFactory,
    trace: Trace,
    cores_allocated: RefCell<Vec<usize>>,
}

/// A wired cluster. Cheap to clone (all clones share the cluster).
#[derive(Clone)]
pub struct Fabric {
    inner: std::rc::Rc<FabricInner>,
}

impl Fabric {
    pub fn builder(spec: MachineSpec) -> FabricBuilder {
        FabricBuilder::new(spec)
    }

    pub fn sim(&self) -> &Sim {
        &self.inner.sim
    }

    pub fn spec(&self) -> &MachineSpec {
        &self.inner.spec
    }

    pub fn nodes(&self) -> usize {
        self.inner.spec.nodes
    }

    pub fn nic(&self, node: usize) -> &Nic {
        &self.inner.nics[node]
    }

    pub fn kernel(&self, node: usize) -> &Kernel {
        &self.inner.kernels[node]
    }

    /// The node's IPoIB stack (requires `with_ipoib`).
    pub fn ipoib(&self, node: usize) -> &IpoibStack {
        &self.inner.ipoib[node]
    }

    pub fn has_ipoib(&self) -> bool {
        !self.inner.ipoib.is_empty()
    }

    pub fn trace(&self) -> &Trace {
        &self.inner.trace
    }

    pub fn rng(&self) -> &RngFactory {
        &self.inner.rng
    }

    /// Allocate the next CPU core on `node`. Core ids wrap if a workload
    /// oversubscribes the node (oversubscription is the caller's policy).
    pub fn new_core(&self, node: usize) -> Core {
        let mut alloc = self.inner.cores_allocated.borrow_mut();
        let idx = alloc[node];
        alloc[node] += 1;
        let core_id = CoreId {
            node,
            core: idx % self.inner.spec.cpu.cores,
        };
        let dvfs = Dvfs::new(&self.inner.sim, self.inner.spec.dvfs.clone());
        let noise = if self.inner.spec.noise.enabled {
            Noise::new(
                self.inner.spec.noise.clone(),
                self.inner
                    .rng
                    .stream_indexed("core-noise", (node * 1024 + idx) as u64),
            )
        } else {
            Noise::disabled()
        };
        Core::new(&self.inner.sim, core_id, &self.inner.spec, dvfs, noise)
    }

    /// Open a verbs context for a new process on `node`.
    pub fn new_context(&self, node: usize, mode: Dataplane) -> Context {
        Context::open(self.new_core(node), self.inner.kernels[node].clone(), mode)
    }

    /// Spawn a process (an async task).
    pub fn spawn<F, T>(&self, fut: F) -> JoinHandle<T>
    where
        F: Future<Output = T> + 'static,
        T: 'static,
    {
        self.inner.sim.spawn(fut)
    }

    /// Drive the simulation until `fut` completes.
    pub fn block_on<F, T>(&self, fut: F) -> T
    where
        F: Future<Output = T> + 'static,
        T: 'static,
    {
        self.inner.sim.block_on(fut)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cord_hw::{system_a, system_l};
    use cord_verbs::qp::connect_rc_pair;
    use cord_verbs::{Access, RecvWqe, SendWqe, Sge, Transport, WrId};

    #[test]
    fn builder_wires_both_presets() {
        for spec in [system_l(), system_a()] {
            let name = spec.name;
            let fabric = Fabric::builder(spec).build();
            assert_eq!(fabric.nodes(), 2, "{name}");
            assert_eq!(fabric.nic(0).node(), 0);
            assert_eq!(fabric.kernel(1).node(), 1);
            assert!(!fabric.has_ipoib());
        }
    }

    #[test]
    fn ipoib_mesh_is_installed() {
        let fabric = Fabric::builder(system_l()).with_ipoib().build();
        assert!(fabric.has_ipoib());
        let c0 = fabric.new_core(0);
        let c1 = fabric.new_core(1);
        let a = fabric.ipoib(0).socket();
        let b = fabric.ipoib(1).socket();
        let ba = b.addr();
        fabric.block_on(async move {
            a.send_to(&c0, ba, b"fabric").await.unwrap();
            let (_, m) = b.recv(&c1).await;
            assert_eq!(&m[..], b"fabric");
        });
    }

    #[test]
    fn cores_get_distinct_ids_and_wrap() {
        let fabric = Fabric::builder(system_l()).build(); // 4 cores/node
        let ids: Vec<usize> = (0..6).map(|_| fabric.new_core(0).id.core).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 0, 1]);
    }

    #[test]
    fn end_to_end_through_the_facade() {
        let fabric = Fabric::builder(system_l()).build();
        let ca = fabric.new_context(0, Dataplane::Cord);
        let cb = fabric.new_context(1, Dataplane::Cord);
        fabric.block_on(async move {
            let scq_a = ca.create_cq(64).await;
            let rcq_a = ca.create_cq(64).await;
            let scq_b = cb.create_cq(64).await;
            let rcq_b = cb.create_cq(64).await;
            let qa = ca.create_qp(Transport::Rc, &scq_a, &rcq_a).await;
            let qb = cb.create_qp(Transport::Rc, &scq_b, &rcq_b).await;
            connect_rc_pair(&qa, &qb).await.unwrap();
            let src = ca.alloc_from(b"through the facade");
            let dst = cb.alloc(64, 0);
            let mra = ca.reg_mr(src, Access::all()).await;
            let mrb = cb.reg_mr(dst, Access::all()).await;
            qb.post_recv(RecvWqe::new(
                WrId(1),
                Sge {
                    addr: dst.addr,
                    len: 64,
                    lkey: mrb.lkey,
                },
            ))
            .await
            .unwrap();
            qa.post_send(SendWqe::send(
                WrId(2),
                Sge {
                    addr: src.addr,
                    len: src.len,
                    lkey: mra.lkey,
                },
            ))
            .await
            .unwrap();
            let cqe = qb.recv_cq().wait_one().await;
            assert_eq!(cqe.byte_len, 18);
            let got = cb.mem().read(dst.addr, 18).unwrap();
            assert_eq!(&got[..], b"through the facade");
        });
    }

    #[test]
    fn deterministic_across_identical_fabrics() {
        fn run() -> u64 {
            let fabric = Fabric::builder(system_a()).seed(99).build();
            let ca = fabric.new_context(0, Dataplane::Cord);
            let cb = fabric.new_context(1, Dataplane::Bypass);
            fabric.block_on({
                let sim = fabric.sim().clone();
                async move {
                    let scq_a = ca.create_cq(64).await;
                    let rcq_a = ca.create_cq(64).await;
                    let scq_b = cb.create_cq(64).await;
                    let rcq_b = cb.create_cq(64).await;
                    let qa = ca.create_qp(Transport::Rc, &scq_a, &rcq_a).await;
                    let qb = cb.create_qp(Transport::Rc, &scq_b, &rcq_b).await;
                    connect_rc_pair(&qa, &qb).await.unwrap();
                    let src = ca.alloc(4096, 3);
                    let dst = cb.alloc(4096, 0);
                    let mra = ca.reg_mr(src, Access::all()).await;
                    let mrb = cb.reg_mr(dst, Access::all()).await;
                    qb.post_recv(RecvWqe::new(
                        WrId(1),
                        Sge {
                            addr: dst.addr,
                            len: 4096,
                            lkey: mrb.lkey,
                        },
                    ))
                    .await
                    .unwrap();
                    qa.post_send(SendWqe::send(
                        WrId(2),
                        Sge {
                            addr: src.addr,
                            len: 4096,
                            lkey: mra.lkey,
                        },
                    ))
                    .await
                    .unwrap();
                    qb.recv_cq().wait_one().await;
                    sim.now().as_ps()
                }
            })
        }
        assert_eq!(run(), run());
    }
}
