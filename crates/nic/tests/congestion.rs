//! End-to-end congestion-control tests at the raw NIC engine level: a
//! dumbbell network whose bottleneck marks ECN, a receiver echoing CNPs,
//! and a DCQCN sender cutting + recovering its rate.

use cord_hw::{system_l, GuestMem, MachineSpec};
use cord_net::{NetConfig, Topology};
use cord_nic::{
    build_cluster, build_cluster_with, Access, CcAlgorithm, Cq, CqeStatus, Nic, QpNum, RecvWqe,
    SendWqe, Sge, Transport, WrId,
};
use cord_sim::{Sim, Trace};

struct Endpoint {
    nic: Nic,
    mem: GuestMem,
    send_cq: Cq,
    recv_cq: Cq,
    qpn: QpNum,
}

fn endpoint(nic: &Nic) -> Endpoint {
    let send_cq = nic.create_cq(1024);
    let recv_cq = nic.create_cq(1024);
    let qpn = nic.create_qp(Transport::Rc, send_cq.clone(), recv_cq.clone());
    Endpoint {
        nic: nic.clone(),
        mem: GuestMem::new(),
        send_cq,
        recv_cq,
        qpn,
    }
}

fn four_nodes() -> MachineSpec {
    let mut spec = system_l();
    spec.nodes = 4;
    spec
}

async fn wait_cqe(cq: &Cq) -> cord_nic::Cqe {
    loop {
        if let Some(c) = cq.poll_one() {
            return c;
        }
        cq.wait_push().await;
    }
}

/// Wire one RC pair from node `src` to node `dst`, push `msgs` messages of
/// `len` bytes, wait for all completions, and return the sender endpoint.
fn run_transfer(nics: &[Nic], sim: &Sim, src: usize, dst: usize, cc: CcAlgorithm) -> Endpoint {
    let (msgs, len) = (10usize, 64 << 10);
    let a = endpoint(&nics[src]);
    let b = endpoint(&nics[dst]);
    a.nic.connect(a.qpn, Some((dst, b.qpn))).unwrap();
    b.nic.connect(b.qpn, Some((src, a.qpn))).unwrap();
    a.nic.set_cc(a.qpn, cc).unwrap();
    b.nic.set_cc(b.qpn, cc).unwrap();

    let data: Vec<u8> = (0..len).map(|i| (i * 131 + 3) as u8).collect();
    let src_region = a.mem.alloc_from(&data);
    let dst_region = b.mem.alloc(len, 0);
    let mra = a
        .nic
        .mr_table()
        .register(a.mem.clone(), src_region, Access::all());
    let mrb = b
        .nic
        .mr_table()
        .register(b.mem.clone(), dst_region, Access::all());

    for i in 0..msgs {
        b.nic
            .post_recv(
                b.qpn,
                RecvWqe::new(
                    WrId(100 + i as u64),
                    Sge {
                        addr: dst_region.addr,
                        len: dst_region.len,
                        lkey: mrb.lkey,
                    },
                ),
            )
            .unwrap();
        a.nic
            .post_send(
                a.qpn,
                SendWqe::send(
                    WrId(i as u64),
                    Sge {
                        addr: src_region.addr,
                        len,
                        lkey: mra.lkey,
                    },
                ),
                false,
            )
            .unwrap();
    }
    sim.block_on({
        let send_cq = a.send_cq.clone();
        let recv_cq = b.recv_cq.clone();
        let bmem = b.mem.clone();
        async move {
            for _ in 0..msgs {
                assert_eq!(wait_cqe(&recv_cq).await.status, CqeStatus::Success);
                assert_eq!(wait_cqe(&send_cq).await.status, CqeStatus::Success);
            }
            // Payload integrity end to end through the switched path.
            let got = bmem.read(dst_region.addr, len).unwrap();
            assert_eq!(&got[..], &data[..]);
        }
    });
    a
}

fn dumbbell() -> NetConfig {
    NetConfig::for_topology(Topology::Dumbbell {
        bottleneck_gbps: 25.0,
    })
}

#[test]
fn dcqcn_cuts_rate_on_marked_bottleneck_traffic() {
    let sim = Sim::new();
    // Node 2 (right half) → node 0 (left half) crosses the bottleneck.
    let nics = build_cluster_with(&sim, &four_nodes(), dumbbell(), Trace::disabled());
    let a = run_transfer(&nics, &sim, 2, 0, CcAlgorithm::Dcqcn);

    let net = a.nic.network();
    assert!(net.total_marks() > 0, "bottleneck must mark ECN");
    assert_eq!(net.total_drops(), 0, "windowed traffic must not drop");
    let (rate, cnps, cuts) = a.nic.dcqcn_snapshot(a.qpn).unwrap().unwrap();
    assert!(cnps > 0, "receiver must echo CNPs");
    assert!(cuts > 0, "sender must take at least one cut");
    assert!(
        rate < a.nic.spec().link.gbps,
        "rate must sit below line after cuts: {rate}"
    );
    assert_eq!(a.nic.qp_cc(a.qpn).unwrap(), CcAlgorithm::Dcqcn);
}

#[test]
fn uncontrolled_sender_ignores_marks() {
    let sim = Sim::new();
    let nics = build_cluster_with(&sim, &four_nodes(), dumbbell(), Trace::disabled());
    let a = run_transfer(&nics, &sim, 2, 0, CcAlgorithm::None);
    // Marks happen, but nobody reacts: no DCQCN state, default knob.
    assert!(a.nic.network().total_marks() > 0);
    assert_eq!(a.nic.dcqcn_snapshot(a.qpn).unwrap(), None);
    assert_eq!(a.nic.qp_cc(a.qpn).unwrap(), CcAlgorithm::None);
}

#[test]
fn full_mesh_default_never_marks() {
    let sim = Sim::new();
    let nics = build_cluster(&sim, &four_nodes(), Trace::disabled());
    assert_eq!(nics[0].network().topology(), Topology::FullMesh);
    let a = run_transfer(&nics, &sim, 2, 0, CcAlgorithm::Dcqcn);
    // The ideal mesh has no shared switch queues, so DCQCN stays idle.
    assert_eq!(a.nic.network().total_marks(), 0);
    let (rate, cnps, cuts) = a.nic.dcqcn_snapshot(a.qpn).unwrap().unwrap();
    assert_eq!((cnps, cuts), (0, 0));
    assert_eq!(rate, a.nic.spec().link.gbps);
}

#[test]
fn dcqcn_transfer_is_deterministic() {
    fn run() -> (u64, u64, u64) {
        let sim = Sim::new();
        let nics = build_cluster_with(&sim, &four_nodes(), dumbbell(), Trace::disabled());
        let a = run_transfer(&nics, &sim, 2, 0, CcAlgorithm::Dcqcn);
        let (_, cnps, cuts) = a.nic.dcqcn_snapshot(a.qpn).unwrap().unwrap();
        (sim.now().as_ps(), cnps, cuts)
    }
    assert_eq!(run(), run());
}
