//! End-to-end congestion-control tests at the raw NIC engine level: a
//! dumbbell network whose bottleneck marks ECN, a receiver echoing CNPs,
//! and a DCQCN sender cutting + recovering its rate.

use cord_hw::{system_l, GuestMem, MachineSpec};
use cord_net::{NetConfig, Routing, Topology};
use cord_nic::{
    build_cluster, build_cluster_with, Access, CcAlgorithm, Cq, CqeStatus, Nic, QpNum, RecvWqe,
    RetxConfig, RetxMode, SendWqe, Sge, Transport, WrId, CNP_MIN_INTERVAL,
};
use cord_sim::{Sim, Trace};

struct Endpoint {
    nic: Nic,
    mem: GuestMem,
    send_cq: Cq,
    recv_cq: Cq,
    qpn: QpNum,
}

fn endpoint(nic: &Nic) -> Endpoint {
    let send_cq = nic.create_cq(1024);
    let recv_cq = nic.create_cq(1024);
    let qpn = nic.create_qp(Transport::Rc, send_cq.clone(), recv_cq.clone());
    Endpoint {
        nic: nic.clone(),
        mem: GuestMem::new(),
        send_cq,
        recv_cq,
        qpn,
    }
}

fn four_nodes() -> MachineSpec {
    let mut spec = system_l();
    spec.nodes = 4;
    spec
}

async fn wait_cqe(cq: &Cq) -> cord_nic::Cqe {
    loop {
        if let Some(c) = cq.poll_one() {
            return c;
        }
        cq.wait_push().await;
    }
}

/// Wire one RC pair from node `src` to node `dst`, push `msgs` messages of
/// `len` bytes, wait for all completions, and return the sender endpoint.
fn run_transfer(nics: &[Nic], sim: &Sim, src: usize, dst: usize, cc: CcAlgorithm) -> Endpoint {
    let (msgs, len) = (10usize, 64 << 10);
    let a = endpoint(&nics[src]);
    let b = endpoint(&nics[dst]);
    a.nic.connect(a.qpn, Some((dst, b.qpn))).unwrap();
    b.nic.connect(b.qpn, Some((src, a.qpn))).unwrap();
    a.nic.set_cc(a.qpn, cc).unwrap();
    b.nic.set_cc(b.qpn, cc).unwrap();

    let data: Vec<u8> = (0..len).map(|i| (i * 131 + 3) as u8).collect();
    let src_region = a.mem.alloc_from(&data);
    let dst_region = b.mem.alloc(len, 0);
    let mra = a
        .nic
        .mr_table()
        .register(a.mem.clone(), src_region, Access::all());
    let mrb = b
        .nic
        .mr_table()
        .register(b.mem.clone(), dst_region, Access::all());

    for i in 0..msgs {
        b.nic
            .post_recv(
                b.qpn,
                RecvWqe::new(
                    WrId(100 + i as u64),
                    Sge {
                        addr: dst_region.addr,
                        len: dst_region.len,
                        lkey: mrb.lkey,
                    },
                ),
            )
            .unwrap();
        a.nic
            .post_send(
                a.qpn,
                SendWqe::send(
                    WrId(i as u64),
                    Sge {
                        addr: src_region.addr,
                        len,
                        lkey: mra.lkey,
                    },
                ),
                false,
            )
            .unwrap();
    }
    sim.block_on({
        let send_cq = a.send_cq.clone();
        let recv_cq = b.recv_cq.clone();
        let bmem = b.mem.clone();
        async move {
            for _ in 0..msgs {
                assert_eq!(wait_cqe(&recv_cq).await.status, CqeStatus::Success);
                assert_eq!(wait_cqe(&send_cq).await.status, CqeStatus::Success);
            }
            // Payload integrity end to end through the switched path.
            let got = bmem.read(dst_region.addr, len).unwrap();
            assert_eq!(&got[..], &data[..]);
        }
    });
    a
}

fn dumbbell() -> NetConfig {
    NetConfig::for_topology(Topology::Dumbbell {
        bottleneck_gbps: 25.0,
    })
}

#[test]
fn dcqcn_cuts_rate_on_marked_bottleneck_traffic() {
    let sim = Sim::new();
    // Node 2 (right half) → node 0 (left half) crosses the bottleneck.
    let nics = build_cluster_with(&sim, &four_nodes(), dumbbell(), Trace::disabled());
    let a = run_transfer(&nics, &sim, 2, 0, CcAlgorithm::Dcqcn);

    let net = a.nic.network();
    assert!(net.total_marks() > 0, "bottleneck must mark ECN");
    assert_eq!(net.total_drops(), 0, "windowed traffic must not drop");
    let (rate, cnps, cuts) = a.nic.dcqcn_snapshot(a.qpn).unwrap().unwrap();
    assert!(cnps > 0, "receiver must echo CNPs");
    assert!(cuts > 0, "sender must take at least one cut");
    assert!(
        rate < a.nic.spec().link.gbps,
        "rate must sit below line after cuts: {rate}"
    );
    assert_eq!(a.nic.qp_cc(a.qpn).unwrap(), CcAlgorithm::Dcqcn);
}

#[test]
fn uncontrolled_sender_ignores_marks() {
    let sim = Sim::new();
    let nics = build_cluster_with(&sim, &four_nodes(), dumbbell(), Trace::disabled());
    let a = run_transfer(&nics, &sim, 2, 0, CcAlgorithm::None);
    // Marks happen, but nobody reacts: no DCQCN state, default knob.
    assert!(a.nic.network().total_marks() > 0);
    assert_eq!(a.nic.dcqcn_snapshot(a.qpn).unwrap(), None);
    assert_eq!(a.nic.qp_cc(a.qpn).unwrap(), CcAlgorithm::None);
}

#[test]
fn full_mesh_default_never_marks() {
    let sim = Sim::new();
    let nics = build_cluster(&sim, &four_nodes(), Trace::disabled());
    assert_eq!(nics[0].network().topology(), Topology::FullMesh);
    let a = run_transfer(&nics, &sim, 2, 0, CcAlgorithm::Dcqcn);
    // The ideal mesh has no shared switch queues, so DCQCN stays idle.
    assert_eq!(a.nic.network().total_marks(), 0);
    let (rate, cnps, cuts) = a.nic.dcqcn_snapshot(a.qpn).unwrap().unwrap();
    assert_eq!((cnps, cuts), (0, 0));
    assert_eq!(rate, a.nic.spec().link.gbps);
}

fn eight_nodes() -> MachineSpec {
    let mut spec = system_l();
    spec.nodes = 8;
    spec
}

/// Radix-8 fat tree (4 hosts per leaf, 4 spines) spraying every packet
/// across the least-loaded source-leaf uplink.
fn sprayed_fabric() -> NetConfig {
    let mut cfg = NetConfig::for_topology(Topology::fat_tree_for(8));
    cfg.routing = Routing::Spray;
    cfg
}

/// Cross-leaf incast under per-packet spray: nodes 0..=2 (leaf 0) all
/// target node 4 (leaf 1), so the shared leaf-1 downlink queues and marks
/// ECN while each flow's fragments fan out over all four spines. The
/// observed sender (node 0) runs DCQCN; the other two stay uncontrolled
/// so the downlink keeps marking. Every end arms selective repeat —
/// spray reorders, and go-back-N would treat every reordering as loss.
/// Returns the observed sender endpoint after verifying payload
/// integrity on all three flows.
fn sprayed_incast(nics: &[Nic], sim: &Sim) -> Endpoint {
    let (msgs, len) = (10usize, 64 << 10);
    let dst = 4usize;
    let data: Vec<u8> = (0..len).map(|i| (i * 131 + 3) as u8).collect();
    let mut waits = Vec::new();
    let mut observed = None;
    for (k, src) in [0usize, 1, 2].into_iter().enumerate() {
        let a = endpoint(&nics[src]);
        let b = endpoint(&nics[dst]);
        a.nic.connect(a.qpn, Some((dst, b.qpn))).unwrap();
        b.nic.connect(b.qpn, Some((src, a.qpn))).unwrap();
        for e in [&a, &b] {
            let sr = RetxConfig {
                mode: RetxMode::Sr,
                ..RetxConfig::default()
            };
            e.nic.set_rc_retx(e.qpn, Some(sr)).unwrap();
            let cc = if k == 0 {
                CcAlgorithm::Dcqcn
            } else {
                CcAlgorithm::None
            };
            e.nic.set_cc(e.qpn, cc).unwrap();
        }

        let src_region = a.mem.alloc_from(&data);
        let dst_region = b.mem.alloc(len, 0);
        let mra = a
            .nic
            .mr_table()
            .register(a.mem.clone(), src_region, Access::all());
        let mrb = b
            .nic
            .mr_table()
            .register(b.mem.clone(), dst_region, Access::all());
        for i in 0..msgs {
            b.nic
                .post_recv(
                    b.qpn,
                    RecvWqe::new(
                        WrId(100 + i as u64),
                        Sge {
                            addr: dst_region.addr,
                            len: dst_region.len,
                            lkey: mrb.lkey,
                        },
                    ),
                )
                .unwrap();
            a.nic
                .post_send(
                    a.qpn,
                    SendWqe::send(
                        WrId(i as u64),
                        Sge {
                            addr: src_region.addr,
                            len,
                            lkey: mra.lkey,
                        },
                    ),
                    false,
                )
                .unwrap();
        }
        waits.push((
            a.send_cq.clone(),
            b.recv_cq.clone(),
            b.mem.clone(),
            dst_region,
        ));
        if k == 0 {
            observed = Some(a);
        }
    }
    sim.block_on({
        let data = data.clone();
        async move {
            for (send_cq, recv_cq, bmem, dst_region) in waits {
                for _ in 0..msgs {
                    assert_eq!(wait_cqe(&recv_cq).await.status, CqeStatus::Success);
                    assert_eq!(wait_cqe(&send_cq).await.status, CqeStatus::Success);
                }
                // Byte-perfect despite constant cross-spine reordering.
                let got = bmem.read(dst_region.addr, len).unwrap();
                assert_eq!(&got[..], &data[..]);
            }
        }
    });
    observed.unwrap()
}

/// The spray regression DCQCN must survive: one flow's fragments arrive
/// interleaved across four sprayed spine paths, each carrying ECN marks
/// picked up at the congested downlink. Those marks must coalesce into
/// ONE per-QP rate state — CNPs rate-limited by [`CNP_MIN_INTERVAL`] no
/// matter which path the marked fragment rode — rather than one echo per
/// marked arrival (which would crater the rate).
#[test]
fn sprayed_marks_coalesce_into_one_per_qp_rate_state() {
    let sim = Sim::new();
    let nics = build_cluster_with(&sim, &eight_nodes(), sprayed_fabric(), Trace::disabled());
    let a = sprayed_incast(&nics, &sim);

    let net = a.nic.network();
    assert_eq!(net.routing(), Routing::Spray);
    let marks = net.total_marks();
    assert!(marks > 0, "the incast downlink must mark ECN");
    let (rate, cnps, cuts) = a.nic.dcqcn_snapshot(a.qpn).unwrap().unwrap();
    assert!(cnps > 0, "receiver must echo CNPs for the sprayed flow");
    assert!(cuts > 0, "sender must cut on those CNPs");
    assert!(
        rate < a.nic.spec().link.gbps,
        "rate must sit below line after cuts: {rate}"
    );
    // Coalescing, quantified: many marked arrivals, CNPs capped at one
    // per CNP_MIN_INTERVAL per QP.
    assert!(
        marks > cnps,
        "marks must outnumber the CNPs they coalesce into: {marks} vs {cnps}"
    );
    let cap = sim.now().as_ps() / CNP_MIN_INTERVAL.as_ps() + 1;
    assert!(
        cnps <= cap,
        "CNP echo must honor the per-QP min interval: {cnps} > {cap}"
    );
    // Selective repeat absorbed the reordering without exhausting anyone.
    let (_, exhausted) = a.nic.retx_stats();
    assert_eq!(exhausted, 0, "no QP may exhaust its retries");
}

/// Spray + selective repeat + DCQCN together stay bit-deterministic.
#[test]
fn sprayed_dcqcn_incast_is_deterministic() {
    fn run() -> (u64, u64, u64, u64) {
        let sim = Sim::new();
        let nics = build_cluster_with(&sim, &eight_nodes(), sprayed_fabric(), Trace::disabled());
        let a = sprayed_incast(&nics, &sim);
        let (_, cnps, cuts) = a.nic.dcqcn_snapshot(a.qpn).unwrap().unwrap();
        (sim.now().as_ps(), cnps, cuts, a.nic.retx_stats().0)
    }
    assert_eq!(run(), run());
}

#[test]
fn dcqcn_transfer_is_deterministic() {
    fn run() -> (u64, u64, u64) {
        let sim = Sim::new();
        let nics = build_cluster_with(&sim, &four_nodes(), dumbbell(), Trace::disabled());
        let a = run_transfer(&nics, &sim, 2, 0, CcAlgorithm::Dcqcn);
        let (_, cnps, cuts) = a.nic.dcqcn_snapshot(a.qpn).unwrap().unwrap();
        (sim.now().as_ps(), cnps, cuts)
    }
    assert_eq!(run(), run());
}
