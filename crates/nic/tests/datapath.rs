//! End-to-end NIC datapath tests: two NICs on a fabric, raw engine API.

use cord_hw::{system_l, GuestMem};
use cord_nic::{
    build_cluster, Access, Cq, CqeOpcode, CqeStatus, Nic, QpNum, QpState, RecvWqe, SendWqe, Sge,
    Transport, UdDest, VerbsError, WrId,
};
use cord_sim::{Sim, Trace};

struct Endpoint {
    nic: Nic,
    mem: GuestMem,
    send_cq: Cq,
    recv_cq: Cq,
    qpn: QpNum,
}

fn rc_pair(sim: &Sim) -> (Endpoint, Endpoint) {
    let nics = build_cluster(sim, &system_l(), Trace::disabled());
    let mk = |nic: &Nic| {
        let send_cq = nic.create_cq(1024);
        let recv_cq = nic.create_cq(1024);
        let qpn = nic.create_qp(Transport::Rc, send_cq.clone(), recv_cq.clone());
        Endpoint {
            nic: nic.clone(),
            mem: GuestMem::new(),
            send_cq,
            recv_cq,
            qpn,
        }
    };
    let a = mk(&nics[0]);
    let b = mk(&nics[1]);
    a.nic.connect(a.qpn, Some((1, b.qpn))).unwrap();
    b.nic.connect(b.qpn, Some((0, a.qpn))).unwrap();
    (a, b)
}

async fn wait_cqe(cq: &Cq) -> cord_nic::Cqe {
    loop {
        if let Some(c) = cq.poll_one() {
            return c;
        }
        cq.wait_push().await;
    }
}

fn payload(n: usize) -> Vec<u8> {
    (0..n).map(|i| (i * 31 + 7) as u8).collect()
}

#[test]
fn rc_send_recv_delivers_exact_bytes() {
    for &len in &[0usize, 1, 16, 220, 4096, 4097, 65536, 1 << 20] {
        let sim = Sim::new();
        let (a, b) = rc_pair(&sim);
        let data = payload(len);
        let src = a.mem.alloc_from(&data);
        let dst = b.mem.alloc(len.max(1), 0);
        let mra = a.nic.mr_table().register(a.mem.clone(), src, Access::all());
        let mrb = b.nic.mr_table().register(b.mem.clone(), dst, Access::all());

        b.nic
            .post_recv(
                b.qpn,
                RecvWqe::new(
                    WrId(100),
                    Sge {
                        addr: dst.addr,
                        len: dst.len,
                        lkey: mrb.lkey,
                    },
                ),
            )
            .unwrap();
        a.nic
            .post_send(
                a.qpn,
                SendWqe::send(
                    WrId(1),
                    Sge {
                        addr: src.addr,
                        len,
                        lkey: mra.lkey,
                    },
                ),
                true,
            )
            .unwrap();

        let got = sim.block_on({
            let recv_cq = b.recv_cq.clone();
            let send_cq = a.send_cq.clone();
            let bmem = b.mem.clone();
            async move {
                let r = wait_cqe(&recv_cq).await;
                assert_eq!(r.status, CqeStatus::Success);
                assert_eq!(r.opcode, CqeOpcode::Recv);
                assert_eq!(r.byte_len, len);
                assert_eq!(r.wr_id, WrId(100));
                let s = wait_cqe(&send_cq).await;
                assert_eq!(s.status, CqeStatus::Success);
                assert_eq!(s.wr_id, WrId(1));
                bmem.read(dst.addr, len).unwrap()
            }
        });
        assert_eq!(&got[..], &data[..], "len={len}");
    }
}

#[test]
fn rc_send_latency_is_calibrated() {
    // Raw engine 4 KiB one-way delivery should land in the low-microsecond
    // range (Fig. 1a's 1.95 µs includes perftest's user-space costs).
    let sim = Sim::new();
    let (a, b) = rc_pair(&sim);
    let len = 4096;
    let src = a.mem.alloc_from(&payload(len));
    let dst = b.mem.alloc(len, 0);
    let mra = a.nic.mr_table().register(a.mem.clone(), src, Access::all());
    let mrb = b.nic.mr_table().register(b.mem.clone(), dst, Access::all());
    b.nic
        .post_recv(
            b.qpn,
            RecvWqe::new(
                WrId(1),
                Sge {
                    addr: dst.addr,
                    len,
                    lkey: mrb.lkey,
                },
            ),
        )
        .unwrap();
    a.nic
        .post_send(
            a.qpn,
            SendWqe::send(
                WrId(2),
                Sge {
                    addr: src.addr,
                    len,
                    lkey: mra.lkey,
                },
            ),
            false,
        )
        .unwrap();
    let t = sim.block_on({
        let cq = b.recv_cq.clone();
        let sim2 = sim.clone();
        async move {
            wait_cqe(&cq).await;
            sim2.now()
        }
    });
    let us = t.as_us_f64();
    assert!((1.0..3.0).contains(&us), "4 KiB one-way delivery {us} µs");
}

#[test]
fn rc_completions_preserve_post_order() {
    let sim = Sim::new();
    let (a, b) = rc_pair(&sim);
    let n = 32;
    let len = 512;
    let src = a.mem.alloc_from(&payload(len * n));
    let dst = b.mem.alloc(len * n, 0);
    let mra = a.nic.mr_table().register(a.mem.clone(), src, Access::all());
    let mrb = b.nic.mr_table().register(b.mem.clone(), dst, Access::all());
    for i in 0..n {
        b.nic
            .post_recv(
                b.qpn,
                RecvWqe::new(
                    WrId(1000 + i as u64),
                    Sge {
                        addr: dst.addr + (i * len) as u64,
                        len,
                        lkey: mrb.lkey,
                    },
                ),
            )
            .unwrap();
    }
    for i in 0..n {
        a.nic
            .post_send(
                a.qpn,
                SendWqe::send(
                    WrId(i as u64),
                    Sge {
                        addr: src.addr + (i * len) as u64,
                        len,
                        lkey: mra.lkey,
                    },
                ),
                false,
            )
            .unwrap();
    }
    sim.block_on({
        let recv_cq = b.recv_cq.clone();
        let send_cq = a.send_cq.clone();
        async move {
            for i in 0..n {
                let r = wait_cqe(&recv_cq).await;
                assert_eq!(r.wr_id, WrId(1000 + i as u64), "recv order");
            }
            for i in 0..n {
                let s = wait_cqe(&send_cq).await;
                assert_eq!(s.wr_id, WrId(i as u64), "send order");
            }
        }
    });
}

#[test]
fn rdma_write_lands_without_receiver_wqe() {
    let sim = Sim::new();
    let (a, b) = rc_pair(&sim);
    let len = 10_000;
    let data = payload(len);
    let src = a.mem.alloc_from(&data);
    let dst = b.mem.alloc(len, 0);
    let mra = a.nic.mr_table().register(a.mem.clone(), src, Access::all());
    let mrb = b.nic.mr_table().register(b.mem.clone(), dst, Access::all());
    a.nic
        .post_send(
            a.qpn,
            SendWqe::write(
                WrId(5),
                Sge {
                    addr: src.addr,
                    len,
                    lkey: mra.lkey,
                },
                dst.addr,
                mrb.rkey,
            ),
            false,
        )
        .unwrap();
    let got = sim.block_on({
        let cq = a.send_cq.clone();
        let bmem = b.mem.clone();
        async move {
            let c = wait_cqe(&cq).await;
            assert_eq!(c.status, CqeStatus::Success);
            assert_eq!(c.opcode, CqeOpcode::RdmaWrite);
            bmem.read(dst.addr, len).unwrap()
        }
    });
    assert_eq!(&got[..], &data[..]);
    // Receiver posted nothing and saw no completion.
    assert!(b.recv_cq.is_empty());
}

#[test]
fn rdma_write_with_imm_consumes_recv_wqe() {
    let sim = Sim::new();
    let (a, b) = rc_pair(&sim);
    let len = 256;
    let src = a.mem.alloc_from(&payload(len));
    let dst = b.mem.alloc(len, 0);
    let scratch = b.mem.alloc(1, 0);
    let mra = a.nic.mr_table().register(a.mem.clone(), src, Access::all());
    let mrb = b.nic.mr_table().register(b.mem.clone(), dst, Access::all());
    let mrs = b
        .nic
        .mr_table()
        .register(b.mem.clone(), scratch, Access::all());
    b.nic
        .post_recv(
            b.qpn,
            RecvWqe::new(
                WrId(77),
                Sge {
                    addr: scratch.addr,
                    len: scratch.len,
                    lkey: mrs.lkey,
                },
            ),
        )
        .unwrap();
    a.nic
        .post_send(
            a.qpn,
            SendWqe::write(
                WrId(6),
                Sge {
                    addr: src.addr,
                    len,
                    lkey: mra.lkey,
                },
                dst.addr,
                mrb.rkey,
            )
            .with_imm(0xFEED_BEEF),
            false,
        )
        .unwrap();
    sim.block_on({
        let cq = b.recv_cq.clone();
        async move {
            let c = wait_cqe(&cq).await;
            assert_eq!(c.status, CqeStatus::Success);
            assert_eq!(c.opcode, CqeOpcode::RecvWithImm);
            assert_eq!(c.imm, Some(0xFEED_BEEF));
            assert_eq!(c.wr_id, WrId(77));
            assert_eq!(c.byte_len, len);
        }
    });
}

#[test]
fn rdma_read_pulls_remote_data_with_idle_server() {
    let sim = Sim::new();
    let (a, b) = rc_pair(&sim);
    let len = 123_456;
    let data = payload(len);
    let remote = b.mem.alloc_from(&data);
    let local = a.mem.alloc(len, 0);
    let mrb = b
        .nic
        .mr_table()
        .register(b.mem.clone(), remote, Access::all());
    let mra = a
        .nic
        .mr_table()
        .register(a.mem.clone(), local, Access::all());
    a.nic
        .post_send(
            a.qpn,
            SendWqe::read(
                WrId(9),
                Sge {
                    addr: local.addr,
                    len,
                    lkey: mra.lkey,
                },
                remote.addr,
                mrb.rkey,
            ),
            false,
        )
        .unwrap();
    let got = sim.block_on({
        let cq = a.send_cq.clone();
        let amem = a.mem.clone();
        async move {
            let c = wait_cqe(&cq).await;
            assert_eq!(c.status, CqeStatus::Success);
            assert_eq!(c.opcode, CqeOpcode::RdmaRead);
            assert_eq!(c.byte_len, len);
            amem.read(local.addr, len).unwrap()
        }
    });
    assert_eq!(&got[..], &data[..]);
}

#[test]
fn ud_send_recv_single_mtu() {
    let sim = Sim::new();
    let nics = build_cluster(&sim, &system_l(), Trace::disabled());
    let mem_a = GuestMem::new();
    let mem_b = GuestMem::new();
    let scq_a = nics[0].create_cq(64);
    let rcq_a = nics[0].create_cq(64);
    let scq_b = nics[1].create_cq(64);
    let rcq_b = nics[1].create_cq(64);
    let qa = nics[0].create_qp(Transport::Ud, scq_a.clone(), rcq_a);
    let qb = nics[1].create_qp(Transport::Ud, scq_b, rcq_b.clone());
    nics[0].connect(qa, None).unwrap();
    nics[1].connect(qb, None).unwrap();

    let data = payload(4096);
    let src = mem_a.alloc_from(&data);
    let dst = mem_b.alloc(4096, 0);
    let mra = nics[0].mr_table().register(mem_a, src, Access::all());
    let mrb = nics[1]
        .mr_table()
        .register(mem_b.clone(), dst, Access::all());
    nics[1]
        .post_recv(
            qb,
            RecvWqe::new(
                WrId(1),
                Sge {
                    addr: dst.addr,
                    len: 4096,
                    lkey: mrb.lkey,
                },
            ),
        )
        .unwrap();
    nics[0]
        .post_send(
            qa,
            SendWqe::send(
                WrId(2),
                Sge {
                    addr: src.addr,
                    len: 4096,
                    lkey: mra.lkey,
                },
            )
            .with_ud_dest(UdDest { node: 1, qpn: qb }),
            false,
        )
        .unwrap();
    sim.block_on({
        let rcq = rcq_b.clone();
        let scq = scq_a.clone();
        let mem = mem_b.clone();
        async move {
            let r = wait_cqe(&rcq).await;
            assert_eq!(r.status, CqeStatus::Success);
            assert_eq!(r.src_qp, Some(qa), "UD receive reports source QP");
            // UD send completes locally.
            let s = wait_cqe(&scq).await;
            assert_eq!(s.status, CqeStatus::Success);
            let got = mem.read(dst.addr, 4096).unwrap();
            assert_eq!(&got[..], &data[..]);
        }
    });
}

#[test]
fn send_without_recv_wqe_naks_rnr_and_errors_qp() {
    let sim = Sim::new();
    let (a, b) = rc_pair(&sim);
    let src = a.mem.alloc_from(&payload(64));
    let mra = a.nic.mr_table().register(a.mem.clone(), src, Access::all());
    a.nic
        .post_send(
            a.qpn,
            SendWqe::send(
                WrId(1),
                Sge {
                    addr: src.addr,
                    len: 64,
                    lkey: mra.lkey,
                },
            ),
            false,
        )
        .unwrap();
    sim.block_on({
        let cq = a.send_cq.clone();
        async move {
            let c = wait_cqe(&cq).await;
            assert_eq!(c.status, CqeStatus::RnrRetryExceeded);
        }
    });
    assert_eq!(a.nic.qp_state(a.qpn).unwrap(), QpState::Error);
    // Subsequent posts fail synchronously.
    let err = a.nic.post_send(
        a.qpn,
        SendWqe::send(
            WrId(2),
            Sge {
                addr: src.addr,
                len: 64,
                lkey: mra.lkey,
            },
        ),
        false,
    );
    assert!(matches!(err, Err(VerbsError::InvalidState { .. })));
    let _ = b;
}

#[test]
fn bad_rkey_write_naks_and_touches_no_memory() {
    let sim = Sim::new();
    let (a, b) = rc_pair(&sim);
    let len = 8192;
    let src = a.mem.alloc_from(&payload(len));
    let dst = b.mem.alloc(len, 0xEE);
    let mra = a.nic.mr_table().register(a.mem.clone(), src, Access::all());
    // Register the remote region WITHOUT remote-write permission.
    let mrb = b.nic.mr_table().register(
        b.mem.clone(),
        dst,
        Access::LOCAL_WRITE.union(Access::REMOTE_READ),
    );
    a.nic
        .post_send(
            a.qpn,
            SendWqe::write(
                WrId(3),
                Sge {
                    addr: src.addr,
                    len,
                    lkey: mra.lkey,
                },
                dst.addr,
                mrb.rkey,
            ),
            false,
        )
        .unwrap();
    sim.block_on({
        let cq = a.send_cq.clone();
        async move {
            let c = wait_cqe(&cq).await;
            assert_eq!(c.status, CqeStatus::RemoteAccessErr);
        }
    });
    // §4: "the NIC returns an error but does not access any memory".
    let untouched = b.mem.read(dst.addr, len).unwrap();
    assert!(untouched.iter().all(|&b| b == 0xEE));
    assert_eq!(a.nic.qp_state(a.qpn).unwrap(), QpState::Error);
}

#[test]
fn read_beyond_region_naks() {
    let sim = Sim::new();
    let (a, b) = rc_pair(&sim);
    let remote = b.mem.alloc(1024, 1);
    let local = a.mem.alloc(2048, 0);
    let mrb = b
        .nic
        .mr_table()
        .register(b.mem.clone(), remote, Access::all());
    let mra = a
        .nic
        .mr_table()
        .register(a.mem.clone(), local, Access::all());
    a.nic
        .post_send(
            a.qpn,
            SendWqe::read(
                WrId(1),
                Sge {
                    addr: local.addr,
                    len: 2048, // larger than the remote MR
                    lkey: mra.lkey,
                },
                remote.addr,
                mrb.rkey,
            ),
            false,
        )
        .unwrap();
    sim.block_on({
        let cq = a.send_cq.clone();
        async move {
            let c = wait_cqe(&cq).await;
            assert_eq!(c.status, CqeStatus::RemoteAccessErr);
        }
    });
}

#[test]
fn message_longer_than_recv_buffer_errors_both_sides() {
    let sim = Sim::new();
    let (a, b) = rc_pair(&sim);
    let src = a.mem.alloc_from(&payload(1024));
    let dst = b.mem.alloc(100, 0);
    let mra = a.nic.mr_table().register(a.mem.clone(), src, Access::all());
    let mrb = b.nic.mr_table().register(b.mem.clone(), dst, Access::all());
    b.nic
        .post_recv(
            b.qpn,
            RecvWqe::new(
                WrId(1),
                Sge {
                    addr: dst.addr,
                    len: 100,
                    lkey: mrb.lkey,
                },
            ),
        )
        .unwrap();
    a.nic
        .post_send(
            a.qpn,
            SendWqe::send(
                WrId(2),
                Sge {
                    addr: src.addr,
                    len: 1024,
                    lkey: mra.lkey,
                },
            ),
            false,
        )
        .unwrap();
    sim.block_on({
        let scq = a.send_cq.clone();
        let rcq = b.recv_cq.clone();
        async move {
            let r = wait_cqe(&rcq).await;
            assert_eq!(r.status, CqeStatus::LocalProtErr);
            let s = wait_cqe(&scq).await;
            assert_eq!(s.status, CqeStatus::RemoteAccessErr);
        }
    });
}

#[test]
fn bad_lkey_fails_locally_without_wire_traffic() {
    let sim = Sim::new();
    let (a, b) = rc_pair(&sim);
    a.nic
        .post_send(
            a.qpn,
            SendWqe::send(
                WrId(1),
                Sge {
                    addr: 0x1_0000,
                    len: 64,
                    lkey: cord_nic::LKey(4242), // never registered
                },
            ),
            false,
        )
        .unwrap();
    sim.block_on({
        let cq = a.send_cq.clone();
        async move {
            let c = wait_cqe(&cq).await;
            assert_eq!(c.status, CqeStatus::LocalProtErr);
        }
    });
    assert_eq!(b.nic.rx_packets(), 0, "nothing reached the peer");
}

#[test]
fn unsignaled_sends_complete_silently() {
    let sim = Sim::new();
    let (a, b) = rc_pair(&sim);
    let src = a.mem.alloc_from(&payload(64));
    let dst = b.mem.alloc(64 * 2, 0);
    let mra = a.nic.mr_table().register(a.mem.clone(), src, Access::all());
    let mrb = b.nic.mr_table().register(b.mem.clone(), dst, Access::all());
    for i in 0..2 {
        b.nic
            .post_recv(
                b.qpn,
                RecvWqe::new(
                    WrId(i),
                    Sge {
                        addr: dst.addr + i * 64,
                        len: 64,
                        lkey: mrb.lkey,
                    },
                ),
            )
            .unwrap();
    }
    // First send unsignaled, second signaled.
    a.nic
        .post_send(
            a.qpn,
            SendWqe::send(
                WrId(10),
                Sge {
                    addr: src.addr,
                    len: 64,
                    lkey: mra.lkey,
                },
            )
            .unsignaled(),
            false,
        )
        .unwrap();
    a.nic
        .post_send(
            a.qpn,
            SendWqe::send(
                WrId(11),
                Sge {
                    addr: src.addr,
                    len: 64,
                    lkey: mra.lkey,
                },
            ),
            false,
        )
        .unwrap();
    sim.block_on({
        let scq = a.send_cq.clone();
        let rcq = b.recv_cq.clone();
        async move {
            wait_cqe(&rcq).await;
            wait_cqe(&rcq).await;
            let s = wait_cqe(&scq).await;
            assert_eq!(s.wr_id, WrId(11), "only the signaled send completes");
            assert!(scq.is_empty());
        }
    });
}

#[test]
fn concurrent_qps_share_the_wire_fairly() {
    // Two QPs stream 64 KiB messages concurrently; both must finish in a
    // similar window (round-robin bursts, no starvation).
    let sim = Sim::new();
    let nics = build_cluster(&sim, &system_l(), Trace::disabled());
    let make_pair = |id_offset: u64| {
        let mem_a = GuestMem::new();
        let mem_b = GuestMem::new();
        let scq = nics[0].create_cq(1024);
        let rcq_dummy = nics[0].create_cq(1024);
        let scq_b = nics[1].create_cq(1024);
        let rcq = nics[1].create_cq(1024);
        let qa = nics[0].create_qp(Transport::Rc, scq.clone(), rcq_dummy);
        let qb = nics[1].create_qp(Transport::Rc, scq_b, rcq.clone());
        nics[0].connect(qa, Some((1, qb))).unwrap();
        nics[1].connect(qb, Some((0, qa))).unwrap();
        let len = 64 * 1024;
        let src = mem_a.alloc_from(&payload(len));
        let dst = mem_b.alloc(len, 0);
        let mra = nics[0].mr_table().register(mem_a, src, Access::all());
        let mrb = nics[1].mr_table().register(mem_b, dst, Access::all());
        nics[1]
            .post_recv(
                qb,
                RecvWqe::new(
                    WrId(id_offset),
                    Sge {
                        addr: dst.addr,
                        len,
                        lkey: mrb.lkey,
                    },
                ),
            )
            .unwrap();
        nics[0]
            .post_send(
                qa,
                SendWqe::send(
                    WrId(id_offset),
                    Sge {
                        addr: src.addr,
                        len,
                        lkey: mra.lkey,
                    },
                ),
                false,
            )
            .unwrap();
        rcq
    };
    let rcq1 = make_pair(1);
    let rcq2 = make_pair(2);
    let (t1, t2) = sim.block_on({
        let sim2 = sim.clone();
        async move {
            let c1 = wait_cqe(&rcq1).await;
            let t1 = sim2.now();
            let c2 = wait_cqe(&rcq2).await;
            let t2 = sim2.now();
            assert_eq!(c1.status, CqeStatus::Success);
            assert_eq!(c2.status, CqeStatus::Success);
            (t1, t2)
        }
    });
    // With RR bursts the two transfers interleave: completion times differ
    // by much less than one whole transfer time (~11 µs at 100 Gbit/s).
    let gap = (t2.as_us_f64() - t1.as_us_f64()).abs();
    assert!(gap < 6.0, "fair interleaving expected, gap {gap} µs");
}

#[test]
fn deterministic_virtual_times_across_runs() {
    fn run() -> (u64, u64) {
        let sim = Sim::new();
        let (a, b) = rc_pair(&sim);
        let len = 100_000;
        let src = a.mem.alloc_from(&payload(len));
        let dst = b.mem.alloc(len, 0);
        let mra = a.nic.mr_table().register(a.mem.clone(), src, Access::all());
        let mrb = b.nic.mr_table().register(b.mem.clone(), dst, Access::all());
        b.nic
            .post_recv(
                b.qpn,
                RecvWqe::new(
                    WrId(1),
                    Sge {
                        addr: dst.addr,
                        len,
                        lkey: mrb.lkey,
                    },
                ),
            )
            .unwrap();
        a.nic
            .post_send(
                a.qpn,
                SendWqe::send(
                    WrId(2),
                    Sge {
                        addr: src.addr,
                        len,
                        lkey: mra.lkey,
                    },
                ),
                false,
            )
            .unwrap();
        let t = sim.block_on({
            let rcq = b.recv_cq.clone();
            let scq = a.send_cq.clone();
            let sim2 = sim.clone();
            async move {
                wait_cqe(&rcq).await;
                let t1 = sim2.now().as_ps();
                wait_cqe(&scq).await;
                (t1, sim2.now().as_ps())
            }
        });
        t
    }
    assert_eq!(run(), run());
}

#[test]
fn inline_send_skips_payload_dma() {
    // An inline-eligible send completes strictly faster than the same send
    // without inline (one fewer DMA fetch on the latency path).
    fn one_way_ns(inline: bool) -> f64 {
        let sim = Sim::new();
        let (a, b) = rc_pair(&sim);
        let len = 128; // below system L's 220 B inline cap
        let src = a.mem.alloc_from(&payload(len));
        let dst = b.mem.alloc(len, 0);
        let mra = a.nic.mr_table().register(a.mem.clone(), src, Access::all());
        let mrb = b.nic.mr_table().register(b.mem.clone(), dst, Access::all());
        b.nic
            .post_recv(
                b.qpn,
                RecvWqe::new(
                    WrId(1),
                    Sge {
                        addr: dst.addr,
                        len,
                        lkey: mrb.lkey,
                    },
                ),
            )
            .unwrap();
        a.nic
            .post_send(
                a.qpn,
                SendWqe::send(
                    WrId(2),
                    Sge {
                        addr: src.addr,
                        len,
                        lkey: mra.lkey,
                    },
                ),
                inline,
            )
            .unwrap();
        sim.block_on({
            let cq = b.recv_cq.clone();
            let sim2 = sim.clone();
            async move {
                wait_cqe(&cq).await;
                sim2.now().as_ns_f64()
            }
        })
    }
    let with_inline = one_way_ns(true);
    let without = one_way_ns(false);
    assert!(
        with_inline + 100.0 < without,
        "inline {with_inline} ns vs dma {without} ns"
    );
}
